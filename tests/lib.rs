//! Cross-crate integration tests for the CloudMedia workspace live in
//! `tests/`; this library target is intentionally empty.
