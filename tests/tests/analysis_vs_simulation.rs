//! Consistency between the Sec. IV analytic model and the simulated
//! system: the equilibrium the queueing network predicts should be what
//! the discrete-event simulator actually produces.

use cloudmedia_core::analysis::{
    p2p_capacity_with, pooled_capacity_demand, DemandPooling, PsiEstimator,
};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

fn single_channel_config(mode: SimMode, population: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.catalog = Catalog::zipf(1, 0.0, ViewingModel::paper_default(), population, 300.0)
        .expect("single-channel catalog");
    // Flat arrivals isolate the equilibrium from diurnal effects.
    cfg.trace.diurnal = cloudmedia_workload::diurnal::DiurnalPattern::flat();
    cfg.trace.horizon_seconds = 12.0 * 3600.0;
    cfg
}

#[test]
fn simulated_population_matches_littles_law() {
    let cfg = single_channel_config(SimMode::ClientServer, 300.0);
    let m = Simulator::new(cfg).unwrap().run().unwrap();
    // Skip the 2 h warm-up, then compare mean population to the target.
    let samples: Vec<_> = m.samples_in(2.0 * 3600.0, 12.0 * 3600.0).collect();
    let mean = samples.iter().map(|s| s.active_peers as f64).sum::<f64>() / samples.len() as f64;
    assert!(
        (mean - 300.0).abs() / 300.0 < 0.15,
        "simulated mean population {mean} vs Little's-law target 300"
    );
}

#[test]
fn provisioned_bandwidth_matches_analytic_demand() {
    let cfg = single_channel_config(SimMode::ClientServer, 300.0);
    let arrival = cfg.catalog.channel(0).base_arrival_rate;
    let m = Simulator::new(cfg).unwrap().run().unwrap();
    // Analytic pooled demand for the true arrival rate.
    let model = ChannelModel::paper_default(0, arrival);
    let analytic = pooled_capacity_demand(&model)
        .unwrap()
        .total_upload_demand();
    // Post-warm-up intervals should reserve close to the analytic demand.
    let tail: Vec<_> = m.intervals.iter().skip(3).collect();
    let mean_demand: f64 =
        tail.iter().map(|r| r.total_cloud_demand).sum::<f64>() / tail.len() as f64;
    assert!(
        (mean_demand - analytic).abs() / analytic < 0.2,
        "controller demand {mean_demand:.0} vs analytic {analytic:.0}"
    );
}

#[test]
fn p2p_peer_contribution_prediction_is_conservative() {
    // The controller's expected peer contribution should be in the same
    // regime as what peers actually serve in the simulator (within ~35%,
    // given the mesh-efficiency friction).
    let cfg = single_channel_config(SimMode::P2p, 300.0);
    let m = Simulator::new(cfg).unwrap().run().unwrap();
    let tail: Vec<_> = m.intervals.iter().skip(3).collect();
    let predicted_peer: f64 = tail
        .iter()
        .map(|r| r.expected_peer_contribution)
        .sum::<f64>()
        / tail.len() as f64;
    // Actual peer serving = total streaming consumption - cloud used.
    let samples: Vec<_> = m.samples_in(3.0 * 3600.0, 12.0 * 3600.0).collect();
    let used_cloud: f64 =
        samples.iter().map(|s| s.used_bandwidth).sum::<f64>() / samples.len() as f64;
    let population: f64 =
        samples.iter().map(|s| s.active_peers as f64).sum::<f64>() / samples.len() as f64;
    let total_consumption = population * 50_000.0; // ~r per viewer
    let actual_peer = (total_consumption - used_cloud).max(0.0);
    assert!(
        predicted_peer > 0.5 * actual_peer && predicted_peer < 2.0 * actual_peer,
        "predicted peer contribution {predicted_peer:.0} vs actual ~{actual_peer:.0}"
    );
}

#[test]
fn p2p_cloud_demand_below_client_server_demand_analytically_and_in_sim() {
    let model = ChannelModel::paper_default(0, 0.2);
    let cs = pooled_capacity_demand(&model)
        .unwrap()
        .total_upload_demand();
    let p2p = p2p_capacity_with(
        &model,
        34_000.0,
        PsiEstimator::Independent,
        DemandPooling::ChannelPooled,
    )
    .unwrap()
    .total_cloud_demand();
    assert!(p2p < cs, "analytic: P2P {p2p} < C/S {cs}");

    let m_cs = Simulator::new(single_channel_config(SimMode::ClientServer, 300.0))
        .unwrap()
        .run()
        .unwrap();
    let m_p2p = Simulator::new(single_channel_config(SimMode::P2p, 300.0))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        m_p2p.mean_used_bandwidth() < m_cs.mean_used_bandwidth(),
        "simulated: P2P uses {p} < C/S {c}",
        p = m_p2p.mean_used_bandwidth(),
        c = m_cs.mean_used_bandwidth()
    );
}

#[test]
fn tracker_measurements_recover_catalog_parameters() {
    // After a day of simulation, the controller's interval records should
    // reflect the true arrival rates (the tracker measured them).
    let cfg = single_channel_config(SimMode::ClientServer, 200.0);
    let arrival = cfg.catalog.channel(0).base_arrival_rate;
    let m = Simulator::new(cfg).unwrap().run().unwrap();
    // Demand scales with measured arrivals; compare the demand of the
    // last interval against the analytically expected demand.
    let model = ChannelModel::paper_default(0, arrival);
    let analytic = pooled_capacity_demand(&model)
        .unwrap()
        .total_upload_demand();
    let last = m.intervals.last().unwrap();
    assert!(
        (last.total_cloud_demand - analytic).abs() / analytic < 0.3,
        "last-interval demand {d:.0} vs analytic {analytic:.0}",
        d = last.total_cloud_demand
    );
}
