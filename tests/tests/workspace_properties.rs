//! Property-based tests spanning crates: analysis outputs must stay
//! physical for arbitrary (valid) channel parameters, and the optimizers
//! must respect their constraints on random instances.

use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters, PAPER_VM_BANDWIDTH};
use cloudmedia_cloud::scheduler::ChunkKey;
use cloudmedia_core::analysis::{
    capacity_demand, p2p_capacity_with, pooled_capacity_demand, DemandPooling, PsiEstimator,
};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_core::provisioning::storage::{ChunkDemand, StorageProblem};
use cloudmedia_core::provisioning::vm::VmProblem;
use cloudmedia_workload::viewing::ViewingModel;
use proptest::prelude::*;

fn channel_strategy() -> impl Strategy<Value = ChannelModel> {
    (
        2usize..24,    // chunks
        0.0..1.0f64,   // alpha
        0.0..0.4f64,   // jump prob
        0.02..0.4f64,  // leave prob
        0.001..0.6f64, // arrival rate
    )
        .prop_filter("jump+leave <= 1", |(_, _, j, l, _)| j + l <= 1.0)
        .prop_map(|(chunks, alpha, jump, leave, rate)| {
            let viewing = ViewingModel {
                chunks,
                start_at_beginning: alpha,
                jump_prob: jump,
                leave_prob: leave,
            };
            ChannelModel {
                id: 0,
                streaming_rate: 50_000.0,
                chunk_seconds: 300.0,
                vm_bandwidth: PAPER_VM_BANDWIDTH,
                arrival_rate: rate,
                alpha,
                routing: viewing.routing_rows().expect("validated by strategy"),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_demand_is_physical(channel in channel_strategy()) {
        let d = capacity_demand(&channel).unwrap();
        // Capacity covers the byte-throughput of every chunk.
        for (i, (&s, &l)) in d.upload_demand.iter().zip(&d.arrival_rates).enumerate() {
            let throughput = l * channel.chunk_bytes();
            prop_assert!(s >= throughput - 1e-6, "chunk {i}: {s} < throughput {throughput}");
        }
    }

    #[test]
    fn pooled_demand_never_exceeds_per_chunk_demand(channel in channel_strategy()) {
        let per = capacity_demand(&channel).unwrap().total_upload_demand();
        let pooled = pooled_capacity_demand(&channel).unwrap().total_upload_demand();
        prop_assert!(pooled <= per + 1e-6, "pooled {pooled} > per-chunk {per}");
    }

    #[test]
    fn p2p_outputs_stay_in_range(channel in channel_strategy(), upload in 0.0..200_000.0f64) {
        let p = p2p_capacity_with(&channel, upload, PsiEstimator::Independent, DemandPooling::ChannelPooled).unwrap();
        let population: f64 = channel.chunk_arrival_rates().unwrap().iter()
            .map(|l| l * channel.chunk_seconds).sum();
        for (i, &g) in p.peer_contribution.iter().enumerate() {
            prop_assert!(g >= 0.0);
            prop_assert!(p.cloud_demand[i] >= 0.0);
            prop_assert!(p.replicas[i] >= -1e-9);
            prop_assert!(p.replicas[i] <= population + 1e-6,
                "chunk {i}: {} replicas > population {population}", p.replicas[i]);
        }
        // Peers cannot contribute more bandwidth than they collectively have.
        prop_assert!(p.total_peer_contribution() <= population * upload + 1e-6);
    }

    #[test]
    fn vm_greedy_respects_all_constraints(
        demands in proptest::collection::vec(0.0..3.0f64, 1..60),
        budget in 10.0..200.0f64,
    ) {
        let clusters = paper_virtual_clusters();
        let demands: Vec<ChunkDemand> = demands.iter().enumerate().map(|(i, &d)| ChunkDemand {
            key: ChunkKey { channel: 0, chunk: i },
            demand: d * PAPER_VM_BANDWIDTH,
        }).collect();
        // Infeasible instances are allowed to error.
        if let Ok(plan) =
            (VmProblem { demands: &demands, clusters: &clusters, budget_per_hour: budget }).greedy()
        {
                prop_assert!(plan.fractional_hourly_cost <= budget + 1e-6);
                for (y, c) in plan.vm_fractions.iter().zip(&clusters) {
                    prop_assert!(*y <= c.max_vms as f64 + 1e-6);
                }
                for (t, c) in plan.vm_targets.iter().zip(&clusters) {
                    prop_assert!(*t <= c.max_vms);
                }
                // Every chunk's demand covered.
                for d in &demands {
                    let got: f64 = plan.allocations.get(&d.key)
                        .map(|v| v.iter().map(|a| a.vms).sum())
                        .unwrap_or(0.0);
                    prop_assert!((got - d.demand / PAPER_VM_BANDWIDTH).abs() < 1e-6);
                }
        }
    }

    #[test]
    fn storage_greedy_places_each_chunk_once(
        demands in proptest::collection::vec(0.0..50.0f64, 1..80),
        budget in 0.0001..0.01f64,
    ) {
        let clusters = paper_nfs_clusters();
        let demands: Vec<ChunkDemand> = demands.iter().enumerate().map(|(i, &d)| ChunkDemand {
            key: ChunkKey { channel: i % 3, chunk: i / 3 },
            demand: d,
        }).collect();
        if let Ok(plan) = (StorageProblem {
            demands: &demands,
            clusters: &clusters,
            chunk_bytes: 15_000_000,
            budget_per_hour: budget,
        }).greedy() {
            prop_assert_eq!(plan.placement.len(), demands.len());
            prop_assert!(plan.hourly_cost <= budget + 1e-9);
            let mut counts = vec![0usize; clusters.len()];
            for &f in plan.placement.values() {
                counts[f] += 1;
            }
            for (count, c) in counts.iter().zip(&clusters) {
                prop_assert!(*count as u64 * 15_000_000 <= c.capacity_bytes);
            }
        }
    }

    #[test]
    fn exact_optimizers_dominate_greedy(
        demands in proptest::collection::vec(0.1..2.0f64, 2..20),
        budget in 5.0..150.0f64,
    ) {
        let clusters = paper_virtual_clusters();
        let demands: Vec<ChunkDemand> = demands.iter().enumerate().map(|(i, &d)| ChunkDemand {
            key: ChunkKey { channel: 0, chunk: i },
            demand: d * PAPER_VM_BANDWIDTH,
        }).collect();
        let p = VmProblem { demands: &demands, clusters: &clusters, budget_per_hour: budget };
        if let (Ok(g), Ok(e)) = (p.greedy(), p.exact()) {
            prop_assert!(e.total_utility >= g.total_utility - 1e-6,
                "exact {e} < greedy {g}", e = e.total_utility, g = g.total_utility);
        }
    }
}
