//! End-to-end behaviour of the full provisioning loop: paper-shape
//! invariants that must hold for any healthy run.

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

fn small_config(mode: SimMode) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.catalog = Catalog::zipf(4, 0.8, ViewingModel::paper_default(), 120.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 8.0 * 3600.0;
    cfg
}

#[test]
fn quality_stays_high_through_flash_crowds() {
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        let m = Simulator::new(small_config(mode)).unwrap().run().unwrap();
        assert!(
            m.mean_quality() > 0.9,
            "{mode:?}: mean quality {q}",
            q = m.mean_quality()
        );
    }
}

#[test]
fn vm_cost_respects_budget_every_interval() {
    let cfg = small_config(SimMode::ClientServer);
    let budget = cfg.vm_budget_per_hour;
    let m = Simulator::new(cfg).unwrap().run().unwrap();
    for rec in &m.intervals {
        assert!(
            rec.vm_hourly_cost <= budget + 1e-9,
            "interval at {t}: ${c}/h over ${budget}/h budget",
            t = rec.time,
            c = rec.vm_hourly_cost
        );
    }
}

#[test]
fn reserved_bandwidth_tracks_diurnal_demand() {
    let mut cfg = small_config(SimMode::ClientServer);
    cfg.trace.horizon_seconds = 24.0 * 3600.0;
    let m = Simulator::new(cfg).unwrap().run().unwrap();
    // The evening flash crowd (20:30) should force more reservation than
    // the pre-dawn trough (04:00).
    let at = |hour: f64| -> f64 {
        m.samples
            .iter()
            .min_by(|a, b| {
                let da = (a.time - hour * 3600.0).abs();
                let db = (b.time - hour * 3600.0).abs();
                da.partial_cmp(&db).unwrap()
            })
            .unwrap()
            .reserved_bandwidth
    };
    let trough = at(4.5);
    let peak = at(21.5);
    assert!(
        peak > 1.5 * trough,
        "reserved at evening peak {peak:.0} should far exceed 4am trough {trough:.0}"
    );
}

#[test]
fn storage_cost_negligible_relative_to_vm_cost() {
    let m = Simulator::new(small_config(SimMode::ClientServer))
        .unwrap()
        .run()
        .unwrap();
    assert!(m.total_storage_cost > 0.0, "videos are stored");
    assert!(
        m.total_storage_cost < 0.005 * m.total_vm_cost,
        "storage {s} vs VM {v}: the paper's 'cost lies at VM rentals'",
        s = m.total_storage_cost,
        v = m.total_vm_cost
    );
}

#[test]
fn popular_channels_provisioned_more() {
    let m = Simulator::new(small_config(SimMode::ClientServer))
        .unwrap()
        .run()
        .unwrap();
    let last = m.intervals.last().unwrap();
    // Channel 0 (most popular, Zipf) should get the most bandwidth.
    let d = &last.per_channel_demand;
    assert!(
        d[0] > d[3],
        "channel demands not ordered by popularity: {d:?}"
    );
}

#[test]
fn placement_not_recomputed_every_hour() {
    let m = Simulator::new(small_config(SimMode::ClientServer))
        .unwrap()
        .run()
        .unwrap();
    let refreshes = m.intervals.iter().filter(|r| r.placement_refreshed).count();
    assert!(refreshes >= 1, "initial placement happens");
    assert!(
        refreshes < m.intervals.len(),
        "stable demand must not re-place storage every interval \
         ({refreshes}/{} refreshed)",
        m.intervals.len()
    );
}

#[test]
fn higher_budget_never_hurts_quality() {
    let mut lo = small_config(SimMode::ClientServer);
    lo.vm_budget_per_hour = 8.0;
    let mut hi = small_config(SimMode::ClientServer);
    hi.vm_budget_per_hour = 100.0;
    let m_lo = Simulator::new(lo).unwrap().run().unwrap();
    let m_hi = Simulator::new(hi).unwrap().run().unwrap();
    assert!(m_hi.mean_quality() + 1e-9 >= m_lo.mean_quality());
    assert!(m_hi.mean_vm_hourly_cost() + 1e-9 >= m_lo.mean_vm_hourly_cost());
}

#[test]
fn safety_factor_increases_reservation_and_cost() {
    let base = Simulator::new(small_config(SimMode::ClientServer))
        .unwrap()
        .run()
        .unwrap();
    let mut padded_cfg = small_config(SimMode::ClientServer);
    padded_cfg.safety_factor = 1.4;
    let padded = Simulator::new(padded_cfg).unwrap().run().unwrap();
    assert!(padded.mean_reserved_bandwidth() > base.mean_reserved_bandwidth());
    assert!(padded.mean_vm_hourly_cost() >= base.mean_vm_hourly_cost());
    assert!(padded.mean_quality() + 1e-9 >= base.mean_quality());
}

#[test]
fn boot_latency_delays_capacity_but_not_for_long() {
    // With the paper's 25 s boots the very first sample (5 min in) must
    // already see running VMs.
    let m = Simulator::new(small_config(SimMode::ClientServer))
        .unwrap()
        .run()
        .unwrap();
    let first = &m.samples[0];
    assert!(
        first.reserved_bandwidth > 0.0,
        "capacity online within the first sample"
    );
}
