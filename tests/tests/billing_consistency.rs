//! Billing invariants across the cloud model and the simulator.

use cloudmedia_cloud::broker::{Cloud, ResourceRequest};
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

#[test]
fn ledger_sums_to_totals() {
    let mut cloud = Cloud::paper_default().unwrap();
    cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![10, 5, 3],
            placement: None,
        })
        .unwrap();
    for h in 1..=12 {
        cloud.tick(h as f64 * 3600.0).unwrap();
    }
    let billing = cloud.billing();
    let from_ledger: f64 = billing
        .ledger()
        .iter()
        .map(|e| e.vm_cost.as_dollars() + e.storage_cost.as_dollars())
        .sum();
    assert!((from_ledger - billing.total_cost().as_dollars()).abs() < 1e-9);
    // 10 Std + 5 Med + 3 Adv = 4.5 + 3.5 + 2.4 = $10.4/h for 12 h.
    assert!((billing.total_cost().as_dollars() - 124.8).abs() < 1e-6);
}

#[test]
fn per_cluster_costs_sum_to_vm_total() {
    let mut cloud = Cloud::paper_default().unwrap();
    cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![7, 2, 9],
            placement: None,
        })
        .unwrap();
    cloud.tick(7200.0).unwrap();
    let billing = cloud.billing();
    let per: f64 = billing
        .vm_cost_per_cluster()
        .iter()
        .map(|m| m.as_dollars())
        .sum();
    assert!((per - billing.vm_cost().as_dollars()).abs() < 1e-9);
}

#[test]
fn sim_total_cost_equals_billing_ledger() {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(3, 0.8, ViewingModel::paper_default(), 90.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 6.0 * 3600.0;
    let budget = cfg.vm_budget_per_hour;
    let m = Simulator::new(cfg).unwrap().run().unwrap();
    // Total VM cost bounded by budget x hours (billing can only charge
    // what the controller requested, which respects the budget).
    assert!(m.total_vm_cost <= budget * 6.0 + 1e-6);
    // And bounded below by the sum of interval plans minus shutdown slack.
    let planned: f64 = m.intervals.iter().map(|r| r.vm_hourly_cost).sum();
    assert!(
        m.total_vm_cost <= planned * 1.1 + 1.0,
        "billed {b} far exceeds planned {planned}",
        b = m.total_vm_cost
    );
    assert!(
        m.total_vm_cost >= planned * 0.8 - 1.0,
        "billed {b} far below planned {planned}",
        b = m.total_vm_cost
    );
}

#[test]
fn scaling_down_saves_money() {
    // Same workload, but one cloud holds peak VMs all day: elastic must
    // be cheaper.
    let mut elastic = Cloud::paper_default().unwrap();
    let mut fixed = Cloud::paper_default().unwrap();
    let targets = [30usize, 10, 10, 10, 40, 40, 10, 10];
    fixed
        .submit_request(&ResourceRequest {
            vm_targets: vec![40, 0, 0],
            placement: None,
        })
        .unwrap();
    for (h, &t) in targets.iter().enumerate() {
        elastic
            .submit_request(&ResourceRequest {
                vm_targets: vec![t, 0, 0],
                placement: None,
            })
            .unwrap();
        elastic.tick((h + 1) as f64 * 3600.0).unwrap();
        fixed.tick((h + 1) as f64 * 3600.0).unwrap();
    }
    let e = elastic.billing().total_cost().as_dollars();
    let f = fixed.billing().total_cost().as_dollars();
    assert!(e < f, "elastic ${e} should beat fixed ${f}");
    // Fixed: 40 VMs x 8 h x $0.45 = $144.
    assert!((f - 144.0).abs() < 1e-6);
}

#[test]
fn billing_includes_boot_and_shutdown_periods() {
    // Usage-time billing runs from launch to fully-off: a VM booted and
    // immediately shut down still costs its boot + shutdown window.
    let mut cloud = Cloud::paper_default().unwrap();
    cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![1, 0, 0],
            placement: None,
        })
        .unwrap();
    cloud.tick(10.0).unwrap(); // still booting
    cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![0, 0, 0],
            placement: None,
        })
        .unwrap();
    cloud.tick(3600.0).unwrap();
    let cost = cloud.billing().vm_cost().as_dollars();
    // Billed for 10 s booting + 10 s shutdown = 20 s of $0.45/h.
    assert!((cost - 0.45 * 20.0 / 3600.0).abs() < 1e-9, "cost {cost}");
}
