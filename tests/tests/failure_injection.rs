//! Failure handling across the stack: infeasible budgets, over-capacity
//! demand, rejected requests, and malformed configurations must surface
//! as errors without corrupting state.

use cloudmedia_cloud::broker::{Cloud, ResourceRequest};
use cloudmedia_cloud::scheduler::{ChunkKey, PlacementPlan};
use cloudmedia_cloud::CloudError;
use cloudmedia_core::controller::{Controller, ControllerConfig, StreamingMode};
use cloudmedia_core::predictor::{ChannelObservation, PredictorKind};
use cloudmedia_core::CoreError;
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

fn observation(rate: f64) -> ChannelObservation {
    let v = ViewingModel::paper_default();
    ChannelObservation {
        arrival_rate: rate,
        alpha: v.start_at_beginning,
        routing: v.routing_rows().unwrap(),
    }
}

#[test]
fn starved_budget_surfaces_papers_increase_signal() {
    let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
    cfg.vm_budget_per_hour = 0.5;
    let mut controller = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
    let sla = Cloud::paper_default().unwrap().sla_terms();
    let err = controller
        .plan_interval(&[(0, observation(0.5))], &sla)
        .unwrap_err();
    match err {
        CoreError::Infeasible {
            required_budget,
            configured_budget,
            ..
        } => {
            assert!(required_budget > configured_budget);
            assert_eq!(configured_budget, 0.5);
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
}

#[test]
fn demand_beyond_fleet_is_capacity_exceeded() {
    let mut controller = Controller::new(
        ControllerConfig::paper_default(StreamingMode::ClientServer),
        PredictorKind::LastInterval,
    )
    .unwrap();
    let sla = Cloud::paper_default().unwrap().sla_terms();
    // ~4400 concurrent viewers need more than the 150-VM fleet.
    let err = controller
        .plan_interval(&[(0, observation(2.0))], &sla)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::CapacityExceeded { .. }),
        "got {err:?}"
    );
}

#[test]
fn rejected_cloud_request_changes_nothing() {
    let mut cloud = Cloud::paper_default().unwrap();
    cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![5, 0, 0],
            placement: None,
        })
        .unwrap();
    cloud.tick(100.0).unwrap();
    let before_bw = cloud.running_bandwidth();
    let before_chunks = cloud.nfs_scheduler().placed_chunks();

    let mut placement = PlacementPlan::new();
    placement.insert(
        ChunkKey {
            channel: 0,
            chunk: 0,
        },
        0,
    );
    let err = cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![5, 0, 46], // 46 > 45 Advanced
            placement: Some(placement),
        })
        .unwrap_err();
    assert!(matches!(
        err,
        CloudError::InsufficientVms { cluster: 2, .. }
    ));
    cloud.tick(200.0).unwrap();
    assert_eq!(cloud.running_bandwidth(), before_bw);
    assert_eq!(cloud.nfs_scheduler().placed_chunks(), before_chunks);
}

#[test]
fn simulation_with_infeasible_budget_fails_cleanly() {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(2, 0.8, ViewingModel::paper_default(), 100.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 2.0 * 3600.0;
    cfg.vm_budget_per_hour = 0.1;
    let err = Simulator::new(cfg).unwrap().run().unwrap_err();
    assert!(
        err.to_string().contains("increase the budget"),
        "got: {err}"
    );
}

#[test]
fn time_never_goes_backwards_in_cloud() {
    let mut cloud = Cloud::paper_default().unwrap();
    cloud.tick(500.0).unwrap();
    let err = cloud.tick(400.0).unwrap_err();
    assert!(matches!(err, CloudError::TimeWentBackwards { .. }));
    // The failed tick leaves the clock usable.
    cloud.tick(600.0).unwrap();
}

#[test]
fn malformed_sim_configs_rejected_up_front() {
    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.round_seconds = -1.0;
    assert!(Simulator::new(cfg).is_err());

    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.trace.upload_min_bps = 0.0;
    assert!(Simulator::new(cfg).is_err());

    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.peer_efficiency = 1.5;
    assert!(Simulator::new(cfg).is_err());
}

#[test]
fn controller_recovers_after_transient_infeasibility() {
    // An interval that fails (over-capacity) does not poison later,
    // feasible intervals.
    let mut controller = Controller::new(
        ControllerConfig::paper_default(StreamingMode::ClientServer),
        PredictorKind::LastInterval,
    )
    .unwrap();
    let sla = Cloud::paper_default().unwrap().sla_terms();
    assert!(controller
        .plan_interval(&[(0, observation(2.0))], &sla)
        .is_err());
    let plan = controller
        .plan_interval(&[(0, observation(0.2))], &sla)
        .expect("feasible load plans fine after a failure");
    assert!(plan.vm_targets.iter().sum::<usize>() > 0);
}

// ---------------------------------------------------------------------
// Fault-plane scenarios: injected faults must degrade service
// gracefully (and measurably) instead of erroring out, and the system
// must recover once the fault clears.
// ---------------------------------------------------------------------

fn window_quality(m: &cloudmedia_sim::Metrics, from: f64, to: f64) -> f64 {
    let s: Vec<&_> = m.samples_in(from, to).collect();
    s.iter().map(|x| x.quality).sum::<f64>() / s.len().max(1) as f64
}

/// A small single-site configuration for the fault scenarios.
fn small_sim_cfg(hours: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(3, 0.8, ViewingModel::paper_default(), 60.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg
}

#[test]
fn federated_site_outage_holds_a_quality_floor_and_recovers() {
    use cloudmedia_sim::faults::FaultSchedule;
    use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};

    const HOURS: f64 = 10.0;
    // Site 1 (the affected region's local site) goes dark mid-interval
    // and comes back two hours later.
    let (outage_at, outage_len) = (3.0 * 3600.0 + 600.0, 2.0 * 3600.0);
    let schedule = FaultSchedule::site_outage(outage_at, 1, outage_len);

    let run = |kind: DeploymentKind, faults: Option<&FaultSchedule>| {
        let mut fc = FederatedConfig::paper_default(kind, SimMode::ClientServer, HOURS);
        if let Some(s) = faults {
            fc.base.faults = s.clone();
        }
        FederatedSimulator::new(fc).unwrap().run().unwrap()
    };

    let baseline = run(DeploymentKind::Federated, None);
    let federated = run(DeploymentKind::Federated, Some(&schedule));
    let independent = run(DeploymentKind::Independent, Some(&schedule));
    // A regional-site outage cannot strike the central deployment at
    // all — its single consolidated site is not any region's site 1 —
    // so central's (fault-free) run is the immune upper bound.
    let central = run(DeploymentKind::Central, None);

    // The outage forced re-plans off the hourly boundary.
    assert!(
        federated.fault_stats.emergency_replans > 0,
        "mid-interval outage must trigger emergency re-plans"
    );

    // During the outage the federation reroutes region 1's demand to
    // the surviving sites and holds a quality floor; the independent
    // deployment, pinned to its dead local site, collapses.
    let (w0, w1) = (outage_at + 900.0, outage_at + outage_len);
    let fed_during = window_quality(&federated.per_region[1].metrics, w0, w1);
    let ind_during = window_quality(&independent.per_region[1].metrics, w0, w1);
    let central_during = window_quality(&central.per_region[0].metrics, w0, w1);
    assert!(
        fed_during > 0.5,
        "federated quality floor during the outage: {fed_during:.3}"
    );
    assert!(
        ind_during < fed_during - 0.1,
        "independent has no site to fall back to: {ind_during:.3} vs {fed_during:.3}"
    );
    // Post-outage graceful-degradation ordering (quality, mirroring the
    // cost sandwich central <= federated <= independent): the deployment
    // with more pooling degrades less.
    assert!(
        ind_during <= fed_during && fed_during <= central_during + 0.005,
        "quality ordering independent <= federated <= central: \
         {ind_during:.3} <= {fed_during:.3} <= {central_during:.3}"
    );

    // Full recovery: one provisioning interval after the site returns,
    // the affected region is back at baseline quality.
    let (r0, r1) = (outage_at + outage_len + 3600.0, HOURS * 3600.0);
    let fed_after = window_quality(&federated.per_region[1].metrics, r0, r1);
    let base_after = window_quality(&baseline.per_region[1].metrics, r0, r1);
    assert!(
        fed_after > base_after - 0.005,
        "full recovery after the outage: {fed_after:.4} vs {base_after:.4}"
    );
}

#[test]
fn mid_run_budget_cut_degrades_uniformly_instead_of_failing() {
    use cloudmedia_sim::faults::FaultSchedule;

    const HOURS: f64 = 12.0;
    let cfg = small_sim_cfg(HOURS);
    let baseline = Simulator::new(cfg.clone()).unwrap().run().unwrap();

    // Cut the budget to 40 % of what the baseline actually spends per
    // hour — guaranteed to bind — halfway through the run.
    let shock_at = 6.0 * 3600.0;
    let mean_hourly = baseline.total_vm_cost / HOURS;
    let factor = 0.4 * mean_hourly / cfg.vm_budget_per_hour;
    let mut cut_cfg = cfg;
    cut_cfg.faults = FaultSchedule::budget_shock(shock_at, factor);
    let cut = Simulator::new(cut_cfg).unwrap().run_with_faults().unwrap();

    // The run completes (best-effort dilution, not an Infeasible error),
    // spends less, and serves visibly worse — but nonzero — quality
    // after the shock.
    assert!(
        cut.metrics.total_vm_cost < 0.95 * baseline.total_vm_cost,
        "the cut lowers spend: {} vs {}",
        cut.metrics.total_vm_cost,
        baseline.total_vm_cost
    );
    let q_after = window_quality(&cut.metrics, shock_at + 3600.0, HOURS * 3600.0);
    let q_base = window_quality(&baseline, shock_at + 3600.0, HOURS * 3600.0);
    assert!(
        q_after < q_base - 0.01,
        "diluted quality after the cut: {q_after:.3} vs {q_base:.3}"
    );
    assert!(q_after > 0.1, "degradation, not collapse: {q_after:.3}");
    // Before the shock the runs are identical.
    let q_before_cut = window_quality(&cut.metrics, 0.0, shock_at);
    let q_before_base = window_quality(&baseline, 0.0, shock_at);
    assert!((q_before_cut - q_before_base).abs() < 1e-12);
}

#[test]
fn stale_tracker_measurements_fall_back_to_the_last_plan() {
    use cloudmedia_sim::faults::FaultSchedule;

    const HOURS: f64 = 12.0;
    let cfg = small_sim_cfg(HOURS);
    let baseline = Simulator::new(cfg.clone()).unwrap().run().unwrap();

    // The tracker goes dark for two full provisioning intervals.
    let mut dark_cfg = cfg;
    dark_cfg.faults = FaultSchedule::tracker_blackout(5.5 * 3600.0, 2.0 * 3600.0);
    let dark = Simulator::new(dark_cfg).unwrap().run_with_faults().unwrap();

    // The 6 h and 7 h boundaries fall inside the blackout: both plans
    // replay the last-known-good plan instead of reading fresh stats.
    assert_eq!(
        dark.fault_stats.fallback_intervals, 2,
        "two boundaries replayed the stale plan"
    );
    // Service rides through on the stale plan: quality within the
    // blackout stays close to baseline (the diurnal drift over two
    // hours is modest), and the run fully re-converges afterwards.
    let q_dark = window_quality(&dark.metrics, 5.5 * 3600.0, 7.5 * 3600.0);
    let q_base = window_quality(&baseline, 5.5 * 3600.0, 7.5 * 3600.0);
    assert!(
        q_dark > q_base - 0.1,
        "stale plan keeps serving: {q_dark:.3} vs baseline {q_base:.3}"
    );
    let q_after = window_quality(&dark.metrics, 9.0 * 3600.0, HOURS * 3600.0);
    let q_after_base = window_quality(&baseline, 9.0 * 3600.0, HOURS * 3600.0);
    assert!(
        q_after > q_after_base - 0.005,
        "re-converges after the blackout: {q_after:.4} vs {q_after_base:.4}"
    );
}
