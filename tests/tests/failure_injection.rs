//! Failure handling across the stack: infeasible budgets, over-capacity
//! demand, rejected requests, and malformed configurations must surface
//! as errors without corrupting state.

use cloudmedia_cloud::broker::{Cloud, ResourceRequest};
use cloudmedia_cloud::scheduler::{ChunkKey, PlacementPlan};
use cloudmedia_cloud::CloudError;
use cloudmedia_core::controller::{Controller, ControllerConfig, StreamingMode};
use cloudmedia_core::predictor::{ChannelObservation, PredictorKind};
use cloudmedia_core::CoreError;
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

fn observation(rate: f64) -> ChannelObservation {
    let v = ViewingModel::paper_default();
    ChannelObservation {
        arrival_rate: rate,
        alpha: v.start_at_beginning,
        routing: v.routing_rows().unwrap(),
    }
}

#[test]
fn starved_budget_surfaces_papers_increase_signal() {
    let mut cfg = ControllerConfig::paper_default(StreamingMode::ClientServer);
    cfg.vm_budget_per_hour = 0.5;
    let mut controller = Controller::new(cfg, PredictorKind::LastInterval).unwrap();
    let sla = Cloud::paper_default().unwrap().sla_terms();
    let err = controller
        .plan_interval(&[(0, observation(0.5))], &sla)
        .unwrap_err();
    match err {
        CoreError::Infeasible {
            required_budget,
            configured_budget,
            ..
        } => {
            assert!(required_budget > configured_budget);
            assert_eq!(configured_budget, 0.5);
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
}

#[test]
fn demand_beyond_fleet_is_capacity_exceeded() {
    let mut controller = Controller::new(
        ControllerConfig::paper_default(StreamingMode::ClientServer),
        PredictorKind::LastInterval,
    )
    .unwrap();
    let sla = Cloud::paper_default().unwrap().sla_terms();
    // ~4400 concurrent viewers need more than the 150-VM fleet.
    let err = controller
        .plan_interval(&[(0, observation(2.0))], &sla)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::CapacityExceeded { .. }),
        "got {err:?}"
    );
}

#[test]
fn rejected_cloud_request_changes_nothing() {
    let mut cloud = Cloud::paper_default().unwrap();
    cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![5, 0, 0],
            placement: None,
        })
        .unwrap();
    cloud.tick(100.0).unwrap();
    let before_bw = cloud.running_bandwidth();
    let before_chunks = cloud.nfs_scheduler().placed_chunks();

    let mut placement = PlacementPlan::new();
    placement.insert(
        ChunkKey {
            channel: 0,
            chunk: 0,
        },
        0,
    );
    let err = cloud
        .submit_request(&ResourceRequest {
            vm_targets: vec![5, 0, 46], // 46 > 45 Advanced
            placement: Some(placement),
        })
        .unwrap_err();
    assert!(matches!(
        err,
        CloudError::InsufficientVms { cluster: 2, .. }
    ));
    cloud.tick(200.0).unwrap();
    assert_eq!(cloud.running_bandwidth(), before_bw);
    assert_eq!(cloud.nfs_scheduler().placed_chunks(), before_chunks);
}

#[test]
fn simulation_with_infeasible_budget_fails_cleanly() {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(2, 0.8, ViewingModel::paper_default(), 100.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 2.0 * 3600.0;
    cfg.vm_budget_per_hour = 0.1;
    let err = Simulator::new(cfg).unwrap().run().unwrap_err();
    assert!(
        err.to_string().contains("increase the budget"),
        "got: {err}"
    );
}

#[test]
fn time_never_goes_backwards_in_cloud() {
    let mut cloud = Cloud::paper_default().unwrap();
    cloud.tick(500.0).unwrap();
    let err = cloud.tick(400.0).unwrap_err();
    assert!(matches!(err, CloudError::TimeWentBackwards { .. }));
    // The failed tick leaves the clock usable.
    cloud.tick(600.0).unwrap();
}

#[test]
fn malformed_sim_configs_rejected_up_front() {
    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.round_seconds = -1.0;
    assert!(Simulator::new(cfg).is_err());

    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.trace.upload_min_bps = 0.0;
    assert!(Simulator::new(cfg).is_err());

    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.peer_efficiency = 1.5;
    assert!(Simulator::new(cfg).is_err());
}

#[test]
fn controller_recovers_after_transient_infeasibility() {
    // An interval that fails (over-capacity) does not poison later,
    // feasible intervals.
    let mut controller = Controller::new(
        ControllerConfig::paper_default(StreamingMode::ClientServer),
        PredictorKind::LastInterval,
    )
    .unwrap();
    let sla = Cloud::paper_default().unwrap().sla_terms();
    assert!(controller
        .plan_interval(&[(0, observation(2.0))], &sla)
        .is_err());
    let plan = controller
        .plan_interval(&[(0, observation(0.2))], &sla)
        .expect("feasible load plans fine after a failure");
    assert!(plan.vm_targets.iter().sum::<usize>() > 0);
}
