#!/usr/bin/env bash
# Relative-link check (lychee-style, offline) over the markdown docs:
# every `[text](target)` whose target is not an absolute URL or a pure
# anchor must resolve to an existing file or directory relative to the
# markdown file that references it. External URLs are skipped — this
# build environment has no network — so the check is deterministic.
#
# Usage: scripts/check_links.sh [FILE.md ...]
# (defaults to README.md, PAPER.md, PAPERS.md, ROADMAP.md, docs/*.md)

set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    files=(README.md PAPER.md PAPERS.md ROADMAP.md docs/*.md)
fi

fail=0
for file in "${files[@]}"; do
    [ -f "$file" ] || { echo "MISSING FILE: $file"; fail=1; continue; }
    dir=$(dirname "$file")
    # Extract inline markdown link targets: [text](target).
    targets=$(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*(\(.*\))/\1/')
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Strip an anchor suffix (docs/FOO.md#section).
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "BROKEN LINK: $file -> $target"
            fail=1
        fi
    done <<< "$targets"
done

if [ "$fail" -ne 0 ]; then
    echo "relative-link check failed"
    exit 1
fi
echo "relative-link check passed (${#files[@]} files)"
