//! Million-viewer scale-out: drive the sharded channel-parallel round
//! engine over a mega catalog and watch the diurnal ramp cross a
//! million concurrent viewers.
//!
//! The paper's deployment is 20 channels at ~2500 peak viewers; this
//! example builds the same system scaled 400×: 2000 Zipf channels
//! calibrated to 1 000 000 steady-state viewers, the Table II cloud
//! fleet and budgets grown in proportion, arrivals streamed lazily
//! (memory stays `O(channels + connected viewers)`), and every channel
//! simulated as an independent shard fanned across the worker pool.
//!
//! Run with: `cargo run --release --example million_viewers`
//! (set `RAYON_NUM_THREADS` to vary the pool; results are bit-identical
//! at any thread count, including fully serial execution).

use std::time::Instant;

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;

fn main() {
    let channels = 2000;
    let population = 1_000_000.0;
    let hours = 2.0;

    let mut config = SimConfig::scale_out(SimMode::ClientServer, channels, population)
        .expect("scale-out defaults are valid");
    config.trace.horizon_seconds = hours * 3600.0;

    println!(
        "simulating {channels} channels, {population:.0} target viewers, {hours} h \
         ({} worker threads)…",
        rayon::current_num_threads()
    );
    let start = Instant::now();
    let metrics = Simulator::new(config)
        .expect("configuration validates")
        .run()
        .expect("scale run succeeds");
    let wall = start.elapsed().as_secs_f64();

    println!(
        "peak concurrent viewers: {} (diurnal ramp over {hours} h)",
        metrics.peak_peers()
    );
    println!("mean streaming quality: {:.4}", metrics.mean_quality());
    println!(
        "cloud bandwidth: reserved {:.1} Gbps mean, used {:.1} Gbps mean",
        metrics.mean_reserved_bandwidth() * 8.0 / 1e9,
        metrics.mean_used_bandwidth() * 8.0 / 1e9,
    );
    println!(
        "VM rental: ${:.0} total over the horizon (${:.0}/h mean)",
        metrics.total_vm_cost,
        metrics.mean_vm_hourly_cost()
    );
    println!(
        "wall time: {wall:.1}s — {:.2} simulated hours per wall second",
        hours / wall
    );
}
