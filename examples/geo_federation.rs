//! Federated multi-region provisioning walkthrough.
//!
//! Runs the three-site deployment (americas / europe / apac, offset time
//! zones, regional VM prices) three ways over the same 48 hours —
//! independent sites, the federated deployment with overflow/price
//! redirection, and one centralized multiplexed site — and prints where
//! the global placement optimizer moved traffic and what it saved.
//!
//! Run with: `cargo run --release --example geo_federation`

use cloudmedia_sim::config::SimMode;
use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};

fn main() {
    let hours = 48.0;
    let mode = SimMode::ClientServer;
    let deploy = |kind: DeploymentKind| {
        FederatedSimulator::new(FederatedConfig::paper_default(kind, mode, hours))
            .expect("paper federation config is valid")
            .run()
            .expect("deployment run succeeds")
    };

    println!("three-site deployment, {hours:.0} h, {mode:?} mode\n");

    let independent = deploy(DeploymentKind::Independent);
    let federated = deploy(DeploymentKind::Federated);
    let central = deploy(DeploymentKind::Central);

    // Where the federation moved traffic: each region's site prices VMs
    // at its own market (americas 1.00x, europe 1.15x, apac 1.30x), so
    // the optimizer redirects premium-market demand into the reference
    // region whenever VM savings beat egress + SLA latency penalty.
    println!("federated deployment, per region:");
    for r in &federated.per_region {
        println!(
            "  {:<9} {:.2}x prices: VM bill ${:>8.2}, {:>5.1}% of its cloud traffic \
             served remotely (egress ${:.2}, SLA penalty ${:.2})",
            r.region.name,
            r.site.vm_price_factor,
            r.metrics.total_vm_cost,
            r.redirected_share() * 100.0,
            r.transfer_cost,
            r.latency_penalty_cost,
        );
    }

    // The cost sandwich: central <= federated <= independent.
    println!("\ntotal cost (VM + storage + transfer + latency penalty):");
    for (name, m) in [
        ("independent", &independent),
        ("federated", &federated),
        ("central", &central),
    ] {
        println!(
            "  {name:<12} ${:>8.2}   quality {:.4}   redirected {:>5.1}%",
            m.total_cost(),
            m.mean_quality(),
            m.redirected_share() * 100.0,
        );
    }
    println!(
        "\nfederated saves {:.1}% vs independent; the centralized bound is {:.1}% \
         (but serves ~60% of viewers from a remote region — the latency cost the \
         dollar metric does not see)",
        (1.0 - federated.total_cost() / independent.total_cost()) * 100.0,
        (1.0 - central.total_cost() / independent.total_cost()) * 100.0,
    );
    assert!(federated.total_cost() <= independent.total_cost() * 1.001);
    assert!(federated.total_cost() >= central.total_cost() * 0.999);
}
