//! VM failure injection on the event-driven engine.
//!
//! Runs a half-day CloudMedia deployment twice — once undisturbed, once
//! with 60 % of the running VM fleet failing at hour 6 — and shows what
//! only the event-driven engine can: the capacity dent at the failure's
//! own timestamp, the admission-latency spike while requests queue on
//! the survivors, and the hourly controller re-provisioning the fleet on
//! its next tick.
//!
//! Run with: `cargo run --example vm_failure_injection`

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::event_driven::{run, DesScenario, VmFailureSpec};
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

fn main() {
    // A small deployment so the example finishes in seconds: 3 channels,
    // ~120 concurrent viewers, 12 hours.
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(3, 0.8, ViewingModel::paper_default(), 60.0, 300.0)
        .expect("catalog parameters are valid");
    cfg.trace.horizon_seconds = 12.0 * 3600.0;

    let baseline = run(&cfg, &DesScenario::default()).expect("baseline run succeeds");

    let failure_at = 6.0 * 3600.0 + 137.0; // mid-interval, not round-aligned
    let scenario = DesScenario {
        failures: vec![VmFailureSpec {
            at: failure_at,
            fraction: 0.6,
            recovery_seconds: 0.0,
        }],
        ..DesScenario::default()
    };
    let failed = run(&cfg, &scenario).expect("failure run succeeds");

    println!(
        "failure burst at t = {failure_at:.0} s killed {} running VM instances\n",
        failed.report.vms_killed
    );
    println!("hour | baseline running (Mbps) | with failures (Mbps)");
    for (a, b) in baseline
        .metrics
        .samples
        .iter()
        .zip(&failed.metrics.samples)
        .filter(|(a, _)| (5.0 * 3600.0..9.0 * 3600.0).contains(&a.time))
        .step_by(2)
    {
        println!(
            "{:4.1} | {:>23.1} | {:>20.1}",
            a.time / 3600.0,
            a.reserved_bandwidth * 8.0 / 1e6,
            b.reserved_bandwidth * 8.0 / 1e6,
        );
    }
    let (b, f) = (&baseline.report, &failed.report);
    println!(
        "\nadmission latency p99: {:.1}s baseline vs {:.1}s with failures",
        b.admission_latency.p99, f.admission_latency.p99
    );
    println!(
        "mean quality: {:.4} baseline vs {:.4} with failures",
        baseline.metrics.mean_quality(),
        failed.metrics.mean_quality()
    );
    println!(
        "VM cost: ${:.2} baseline vs ${:.2} with failures (survivor fleet bills \
         until power-off; the controller re-launches on its next hourly tick)",
        baseline.metrics.total_vm_cost, failed.metrics.total_vm_cost
    );
}
