//! Flash crowd: drive the dynamic provisioning controller through a
//! demand surge and watch it track the load hour by hour — the paper's
//! central "cloud on demand meets video on demand" scenario.
//!
//! Run with: `cargo run -p cloudmedia-examples --bin flash_crowd --release`

use cloudmedia_cloud::broker::{Cloud, ResourceRequest};
use cloudmedia_core::controller::{Controller, ControllerConfig, StreamingMode};
use cloudmedia_core::predictor::{ChannelObservation, PredictorKind};
use cloudmedia_workload::viewing::ViewingModel;

fn main() {
    let mut cloud = Cloud::paper_default().expect("paper cloud is valid");
    let sla = cloud.sla_terms();
    let mut controller = Controller::new(
        ControllerConfig::paper_default(StreamingMode::ClientServer),
        PredictorKind::LastInterval,
    )
    .expect("paper config is valid");

    let viewing = ViewingModel::paper_default();
    let routing = viewing
        .routing_rows()
        .expect("paper viewing model is valid");

    // A flash crowd: arrivals ramp 4x over three hours, then recede.
    let arrival_rates = [0.10, 0.15, 0.25, 0.40, 0.38, 0.25, 0.15, 0.10];
    println!("hour,arrival_rate,demand_mbps,vm_targets,running_mbps,hour_cost");
    for (hour, &rate) in arrival_rates.iter().enumerate() {
        let t = hour as f64 * 3600.0;
        let obs = ChannelObservation {
            arrival_rate: rate,
            alpha: viewing.start_at_beginning,
            routing: routing.clone(),
        };
        let plan = controller
            .plan_interval(&[(0, obs)], &sla)
            .expect("budget covers the surge");
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: plan.vm_targets.clone(),
                placement: plan.placement.clone(),
            })
            .expect("targets fit the fleet");
        // Boot latency: capacity is online ~25 s into the hour.
        cloud.tick(t + 30.0).expect("time advances");
        let running = cloud.running_bandwidth();
        let cost_before = cloud.billing().total_cost();
        cloud.tick(t + 3600.0).expect("time advances");
        let hour_cost = cloud.billing().total_cost() - cost_before;
        println!(
            "{hour},{rate},{:.1},{:?},{:.1},{}",
            plan.total_cloud_demand * 8.0 / 1e6,
            plan.vm_targets,
            running * 8.0 / 1e6,
            hour_cost,
        );
    }
    println!(
        "\ntotal cost over {} hours: {}",
        arrival_rates.len(),
        cloud.billing().total_cost()
    );
    println!(
        "(a statically peak-provisioned deployment would have paid {} — \
         the elastic cloud pays only for what the crowd needs)",
        {
            // Peak-hour VM cost held for the whole window.
            let peak = 0.40_f64;
            let obs = ChannelObservation {
                arrival_rate: peak,
                alpha: viewing.start_at_beginning,
                routing: routing.clone(),
            };
            let mut c2 = Controller::new(
                ControllerConfig::paper_default(StreamingMode::ClientServer),
                PredictorKind::LastInterval,
            )
            .expect("valid");
            let plan = c2.plan_interval(&[(0, obs)], &sla).expect("within budget");
            cloudmedia_cloud::pricing::Money::dollars(
                plan.vm_plan.integer_hourly_cost * arrival_rates.len() as f64,
            )
        }
    );
}
