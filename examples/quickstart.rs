//! Quickstart: model one VoD channel, derive how much cloud capacity it
//! needs in client–server and P2P mode, and solve the two provisioning
//! optimizations for it.
//!
//! Run with: `cargo run -p cloudmedia-examples --bin quickstart`

use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_core::analysis::{
    capacity_demand, p2p_capacity_with, pooled_capacity_demand, DemandPooling, PsiEstimator,
};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_core::provisioning::storage::{ChunkDemand, StorageProblem};
use cloudmedia_core::provisioning::vm::VmProblem;

fn mbps(bytes_per_sec: f64) -> f64 {
    bytes_per_sec * 8.0 / 1e6
}

fn main() {
    // A channel with the paper's parameters (20 five-minute chunks of a
    // 100-minute video at 400 kbps) and 0.15 viewer arrivals per second —
    // roughly 390 concurrent viewers at equilibrium.
    let channel = ChannelModel::paper_default(0, 0.15);
    println!(
        "channel: {} chunks, r = {:.0} kbps, T0 = {} s",
        channel.chunks(),
        channel.streaming_rate * 8.0 / 1e3,
        channel.chunk_seconds
    );

    // Sec. IV-B: per-chunk equilibrium demand via the Jackson network.
    let cs = capacity_demand(&channel).expect("channel is valid");
    println!("\nclient-server, per-chunk (paper-literal integer servers):");
    println!(
        "  total upload demand: {:.1} Mbps across {} servers",
        mbps(cs.total_upload_demand()),
        cs.total_servers()
    );

    // Fractional VM sharing within the channel (what the controller uses).
    let pooled = pooled_capacity_demand(&channel).expect("channel is valid");
    println!(
        "  pooled (VM-sharing) demand: {:.1} Mbps",
        mbps(pooled.total_upload_demand())
    );

    // Sec. IV-C: subtract the equilibrium peer contribution.
    let p2p = p2p_capacity_with(
        &channel,
        34_000.0,
        PsiEstimator::Independent,
        DemandPooling::ChannelPooled,
    )
    .expect("channel is valid");
    println!("\nP2P with mean peer upload 272 kbps:");
    println!(
        "  peers contribute: {:.1} Mbps",
        mbps(p2p.total_peer_contribution())
    );
    println!(
        "  cloud must supply: {:.1} Mbps",
        mbps(p2p.total_cloud_demand())
    );

    // Sec. V-A: provision the P2P demand on the paper's clusters.
    let demands: Vec<ChunkDemand> = p2p
        .cloud_demand
        .iter()
        .enumerate()
        .map(|(chunk, &demand)| ChunkDemand {
            key: cloudmedia_cloud::scheduler::ChunkKey { channel: 0, chunk },
            demand,
        })
        .collect();

    let vm_plan = VmProblem {
        demands: &demands,
        clusters: &paper_virtual_clusters(),
        budget_per_hour: 100.0,
    }
    .greedy()
    .expect("within budget");
    println!("\nVM configuration (greedy heuristic):");
    println!(
        "  targets per cluster [Standard, Medium, Advanced]: {:?}",
        vm_plan.vm_targets
    );
    println!("  hourly cost: ${:.2}", vm_plan.integer_hourly_cost);

    let storage_plan = StorageProblem {
        demands: &demands,
        clusters: &paper_nfs_clusters(),
        chunk_bytes: channel.chunk_bytes() as u64,
        budget_per_hour: 1.0,
    }
    .greedy()
    .expect("within budget");
    let on_standard = storage_plan.placement.values().filter(|&&f| f == 0).count();
    println!("\nstorage rental (greedy heuristic):");
    println!(
        "  {} chunks placed ({} on Standard, {} on High), ${:.6}/hour",
        storage_plan.placement.len(),
        on_standard,
        storage_plan.placement.len() - on_standard,
        storage_plan.hourly_cost
    );
}
