//! Client–server vs P2P: run the full simulated system in both modes over
//! two days and compare quality, bandwidth and cost — the paper's headline
//! comparison (Figs. 4, 5, 10).
//!
//! Run with: `cargo run -p cloudmedia-examples --bin p2p_vs_cs --release`

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;

fn main() {
    let hours = 48.0;
    println!("simulating {hours} h at paper scale in both modes...\n");
    println!("mode,mean_quality,mean_reserved_mbps,mean_used_mbps,mean_vm_cost_per_hour,storage_cost_total");
    let mut costs = Vec::new();
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.trace.horizon_seconds = hours * 3600.0;
        let metrics = Simulator::new(cfg)
            .expect("paper config is valid")
            .run()
            .expect("run succeeds");
        println!(
            "{mode:?},{:.3},{:.1},{:.1},{:.2},{:.4}",
            metrics.mean_quality(),
            metrics.mean_reserved_bandwidth() * 8.0 / 1e6,
            metrics.mean_used_bandwidth() * 8.0 / 1e6,
            metrics.mean_vm_hourly_cost(),
            metrics.total_storage_cost,
        );
        costs.push(metrics.mean_vm_hourly_cost());
    }
    println!(
        "\nP2P cuts the VM bill by {:.1}x while keeping quality high; \
         storage cost is negligible either way.",
        costs[0] / costs[1].max(1e-9)
    );
}
