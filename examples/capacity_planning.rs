//! Capacity planning: sweep the VM budget `B_M` and report the
//! feasibility frontier — at what budget does each demand level become
//! servable, and what does the greedy plan cost? Exercises the paper's
//! infeasibility signal ("the VoD provider should increase the budget").
//!
//! Run with: `cargo run -p cloudmedia-examples --bin capacity_planning`

use cloudmedia_cloud::cluster::paper_virtual_clusters;
use cloudmedia_cloud::scheduler::ChunkKey;
use cloudmedia_core::analysis::p2p_capacity_with;
use cloudmedia_core::analysis::{pooled_capacity_demand, DemandPooling, PsiEstimator};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_core::provisioning::storage::ChunkDemand;
use cloudmedia_core::provisioning::vm::VmProblem;
use cloudmedia_core::CoreError;

fn demands_for(rate: f64, p2p: bool) -> Vec<ChunkDemand> {
    let channel = ChannelModel::paper_default(0, rate);
    let per_chunk = if p2p {
        p2p_capacity_with(
            &channel,
            34_000.0,
            PsiEstimator::Independent,
            DemandPooling::ChannelPooled,
        )
        .expect("valid channel")
        .cloud_demand
    } else {
        pooled_capacity_demand(&channel)
            .expect("valid channel")
            .upload_demand
    };
    per_chunk
        .iter()
        .enumerate()
        .map(|(chunk, &demand)| ChunkDemand {
            key: ChunkKey { channel: 0, chunk },
            demand,
        })
        .collect()
}

fn main() {
    let clusters = paper_virtual_clusters();
    println!("mode,arrival_rate,budget,outcome,cost_per_hour,utility");
    for p2p in [false, true] {
        let mode = if p2p { "P2P" } else { "C/S" };
        for &rate in &[0.1, 0.3, 0.5] {
            let demands = demands_for(rate, p2p);
            for &budget in &[5.0, 20.0, 50.0, 100.0] {
                let problem = VmProblem {
                    demands: &demands,
                    clusters: &clusters,
                    budget_per_hour: budget,
                };
                match problem.greedy() {
                    Ok(plan) => println!(
                        "{mode},{rate},{budget},feasible,{:.2},{:.1}",
                        plan.integer_hourly_cost, plan.total_utility
                    ),
                    Err(CoreError::Infeasible {
                        required_budget, ..
                    }) => println!("{mode},{rate},{budget},needs_${required_budget:.2}_per_hour,,"),
                    Err(CoreError::CapacityExceeded {
                        requested,
                        available,
                        ..
                    }) => println!(
                        "{mode},{rate},{budget},exceeds_fleet_{requested:.0}_of_{available:.0},,"
                    ),
                    Err(e) => println!("{mode},{rate},{budget},error:{e},,"),
                }
            }
        }
    }
    println!(
        "\nP2P rows stay feasible at budgets where client-server needs more; \
              the infeasibility signal tells the provider the minimum viable budget."
    );
}
