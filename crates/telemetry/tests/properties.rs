//! Property tests of the registry's two telemetry-specific contracts:
//! log2 bucket boundaries partition `u64` exactly, and merging
//! worker-local accumulators is order-independent (so the fixed merge
//! order the engines use yields the same totals as any interleaving).

use cloudmedia_telemetry::{
    bucket_bounds, bucket_index, Kind, LocalSink, MetricId, Spec, Telemetry, HIST_BUCKETS,
};
use proptest::prelude::*;

const SPECS: &[Spec] = &[
    Spec::new("counter/a", Kind::Counter, "count"),
    Spec::new("hist/v", Kind::Histogram, "count"),
    Spec::new("counter/b", Kind::Counter, "ns"),
];
const A: MetricId = MetricId(0);
const H: MetricId = MetricId(1);
const B: MetricId = MetricId(2);

/// Worker op stream: (slot selector, value).
fn ops_strategy() -> impl Strategy<Value = Vec<Vec<(u8, u64)>>> {
    collection::vec(collection::vec((0u8..3, 0u64..u64::MAX), 0..40), 1..8)
}

fn apply(sink: &mut LocalSink, ops: &[(u8, u64)]) {
    for &(sel, v) in ops {
        match sel {
            0 => sink.add(A, v),
            1 => sink.observe(H, v),
            _ => sink.add(B, v),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in exactly the bucket whose bounds contain it.
    #[test]
    fn bucket_index_matches_bounds(v in 0u64..u64::MAX) {
        let b = bucket_index(v);
        prop_assert!(b < HIST_BUCKETS);
        let (lo, hi) = bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi, "v={v} outside bucket {b} = [{lo}, {hi}]");
    }

    /// Bucket `b ≥ 1` is exactly `[2^(b-1), 2^b)`: both edges map to it,
    /// and the values just outside map to its neighbours.
    #[test]
    fn bucket_edges_are_exact(b in 1usize..64) {
        let lo = 1u64 << (b - 1);
        let hi = (1u64 << b) - 1;
        prop_assert_eq!(bucket_index(lo), b);
        prop_assert_eq!(bucket_index(hi), b);
        prop_assert_eq!(bucket_index(lo - 1), b - 1);
        prop_assert_eq!(bucket_index(hi + 1), b + 1);
    }

    /// Merging worker sinks into the registry produces identical
    /// snapshots in forward and reverse worker order: totals depend
    /// only on the multiset of recorded operations.
    #[test]
    fn merge_order_is_irrelevant(workers in ops_strategy()) {
        let forward = Telemetry::new(SPECS);
        let reverse = Telemetry::new(SPECS);
        let sinks: Vec<LocalSink> = workers
            .iter()
            .map(|ops| {
                let mut sink = forward.local();
                apply(&mut sink, ops);
                sink
            })
            .collect();
        for sink in &sinks {
            forward.merge_local(sink);
        }
        for sink in sinks.iter().rev() {
            reverse.merge_local(sink);
        }
        let (fs, rs) = (forward.snapshot(), reverse.snapshot());
        prop_assert_eq!(fs.value(A), rs.value(A));
        prop_assert_eq!(fs.value(B), rs.value(B));
        prop_assert_eq!(fs.buckets(H), rs.buckets(H));
    }

    /// Hierarchical reduction (`LocalSink::merge`) agrees with flat
    /// registry merges, so shard trees can fold either way.
    #[test]
    fn hierarchical_merge_agrees_with_flat(workers in ops_strategy()) {
        let flat = Telemetry::new(SPECS);
        let tree = Telemetry::new(SPECS);
        let mut combined = tree.local();
        for ops in &workers {
            let mut sink = flat.local();
            apply(&mut sink, ops);
            flat.merge_local(&sink);
            combined.merge(&sink);
        }
        tree.merge_local(&combined);
        let (fs, ts) = (flat.snapshot(), tree.snapshot());
        prop_assert_eq!(fs.value(A), ts.value(A));
        prop_assert_eq!(fs.value(B), ts.value(B));
        prop_assert_eq!(fs.buckets(H), ts.buckets(H));
    }
}
