//! Zero-dependency runtime telemetry plane for the CloudMedia
//! reproduction: a fixed-slot metrics registry (counters, gauges,
//! log2-bucket histograms), scoped stage timers, and a span recorder
//! that exports Chrome trace-event JSON loadable in Perfetto or
//! `chrome://tracing`.
//!
//! # Design rules
//!
//! The simulators carry a determinism contract (telemetry-on runs must
//! be bit-identical to telemetry-off), so everything here is a pure
//! side channel:
//!
//! - Recording never branches simulation control flow: a [`Telemetry`]
//!   handle built with [`Telemetry::disabled`] makes every operation a
//!   single predictable branch and *no* clock read.
//! - Counter and histogram cells are `u64`s combined with wrapping
//!   addition, which is commutative and associative — totals are
//!   independent of thread interleaving. Parallel stages additionally
//!   record into private [`LocalSink`] accumulators that the
//!   coordinator merges in a fixed slot order
//!   ([`Telemetry::merge_local`]), so even the merge sequence is
//!   deterministic.
//! - Wall-clock *values* (stage timers) are inherently run-to-run
//!   noisy; only their existence, never their magnitude, may feed back
//!   into the run. Nothing in this crate is read by simulation code.
//!
//! # Example
//!
//! ```
//! use cloudmedia_telemetry::{Kind, MetricId, Spec, Telemetry};
//!
//! const SPECS: &[Spec] = &[
//!     Spec::new("stage/arrivals", Kind::Counter, "ns"),
//!     Spec::new("rounds", Kind::Counter, "count"),
//! ];
//! const STAGE_ARRIVALS: MetricId = MetricId(0);
//! const ROUNDS: MetricId = MetricId(1);
//!
//! let tel = Telemetry::new(SPECS);
//! {
//!     let _span = tel.span(STAGE_ARRIVALS);
//!     tel.add(ROUNDS, 1);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.value(ROUNDS), 1);
//! assert!(snap.value(STAGE_ARRIVALS) > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Number of buckets in a log2 histogram: bucket 0 counts zero values,
/// bucket `b` (1 ≤ b ≤ 64) counts values in `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 65;

/// What a registry slot measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone sum (wrapping `u64` addition).
    Counter,
    /// Last-written value; use [`Telemetry::gauge_max`] for high-water
    /// marks that may race across threads.
    Gauge,
    /// Log2-bucket histogram of `u64` observations.
    Histogram,
}

/// Static description of one registry slot.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Stable metric name, e.g. `"stage/arrivals"`.
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: Kind,
    /// Unit label carried into the JSON export (`"ns"`, `"count"`, …).
    pub unit: &'static str,
}

impl Spec {
    /// Describes one slot (usable in `const` spec tables).
    pub const fn new(name: &'static str, kind: Kind, unit: &'static str) -> Self {
        Self { name, kind, unit }
    }

    const fn cell_count(&self) -> usize {
        match self.kind {
            Kind::Counter | Kind::Gauge => 1,
            Kind::Histogram => HIST_BUCKETS,
        }
    }
}

/// Index of a metric in the spec slice its registry was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(pub usize);

/// Maps an observation to its log2 bucket: `0` for zero, else
/// `floor(log2(v)) + 1`, so bucket `b ≥ 1` covers `[2^(b-1), 2^b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` covered by histogram bucket `b`.
/// Bucket 0 is `[0, 0]`; bucket 64 is `[2^63, u64::MAX]`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (b - 1), (1 << b) - 1),
    }
}

/// One emitted trace span (begin/end pair) in the recorder buffer.
#[derive(Debug, Clone, Copy)]
struct TraceSpan {
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    tid: u32,
}

/// A named table of `u64` rows attached to the metrics export —
/// used for per-entity series that do not fit fixed slots, like
/// per-shard wall time or per-region round timings.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name, e.g. `"shards"`.
    pub name: &'static str,
    /// Column labels, one per entry of each row.
    pub columns: &'static [&'static str],
    /// Row data, `columns.len()` entries each.
    pub rows: Vec<Vec<u64>>,
}

/// The telemetry handle: a fixed-slot registry plus (optionally) a
/// trace-span recorder. Cheap to share by reference; all recording
/// methods take `&self`.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    trace_enabled: bool,
    specs: &'static [Spec],
    offsets: Vec<u32>,
    cells: Vec<AtomicU64>,
    epoch: Instant,
    spans: Mutex<Vec<TraceSpan>>,
    tables: Mutex<Vec<Table>>,
}

fn layout(specs: &[Spec]) -> (Vec<u32>, usize) {
    let mut offsets = Vec::with_capacity(specs.len());
    let mut total = 0usize;
    for spec in specs {
        offsets.push(total as u32);
        total += spec.cell_count();
    }
    (offsets, total)
}

impl Telemetry {
    /// An enabled registry over `specs`, without trace recording.
    pub fn new(specs: &'static [Spec]) -> Self {
        Self::build(specs, true, false)
    }

    /// An enabled registry that also records trace spans for export
    /// via [`Telemetry::trace_json`].
    pub fn with_trace(specs: &'static [Spec]) -> Self {
        Self::build(specs, true, true)
    }

    /// The no-op sink: every recording method returns after one
    /// branch, and no clocks are read. This is what simulation entry
    /// points pass when the caller did not ask for telemetry.
    pub fn disabled() -> Self {
        Self::build(&[], false, false)
    }

    fn build(specs: &'static [Spec], enabled: bool, trace_enabled: bool) -> Self {
        let (offsets, total) = layout(specs);
        let mut cells = Vec::with_capacity(total);
        cells.resize_with(total, AtomicU64::default);
        Self {
            enabled,
            trace_enabled,
            specs,
            offsets,
            cells,
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            tables: Mutex::new(Vec::new()),
        }
    }

    /// Whether recording is live (false for [`Telemetry::disabled`]).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether spans are being buffered for trace export.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    #[inline]
    fn cell(&self, id: MetricId) -> &AtomicU64 {
        &self.cells[self.offsets[id.0] as usize]
    }

    /// Adds `v` to a counter (wrapping).
    #[inline]
    pub fn add(&self, id: MetricId, v: u64) {
        if !self.enabled {
            return;
        }
        self.cell(id).fetch_add(v, Ordering::Relaxed);
    }

    /// Stores `v` into a gauge (last writer wins).
    #[inline]
    pub fn gauge_set(&self, id: MetricId, v: u64) {
        if !self.enabled {
            return;
        }
        self.cell(id).store(v, Ordering::Relaxed);
    }

    /// Raises a gauge to `v` if `v` is larger (high-water mark; safe
    /// to race from many threads).
    #[inline]
    pub fn gauge_max(&self, id: MetricId, v: u64) {
        if !self.enabled {
            return;
        }
        self.cell(id).fetch_max(v, Ordering::Relaxed);
    }

    /// Records `v` into a histogram's log2 bucket.
    #[inline]
    pub fn observe(&self, id: MetricId, v: u64) {
        if !self.enabled {
            return;
        }
        let base = self.offsets[id.0] as usize;
        self.cells[base + bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Opens a scoped timer: on drop, the elapsed nanoseconds are
    /// added to counter `id`, and (when tracing) a begin/end span pair
    /// is buffered under the metric's name.
    #[inline]
    pub fn span(&self, id: MetricId) -> Span<'_> {
        Span {
            tel: self,
            id,
            start: self.enabled.then(Instant::now),
        }
    }

    /// A lap clock for timing consecutive stages with a single clock
    /// read per boundary — half the cost of nested spans in hot loops.
    #[inline]
    pub fn stage_clock(&self) -> StageClock<'_> {
        self.stage_clock_sampled(1)
    }

    /// A lap clock that times only every `period`-th round (see
    /// [`StageClock::begin_round`]) and scales each recorded lap by
    /// `period`, making the stage counters unbiased estimates of the
    /// true totals at `1/period` of the clock-read cost. With
    /// `period == 1` every lap records (and [`StageClock::begin_round`]
    /// is optional).
    #[inline]
    pub fn stage_clock_sampled(&self, period: u64) -> StageClock<'_> {
        let period = period.max(1);
        StageClock {
            tel: self,
            last: self.enabled.then(Instant::now),
            period,
            rounds: 0,
            active: self.enabled,
        }
    }

    /// A private accumulator with the same slot layout, for parallel
    /// workers; merge with [`Telemetry::merge_local`]. For a disabled
    /// handle the sink is inert.
    pub fn local(&self) -> LocalSink {
        LocalSink {
            live: self.enabled,
            offsets: self.offsets.clone(),
            specs: self.specs,
            cells: vec![0; if self.enabled { self.cells.len() } else { 0 }],
        }
    }

    /// Folds a [`LocalSink`] into the registry, cell by cell in slot
    /// order. Call from the coordinator in a fixed worker order so the
    /// merge sequence itself is deterministic.
    pub fn merge_local(&self, local: &LocalSink) {
        if !self.enabled || !local.live {
            return;
        }
        for (cell, &v) in self.cells.iter().zip(&local.cells) {
            if v != 0 {
                cell.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Attaches a named row table to the export (per-shard, per-region
    /// series). Push in a fixed order from the coordinator.
    pub fn push_table(
        &self,
        name: &'static str,
        columns: &'static [&'static str],
        rows: Vec<Vec<u64>>,
    ) {
        if !self.enabled {
            return;
        }
        self.lock_tables().push(Table {
            name,
            columns,
            rows,
        });
    }

    /// Nanoseconds since this handle was constructed (trace timebase).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn record_span(&self, name: &'static str, start_ns: u64, end_ns: u64) {
        let tid = current_tid();
        self.lock_spans().push(TraceSpan {
            name,
            start_ns,
            end_ns,
            tid,
        });
    }

    fn lock_spans(&self) -> std::sync::MutexGuard<'_, Vec<TraceSpan>> {
        self.spans.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_tables(&self) -> std::sync::MutexGuard<'_, Vec<Table>> {
        self.tables.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A point-in-time copy of every slot plus the attached tables.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            specs: self.specs,
            offsets: self.offsets.clone(),
            cells: self
                .cells
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            tables: self.lock_tables().clone(),
        }
    }

    /// The buffered spans as Chrome trace-event JSON (`ph: "B"`/`"E"`
    /// pairs, microsecond timestamps). Load the file in Perfetto or
    /// `chrome://tracing`.
    pub fn trace_json(&self) -> String {
        let spans = self.lock_spans();
        let mut out = String::with_capacity(64 + spans.len() * 128);
        out.push_str("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_trace_event(&mut out, s.name, 'B', s.start_ns, s.tid);
            out.push(',');
            push_trace_event(&mut out, s.name, 'E', s.end_ns, s.tid);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

fn push_trace_event(out: &mut String, name: &str, ph: char, ts_ns: u64, tid: u32) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"cloudmedia\",\"ph\":\"{ph}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{tid}}}",
        escape(name),
        ts_ns / 1_000,
        ts_ns % 1_000
    );
}

static TID_SEED: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_TID: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn current_tid() -> u32 {
    THREAD_TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let fresh = TID_SEED.fetch_add(1, Ordering::Relaxed) + 1;
        t.set(fresh);
        fresh
    })
}

/// RAII stage timer from [`Telemetry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    tel: &'a Telemetry,
    id: MetricId,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let ns = u64::try_from(end.duration_since(start).as_nanos()).unwrap_or(u64::MAX);
        self.tel.cell(self.id).fetch_add(ns, Ordering::Relaxed);
        if self.tel.trace_enabled {
            let end_ns = self.tel.elapsed_ns();
            self.tel.record_span(
                self.tel.specs[self.id.0].name,
                end_ns.saturating_sub(ns),
                end_ns,
            );
        }
    }
}

/// Lap clock from [`Telemetry::stage_clock`] /
/// [`Telemetry::stage_clock_sampled`]: each [`StageClock::lap`]
/// attributes the time since the previous boundary to one stage
/// counter with a single clock read. Laps feed counters only — they
/// never emit trace events, so a per-round lap in a million-round loop
/// costs one clock read and one relaxed add, and trace files stay
/// bounded by the explicit [`Telemetry::span`] call sites. A sampled
/// clock cuts even the clock reads to `1/period` of the rounds and
/// scales each recorded lap up by `period`, keeping the counters
/// unbiased estimates of the true stage totals.
#[derive(Debug)]
pub struct StageClock<'a> {
    tel: &'a Telemetry,
    last: Option<Instant>,
    period: u64,
    rounds: u64,
    active: bool,
}

impl StageClock<'_> {
    /// Marks a round boundary for a sampled clock (see
    /// [`Telemetry::stage_clock_sampled`]): every `period`-th round is
    /// timed, the rest cost one branch. Calling this on a `period == 1`
    /// clock is a no-op beyond the branch.
    #[inline]
    pub fn begin_round(&mut self) {
        if self.last.is_none() {
            return;
        }
        let timed = self.rounds.is_multiple_of(self.period);
        self.rounds = self.rounds.wrapping_add(1);
        if self.period > 1 {
            self.active = timed;
            if timed {
                self.last = Some(Instant::now());
            }
        }
    }

    /// Ends the current stage, crediting its duration (scaled by the
    /// sampling period) to `id`, and starts the next one. Unrecorded on
    /// rounds the sampler skipped.
    #[inline]
    pub fn lap(&mut self, id: MetricId) {
        if !self.active {
            return;
        }
        let Some(last) = self.last else { return };
        let now = Instant::now();
        let ns = u64::try_from(now.duration_since(last).as_nanos()).unwrap_or(u64::MAX);
        self.tel
            .cell(id)
            .fetch_add(ns.saturating_mul(self.period), Ordering::Relaxed);
        self.last = Some(now);
    }

    /// Restarts the clock without attributing the elapsed interval to
    /// any stage (for gaps that should not be counted).
    #[inline]
    pub fn skip(&mut self) {
        if self.active && self.last.is_some() {
            self.last = Some(Instant::now());
        }
    }
}

/// A worker-private accumulator matching a registry's slot layout.
/// All operations are plain (non-atomic) `u64` arithmetic.
#[derive(Debug, Clone)]
pub struct LocalSink {
    live: bool,
    offsets: Vec<u32>,
    specs: &'static [Spec],
    cells: Vec<u64>,
}

impl LocalSink {
    /// Adds `v` to a counter slot.
    #[inline]
    pub fn add(&mut self, id: MetricId, v: u64) {
        if !self.live {
            return;
        }
        self.cells[self.offsets[id.0] as usize] =
            self.cells[self.offsets[id.0] as usize].wrapping_add(v);
    }

    /// Records `v` into a histogram slot's log2 bucket.
    #[inline]
    pub fn observe(&mut self, id: MetricId, v: u64) {
        if !self.live {
            return;
        }
        let base = self.offsets[id.0] as usize;
        self.cells[base + bucket_index(v)] += 1;
    }

    /// Folds another sink of the same layout into this one (slot
    /// order), so worker results can be reduced hierarchically.
    pub fn merge(&mut self, other: &LocalSink) {
        if !self.live || !other.live {
            return;
        }
        for (a, &b) in self.cells.iter_mut().zip(&other.cells) {
            *a = a.wrapping_add(b);
        }
    }

    /// The specs this sink was laid out from.
    pub fn specs(&self) -> &'static [Spec] {
        self.specs
    }
}

/// A point-in-time view of a registry, decoupled from the atomics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    specs: &'static [Spec],
    offsets: Vec<u32>,
    cells: Vec<u64>,
    tables: Vec<Table>,
}

impl Snapshot {
    /// The value of a counter or gauge slot.
    pub fn value(&self, id: MetricId) -> u64 {
        self.cells[self.offsets[id.0] as usize]
    }

    /// The 65 bucket counts of a histogram slot.
    pub fn buckets(&self, id: MetricId) -> &[u64] {
        let base = self.offsets[id.0] as usize;
        &self.cells[base..base + HIST_BUCKETS]
    }

    /// The specs this snapshot was taken over.
    pub fn specs(&self) -> &'static [Spec] {
        self.specs
    }

    /// The attached row tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Counter/gauge slots whose name starts with `prefix`, sorted by
    /// descending value — the "sorted stage-time table" shape.
    pub fn sorted_by_value(&self, prefix: &str) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = self
            .specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind != Kind::Histogram && s.name.starts_with(prefix))
            .map(|(i, s)| (s.name, self.value(MetricId(i))))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// The registry as a JSON document: a `metrics` array (histograms
    /// as sparse `[bucket, count]` pairs) plus the attached `tables`.
    pub fn metrics_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256 + self.specs.len() * 96);
        out.push_str("{\n  \"schema\": \"cloudmedia-telemetry/v1\",\n  \"metrics\": [");
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\",",
                escape(spec.name),
                match spec.kind {
                    Kind::Counter => "counter",
                    Kind::Gauge => "gauge",
                    Kind::Histogram => "histogram",
                },
                escape(spec.unit)
            );
            match spec.kind {
                Kind::Counter | Kind::Gauge => {
                    let _ = write!(out, "\"value\":{}}}", self.value(MetricId(i)));
                }
                Kind::Histogram => {
                    out.push_str("\"buckets\":[");
                    let mut first = true;
                    for (b, &count) in self.buckets(MetricId(i)).iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(out, "[{b},{count}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  ],\n  \"tables\": [");
        for (t, table) in self.tables.iter().enumerate() {
            if t > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\":\"{}\",\"columns\":[",
                escape(table.name)
            );
            for (c, col) in table.columns.iter().enumerate() {
                if c > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(col));
            }
            out.push_str("],\"rows\":[");
            for (r, row) in table.rows.iter().enumerate() {
                if r > 0 {
                    out.push(',');
                }
                out.push('[');
                for (v, val) in row.iter().enumerate() {
                    if v > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{val}");
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// A process-global relaxed counter for instrumenting deep call sites
/// (solver kernels, broker submissions) without threading a handle
/// through their APIs. Readers take before/after deltas around a run.
#[derive(Debug, Default)]
pub struct GlobalCounter(AtomicU64);

impl GlobalCounter {
    /// A zeroed counter, usable in `static` position.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

fn escape(s: &str) -> String {
    if s.chars().all(|c| c != '"' && c != '\\' && c >= ' ') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c < ' ' => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECS: &[Spec] = &[
        Spec::new("stage/a", Kind::Counter, "ns"),
        Spec::new("gauge/peak", Kind::Gauge, "count"),
        Spec::new("hist/values", Kind::Histogram, "count"),
        Spec::new("stage/b", Kind::Counter, "ns"),
    ];
    const A: MetricId = MetricId(0);
    const PEAK: MetricId = MetricId(1);
    const HIST: MetricId = MetricId(2);
    const B: MetricId = MetricId(3);

    #[test]
    fn disabled_sink_records_nothing() {
        let tel = Telemetry::disabled();
        tel.add(A, 5);
        tel.gauge_max(PEAK, 9);
        tel.observe(HIST, 7);
        {
            let _s = tel.span(A);
        }
        let mut clk = tel.stage_clock();
        clk.lap(A);
        assert!(!tel.enabled());
        assert!(tel.trace_json().contains("\"traceEvents\":[]"));
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let tel = Telemetry::new(SPECS);
        tel.add(A, 5);
        tel.add(A, 7);
        tel.gauge_set(PEAK, 3);
        tel.gauge_max(PEAK, 10);
        tel.gauge_max(PEAK, 4);
        tel.observe(HIST, 0);
        tel.observe(HIST, 1);
        tel.observe(HIST, 1024);
        let snap = tel.snapshot();
        assert_eq!(snap.value(A), 12);
        assert_eq!(snap.value(PEAK), 10);
        assert_eq!(snap.buckets(HIST)[0], 1);
        assert_eq!(snap.buckets(HIST)[1], 1);
        assert_eq!(snap.buckets(HIST)[11], 1);
        let json = snap.metrics_json();
        assert!(json.contains("\"name\":\"stage/a\""));
        assert!(json.contains("\"value\":12"));
        assert!(json.contains("[11,1]"));
    }

    #[test]
    fn local_sink_merges_in_slot_order() {
        let tel = Telemetry::new(SPECS);
        let mut l1 = tel.local();
        let mut l2 = tel.local();
        l1.add(A, 3);
        l1.observe(HIST, 8);
        l2.add(A, 4);
        l2.add(B, 1);
        tel.merge_local(&l1);
        tel.merge_local(&l2);
        let snap = tel.snapshot();
        assert_eq!(snap.value(A), 7);
        assert_eq!(snap.value(B), 1);
        assert_eq!(snap.buckets(HIST)[4], 1);
    }

    #[test]
    fn spans_feed_counters_and_trace_pairs_match() {
        let tel = Telemetry::with_trace(SPECS);
        {
            let _outer = tel.span(A);
            let _inner = tel.span(B);
        }
        let snap = tel.snapshot();
        assert!(snap.value(A) > 0);
        assert!(snap.value(B) > 0);
        let trace = tel.trace_json();
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 2);
        assert_eq!(begins, ends);
    }

    #[test]
    fn stage_clock_attributes_laps() {
        let tel = Telemetry::new(SPECS);
        let mut clk = tel.stage_clock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        clk.lap(A);
        clk.skip();
        clk.lap(B);
        let snap = tel.snapshot();
        assert!(snap.value(A) >= 1_000_000);
    }

    #[test]
    fn sampled_stage_clock_times_one_round_in_period() {
        let tel = Telemetry::new(SPECS);
        let mut clk = tel.stage_clock_sampled(4);
        for round in 0..8 {
            clk.begin_round();
            if round % 4 == 0 {
                // Only sampled rounds should pay for (and record) laps;
                // make the timed rounds measurably long.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            clk.lap(A);
        }
        let snap = tel.snapshot();
        // Two sampled rounds of >= 1 ms each, scaled by the period of 4.
        assert!(snap.value(A) >= 2 * 4_000_000, "got {}", snap.value(A));

        // A disabled registry's sampled clock records nothing.
        let off = Telemetry::disabled();
        let mut clk = off.stage_clock_sampled(4);
        clk.begin_round();
        clk.lap(A);
    }

    #[test]
    fn sorted_table_orders_by_value() {
        let tel = Telemetry::new(SPECS);
        tel.add(A, 10);
        tel.add(B, 90);
        let rows = tel.snapshot().sorted_by_value("stage/");
        assert_eq!(rows[0], ("stage/b", 90));
        assert_eq!(rows[1], ("stage/a", 10));
    }

    #[test]
    fn tables_export_rows() {
        let tel = Telemetry::new(SPECS);
        tel.push_table(
            "shards",
            &["channel", "wall_ns"],
            vec![vec![0, 17], vec![1, 4]],
        );
        let json = tel.snapshot().metrics_json();
        assert!(json.contains("\"name\":\"shards\""));
        assert!(json.contains("[0,17]"));
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
        for b in 0..HIST_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(b);
            let (lo_next, _) = bucket_bounds(b + 1);
            assert_eq!(hi.wrapping_add(1), lo_next, "bucket {b} not contiguous");
        }
    }

    #[test]
    fn global_counter_accumulates() {
        static C: GlobalCounter = GlobalCounter::new();
        let before = C.get();
        C.inc();
        C.add(2);
        assert_eq!(C.get() - before, 3);
    }
}
