//! The simulator's metric catalog: the fixed-slot [`Spec`] table every
//! engine records into, plus helpers for wiring process-wide counters
//! and the fault plane into a registry.
//!
//! # Determinism contract
//!
//! Telemetry is a pure side channel. Nothing in this module (or in any
//! engine's recording code) feeds a metric value back into simulation
//! arithmetic or control flow, so a telemetry-enabled run produces
//! bit-identical [`Metrics`](crate::metrics::Metrics) to a disabled
//! run — pinned by `tests/telemetry_determinism.rs`. Parallel engines
//! record into worker-local [`cloudmedia_telemetry::LocalSink`]s (or pre-assigned slots) and
//! the coordinator merges them in fixed shard/region order; counter
//! totals are order-free integer sums either way.

use cloudmedia_telemetry::{Kind, MetricId, Spec, Telemetry};

use crate::faults::FaultStats;

/// Round-sampling period for the `stage/*` lap clocks: one round in
/// this many is timed and the laps are scaled by the period. 17 keeps
/// the per-round telemetry cost to a fraction of a clock read while
/// still sampling thousands of rounds on any multi-hour horizon.
///
/// The period must stay co-prime with the round counts of the
/// simulation's own periodic structure — above all the provisioning
/// interval (360 rounds at the paper's 10 s rounds / 1 h intervals).
/// A power-of-two period aliases against it: with period 16, every
/// other provisioning boundary lands on a sampled round and the rare
/// expensive stage is scaled ×16 from a biased sample (~8×
/// overestimate). With a period co-prime to the interval the sampled
/// phase walks through every residue, so periodic spikes are sampled
/// at their true 1-in-`STAGE_TIME_SAMPLE` rate.
pub const STAGE_TIME_SAMPLE: u64 = 17;

/// Shorthand for declaring the catalog below.
const fn c(name: &'static str, unit: &'static str) -> Spec {
    Spec::new(name, Kind::Counter, unit)
}
const fn g(name: &'static str, unit: &'static str) -> Spec {
    Spec::new(name, Kind::Gauge, unit)
}
const fn h(name: &'static str, unit: &'static str) -> Spec {
    Spec::new(name, Kind::Histogram, unit)
}

/// The simulator's metric catalog. Slot order is the export order; the
/// `MetricId` constants below index into it and must stay in sync.
///
/// Naming scheme: `stage/*` are the top-level round-loop stages (their
/// sum estimates the loop's wall time; `cloudmedia profile` tables
/// exactly this prefix), `prov/*` are provisioning sub-stages (subsets
/// of `stage/provisioning`, excluded from the profile table so nothing
/// double-counts), `solver/*`, `broker/*` and `arrivals/*` are deltas
/// of process-wide counters, `des/*` is event-kernel health, `faults/*`
/// mirrors [`FaultStats`], and `hist/*` are log2 histograms.
///
/// The round-loop `stage/*` counters are sampled estimates: the round
/// engines time one round in [`STAGE_TIME_SAMPLE`] and scale by the
/// period (see [`Telemetry::stage_clock_sampled`]), so a clock read per
/// stage boundary is paid on ~6 % of rounds instead of all of them.
/// The DES engine times its event loop as one unsampled stage.
pub const SPECS: &[Spec] = &[
    c("stage/provisioning", "ns"),
    c("stage/arrivals", "ns"),
    c("stage/allocation", "ns"),
    c("stage/advance", "ns"),
    c("stage/events", "ns"),
    c("stage/cloud", "ns"),
    c("stage/sampling", "ns"),
    c("stage/reduce", "ns"),
    c("prov/tracker_summarize", "ns"),
    c("prov/controller_plan", "ns"),
    c("prov/broker_submit", "ns"),
    c("rounds", "count"),
    c("completed_chunks", "count"),
    c("woken_peers", "count"),
    c("arrivals_admitted", "count"),
    g("peers_peak", "count"),
    c("arrivals/generated", "count"),
    c("broker/submits", "count"),
    c("solver/direct_solves", "count"),
    c("solver/lu_factorizations", "count"),
    c("solver/lu_solves", "count"),
    c("solver/sm_updates", "count"),
    c("solver/sm_fallbacks", "count"),
    c("des/events_delivered", "count"),
    g("des/peak_pending", "count"),
    c("des/cancelled", "count"),
    c("des/recycled_slots", "count"),
    g("des/events_per_sec", "events/s"),
    c("faults/vms_killed", "count"),
    c("faults/vms_recovered", "count"),
    c("faults/shed_arrivals", "count"),
    c("faults/retry_attempts", "count"),
    c("faults/degraded_submissions", "count"),
    c("faults/fallback_intervals", "count"),
    c("faults/emergency_replans", "count"),
    c("faults/retry_backoff_us", "us"),
    h("hist/shard_wall_ns", "ns"),
    h("hist/region_wall_ns", "ns"),
    c("run", "ns"),
    c("prov/interval", "ns"),
    c("stage/shard_step", "ns"),
    c("stage/region_step", "ns"),
    h("hist/lane_wall_ns", "ns"),
    c("quiesce/rounds_skipped", "count"),
    c("quiesce/dirty_channels", "count"),
    h("hist/catchup_k", "count"),
];

/// `stage/provisioning` — fault boundaries + the provisioning block.
pub const STAGE_PROVISIONING: MetricId = MetricId(0);
/// `stage/arrivals` — arrival ingestion.
pub const STAGE_ARRIVALS: MetricId = MetricId(1);
/// `stage/allocation` — the engine's allocation stage.
pub const STAGE_ALLOCATION: MetricId = MetricId(2);
/// `stage/advance` — download advancement.
pub const STAGE_ADVANCE: MetricId = MetricId(3);
/// `stage/events` — completion/wake-up event handling.
pub const STAGE_EVENTS: MetricId = MetricId(4);
/// `stage/cloud` — cloud lifecycle + billing ticks.
pub const STAGE_CLOUD: MetricId = MetricId(5);
/// `stage/sampling` — metric sampling.
pub const STAGE_SAMPLING: MetricId = MetricId(6);
/// `stage/reduce` — cross-shard / cross-region merge work.
pub const STAGE_REDUCE: MetricId = MetricId(7);
/// `prov/tracker_summarize` — interval statistics drain.
pub const PROV_TRACKER: MetricId = MetricId(8);
/// `prov/controller_plan` — the provisioning optimizer.
pub const PROV_PLAN: MetricId = MetricId(9);
/// `prov/broker_submit` — broker submission (with retries).
pub const PROV_SUBMIT: MetricId = MetricId(10);
/// `rounds` — simulation rounds executed.
pub const ROUNDS: MetricId = MetricId(11);
/// `completed_chunks` — chunk downloads completed.
pub const COMPLETED_CHUNKS: MetricId = MetricId(12);
/// `woken_peers` — playback-gate wake-ups handled.
pub const WOKEN_PEERS: MetricId = MetricId(13);
/// `arrivals_admitted` — arrivals admitted into the system.
pub const ARRIVALS_ADMITTED: MetricId = MetricId(14);
/// `peers_peak` — high-water mark of the connected population.
pub const PEERS_PEAK: MetricId = MetricId(15);
/// `arrivals/generated` — trace arrivals drawn (process-wide delta).
pub const ARRIVALS_GENERATED: MetricId = MetricId(16);
/// `broker/submits` — broker requests submitted (process-wide delta).
pub const BROKER_SUBMITS: MetricId = MetricId(17);
/// `solver/direct_solves` — dense Gaussian solves.
pub const SOLVER_DIRECT: MetricId = MetricId(18);
/// `solver/lu_factorizations` — LU factorizations.
pub const SOLVER_LU_FACTOR: MetricId = MetricId(19);
/// `solver/lu_solves` — back-substitutions against a cached LU.
pub const SOLVER_LU_SOLVE: MetricId = MetricId(20);
/// `solver/sm_updates` — Sherman–Morrison rank-one row updates.
pub const SOLVER_SM_UPDATE: MetricId = MetricId(21);
/// `solver/sm_fallbacks` — rows that fell back to a direct solve.
pub const SOLVER_SM_FALLBACK: MetricId = MetricId(22);
/// `des/events_delivered` — events the DES kernel delivered.
pub const DES_EVENTS: MetricId = MetricId(23);
/// `des/peak_pending` — pending-event high-water mark.
pub const DES_PEAK_PENDING: MetricId = MetricId(24);
/// `des/cancelled` — cancellations that hit a live event.
pub const DES_CANCELLED: MetricId = MetricId(25);
/// `des/recycled_slots` — timing-wheel slot reuses.
pub const DES_RECYCLED: MetricId = MetricId(26);
/// `des/events_per_sec` — delivered events per wall second.
pub const DES_EVENTS_PER_SEC: MetricId = MetricId(27);
/// `faults/vms_killed`.
pub const FAULT_VMS_KILLED: MetricId = MetricId(28);
/// `faults/vms_recovered`.
pub const FAULT_VMS_RECOVERED: MetricId = MetricId(29);
/// `faults/shed_arrivals`.
pub const FAULT_SHED_ARRIVALS: MetricId = MetricId(30);
/// `faults/retry_attempts`.
pub const FAULT_RETRY_ATTEMPTS: MetricId = MetricId(31);
/// `faults/degraded_submissions`.
pub const FAULT_DEGRADED: MetricId = MetricId(32);
/// `faults/fallback_intervals`.
pub const FAULT_FALLBACKS: MetricId = MetricId(33);
/// `faults/emergency_replans`.
pub const FAULT_REPLANS: MetricId = MetricId(34);
/// `faults/retry_backoff_us` — simulated backoff, microseconds.
pub const FAULT_BACKOFF_US: MetricId = MetricId(35);
/// `hist/shard_wall_ns` — sampled per-shard round wall times.
pub const HIST_SHARD_WALL: MetricId = MetricId(36);
/// `hist/region_wall_ns` — per-region round wall times.
pub const HIST_REGION_WALL: MetricId = MetricId(37);
/// `run` — whole-run wall time (also the trace's top-level span).
pub const RUN_WALL: MetricId = MetricId(38);
/// `prov/interval` — one whole provisioning boundary (trace span; the
/// stage counter equivalent is `stage/provisioning`).
pub const PROV_INTERVAL: MetricId = MetricId(39);
/// `stage/shard_step` — the sharded engine's whole-round fan-out
/// (arrivals + allocation + advance + events happen inside the shards,
/// so the sharded profile reports them as one stage).
pub const STAGE_SHARD_STEP: MetricId = MetricId(40);
/// `stage/region_step` — the federated simulator's per-region round
/// fan-out (each region's arrivals + allocation + advance + events).
pub const STAGE_REGION_STEP: MetricId = MetricId(41);
/// `hist/lane_wall_ns` — sampled per-sub-lane wall times from the
/// giant-channel lane fan-out (one observation per scratch lane on
/// sampled rounds; see `LANE_WALL_SAMPLE` in the simulator).
pub const HIST_LANE_WALL: MetricId = MetricId(42);
/// `quiesce/rounds_skipped` — shard-rounds the quiescent-epoch engine
/// skipped outright (summed over channels; the engagement proof the
/// invariance proptest checks).
pub const QUIESCE_ROUNDS_SKIPPED: MetricId = MetricId(43);
/// `quiesce/dirty_channels` — quiescent epochs exited because an input
/// was dirtied (a served ratio left 1.0, or the round step left the
/// quantization grid), summed over channels.
pub const QUIESCE_DIRTY_CHANNELS: MetricId = MetricId(44);
/// `hist/catchup_k` — rounds each virtual download was fast-forwarded
/// when its epoch materialized.
pub const HIST_CATCHUP_K: MetricId = MetricId(45);

/// A live registry over the simulator catalog; with `trace` the
/// explicit span call sites also buffer Chrome trace events.
pub fn new_registry(trace: bool) -> Telemetry {
    if trace {
        Telemetry::with_trace(SPECS)
    } else {
        Telemetry::new(SPECS)
    }
}

/// Copies the fault plane's counters into the registry (`faults/*`).
/// Call once per run, after the fault driver has finished.
pub fn record_fault_stats(tel: &Telemetry, stats: &FaultStats) {
    if !tel.enabled() {
        return;
    }
    tel.add(FAULT_VMS_KILLED, stats.vms_killed);
    tel.add(FAULT_VMS_RECOVERED, stats.vms_recovered);
    tel.add(FAULT_SHED_ARRIVALS, stats.shed_arrivals);
    tel.add(FAULT_RETRY_ATTEMPTS, stats.retry_attempts);
    tel.add(FAULT_DEGRADED, stats.degraded_submissions);
    tel.add(FAULT_FALLBACKS, stats.fallback_intervals);
    tel.add(FAULT_REPLANS, stats.emergency_replans);
    tel.add(
        FAULT_BACKOFF_US,
        (stats.retry_backoff_seconds * 1e6).round() as u64,
    );
}

/// A capture of the process-wide instrumentation counters that live in
/// the library crates (solver kernels, broker, trace generator), taken
/// before a run so the after-run delta can be attributed to it.
///
/// The statics are process-wide: with a single coordinator the deltas
/// are exact per-run; if other simulations run concurrently in the same
/// process (federated regions stepping in parallel each drive their own
/// broker), a run's delta includes their activity too, so treat the
/// values as whole-process totals in that case.
#[derive(Debug, Clone, Copy)]
pub struct GlobalCounters {
    arrivals_generated: u64,
    broker_submits: u64,
    direct_solves: u64,
    lu_factorizations: u64,
    lu_solves: u64,
    sm_updates: u64,
    sm_fallbacks: u64,
}

impl GlobalCounters {
    /// Reads the current totals.
    pub fn capture() -> Self {
        Self {
            arrivals_generated: cloudmedia_workload::trace::ARRIVALS_GENERATED.get(),
            broker_submits: cloudmedia_cloud::broker::BROKER_SUBMITS.get(),
            direct_solves: cloudmedia_queueing::linalg::DIRECT_SOLVES.get(),
            lu_factorizations: cloudmedia_queueing::linalg::LU_FACTORIZATIONS.get(),
            lu_solves: cloudmedia_queueing::linalg::LU_SOLVES.get(),
            sm_updates: cloudmedia_core::analysis::p2p::SHERMAN_MORRISON_UPDATES.get(),
            sm_fallbacks: cloudmedia_core::analysis::p2p::SHERMAN_MORRISON_FALLBACKS.get(),
        }
    }

    /// Records `now - self` into the registry's delta counters.
    pub fn record_delta(&self, tel: &Telemetry) {
        if !tel.enabled() {
            return;
        }
        let now = Self::capture();
        let d = |a: u64, b: u64| a.wrapping_sub(b);
        tel.add(
            ARRIVALS_GENERATED,
            d(now.arrivals_generated, self.arrivals_generated),
        );
        tel.add(BROKER_SUBMITS, d(now.broker_submits, self.broker_submits));
        tel.add(SOLVER_DIRECT, d(now.direct_solves, self.direct_solves));
        tel.add(
            SOLVER_LU_FACTOR,
            d(now.lu_factorizations, self.lu_factorizations),
        );
        tel.add(SOLVER_LU_SOLVE, d(now.lu_solves, self.lu_solves));
        tel.add(SOLVER_SM_UPDATE, d(now.sm_updates, self.sm_updates));
        tel.add(SOLVER_SM_FALLBACK, d(now.sm_fallbacks, self.sm_fallbacks));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `MetricId` constants must agree with their slot in `SPECS`.
    #[test]
    fn ids_match_catalog_order() {
        let pairs: &[(MetricId, &str)] = &[
            (STAGE_PROVISIONING, "stage/provisioning"),
            (STAGE_REDUCE, "stage/reduce"),
            (PROV_SUBMIT, "prov/broker_submit"),
            (ROUNDS, "rounds"),
            (PEERS_PEAK, "peers_peak"),
            (ARRIVALS_GENERATED, "arrivals/generated"),
            (SOLVER_SM_FALLBACK, "solver/sm_fallbacks"),
            (DES_EVENTS_PER_SEC, "des/events_per_sec"),
            (FAULT_REPLANS, "faults/emergency_replans"),
            (HIST_SHARD_WALL, "hist/shard_wall_ns"),
            (HIST_REGION_WALL, "hist/region_wall_ns"),
            (RUN_WALL, "run"),
            (PROV_INTERVAL, "prov/interval"),
            (STAGE_SHARD_STEP, "stage/shard_step"),
            (STAGE_REGION_STEP, "stage/region_step"),
            (HIST_LANE_WALL, "hist/lane_wall_ns"),
            (QUIESCE_ROUNDS_SKIPPED, "quiesce/rounds_skipped"),
            (QUIESCE_DIRTY_CHANNELS, "quiesce/dirty_channels"),
            (HIST_CATCHUP_K, "hist/catchup_k"),
        ];
        for &(id, name) in pairs {
            assert_eq!(SPECS[id.0].name, name);
        }
        assert_eq!(SPECS.len(), 46);
    }

    #[test]
    fn fault_stats_map_onto_counters() {
        let tel = new_registry(false);
        let stats = FaultStats {
            vms_killed: 3,
            shed_arrivals: 7,
            emergency_replans: 2,
            ..FaultStats::default()
        };
        record_fault_stats(&tel, &stats);
        let snap = tel.snapshot();
        assert_eq!(snap.value(FAULT_VMS_KILLED), 3);
        assert_eq!(snap.value(FAULT_SHED_ARRIVALS), 7);
        assert_eq!(snap.value(FAULT_REPLANS), 2);
        assert_eq!(snap.value(FAULT_RETRY_ATTEMPTS), 0);
    }

    #[test]
    fn global_counter_deltas_are_attributed() {
        let before = GlobalCounters::capture();
        cloudmedia_cloud::broker::BROKER_SUBMITS.inc();
        cloudmedia_queueing::linalg::LU_SOLVES.add(4);
        let tel = new_registry(false);
        before.record_delta(&tel);
        let snap = tel.snapshot();
        // Other tests in the process may also bump these; deltas are
        // at least what we added here.
        assert!(snap.value(BROKER_SUBMITS) >= 1);
        assert!(snap.value(SOLVER_LU_SOLVE) >= 4);
    }
}
