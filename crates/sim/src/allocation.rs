//! Per-round fluid bandwidth allocation.
//!
//! Downloads progress in fixed rounds. Cloud bandwidth is a shared pool
//! split max–min fairly across chunk demands; in P2P mode each channel
//! first serves itself from its peers' upload capacity using the paper's
//! rarest-first discipline (requests for the rarest chunk are served
//! first), and only the deficit falls through to the cloud.
//!
//! Both kernels come in two forms: an `_into` variant that writes into
//! caller-owned output and sort-scratch buffers (the simulator's hot path
//! — zero heap allocation per call), and an allocating wrapper keeping
//! the original signature for tests and one-off callers. The in-place
//! kernels are the *only* implementation; the wrappers delegate, so every
//! caller computes bit-identical results.

/// Max–min fair allocation of `pool` across entries with the given
/// `demands`, written into `out`: everyone gets at most their demand, no
/// entry can gain without a larger entry losing.
///
/// `order` is caller-owned sort scratch, reused across calls. The kernel
/// runs progressive filling over only the *positive* demands (zero
/// entries receive zero without participating in the sort) and exits as
/// soon as the pool drains; when total demand fits in the pool the sort
/// is skipped entirely. Demands must be non-negative and finite.
///
/// # Panics
///
/// Panics if `out.len() != demands.len()`.
pub fn allocate_pool_into(demands: &[f64], pool: f64, out: &mut [f64], order: &mut Vec<usize>) {
    let n = demands.len();
    assert_eq!(out.len(), n, "output buffer must match demand count");
    out.fill(0.0);
    if n == 0 || pool <= 0.0 {
        return;
    }
    let total: f64 = demands.iter().sum();
    if total <= pool {
        out.copy_from_slice(demands);
        return;
    }
    // Progressive filling over positive demands, ascending. Ties break by
    // index, which reproduces a stable sort over the full demand vector:
    // the zero entries it would place first all receive zero and only
    // decrement the active count, so starting from `active =
    // positive_count` is arithmetically identical.
    order.clear();
    order.extend((0..n).filter(|&i| demands[i] > 0.0));
    order.sort_unstable_by(|&a, &b| demands[a].total_cmp(&demands[b]).then(a.cmp(&b)));
    let mut remaining = pool;
    let mut active = order.len();
    for &i in order.iter() {
        if remaining <= 0.0 {
            // Pool drained: every later (larger) demand gets zero, which
            // `out` already holds.
            break;
        }
        let share = remaining / active as f64;
        let give = demands[i].min(share);
        out[i] = give;
        remaining -= give;
        active -= 1;
    }
}

/// Mask-sparse max–min fair allocation: like [`allocate_pool_into`], but
/// touches only the chunk slots whose bit is set in `mask` (ascending).
///
/// Contract: slots outside `mask` are neither read nor written — the
/// caller guarantees `out` is already zero wherever it will later be read
/// densely. Because a zero demand contributes exactly nothing to the
/// progressive fill (it sorts first, receives zero, and leaves both the
/// remaining pool and the share arithmetic untouched), the values written
/// for in-mask slots are bit-identical to a dense
/// [`allocate_pool_into`] call over the full slice.
///
/// The `total <= pool` exact-copy branch is also the keystone of the
/// quiescence engine: an under-subscribed channel gets `out[k] =
/// demands[k]` *verbatim* — not a proportional share that merely rounds
/// to it — so every served ratio is exactly `1.0` and a quiescent
/// epoch's cached allocation stays bit-for-bit valid as long as demand
/// fits the pool (see the epoch engine in `simulator.rs`).
pub fn allocate_pool_sparse(
    demands: &[f64],
    pool: f64,
    out: &mut [f64],
    order: &mut Vec<usize>,
    mask: u64,
) {
    if mask == 0 || pool <= 0.0 {
        return;
    }
    let mut total = 0.0;
    let mut m = mask;
    while m != 0 {
        let k = m.trailing_zeros() as usize;
        m &= m - 1;
        total += demands[k];
    }
    if total <= pool {
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            out[k] = demands[k];
        }
        return;
    }
    order.clear();
    let mut m = mask;
    while m != 0 {
        let k = m.trailing_zeros() as usize;
        m &= m - 1;
        if demands[k] > 0.0 {
            order.push(k);
        }
    }
    order.sort_unstable_by(|&a, &b| demands[a].total_cmp(&demands[b]).then(a.cmp(&b)));
    let mut remaining = pool;
    let mut active = order.len();
    for &i in order.iter() {
        if remaining <= 0.0 {
            break;
        }
        let share = remaining / active as f64;
        let give = demands[i].min(share);
        out[i] = give;
        remaining -= give;
        active -= 1;
    }
}

/// Allocating wrapper over [`allocate_pool_into`].
pub fn allocate_pool(demands: &[f64], pool: f64) -> Vec<f64> {
    let mut out = vec![0.0; demands.len()];
    let mut order = Vec::new();
    allocate_pool_into(demands, pool, &mut out, &mut order);
    out
}

/// One channel's state for a P2P allocation round.
#[derive(Debug, Clone, Default)]
pub struct ChannelRound {
    /// Requested download rate per chunk (sum over requesters, each capped
    /// at the per-connection limit), bytes/s.
    pub requested_rate: Vec<f64>,
    /// Number of peers owning each chunk (excluding current downloaders).
    pub owners: Vec<usize>,
    /// Total upload capacity of the owners of each chunk, bytes/s.
    pub owner_upload: Vec<f64>,
    /// Total upload capacity of all peers in the channel, bytes/s (the
    /// global constraint that a peer's bandwidth is not double-counted
    /// across the chunks it owns).
    pub upload_pool: f64,
}

/// Rarest-first peer bandwidth allocation for one channel, written into
/// `served`: chunks are served in increasing order of owner count (ties
/// by chunk index); each chunk receives at most its requested rate, at
/// most its owners' upload capacity, and at most what remains of the
/// channel-wide upload pool. Unrequested chunks are skipped before the
/// sort, and the fill loop exits once the pool drains.
///
/// `order` is caller-owned sort scratch, reused across calls.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn peer_allocation_into(
    requested_rate: &[f64],
    owners: &[usize],
    owner_upload: &[f64],
    upload_pool: f64,
    served: &mut [f64],
    order: &mut Vec<usize>,
) {
    let j = requested_rate.len();
    assert_eq!(owners.len(), j, "owners length must match chunk count");
    assert_eq!(
        owner_upload.len(),
        j,
        "owner_upload length must match chunk count"
    );
    assert_eq!(served.len(), j, "output buffer must match chunk count");
    served.fill(0.0);
    order.clear();
    order.extend((0..j).filter(|&i| requested_rate[i] > 0.0));
    order.sort_unstable_by_key(|&i| (owners[i], i));
    let mut pool = upload_pool;
    for &i in order.iter() {
        if pool <= 0.0 {
            break;
        }
        let give = requested_rate[i].min(owner_upload[i]).min(pool);
        served[i] = give;
        pool -= give;
    }
}

/// Mask-sparse rarest-first allocation: like [`peer_allocation_into`],
/// but touches only the chunk slots whose bit is set in `mask`.
///
/// Same contract as [`allocate_pool_sparse`]: out-of-mask slots are
/// neither read nor written, and in-mask results are bit-identical to
/// the dense kernel because unrequested chunks never enter the fill.
#[allow(clippy::too_many_arguments)]
pub fn peer_allocation_sparse(
    requested_rate: &[f64],
    owners: &[usize],
    owner_upload: &[f64],
    upload_pool: f64,
    served: &mut [f64],
    order: &mut Vec<usize>,
    mask: u64,
) {
    order.clear();
    let mut m = mask;
    while m != 0 {
        let k = m.trailing_zeros() as usize;
        m &= m - 1;
        if requested_rate[k] > 0.0 {
            order.push(k);
        }
    }
    order.sort_unstable_by_key(|&i| (owners[i], i));
    let mut pool = upload_pool;
    for &i in order.iter() {
        if pool <= 0.0 {
            break;
        }
        let give = requested_rate[i].min(owner_upload[i]).min(pool);
        served[i] = give;
        pool -= give;
    }
}

/// Allocating wrapper over [`peer_allocation_into`].
pub fn peer_allocation(round: &ChannelRound) -> Vec<f64> {
    let mut served = vec![0.0; round.requested_rate.len()];
    let mut order = Vec::new();
    peer_allocation_into(
        &round.requested_rate,
        &round.owners,
        &round.owner_upload,
        round.upload_pool,
        &mut served,
        &mut order,
    );
    served
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn pool_covers_total_demand_exactly() {
        let d = vec![1.0, 2.0, 3.0];
        let a = allocate_pool(&d, 10.0);
        assert_eq!(a, d);
    }

    #[test]
    fn scarce_pool_is_max_min_fair() {
        let d = vec![10.0, 1.0, 10.0];
        let a = allocate_pool(&d, 9.0);
        // Small demand fully served; the two big ones split the rest.
        assert_close(a[1], 1.0, 1e-12);
        assert_close(a[0], 4.0, 1e-12);
        assert_close(a[2], 4.0, 1e-12);
        assert_close(a.iter().sum::<f64>(), 9.0, 1e-12);
    }

    #[test]
    fn allocation_never_exceeds_demand_or_pool() {
        let d = vec![5.0, 0.0, 2.5, 8.0];
        let a = allocate_pool(&d, 6.0);
        for (ai, di) in a.iter().zip(&d) {
            assert!(ai <= di);
        }
        assert!(a.iter().sum::<f64>() <= 6.0 + 1e-12);
        assert_eq!(a[1], 0.0);
    }

    #[test]
    fn empty_or_zero_pool() {
        assert!(allocate_pool(&[], 5.0).is_empty());
        assert_eq!(allocate_pool(&[1.0, 2.0], 0.0), vec![0.0, 0.0]);
    }

    #[test]
    fn equal_demands_split_equally() {
        let d = vec![4.0; 4];
        let a = allocate_pool(&d, 8.0);
        for x in a {
            assert_close(x, 2.0, 1e-12);
        }
    }

    #[test]
    fn into_kernel_reuses_scratch_across_calls() {
        let mut out = vec![9.9; 3];
        let mut order = Vec::new();
        allocate_pool_into(&[10.0, 1.0, 10.0], 9.0, &mut out, &mut order);
        assert_close(out[1], 1.0, 1e-12);
        // Second call with different shape of positive demands: stale
        // scratch contents must not leak through.
        let mut out2 = vec![9.9; 4];
        allocate_pool_into(&[0.0, 2.0, 0.0, 2.0], 1.0, &mut out2, &mut order);
        assert_eq!(out2[0], 0.0);
        assert_eq!(out2[2], 0.0);
        assert_close(out2[1], 0.5, 1e-12);
        assert_close(out2[3], 0.5, 1e-12);
    }

    #[test]
    fn rarest_chunk_served_first() {
        let round = ChannelRound {
            requested_rate: vec![5.0, 5.0],
            owners: vec![10, 1], // chunk 1 is rarest
            owner_upload: vec![100.0, 100.0],
            upload_pool: 6.0,
        };
        let s = peer_allocation(&round);
        assert_close(s[1], 5.0, 1e-12);
        assert_close(s[0], 1.0, 1e-12);
    }

    #[test]
    fn owner_upload_caps_per_chunk_service() {
        let round = ChannelRound {
            requested_rate: vec![10.0],
            owners: vec![2],
            owner_upload: vec![3.0],
            upload_pool: 100.0,
        };
        let s = peer_allocation(&round);
        assert_close(s[0], 3.0, 1e-12);
    }

    #[test]
    fn global_pool_caps_total_service() {
        let round = ChannelRound {
            requested_rate: vec![10.0, 10.0, 10.0],
            owners: vec![1, 2, 3],
            owner_upload: vec![10.0, 10.0, 10.0],
            upload_pool: 12.0,
        };
        let s = peer_allocation(&round);
        assert_close(s.iter().sum::<f64>(), 12.0, 1e-12);
        // Rarity order: chunk 0 fully served, chunk 1 partial, chunk 2
        // starved.
        assert_close(s[0], 10.0, 1e-12);
        assert_close(s[1], 2.0, 1e-12);
        assert_close(s[2], 0.0, 1e-12);
    }

    #[test]
    fn unrequested_chunks_get_nothing() {
        let round = ChannelRound {
            requested_rate: vec![0.0, 4.0],
            owners: vec![0, 5],
            owner_upload: vec![0.0, 50.0],
            upload_pool: 50.0,
        };
        let s = peer_allocation(&round);
        assert_eq!(s[0], 0.0);
        assert_close(s[1], 4.0, 1e-12);
    }

    #[test]
    fn owner_ties_break_by_chunk_index() {
        let round = ChannelRound {
            requested_rate: vec![5.0, 5.0, 5.0],
            owners: vec![2, 2, 2],
            owner_upload: vec![10.0, 10.0, 10.0],
            upload_pool: 7.0,
        };
        let s = peer_allocation(&round);
        assert_close(s[0], 5.0, 1e-12);
        assert_close(s[1], 2.0, 1e-12);
        assert_close(s[2], 0.0, 1e-12);
    }
}
