//! Per-round fluid bandwidth allocation.
//!
//! Downloads progress in fixed rounds. Cloud bandwidth is a shared pool
//! split max–min fairly across chunk demands; in P2P mode each channel
//! first serves itself from its peers' upload capacity using the paper's
//! rarest-first discipline (requests for the rarest chunk are served
//! first), and only the deficit falls through to the cloud.

/// Max–min fair allocation of `pool` across entries with the given
/// `demands`: everyone gets at most their demand, no entry can gain
/// without a larger entry losing. Returns per-entry allocations.
///
/// Runs the classic progressive-filling algorithm on the sorted demands in
/// `O(n log n)`.
pub fn allocate_pool(demands: &[f64], pool: f64) -> Vec<f64> {
    let n = demands.len();
    let mut out = vec![0.0; n];
    if n == 0 || pool <= 0.0 {
        return out;
    }
    let total: f64 = demands.iter().sum();
    if total <= pool {
        out.copy_from_slice(demands);
        return out;
    }
    // Progressive filling: sort indices by demand ascending.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).expect("demands are finite"));
    let mut remaining = pool;
    let mut active = n;
    for (k, &i) in idx.iter().enumerate() {
        let share = remaining / active as f64;
        let give = demands[i].min(share);
        out[i] = give;
        remaining -= give;
        active -= 1;
        let _ = k;
    }
    out
}

/// One channel's state for a P2P allocation round.
#[derive(Debug, Clone, Default)]
pub struct ChannelRound {
    /// Requested download rate per chunk (sum over requesters, each capped
    /// at the per-connection limit), bytes/s.
    pub requested_rate: Vec<f64>,
    /// Number of peers owning each chunk (excluding current downloaders).
    pub owners: Vec<usize>,
    /// Total upload capacity of the owners of each chunk, bytes/s.
    pub owner_upload: Vec<f64>,
    /// Total upload capacity of all peers in the channel, bytes/s (the
    /// global constraint that a peer's bandwidth is not double-counted
    /// across the chunks it owns).
    pub upload_pool: f64,
}

/// Rarest-first peer bandwidth allocation for one channel: chunks are
/// served in increasing order of owner count; each chunk receives at most
/// its requested rate, at most its owners' upload capacity, and at most
/// what remains of the channel-wide upload pool. Returns the peer-served
/// rate per chunk.
pub fn peer_allocation(round: &ChannelRound) -> Vec<f64> {
    let j = round.requested_rate.len();
    debug_assert_eq!(round.owners.len(), j);
    debug_assert_eq!(round.owner_upload.len(), j);
    let mut order: Vec<usize> = (0..j).filter(|&i| round.requested_rate[i] > 0.0).collect();
    order.sort_by_key(|&i| round.owners[i]);
    let mut pool = round.upload_pool;
    let mut served = vec![0.0; j];
    for &i in &order {
        if pool <= 0.0 {
            break;
        }
        let give = round.requested_rate[i].min(round.owner_upload[i]).min(pool);
        served[i] = give;
        pool -= give;
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn pool_covers_total_demand_exactly() {
        let d = vec![1.0, 2.0, 3.0];
        let a = allocate_pool(&d, 10.0);
        assert_eq!(a, d);
    }

    #[test]
    fn scarce_pool_is_max_min_fair() {
        let d = vec![10.0, 1.0, 10.0];
        let a = allocate_pool(&d, 9.0);
        // Small demand fully served; the two big ones split the rest.
        assert_close(a[1], 1.0, 1e-12);
        assert_close(a[0], 4.0, 1e-12);
        assert_close(a[2], 4.0, 1e-12);
        assert_close(a.iter().sum::<f64>(), 9.0, 1e-12);
    }

    #[test]
    fn allocation_never_exceeds_demand_or_pool() {
        let d = vec![5.0, 0.0, 2.5, 8.0];
        let a = allocate_pool(&d, 6.0);
        for (ai, di) in a.iter().zip(&d) {
            assert!(ai <= di);
        }
        assert!(a.iter().sum::<f64>() <= 6.0 + 1e-12);
        assert_eq!(a[1], 0.0);
    }

    #[test]
    fn empty_or_zero_pool() {
        assert!(allocate_pool(&[], 5.0).is_empty());
        assert_eq!(allocate_pool(&[1.0, 2.0], 0.0), vec![0.0, 0.0]);
    }

    #[test]
    fn equal_demands_split_equally() {
        let d = vec![4.0; 4];
        let a = allocate_pool(&d, 8.0);
        for x in a {
            assert_close(x, 2.0, 1e-12);
        }
    }

    #[test]
    fn rarest_chunk_served_first() {
        let round = ChannelRound {
            requested_rate: vec![5.0, 5.0],
            owners: vec![10, 1], // chunk 1 is rarest
            owner_upload: vec![100.0, 100.0],
            upload_pool: 6.0,
        };
        let s = peer_allocation(&round);
        assert_close(s[1], 5.0, 1e-12, );
        assert_close(s[0], 1.0, 1e-12);
    }

    #[test]
    fn owner_upload_caps_per_chunk_service() {
        let round = ChannelRound {
            requested_rate: vec![10.0],
            owners: vec![2],
            owner_upload: vec![3.0],
            upload_pool: 100.0,
        };
        let s = peer_allocation(&round);
        assert_close(s[0], 3.0, 1e-12);
    }

    #[test]
    fn global_pool_caps_total_service() {
        let round = ChannelRound {
            requested_rate: vec![10.0, 10.0, 10.0],
            owners: vec![1, 2, 3],
            owner_upload: vec![10.0, 10.0, 10.0],
            upload_pool: 12.0,
        };
        let s = peer_allocation(&round);
        assert_close(s.iter().sum::<f64>(), 12.0, 1e-12);
        // Rarity order: chunk 0 fully, chunk 1 partial ... wait, chunk 0
        // gets 10, chunk 1 gets 2, chunk 2 gets 0.
        assert_close(s[0], 10.0, 1e-12);
        assert_close(s[1], 2.0, 1e-12);
        assert_close(s[2], 0.0, 1e-12);
    }

    #[test]
    fn unrequested_chunks_get_nothing() {
        let round = ChannelRound {
            requested_rate: vec![0.0, 4.0],
            owners: vec![0, 5],
            owner_upload: vec![0.0, 50.0],
            upload_pool: 50.0,
        };
        let s = peer_allocation(&round);
        assert_eq!(s[0], 0.0);
        assert_close(s[1], 4.0, 1e-12);
    }
}
