//! Per-peer memory accounting for the sharded engine.
//!
//! The scale-out story ("10 M viewers under 2 GB", docs/SCALING.md)
//! rests on the per-viewer resident state staying small, and nothing
//! rots faster than a memory model nobody measures. This module gives
//! the budget a load-bearing number: [`worst_case_bytes_per_peer`] is
//! computed from the actual type layouts (so a grown field moves it),
//! [`measure`] runs a sharded simulation and counts the real resident
//! bytes at run end, and [`PEER_BUDGET_BYTES`] is the ceiling both are
//! pinned against by `crates/sim/tests/peer_footprint.rs`.
//!
//! # What is counted
//!
//! Per connected viewer: the packed [`Peer`](crate::peer::Peer) record
//! itself (72 B), the engine's two `u32` per-peer mirrors (fixed-point
//! usable upload, download-slot map), and the state-dependent tail —
//! a 16-byte download-index entry while downloading, or a wake-slab
//! slot plus a wheel-bucket entry (4 B each) while waiting. Fixed
//! per-engine overhead (wheel bucket headers, sub-lane scratch, the
//! tracker) is excluded: it does not grow with viewers, which is the
//! axis this budget guards.

use cloudmedia_telemetry::Telemetry;

use crate::config::SimConfig;
use crate::error::SimError;

/// The per-viewer resident-memory budget, bytes. The worst case
/// (a downloading peer) must fit: 72 (packed `Peer`) + 4 (usable
/// upload) + 4 (download slot) + 16 (download-index entry). At this
/// ceiling, 10 M viewers hold under 1 GB of peer state.
pub const PEER_BUDGET_BYTES: usize = 96;

/// A measured population + resident-byte count, as produced by
/// [`measure`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerFootprint {
    /// Connected viewers at measurement time.
    pub peers: usize,
    /// Population-scaled resident bytes attributed to them.
    pub bytes: usize,
}

impl PeerFootprint {
    /// Mean resident bytes per connected viewer (0 for an empty run).
    pub fn bytes_per_peer(&self) -> f64 {
        if self.peers == 0 {
            0.0
        } else {
            self.bytes as f64 / self.peers as f64
        }
    }
}

/// The worst-case resident bytes for one connected viewer — a
/// *downloading* peer, whose state tail (a download-index entry) is
/// larger than a waiting peer's (slab slot + wheel entry, 8 B).
/// Computed from the real type layouts so any field growth moves it.
pub fn worst_case_bytes_per_peer() -> usize {
    std::mem::size_of::<crate::peer::Peer>()
        + 2 * std::mem::size_of::<u32>()
        + crate::simulator::DL_ENTRY_BYTES
}

/// Runs `cfg` through the sharded engine and returns the end-of-run
/// per-peer footprint. The simulation itself is discarded; use the
/// sharded engine through [`crate::Simulator`] for results. The
/// sharded kernel is measured regardless of `cfg.kernel` — it is the
/// scale-out engine the budget exists for.
///
/// # Errors
///
/// Propagates configuration validation and simulation failures.
pub fn measure(cfg: &SimConfig) -> Result<PeerFootprint, SimError> {
    cfg.validate()?;
    crate::sharded::run_with_footprint(cfg, &Telemetry::disabled()).map(|(_, fp)| fp)
}
