//! The federated multi-region simulator.
//!
//! [`FederatedSimulator`] runs one full CloudMedia system per region —
//! each with its population share of the catalog, its diurnal pattern
//! shifted to local time, and its *own cloud site* billing at regional
//! prices — in lockstep rounds, and couples them through the global
//! placement optimizer ([`cloudmedia_core::federation`]): every
//! provisioning interval each region's controller derives its predicted
//! cloud demand exactly as in a single-site run, then the optimizer
//! decides how much of each region's demand is served by its local site
//! and how much is **redirected** to remote sites (peak overflow into
//! off-peak capacity, or price arbitrage into cheaper markets).
//!
//! # What redirection means mechanically
//!
//! The viewer-facing side of a region is unchanged: its channels keep
//! the reservation its controller planned, and its round engine (the
//! same [`SimKernel::Indexed`]/[`SimKernel::Scan`] engines the
//! single-site [`crate::Simulator`] uses) allocates bandwidth per round
//! as always. What moves is *where the VMs backing that reservation
//! run*: region `i`'s integer VM targets are apportioned across sites
//! according to the placement (largest-remainder per cluster, so totals
//! are conserved), each site's broker receives the aggregate targets it
//! must run, and each site's billing meters its own fleet at its own
//! prices. A region whose capacity is partly remote sees its effective
//! online scale blend the boot progress of every site serving it.
//!
//! Redirected *traffic* is metered per round: the used cloud bandwidth
//! of region `i` times its current redirected share, integrated over
//! time, is billed the serving sites' egress price plus the policy's SLA
//! latency penalty (per gigabyte). The penalty monetizes the remote-
//! serving quality loss instead of simulating packet-level latency — the
//! same modeling level as the paper's cost objective.
//!
//! # The three deployments
//!
//! [`DeploymentKind`] selects the comparison points the `geo_federation`
//! benchmark and the acceptance test pin:
//!
//! - **Independent** — redirection disabled; every region serves all of
//!   its demand locally at its own prices (the two-extreme baseline the
//!   plain `geo_sim` bench measured).
//! - **Federated** — the optimizer redirects where marginal cost says
//!   so; total cost is bounded above by the independent deployment
//!   (all-local remains feasible) while every byte is still served from
//!   a region-priced site.
//! - **Central** — one site in the reference (cheapest) market serves
//!   the time-zone-multiplexed mixture of all regional demand curves;
//!   flattest curve and cheapest prices, but *every* remote viewer's
//!   latency is outside the model (the paper's motivation for regional
//!   sites in the first place).

use cloudmedia_cloud::broker::{
    scale_fleet_capacity, scale_nfs_capacity, scale_vm_prices, Cloud, ResourceRequest, RetryPolicy,
};
use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_core::controller::ProvisioningPlan;
use cloudmedia_core::federation::{paper_sites, plan_global_placement, FederationPolicy, SiteSpec};
use cloudmedia_core::geo::{three_sites, validate_regions, RegionSpec};
use cloudmedia_telemetry::Telemetry;
use cloudmedia_workload::diurnal::DiurnalPattern;
use cloudmedia_workload::trace::{ArrivalStream, UserArrival};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{SimConfig, SimKernel, SimMode};
use crate::error::{invalid_param, SimError};
use crate::faults::FaultStats;
use crate::metrics::Metrics;
use crate::peer::Peer;
use crate::simulator::{
    bootstrap_stats, interval_record, make_planner, process_round_events, sample, IndexedEngine,
    Planner, RoundCtx, RoundEngine, ScanEngine,
};
use crate::telem;
use crate::tracker::Tracker;

/// Which multi-region deployment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentKind {
    /// Per-region sites, no traffic exchange.
    Independent,
    /// Per-region sites plus the global placement optimizer.
    Federated,
    /// One reference-priced site serving the multiplexed mixture.
    Central,
}

/// Configuration of a federated run: the per-region template plus the
/// deployment's regions, site economics, and placement policy.
#[derive(Debug, Clone)]
pub struct FederatedConfig {
    /// Template configuration; each region derives its own copy (catalog
    /// scaled by population share, diurnal shifted to local time,
    /// distinct trace seed). The `kernel` must be a round engine.
    pub base: SimConfig,
    /// The regions (shares must sum to ~1).
    pub regions: Vec<RegionSpec>,
    /// One cloud site per region, in region order.
    pub sites: Vec<SiteSpec>,
    /// The placement policy.
    pub policy: FederationPolicy,
    /// Run the per-region round engines on the rayon pool (default).
    /// Regions never share an accumulator inside a round and every
    /// cross-region coupling (global placement, site online fractions)
    /// happens at synchronization barriers, so the parallel and serial
    /// executions are **bit-identical** — pinned by
    /// `crates/sim/tests/federation.rs`. Disable to force serial
    /// execution (debugging, single-core baselines).
    ///
    /// ```
    /// use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};
    /// use cloudmedia_sim::config::SimMode;
    ///
    /// let mut cfg =
    ///     FederatedConfig::paper_default(DeploymentKind::Federated, SimMode::ClientServer, 24.0);
    /// assert!(cfg.parallel_regions, "parallel by default");
    /// cfg.parallel_regions = false; // serial run: bit-identical metrics
    /// assert!(FederatedSimulator::new(cfg).is_ok());
    /// ```
    pub parallel_regions: bool,
}

impl FederatedConfig {
    /// The paper-default three-site deployment ([`three_sites`] regions,
    /// [`paper_sites`] economics) for `kind`, over `hours` hours.
    pub fn paper_default(kind: DeploymentKind, mode: SimMode, hours: f64) -> Self {
        let mut base = SimConfig::paper_default(mode);
        base.trace.horizon_seconds = hours * 3600.0;
        match kind {
            DeploymentKind::Independent => Self {
                base,
                regions: three_sites(),
                sites: paper_sites(),
                policy: FederationPolicy::independent(),
                parallel_regions: true,
            },
            DeploymentKind::Federated => Self {
                base,
                regions: three_sites(),
                sites: paper_sites(),
                policy: FederationPolicy::federated(),
                parallel_regions: true,
            },
            DeploymentKind::Central => {
                // One site in the reference market serving the mixture of
                // the shifted regional patterns — time-zone multiplexing.
                let regions = three_sites();
                let parts: Vec<(f64, DiurnalPattern)> = regions
                    .iter()
                    .map(|r| {
                        (
                            r.population_share,
                            base.trace.diurnal.shifted(r.timezone_offset_hours),
                        )
                    })
                    .collect();
                base.trace.diurnal =
                    DiurnalPattern::mixture(&parts).expect("region shares are positive");
                let reference_factor = paper_sites()
                    .iter()
                    .map(|s| s.vm_price_factor)
                    .fold(f64::INFINITY, f64::min);
                Self {
                    base,
                    regions: vec![RegionSpec {
                        name: "central".into(),
                        population_share: 1.0,
                        timezone_offset_hours: 0.0,
                    }],
                    sites: vec![SiteSpec {
                        vm_price_factor: reference_factor,
                        capacity_cap_bps: f64::INFINITY,
                        egress_price_per_gb: 0.0,
                    }],
                    policy: FederationPolicy::independent(),
                    parallel_regions: true,
                }
            }
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects mismatched region/site lists, invalid regions or policy,
    /// an event-driven kernel (the federation drives round engines), and
    /// any invalid derived per-region configuration.
    pub fn validate(&self) -> Result<(), SimError> {
        validate_regions(&self.regions).map_err(SimError::from)?;
        if self.sites.len() != self.regions.len() {
            return Err(invalid_param(
                "sites",
                format!(
                    "expected one site per region, got {} sites / {} regions",
                    self.sites.len(),
                    self.regions.len()
                ),
            ));
        }
        self.policy.validate().map_err(SimError::from)?;
        if self.base.kernel == SimKernel::EventDriven {
            return Err(invalid_param(
                "kernel",
                "the federated simulator drives round engines; use Indexed or Scan \
                 (the event-driven engine models single-site redirection via \
                 DesScenario::remote_overflow)",
            ));
        }
        if self.base.kernel == SimKernel::Sharded {
            return Err(invalid_param(
                "kernel",
                "the federated simulator already parallelizes across regions \
                 (parallel_regions); nesting the channel-sharded engine inside it \
                 would contend for the same worker pool — use Indexed per region, \
                 or a single-site Sharded run with parallel_channels",
            ));
        }
        for o in &self.base.faults.site_outages {
            if o.site >= self.regions.len() {
                return Err(invalid_param(
                    "site_outages",
                    format!(
                        "site index {} out of range for {} regions",
                        o.site,
                        self.regions.len()
                    ),
                ));
            }
        }
        for idx in 0..self.regions.len() {
            self.region_config(idx).validate()?;
        }
        Ok(())
    }

    /// Region `idx`'s derived simulation configuration.
    fn region_config(&self, idx: usize) -> SimConfig {
        let r = &self.regions[idx];
        let mut cfg = self.base.clone();
        cfg.catalog = cfg.catalog.scaled(r.population_share);
        cfg.trace.diurnal = cfg.trace.diurnal.shifted(r.timezone_offset_hours);
        // Distinct seed per region so the swarms are independent.
        cfg.trace.seed ^= (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        cfg
    }
}

/// One region's outcome of a federated run.
#[derive(Debug, Clone)]
pub struct RegionOutcome {
    /// The region.
    pub region: RegionSpec,
    /// Its site economics.
    pub site: SiteSpec,
    /// Viewer-side metric series (samples, intervals). `total_vm_cost`
    /// and `total_storage_cost` hold the *site's* bill — the VM-hours
    /// this region's cloud ran for everyone it served, local and
    /// imported, at its own prices.
    pub metrics: Metrics,
    /// Cloud-served bytes delivered to this region's viewers.
    pub cloud_bytes: f64,
    /// Of those, bytes served by a remote site.
    pub redirected_bytes: f64,
    /// Egress charges paid for this region's redirected bytes, dollars.
    pub transfer_cost: f64,
    /// SLA latency-penalty credits for those bytes, dollars.
    pub latency_penalty_cost: f64,
}

impl RegionOutcome {
    /// Fraction of this region's cloud-served bytes that came from a
    /// remote site.
    pub fn redirected_share(&self) -> f64 {
        if self.cloud_bytes <= 0.0 {
            return 0.0;
        }
        self.redirected_bytes / self.cloud_bytes
    }
}

/// Aggregate outcome of a federated run.
#[derive(Debug, Clone)]
pub struct FederatedMetrics {
    /// Per-region outcomes, in region order.
    pub per_region: Vec<RegionOutcome>,
    /// Σ site VM bills, dollars.
    pub total_vm_cost: f64,
    /// Σ site storage bills, dollars.
    pub total_storage_cost: f64,
    /// Σ egress charges, dollars.
    pub total_transfer_cost: f64,
    /// Σ SLA latency-penalty credits, dollars.
    pub total_latency_penalty_cost: f64,
    /// What the fault plane did during the run: emergency re-plans,
    /// fallback intervals, shed arrivals, retry totals. All zeros when
    /// the schedule is empty.
    pub fault_stats: FaultStats,
}

impl FederatedMetrics {
    /// The deployment's total cost: VM + storage + transfer + latency
    /// penalty, dollars.
    pub fn total_cost(&self) -> f64 {
        self.total_vm_cost
            + self.total_storage_cost
            + self.total_transfer_cost
            + self.total_latency_penalty_cost
    }

    /// Fraction of all cloud-served bytes that were redirected.
    pub fn redirected_share(&self) -> f64 {
        let total: f64 = self.per_region.iter().map(|r| r.cloud_bytes).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.per_region
            .iter()
            .map(|r| r.redirected_bytes)
            .sum::<f64>()
            / total
    }

    /// Population-weighted mean streaming quality.
    pub fn mean_quality(&self) -> f64 {
        let mut q = 0.0;
        let mut w = 0.0;
        for r in &self.per_region {
            q += r.region.population_share * r.metrics.mean_quality();
            w += r.region.population_share;
        }
        if w > 0.0 {
            q / w
        } else {
            1.0
        }
    }

    /// Peak concurrent viewers across regions (summed per region, not
    /// per instant — regions sample in lockstep, so sums align).
    pub fn peak_peers(&self) -> usize {
        let samples = self
            .per_region
            .iter()
            .map(|r| r.metrics.samples.len())
            .min()
            .unwrap_or(0);
        (0..samples)
            .map(|k| {
                self.per_region
                    .iter()
                    .map(|r| r.metrics.samples[k].active_peers)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}

/// Splits `total` integer units across `shares` (which need not be
/// normalized) by largest remainder; the result sums to `total`.
fn apportion(total: usize, shares: &[f64]) -> Vec<usize> {
    let sum: f64 = shares.iter().sum();
    if sum <= 0.0 || shares.is_empty() {
        let mut out = vec![0; shares.len()];
        if let Some(first) = out.first_mut() {
            *first = total;
        }
        return out;
    }
    let exact: Vec<f64> = shares
        .iter()
        .map(|s| total as f64 * (s / sum).max(0.0))
        .collect();
    let mut out: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut assigned: usize = out.iter().sum();
    // Hand out the remainder to the largest fractional parts (stable on
    // ties by index).
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa)
            .expect("finite fractions")
            .then(a.cmp(&b))
    });
    let mut k = 0;
    while assigned < total {
        out[order[k % order.len()]] += 1;
        assigned += 1;
        k += 1;
    }
    out
}

/// One region's live simulation state: the engine, its viewers, its
/// tracker/planner, and its site's cloud.
struct RegionRuntime {
    cfg: SimConfig,
    engine: Box<dyn RoundEngine>,
    /// The region's site (broker + schedulers + billing at its prices).
    cloud: Cloud,
    planner: Planner,
    tracker: Tracker,
    rng: StdRng,
    peers: Vec<Peer>,
    metrics: Metrics,
    /// Lazily generated arrival stream (O(channels) memory).
    arrivals: ArrivalStream,
    /// The next arrival not yet ingested, if any.
    next_arrival: Option<UserArrival>,
    /// SLA latency penalty on redirected traffic, dollars per GB.
    penalty_per_gb: f64,
    vm_bandwidth: f64,
    chunk_bytes: f64,
    /// The storage placement currently in force (sticky across
    /// non-refresh intervals, as in the single-site run loop).
    current_placement: Option<cloudmedia_cloud::scheduler::PlacementPlan>,
    /// The last plan this region's controller produced (placement
    /// stripped), replayed during tracker dropouts and emergency
    /// re-plans.
    last_plan: Option<ProvisioningPlan>,
    /// Arrivals rejected by [`DegradeMode::ShedNewArrivals`](crate::faults::DegradeMode).
    shed: u64,
    /// Viewer-side per-channel reservation from this region's own plan.
    channel_reserved: Vec<f64>,
    reserved_total: f64,
    /// Current interval's placement row: share of this region's demand
    /// served by each site.
    serve_share: Vec<f64>,
    /// Fraction of this region's cloud demand served remotely.
    redirect_fraction: f64,
    /// Blended egress price of the sites serving this region's exported
    /// traffic, dollars per GB.
    blended_egress_per_gb: f64,
    /// This site's aggregate VM targets (its own + imports), per cluster.
    site_targets: Vec<usize>,
    /// Bandwidth those targets add up to, bytes/s.
    site_target_bw: f64,
    // Sampling windows (mirror the single-site run loop).
    window_used: f64,
    window_start: f64,
    window_startup_sum: f64,
    window_startup_count: usize,
    // Federation accounting.
    cloud_bytes: f64,
    redirected_bytes: f64,
    transfer_cost: f64,
    latency_penalty_cost: f64,
    // Round-event scratch.
    removals: Vec<usize>,
    completed: Vec<usize>,
    woken: Vec<usize>,
    // Telemetry accumulators (side channel only; populated in
    // telemetry-enabled runs, reduced in region order at run end).
    /// Wall time this region spent stepping rounds, ns.
    wall_ns: u64,
    /// High-water mark of this region's connected viewers.
    peak_peers: usize,
}

impl std::fmt::Debug for RegionRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionRuntime")
            .field("peers", &self.peers.len())
            .field("redirect_fraction", &self.redirect_fraction)
            .finish_non_exhaustive()
    }
}

/// The federated multi-region simulator. Construct with a
/// [`FederatedConfig`] and call [`FederatedSimulator::run`].
#[derive(Debug)]
pub struct FederatedSimulator {
    config: FederatedConfig,
}

impl FederatedSimulator {
    /// Creates a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(config: FederatedConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &FederatedConfig {
        &self.config
    }

    /// Runs every region in lockstep over the shared horizon and returns
    /// the per-region and aggregate outcome.
    ///
    /// # Errors
    ///
    /// Propagates trace generation, provisioning, placement, and cloud
    /// failures.
    pub fn run(&self) -> Result<FederatedMetrics, SimError> {
        self.run_with_telemetry(&Telemetry::disabled())
    }

    /// [`FederatedSimulator::run`] recording stage timings, per-region
    /// wall/peer rows, and counters into `tel`. Telemetry is a pure
    /// side channel — the returned metrics are bit-identical to
    /// [`FederatedSimulator::run`].
    ///
    /// # Errors
    ///
    /// Propagates trace generation, provisioning, placement, and cloud
    /// failures.
    pub fn run_with_telemetry(&self, tel: &Telemetry) -> Result<FederatedMetrics, SimError> {
        let globals = telem::GlobalCounters::capture();
        let run_span = tel.span(telem::RUN_WALL);
        let fc = &self.config;
        let n_regions = fc.regions.len();
        let n_sites = n_regions;

        let penalty_per_gb = fc.policy.latency_penalty_per_gb;

        let mut regions: Vec<RegionRuntime> = Vec::with_capacity(n_regions);
        for idx in 0..n_regions {
            let cfg = fc.region_config(idx);
            let n_channels = cfg.catalog.len();
            let max_chunks = cfg
                .catalog
                .channels()
                .iter()
                .map(|c| c.viewing.chunks)
                .max()
                .expect("catalog validated non-empty");
            let chunk_bytes = cfg.chunk_bytes();
            let cloud = Cloud::new(
                scale_fleet_capacity(
                    &scale_vm_prices(&paper_virtual_clusters(), fc.sites[idx].vm_price_factor),
                    cfg.fleet_scale,
                ),
                scale_nfs_capacity(&paper_nfs_clusters(), cfg.fleet_scale),
                chunk_bytes as u64,
            )?;
            let sla = cloud.sla_terms();
            let vm_bandwidth = sla.virtual_clusters[0].vm_bandwidth_bytes_per_sec;
            let engine: Box<dyn RoundEngine> = match cfg.kernel {
                SimKernel::Scan => Box::new(ScanEngine::new(n_channels, max_chunks)),
                SimKernel::Indexed => Box::new(IndexedEngine::new(
                    n_channels,
                    max_chunks,
                    cfg.peer_efficiency,
                    cfg.round_seconds,
                )),
                SimKernel::EventDriven | SimKernel::Sharded => {
                    unreachable!("rejected by validate")
                }
            };
            let planner = make_planner(&cfg, vm_bandwidth)?;
            let tracker = Tracker::new(&cfg.catalog)?;
            let mut arrivals = ArrivalStream::new(&cfg.catalog, &cfg.trace)?;
            let next_arrival = arrivals.next();
            let rng = StdRng::seed_from_u64(cfg.behaviour_seed);
            let n_clusters = sla.virtual_clusters.len();
            regions.push(RegionRuntime {
                engine,
                cloud,
                planner,
                tracker,
                rng,
                peers: Vec::new(),
                metrics: Metrics::default(),
                arrivals,
                next_arrival,
                penalty_per_gb,
                vm_bandwidth,
                chunk_bytes,
                current_placement: None,
                last_plan: None,
                shed: 0,
                channel_reserved: vec![0.0; n_channels],
                reserved_total: 0.0,
                serve_share: {
                    let mut s = vec![0.0; n_sites];
                    s[idx] = 1.0;
                    s
                },
                redirect_fraction: 0.0,
                blended_egress_per_gb: 0.0,
                site_targets: vec![0; n_clusters],
                site_target_bw: 0.0,
                window_used: 0.0,
                window_start: 0.0,
                window_startup_sum: 0.0,
                window_startup_count: 0,
                cloud_bytes: 0.0,
                redirected_bytes: 0.0,
                transfer_cost: 0.0,
                latency_penalty_cost: 0.0,
                removals: Vec::new(),
                completed: Vec::new(),
                woken: Vec::new(),
                wall_ns: 0,
                peak_peers: 0,
                cfg,
            });
        }

        let horizon = fc.base.trace.horizon_seconds;
        let dt = fc.base.round_seconds;
        let sample_interval = fc.base.sample_interval;
        let provisioning_interval = fc.base.provisioning_interval;
        let mut clock = 0.0_f64;
        let mut next_sample = sample_interval;
        let mut next_provision = 0.0_f64;

        // Fault-plane state — all mutated in this serial coordinator
        // loop, so serial and parallel region execution stay
        // bit-identical.
        let retry = RetryPolicy::paper_default();
        let mut stats = FaultStats::default();
        let mut applied_budget_factor = 1.0_f64;
        let mut site_mask = vec![false; n_sites];

        let telemetry_on = tel.enabled();
        let mut clk = tel.stage_clock_sampled(telem::STAGE_TIME_SAMPLE);
        let mut rounds_total = 0u64;

        while clock < horizon {
            let t1 = (clock + dt).min(horizon);
            let step = t1 - clock;
            clk.begin_round();

            // --- Global provisioning boundary ------------------------
            let mask = fc.base.faults.site_mask(n_sites, clock);
            if clock >= next_provision {
                let _interval_span = tel.span(telem::PROV_INTERVAL);
                self.provision(
                    &mut regions,
                    clock,
                    &mask,
                    &retry,
                    &mut applied_budget_factor,
                    &mut stats,
                )?;
                next_provision += provisioning_interval;
                site_mask = mask;
            } else if mask != site_mask {
                // A site went dark (or came back) between boundaries:
                // re-place the in-force plans around the new topology
                // right now instead of waiting for the next hourly tick.
                self.emergency_replan(&mut regions, clock, &mask, &retry, &mut stats)?;
                stats.emergency_replans += 1;
                site_mask = mask;
            }
            clk.lap(telem::STAGE_PROVISIONING);

            // --- Per-region round (arrivals → allocate → progress) ---
            // Site online fractions feed every region's blended scale;
            // computing them *before* the fan-out is the read barrier
            // that keeps the parallel execution bit-identical to serial.
            // A down site serves nothing, whatever its fleet state.
            let site_online: Vec<f64> = regions
                .iter()
                .zip(&site_mask)
                .map(|(r, &down)| {
                    if down {
                        0.0
                    } else if r.site_target_bw > 0.0 {
                        (r.cloud.running_bandwidth() / r.site_target_bw).min(1.0)
                    } else {
                        1.0
                    }
                })
                .collect();
            if fc.parallel_regions && regions.len() > 1 {
                // Regions are fully independent within a round (no shared
                // accumulator; coupling happens only at provisioning
                // boundaries and through the pre-computed `site_online`
                // snapshot), so the fan-out cannot reorder any
                // arithmetic. Results are reduced in region order below,
                // so even error reporting is deterministic.
                let mut results: Vec<Result<(), SimError>> = Vec::new();
                results.resize_with(regions.len(), || Ok(()));
                let online = &site_online;
                rayon::scope(|s| {
                    for (r, slot) in regions.iter_mut().zip(results.iter_mut()) {
                        s.spawn(move |_| {
                            *slot = r.step_round_timed(telemetry_on, clock, t1, step, online);
                        });
                    }
                });
                for result in results {
                    result?;
                }
            } else {
                for r in regions.iter_mut() {
                    r.step_round_timed(telemetry_on, clock, t1, step, &site_online)?;
                }
            }
            rounds_total += 1;
            clk.lap(telem::STAGE_REGION_STEP);

            // --- Sampling --------------------------------------------
            if t1 >= next_sample || t1 >= horizon {
                for r in regions.iter_mut() {
                    r.flush_sample(t1);
                }
                next_sample += sample_interval;
            }
            clk.lap(telem::STAGE_SAMPLING);

            clock = t1;
        }

        // Close out billing and assemble outcomes.
        if telemetry_on {
            // Region-imbalance table and wall histogram, in region order.
            let rows: Vec<Vec<u64>> = regions
                .iter()
                .map(|r| {
                    tel.observe(telem::HIST_REGION_WALL, r.wall_ns);
                    vec![r.wall_ns, r.peers.len() as u64, r.peak_peers as u64]
                })
                .collect();
            tel.push_table("regions", &["wall_ns", "peers_final", "peak_peers"], rows);
            tel.gauge_max(
                telem::PEERS_PEAK,
                regions.iter().map(|r| r.peers.len() as u64).sum(),
            );
        }
        let mut per_region = Vec::with_capacity(n_regions);
        let mut total_vm = 0.0;
        let mut total_storage = 0.0;
        let mut total_transfer = 0.0;
        let mut total_penalty = 0.0;
        for (idx, mut r) in regions.into_iter().enumerate() {
            r.cloud.tick(horizon)?;
            r.metrics.total_vm_cost = r.cloud.billing().vm_cost().as_dollars();
            r.metrics.total_storage_cost = r.cloud.billing().storage_cost().as_dollars();
            stats.shed_arrivals += r.shed;
            total_vm += r.metrics.total_vm_cost;
            total_storage += r.metrics.total_storage_cost;
            total_transfer += r.transfer_cost;
            total_penalty += r.latency_penalty_cost;
            per_region.push(RegionOutcome {
                region: fc.regions[idx].clone(),
                site: fc.sites[idx].clone(),
                metrics: r.metrics,
                cloud_bytes: r.cloud_bytes,
                redirected_bytes: r.redirected_bytes,
                transfer_cost: r.transfer_cost,
                latency_penalty_cost: r.latency_penalty_cost,
            });
        }
        clk.lap(telem::STAGE_REDUCE);
        drop(run_span);
        tel.add(telem::ROUNDS, rounds_total);
        telem::record_fault_stats(tel, &stats);
        globals.record_delta(tel);
        Ok(FederatedMetrics {
            per_region,
            total_vm_cost: total_vm,
            total_storage_cost: total_storage,
            total_transfer_cost: total_transfer,
            total_latency_penalty_cost: total_penalty,
            fault_stats: stats,
        })
    }

    /// One global provisioning boundary: per-region plans, the global
    /// placement, the integer VM-target apportionment, and each site's
    /// broker submission. The fault plane hooks in here: economic shocks
    /// rescale every region's budget and planning prices, tracker
    /// dropouts replay each region's last-known-good plan, and the site
    /// outage mask reroutes demand around dark sites.
    #[allow(clippy::too_many_arguments)]
    fn provision(
        &self,
        regions: &mut [RegionRuntime],
        clock: f64,
        mask: &[bool],
        retry: &RetryPolicy,
        applied_budget_factor: &mut f64,
        stats: &mut FaultStats,
    ) -> Result<(), SimError> {
        let fc = &self.config;
        let n = regions.len();
        let faults = &fc.base.faults;

        // Economic shocks hit every region's controller at the same
        // boundary. Tracking the cumulative factor applies each shock
        // exactly once, whatever order the schedule lists them in.
        let (budget_factor, price_factor) = faults.shock_factors(clock);
        if budget_factor != *applied_budget_factor {
            let step = budget_factor / *applied_budget_factor;
            for r in regions.iter_mut() {
                r.planner.scale_vm_budget(step)?;
            }
            *applied_budget_factor = budget_factor;
        }

        // 1. Per-region controller plans (identical to a single-site run,
        //    including the tracker-dropout fallback).
        let dropout = faults.dropout_active(clock);
        let mut plans = Vec::with_capacity(n);
        let mut site_prices = Vec::with_capacity(n);
        for r in regions.iter_mut() {
            let bootstrap = r.metrics.intervals.is_empty();
            let sla = r.cloud.sla_terms();
            let planning_sla = if price_factor == 1.0 {
                sla
            } else {
                sla.with_vm_price_factor(price_factor)
            };
            site_prices.push(planning_sla.bandwidth_price_per_bps_hour());
            let plan = if !bootstrap && dropout && r.last_plan.is_some() {
                // Measurements are dark: drain the tracker so collector
                // state matches a fault-free run, replay the last plan.
                let _ = r.tracker.interval_stats(r.cfg.provisioning_interval)?;
                stats.fallback_intervals += 1;
                r.last_plan.clone().expect("checked is_some above")
            } else {
                let interval_stats = if bootstrap {
                    bootstrap_stats(&r.cfg.catalog, &r.cfg)
                } else {
                    r.tracker.interval_stats(r.cfg.provisioning_interval)?
                };
                r.planner.plan_interval(&interval_stats, &planning_sla)?
            };
            plans.push(plan);
        }

        // 2–3. Global placement, apportionment, and site submissions —
        //    shared with the emergency re-plan path. A dark site never
        //    receives a storage placement.
        let demands: Vec<f64> = plans.iter().map(|p| p.total_cloud_demand).collect();
        let region_targets: Vec<Vec<usize>> = plans.iter().map(|p| p.vm_targets.clone()).collect();
        let storage: Vec<Option<cloudmedia_cloud::scheduler::PlacementPlan>> = plans
            .iter()
            .zip(mask)
            .map(|(p, &down)| if down { None } else { p.placement.clone() })
            .collect();
        apply_global_placement(
            fc,
            regions,
            &demands,
            &region_targets,
            &site_prices,
            mask,
            &storage,
            retry,
            stats,
        )?;

        // 4. Refresh each region's viewer-side state.
        for ((r, plan), &down) in regions.iter_mut().zip(&plans).zip(mask) {
            let sla = r.cloud.sla_terms();
            if !down {
                if let Some(pl) = &plan.placement {
                    r.current_placement = Some(pl.clone());
                }
            }

            // Viewer-side reservation from the region's own plan.
            let n_channels = r.cfg.catalog.len();
            r.channel_reserved.iter_mut().for_each(|v| *v = 0.0);
            for (key, allocs) in &plan.vm_plan.allocations {
                if key.channel >= n_channels {
                    continue;
                }
                let bw: f64 = allocs
                    .iter()
                    .map(|a| a.vms * sla.virtual_clusters[a.cluster].vm_bandwidth_bytes_per_sec)
                    .sum();
                r.channel_reserved[key.channel] += bw;
            }
            r.reserved_total = r.channel_reserved.iter().sum();

            let mut per_channel_peers = vec![0usize; n_channels];
            for p in &r.peers {
                per_channel_peers[p.channel()] += 1;
            }
            r.metrics.intervals.push(interval_record(
                clock,
                plan,
                r.current_placement.as_ref(),
                &sla,
                n_channels,
                per_channel_peers,
            ));
            let mut stored = plan.clone();
            stored.placement = None;
            r.last_plan = Some(stored);
        }
        Ok(())
    }

    /// Re-routes the in-force plans around a topology change (a site
    /// going dark or coming back) between provisioning boundaries: the
    /// last plans' demands and VM targets are re-placed over the
    /// surviving sites and resubmitted. No tracker is drained and no
    /// interval record is written — the next boundary plans from fresh
    /// measurements as usual.
    fn emergency_replan(
        &self,
        regions: &mut [RegionRuntime],
        clock: f64,
        mask: &[bool],
        retry: &RetryPolicy,
        stats: &mut FaultStats,
    ) -> Result<(), SimError> {
        let fc = &self.config;
        let (_, price_factor) = fc.base.faults.shock_factors(clock);
        let mut demands = Vec::with_capacity(regions.len());
        let mut region_targets = Vec::with_capacity(regions.len());
        let mut site_prices = Vec::with_capacity(regions.len());
        for r in regions.iter() {
            let plan = r.last_plan.as_ref();
            demands.push(plan.map_or(0.0, |p| p.total_cloud_demand));
            region_targets.push(plan.map(|p| p.vm_targets.clone()).unwrap_or_default());
            let sla = r.cloud.sla_terms();
            site_prices.push(if price_factor == 1.0 {
                sla.bandwidth_price_per_bps_hour()
            } else {
                sla.with_vm_price_factor(price_factor)
                    .bandwidth_price_per_bps_hour()
            });
        }
        let storage: Vec<Option<cloudmedia_cloud::scheduler::PlacementPlan>> =
            vec![None; regions.len()];
        apply_global_placement(
            fc,
            regions,
            &demands,
            &region_targets,
            &site_prices,
            mask,
            &storage,
            retry,
            stats,
        )
    }
}

/// The placement machinery shared by the hourly boundary and the
/// emergency re-plan: runs the global optimizer over the effective
/// topology (a down site advertises no capacity), apportions each
/// region's integer VM targets across the sites serving it, submits
/// every site's aggregate request through the retrying broker path, and
/// refreshes each region's redirection bookkeeping. Down sites are
/// forced to zero targets and zero availability so nothing bills or
/// serves while they are dark.
#[allow(clippy::too_many_arguments)]
fn apply_global_placement(
    fc: &FederatedConfig,
    regions: &mut [RegionRuntime],
    demands: &[f64],
    region_targets: &[Vec<usize>],
    site_prices: &[f64],
    mask: &[bool],
    storage: &[Option<cloudmedia_cloud::scheduler::PlacementPlan>],
    retry: &RetryPolicy,
    stats: &mut FaultStats,
) -> Result<(), SimError> {
    let n = regions.len();
    let placement = if mask.iter().any(|&d| d) {
        // `SiteSpec::validate` rejects a zero capacity cap, so a dark
        // site advertises the smallest positive one instead.
        let mut sites = fc.sites.to_vec();
        for (j, s) in sites.iter_mut().enumerate() {
            if mask[j] {
                s.capacity_cap_bps = f64::MIN_POSITIVE;
            }
        }
        plan_global_placement(demands, &sites, site_prices, &fc.policy)?
    } else {
        plan_global_placement(demands, &fc.sites, site_prices, &fc.policy)?
    };

    let n_clusters = region_targets.first().map(Vec::len).unwrap_or_default();
    let mut site_targets = vec![vec![0usize; n_clusters]; n];
    for (i, targets) in region_targets.iter().enumerate() {
        let row = &placement.assignment[i];
        for (v, &target) in targets.iter().enumerate() {
            for (j, share) in apportion(target, row).into_iter().enumerate() {
                site_targets[j][v] += share;
            }
        }
    }
    // Respect each site's physical fleet: clamp to cluster maxima
    // (the paper fleet is far larger than any default-week placement,
    // so this is a guard, not a steady-state path).
    let max_vms: Vec<usize> = scale_fleet_capacity(&paper_virtual_clusters(), fc.base.fleet_scale)
        .iter()
        .map(|c| c.max_vms)
        .collect();
    for (j, targets) in site_targets.iter_mut().enumerate() {
        for (v, t) in targets.iter_mut().enumerate() {
            *t = if mask[j] { 0 } else { (*t).min(max_vms[v]) };
        }
    }

    for (j, r) in regions.iter_mut().enumerate() {
        let sla = r.cloud.sla_terms();
        if mask[j] {
            r.cloud
                .set_availability(&vec![0; sla.virtual_clusters.len()])?;
        } else {
            r.cloud.restore_full_availability();
        }
        let receipt = r.cloud.submit_with_retry(
            &ResourceRequest {
                vm_targets: site_targets[j].clone(),
                placement: storage[j].clone(),
            },
            retry,
        )?;
        stats.record_receipt(&receipt);
        r.site_targets = site_targets[j].clone();
        r.site_target_bw = r
            .site_targets
            .iter()
            .zip(&sla.virtual_clusters)
            .map(|(&t, c)| t as f64 * c.vm_bandwidth_bytes_per_sec)
            .sum();

        // Redirection bookkeeping: where region j's demand is served.
        let row = &placement.assignment[j];
        let total: f64 = row.iter().sum();
        r.serve_share = if total > 0.0 {
            row.iter().map(|x| x / total).collect()
        } else {
            let mut s = vec![0.0; n];
            if !mask[j] {
                s[j] = 1.0;
            }
            s
        };
        r.redirect_fraction = placement.redirect_fraction(j);
        let exported: f64 = total - row[j];
        r.blended_egress_per_gb = if exported > 0.0 {
            row.iter()
                .enumerate()
                .filter(|&(k, _)| k != j)
                .map(|(k, x)| x * fc.sites[k].egress_price_per_gb)
                .sum::<f64>()
                / exported
        } else {
            0.0
        };
    }
    Ok(())
}

impl RegionRuntime {
    /// One allocation round for this region: ingest arrivals, run the
    /// engine's allocation stage, advance downloads, handle the round's
    /// events, tick the site's cloud, and meter redirected traffic.
    ///
    /// [`RegionRuntime::step_round`] with optional wall-time and
    /// peak-peer accounting (telemetry-enabled runs only — a pure side
    /// channel either way).
    fn step_round_timed(
        &mut self,
        time_it: bool,
        t0: f64,
        t1: f64,
        step: f64,
        site_online: &[f64],
    ) -> Result<(), SimError> {
        if time_it {
            let start = std::time::Instant::now();
            let r = self.step_round(t0, t1, step, site_online);
            self.wall_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.peak_peers = self.peak_peers.max(self.peers.len());
            r
        } else {
            self.step_round(t0, t1, step, site_online)
        }
    }

    fn step_round(
        &mut self,
        _t0: f64,
        t1: f64,
        step: f64,
        site_online: &[f64],
    ) -> Result<(), SimError> {
        let chunk_bytes = self.chunk_bytes;
        // --- Arrivals ------------------------------------------------
        while let Some(a) = self.next_arrival.as_ref().filter(|a| a.time < t1) {
            // Shedding is a pure function of the arrival's own timestamp,
            // so the parallel fan-out cannot perturb it.
            if self.cfg.faults.shed_arrivals_at(a.time) {
                self.shed += 1;
                self.next_arrival = self.arrivals.next();
                continue;
            }
            self.peers.push(Peer::new(
                a.user_id,
                a.channel,
                a.upload_bytes_per_sec,
                a.start_chunk,
                chunk_bytes,
                a.time,
            ));
            self.engine.on_join(&self.peers, self.peers.len() - 1);
            self.tracker.record_join(a.channel, a.start_chunk);
            self.next_arrival = self.arrivals.next();
        }

        // --- Allocation stage ---------------------------------------
        // The region's capacity comes online as fast as the sites
        // actually serving it boot their fleets.
        let online_scale = if self.reserved_total > 0.0 {
            self.serve_share
                .iter()
                .zip(site_online)
                .map(|(s, u)| s * u)
                .sum::<f64>()
                .min(1.0)
        } else {
            0.0
        };
        let ctx = RoundCtx {
            step,
            inv_step: 1.0 / step,
            vm_bandwidth: self.vm_bandwidth,
            eff: self.cfg.peer_efficiency,
            p2p: self.cfg.mode == SimMode::P2p,
            online_scale,
            channel_reserved: &self.channel_reserved,
        };
        let used_cloud_rate = self.engine.allocate(&self.peers, &ctx);

        // --- Progress + events (identical ordering to the run loop) --
        self.completed.clear();
        self.woken.clear();
        self.engine.advance_round(
            &mut self.peers,
            &ctx,
            t1,
            &mut self.completed,
            &mut self.woken,
        );
        process_round_events(
            self.engine.as_mut(),
            &mut self.peers,
            &self.completed,
            &self.woken,
            &mut self.removals,
            &mut self.tracker,
            &mut self.rng,
            &self.cfg.catalog,
            chunk_bytes,
            self.cfg.chunk_seconds,
            t1,
            &mut self.window_startup_sum,
            &mut self.window_startup_count,
        );

        // --- Cloud lifecycle + billing -------------------------------
        self.cloud.tick(t1)?;

        // --- Usage + redirection metering ----------------------------
        let used_bytes = used_cloud_rate * step;
        self.window_used += used_bytes;
        self.cloud_bytes += used_bytes;
        let redirected = used_bytes * self.redirect_fraction;
        if redirected > 0.0 {
            self.redirected_bytes += redirected;
            self.transfer_cost += redirected * self.blended_egress_per_gb / 1e9;
            self.latency_penalty_cost += redirected * self.penalty_per_gb / 1e9;
        }
        Ok(())
    }

    /// Closes the current sampling window at `t1`.
    fn flush_sample(&mut self, t1: f64) {
        let elapsed = (t1 - self.window_start).max(1e-9);
        let startup = if self.window_startup_count > 0 {
            self.window_startup_sum / self.window_startup_count as f64
        } else {
            0.0
        };
        self.metrics.samples.push(sample(
            t1,
            self.cloud.running_bandwidth(),
            self.window_used / elapsed,
            startup,
            &self.peers,
            self.cfg.catalog.len(),
            &self.cfg,
        ));
        self.window_used = 0.0;
        self.window_startup_sum = 0.0;
        self.window_startup_count = 0;
        self.window_start = t1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmedia_workload::catalog::Catalog;
    use cloudmedia_workload::viewing::ViewingModel;

    /// A small, fast three-region configuration.
    fn small(kind: DeploymentKind, hours: f64) -> FederatedConfig {
        let mut fc = FederatedConfig::paper_default(kind, SimMode::ClientServer, hours);
        fc.base.catalog =
            Catalog::zipf(3, 0.8, ViewingModel::paper_default(), 120.0, 300.0).unwrap();
        fc
    }

    #[test]
    fn apportion_conserves_and_follows_shares() {
        assert_eq!(apportion(10, &[1.0, 0.0, 0.0]), vec![10, 0, 0]);
        assert_eq!(apportion(10, &[0.5, 0.5]), vec![5, 5]);
        let split = apportion(7, &[0.6, 0.3, 0.1]);
        assert_eq!(split.iter().sum::<usize>(), 7);
        assert!(split[0] >= split[1] && split[1] >= split[2], "{split:?}");
        assert_eq!(apportion(3, &[0.0, 0.0]), vec![3, 0], "degenerate shares");
        assert_eq!(apportion(0, &[0.4, 0.6]), vec![0, 0]);
    }

    #[test]
    fn independent_run_produces_sane_per_region_metrics() {
        let m = FederatedSimulator::new(small(DeploymentKind::Independent, 4.0))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.per_region.len(), 3);
        assert_eq!(m.redirected_share(), 0.0, "no redirection when disabled");
        assert_eq!(m.total_transfer_cost, 0.0);
        assert!(m.total_vm_cost > 0.0);
        assert!(m.mean_quality() > 0.9, "quality {}", m.mean_quality());
        for r in &m.per_region {
            assert_eq!(r.metrics.intervals.len(), 4, "one record per hour");
            assert!(!r.metrics.samples.is_empty());
        }
    }

    #[test]
    fn central_runs_one_region_with_the_mixture() {
        let m = FederatedSimulator::new(small(DeploymentKind::Central, 4.0))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.per_region.len(), 1);
        assert_eq!(m.redirected_share(), 0.0);
        assert!(m.total_vm_cost > 0.0);
    }

    #[test]
    fn federated_runs_are_deterministic() {
        let a = FederatedSimulator::new(small(DeploymentKind::Federated, 3.0))
            .unwrap()
            .run()
            .unwrap();
        let b = FederatedSimulator::new(small(DeploymentKind::Federated, 3.0))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.total_cost(), b.total_cost());
        assert_eq!(a.redirected_share(), b.redirected_share());
        for (x, y) in a.per_region.iter().zip(&b.per_region) {
            assert_eq!(x.metrics, y.metrics);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut fc = small(DeploymentKind::Federated, 2.0);
        fc.sites.pop();
        assert!(FederatedSimulator::new(fc).is_err(), "site count mismatch");

        let mut fc = small(DeploymentKind::Federated, 2.0);
        fc.base.kernel = SimKernel::EventDriven;
        assert!(FederatedSimulator::new(fc).is_err(), "event-driven kernel");

        let mut fc = small(DeploymentKind::Federated, 2.0);
        fc.regions[0].population_share = 0.05;
        assert!(FederatedSimulator::new(fc).is_err(), "shares must sum to 1");
    }

    #[test]
    fn scan_and_indexed_federations_agree() {
        let mut a_cfg = small(DeploymentKind::Federated, 3.0);
        a_cfg.base.kernel = SimKernel::Indexed;
        let mut b_cfg = small(DeploymentKind::Federated, 3.0);
        b_cfg.base.kernel = SimKernel::Scan;
        let a = FederatedSimulator::new(a_cfg).unwrap().run().unwrap();
        let b = FederatedSimulator::new(b_cfg).unwrap().run().unwrap();
        for (x, y) in a.per_region.iter().zip(&b.per_region) {
            assert_eq!(x.metrics, y.metrics, "engines diverged");
        }
        assert_eq!(a.total_cost(), b.total_cost());
    }
}
