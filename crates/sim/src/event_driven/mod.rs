//! Event-driven CloudMedia engine on the `cloudmedia-des` kernel.
//!
//! The round engines ([`crate::simulator`]) advance the whole world in
//! fixed fluid rounds; everything that happens *between* round
//! boundaries — a VM finishing its boot 25 s into an hour, a request
//! waiting 3 s for a free server, a flash crowd ramping over 90 s — is
//! quantized away. This engine replaces the round scan with components
//! that exchange timestamped events through a deterministic DES kernel:
//!
//! - [`sessions::Sessions`] — every viewer session: arrivals (pulled
//!   lazily from [`cloudmedia_workload::trace::ArrivalStream`]), the
//!   viewing-model walk, prefetch gating, stall accounting, departures.
//! - [`admission::Admission`] — per-chunk request admission and service:
//!   an M/M/m wait at the channel's VM fleet (Erlang C, via
//!   [`cloudmedia_queueing::erlang_c_wait_probability`]) plus a transfer
//!   at the request's frozen capacity share; integrates used cloud
//!   bandwidth exactly between events.
//! - [`provisioner::Provisioner`] — the identical control path as the
//!   round engines (tracker → controller/baseline planner → broker →
//!   billing), driven by hourly `ProvisionTick` events, plus the VM
//!   failure-injection hook.
//!
//! Components never touch each other's state: every interaction is an
//! event (`ChunkRequest`, `Delivered`, `PoolUpdate`, `CapacityUpdate`,
//! `Track*`, …) delivered in deterministic `(time, sequence)` order. The
//! engine itself only routes events, samples metrics at the 5-minute
//! boundaries (an out-of-band observer, like the paper's measurement
//! harness), and injects scenario events.
//!
//! # What the model adds over the round engines
//!
//! - **Per-request admission latency**: each chunk request records the
//!   wait it experienced before service; [`DesReport`] summarizes the
//!   distribution (mean, p50/p90/p99, max).
//! - **VM boot/teardown delay at full fidelity**: capacity follows the
//!   broker's actual VM lifecycle (boot completions re-announce capacity
//!   mid-interval through `CloudSync` events), and a scenario can stretch
//!   the boot latency arbitrarily ([`DesScenario::vm_boot_seconds`]).
//! - **VM failure injection**: [`VmFailureSpec`] kills a fraction of the
//!   running fleet at an arbitrary instant; the hourly controller then
//!   re-provisions on its next tick.
//! - **Sub-round flash crowds**: [`FlashCrowdSpec`] injects a burst of
//!   extra viewers whose arrival times are sampled inside an arbitrary
//!   window — timing no round boundary ever sees.
//!
//! # Tolerance vs the round engines
//!
//! The event-driven engine is a *different microscopic model*, so its
//! metrics are not bit-identical to the round engines'. They agree in
//! the mean because all three engines share every macroscopic driver:
//! the same viewing-model Markov chain (hence the same per-channel
//! session-count equilibria), the same diurnal arrival-rate profile
//! (the DES arrival stream is an independent sample of the identical
//! non-homogeneous Poisson process), and — most importantly for cost —
//! the *identical* provisioning control path, which reacts to tracker
//! measurements of those equilibria. The residual differences are
//! (a) trace sampling noise, (b) the frozen-share service model versus
//! per-round max–min fair reallocation, and (c) the pooled peer-supply
//! approximation (the DES pool ignores per-chunk ownership constraints,
//! so P2P cloud usage reads slightly lower). Over the paper-default
//! week these contribute a few percent each; the regression test
//! (`crates/sim/tests/des_vs_indexed.rs`) pins **mean used cloud
//! bandwidth, mean per-channel provisioned demand, and total VM cost to
//! within 15 % of the Indexed engine**, and `bench_des` records the
//! actual deltas in `BENCH_sim.json` so the gap is tracked PR to PR.

pub mod admission;
mod events;
pub mod provisioner;
pub mod sessions;

use cloudmedia_des::Kernel;
use cloudmedia_telemetry::Telemetry;
use serde::Serialize;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::Metrics;
use crate::telem;
use events::{CmEvent, ADMISSION, ENGINE, PROVISIONER, SESSIONS};

/// A VM failure burst: at `at` seconds, `fraction` of the currently
/// billable fleet (per cluster, rounded down) is killed. With a positive
/// `recovery_seconds` the failed capacity comes back: a repair event at
/// `at + recovery_seconds` restores the last planned VM targets (instead
/// of the fleet staying dead until the next hourly re-plan).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VmFailureSpec {
    /// Failure instant, seconds from run start.
    pub at: f64,
    /// Fraction of each cluster's active instances lost, in `[0, 1]`.
    pub fraction: f64,
    /// Seconds until the failed capacity is repaired; `0.0` means the
    /// failure is permanent (the historical behaviour).
    pub recovery_seconds: f64,
}

/// A flash-crowd burst: `extra_viewers` additional arrivals to `channel`,
/// spread uniformly over `[at, at + window_seconds)` — sub-round timing
/// the fixed-round engines cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FlashCrowdSpec {
    /// Burst start, seconds from run start.
    pub at: f64,
    /// Channel hit by the crowd.
    pub channel: usize,
    /// Number of extra viewers injected.
    pub extra_viewers: usize,
    /// Window over which their arrivals spread, seconds.
    pub window_seconds: f64,
}

/// A federation partner absorbing admission overflow: when a cloud-bound
/// request would have to *queue* locally (every online server busy), the
/// admission component may instead serve it from this remote pool —
/// immediately, but with the inter-region latency added to its delivery.
/// The event-driven analogue of the federated simulator's overflow
/// redirection ([`crate::federation`]), at per-request granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RemoteOverflowSpec {
    /// Bandwidth the remote site offers for overflow, bytes per second
    /// (a fleet of `capacity / per-VM bandwidth` transfer slots).
    pub capacity_bps: f64,
    /// Extra delivery latency a redirected chunk pays, seconds.
    pub extra_latency_seconds: f64,
}

/// Scenario knobs layered on top of a [`SimConfig`] for an event-driven
/// run. `Default` is the plain scenario (paper VM latencies, no
/// injections) — what `SimKernel::EventDriven` under [`crate::Simulator`]
/// runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DesScenario {
    /// Override the VM boot latency (paper default: 25 s).
    pub vm_boot_seconds: Option<f64>,
    /// Override the VM shutdown latency (paper default: 10 s).
    pub vm_shutdown_seconds: Option<f64>,
    /// VM failure bursts to inject.
    pub failures: Vec<VmFailureSpec>,
    /// Flash-crowd bursts to inject.
    pub flash_crowds: Vec<FlashCrowdSpec>,
    /// Redirect queue overflow to a remote federation site.
    pub remote_overflow: Option<RemoteOverflowSpec>,
}

/// Summary of a latency distribution, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a set of observations (sorted internally). All-zero
    /// for an empty set.
    fn from_samples(mut samples: Vec<f32>) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let count = samples.len();
        let pick = |q: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * q).round() as usize;
            f64::from(samples[idx])
        };
        let mean = samples.iter().map(|&w| f64::from(w)).sum::<f64>() / count as f64;
        Self {
            count,
            mean,
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: f64::from(*samples.last().expect("non-empty")),
        }
    }
}

/// Event-driven-specific outputs accompanying the standard [`Metrics`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DesReport {
    /// Per-request admission latency (emergent FIFO wait for a free VM;
    /// 0 for peer-served requests).
    pub admission_latency: LatencySummary,
    /// Chunk deliveries completed.
    pub deliveries: u64,
    /// Requests routed to the cloud queue.
    pub cloud_requests: u64,
    /// Requests served by the peer mesh.
    pub peer_requests: u64,
    /// Mean Erlang-C wait probability predicted at each cloud admission
    /// from the measured `(m, λ/μ)` operating point…
    pub predicted_wait_fraction: f64,
    /// …versus the fraction of cloud requests that measurably waited —
    /// the M/M/m model validated against its event-driven realization.
    pub measured_wait_fraction: f64,
    /// Total events the kernel delivered.
    pub events_delivered: u64,
    /// High-water mark of the kernel's pending-event count — how deep
    /// the future-event set got (heap size or timing-wheel occupancy).
    pub peak_pending_events: usize,
    /// Cancellations that hit a still-pending event (a session departing
    /// with a scheduled wake-up, a superseded timer).
    pub cancelled_events: u64,
    /// Timing-wheel slot recycles (0 under the binary-heap scheduler):
    /// how often the wheel's free list absorbed an allocation.
    pub recycled_slots: u64,
    /// Sessions injected by flash-crowd bursts.
    pub injected_viewers: u64,
    /// VM instances killed by failure bursts.
    pub vms_killed: u64,
    /// Requests the admission hook redirected to the remote overflow
    /// site ([`DesScenario::remote_overflow`]); 0 without one.
    pub redirected_requests: u64,
}

/// Everything an event-driven run produces.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DesRun {
    /// The standard metric series (same schema as the round engines).
    pub metrics: Metrics,
    /// Event-driven-only outputs.
    pub report: DesReport,
    /// Fault-plane counters (the configuration's
    /// [`FaultSchedule`](crate::faults::FaultSchedule) plus scenario
    /// failure injections).
    pub fault_stats: crate::faults::FaultStats,
}

/// Runs the event-driven engine over the configured horizon.
///
/// # Errors
///
/// Propagates configuration validation, trace, provisioning, and cloud
/// failures.
pub fn run(cfg: &SimConfig, scenario: &DesScenario) -> Result<DesRun, SimError> {
    run_with_telemetry(cfg, scenario, &Telemetry::disabled())
}

/// [`run`] recording kernel health gauges, event throughput, and stage
/// timings into `tel`. Telemetry is a pure side channel — the returned
/// metrics and report are bit-identical to [`run`].
///
/// # Errors
///
/// Propagates configuration validation, trace, provisioning, and cloud
/// failures.
pub fn run_with_telemetry(
    cfg: &SimConfig,
    scenario: &DesScenario,
    tel: &Telemetry,
) -> Result<DesRun, SimError> {
    cfg.validate()?;
    let globals = telem::GlobalCounters::capture();
    let run_span = tel.span(telem::RUN_WALL);
    let horizon = cfg.trace.horizon_seconds;
    let n_channels = cfg.catalog.len();

    let mut kernel: Kernel<CmEvent> = Kernel::with_scheduler(cfg.scheduler.into());
    let mut provisioner = provisioner::Provisioner::new(cfg, scenario)?;
    let mut admission =
        admission::Admission::new(cfg, provisioner.vm_bandwidth(), scenario.remote_overflow);
    let mut sessions = sessions::Sessions::new(cfg)?;

    // Initial schedule. Provisioning precedes everything else at t = 0
    // (sequence order breaks the tie), so the first capacity announcement
    // exists before any request.
    kernel.schedule_at(0.0, PROVISIONER, CmEvent::ProvisionTick);
    sessions.schedule_first_arrival(&mut kernel);
    kernel.schedule_at(
        cfg.sample_interval.min(horizon),
        ENGINE,
        CmEvent::SampleTick,
    );
    // Failure bursts come from the scenario and from the configuration's
    // fault schedule (whose fleet failures always carry a recovery).
    let schedule_failures = cfg.faults.vm_failures.iter().map(|f| VmFailureSpec {
        at: f.at,
        fraction: f.fraction,
        recovery_seconds: f.recovery_seconds,
    });
    for f in scenario.failures.iter().copied().chain(schedule_failures) {
        if f.at < horizon && f.fraction > 0.0 {
            kernel.schedule_at(
                f.at,
                PROVISIONER,
                CmEvent::VmFailure {
                    fraction: f.fraction,
                },
            );
            if f.recovery_seconds > 0.0 {
                kernel.schedule_at(f.at + f.recovery_seconds, PROVISIONER, CmEvent::VmRecovery);
            }
        }
    }
    for fc in &scenario.flash_crowds {
        if fc.at < horizon && fc.extra_viewers > 0 {
            kernel.schedule_at(
                fc.at,
                SESSIONS,
                CmEvent::FlashCrowd {
                    channel: fc.channel.min(n_channels - 1),
                    extra: fc.extra_viewers,
                    window: fc.window_seconds.max(1e-3),
                },
            );
        }
    }

    let mut metrics = Metrics::default();
    let mut last_sample = 0.0_f64;
    let mut next_sample = cfg.sample_interval;

    // The event loop: route every event at or before the horizon. Per-
    // event timing would dominate the kernel's own dispatch cost, so the
    // loop is timed as one stage and throughput is derived afterwards.
    let loop_t0 = std::time::Instant::now();
    let mut clk = tel.stage_clock();
    use cloudmedia_des::Component as _;
    while let Some(t) = kernel.peek_time() {
        if t > horizon {
            break;
        }
        let ev = kernel.pop().expect("peeked event exists");
        match ev.dest {
            SESSIONS => sessions.handle(ev, &mut kernel),
            ADMISSION => admission.handle(ev, &mut kernel),
            PROVISIONER => provisioner.handle(ev, &mut kernel),
            ENGINE => {
                // Metrics sampling: the engine observes the components
                // out-of-band, as the paper's measurement harness did.
                let now = ev.time;
                metrics.samples.push(sample_now(
                    now,
                    now - last_sample,
                    &mut sessions,
                    &mut admission,
                    &provisioner,
                ));
                last_sample = now;
                next_sample += cfg.sample_interval;
                if now < horizon {
                    kernel.schedule_at(next_sample.min(horizon), ENGINE, CmEvent::SampleTick);
                }
            }
            other => unreachable!("unrouted component id {other:?}"),
        }
    }
    clk.lap(telem::STAGE_EVENTS);
    let loop_ns = u64::try_from(loop_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // Epilogue: settle the cloud (billing) to the horizon and flush a
    // final sample if the horizon was not sample-aligned.
    provisioner.finish(horizon)?;
    if last_sample < horizon {
        metrics.samples.push(sample_now(
            horizon,
            horizon - last_sample,
            &mut sessions,
            &mut admission,
            &provisioner,
        ));
    }
    metrics.intervals = provisioner.take_intervals();
    metrics.total_vm_cost = provisioner.vm_cost();
    metrics.total_storage_cost = provisioner.storage_cost();

    let (cloud_requests, peer_requests) = admission.request_split();
    let (predicted_wait_fraction, measured_wait_fraction) = admission.wait_model_check();
    let report = DesReport {
        admission_latency: LatencySummary::from_samples(admission.take_waits()),
        deliveries: admission.deliveries(),
        cloud_requests,
        peer_requests,
        predicted_wait_fraction,
        measured_wait_fraction,
        events_delivered: kernel.delivered_count(),
        peak_pending_events: kernel.peak_pending(),
        cancelled_events: kernel.cancelled_count(),
        recycled_slots: kernel.recycled_count(),
        injected_viewers: sessions.injected_viewers(),
        vms_killed: provisioner.vms_killed(),
        redirected_requests: admission.redirected_requests(),
    };
    let mut fault_stats = provisioner.take_fault_stats();
    fault_stats.shed_arrivals = sessions.shed_arrivals();
    clk.lap(telem::STAGE_SAMPLING);
    drop(run_span);

    if tel.enabled() {
        tel.add(telem::DES_EVENTS, report.events_delivered);
        tel.gauge_max(telem::DES_PEAK_PENDING, report.peak_pending_events as u64);
        tel.add(telem::DES_CANCELLED, report.cancelled_events);
        tel.add(telem::DES_RECYCLED, report.recycled_slots);
        tel.gauge_set(
            telem::DES_EVENTS_PER_SEC,
            ((report.events_delivered as u128 * 1_000_000_000) / u128::from(loop_ns.max(1)))
                .min(u128::from(u64::MAX)) as u64,
        );
    }
    telem::record_fault_stats(tel, &fault_stats);
    globals.record_delta(tel);
    Ok(DesRun {
        metrics,
        report,
        fault_stats,
    })
}

/// Assembles one [`crate::metrics::Sample`] at `now` over the elapsed
/// window.
fn sample_now(
    now: f64,
    window: f64,
    sessions: &mut sessions::Sessions,
    admission: &mut admission::Admission,
    provisioner: &provisioner::Provisioner,
) -> crate::metrics::Sample {
    let quality = sessions.quality_snapshot(now);
    let used = admission.window_used(now) / window.max(1e-9);
    crate::metrics::Sample {
        time: now,
        reserved_bandwidth: provisioner.running_bandwidth(),
        used_bandwidth: used,
        quality: quality.quality,
        active_peers: quality.active,
        per_channel_peers: quality.per_channel_peers,
        per_channel_quality: quality.per_channel_quality,
        mean_startup_delay: quality.mean_startup_delay,
    }
}
