//! The admission/service component.
//!
//! Implements, per *request*, exactly the queueing system the paper's
//! controller provisions for: each channel's cloud reservation is a FIFO
//! M/M/m server fleet (`m = ⌊online capacity / per-VM bandwidth⌋`,
//! service time = chunk bytes at one VM's bandwidth ≈ 12 s), and in P2P
//! mode the peer upload pool absorbs a share of the chunk-request stream
//! before it reaches the cloud — the event-driven analogue of the round
//! engines' "peers serve first, cloud covers the residual" allocation.
//!
//! - **Peer mesh.** Peers serve first: the channel's usable upload pool
//!   is a fleet of `round(pool / per-connection bandwidth)` transfer
//!   slots, and a request takes one iff some peer owns the chunk (the
//!   fluid allocator's `owner_upload` constraint, snapshotted by the
//!   sessions component) and a slot is free. Slots bound aggregate mesh
//!   throughput by the physical pool to within half a connection
//!   (rounding to the nearest slot is the unbiased discretization;
//!   flooring systematically under-serves by up to one connection per
//!   channel, which measurably widens the gap to the fluid engines).
//!   Overflow falls through to the cloud — "peers serve first, the
//!   cloud covers the residual", per request. Peer transfers never
//!   touch the VM queue or the used-cloud meter.
//! - **Cloud queue.** A cloud-served request takes a free server
//!   immediately or *queues FIFO* until one frees (capacity growth pops
//!   the queue as boots complete). The admission wait is therefore an
//!   **emergent** quantity — real queueing, not a sampled distribution —
//!   and is the per-request latency [`super::DesReport`] summarizes: the
//!   quantity the paper's "mean retrieval time ≤ T0" provisioning target
//!   bounds but the round engines cannot observe. For each cloud request
//!   the component also evaluates the Erlang-C wait probability
//!   ([`cloudmedia_queueing::erlang_c_wait_probability`]) at the
//!   currently measured `(m, λ_cloud/μ)`; the report compares this
//!   analytic prediction against the measured wait fraction, validating
//!   the paper's M/M/m model against its own event-driven realization.
//!
//! Before the first VMs boot (or after a failure burst) `m` is 0 and
//! cloud-bound requests simply wait in the queue — the event-driven
//! analogue of a fluid download that does not progress until capacity
//! exists.
//!
//! - **Remote overflow (federation hook).** With
//!   [`super::DesScenario::remote_overflow`] set, a request that would
//!   have to queue locally may instead take a slot at a remote
//!   federation site: served immediately, delivered late by the
//!   inter-region latency, never touching the local queue or the local
//!   used-bandwidth meter — the per-request analogue of
//!   [`crate::federation`]'s overflow redirection.
//!
//! Used cloud bandwidth is integrated *exactly* between events: the
//! channel's take is `busy servers × per-VM bandwidth` (capped at the
//! online reservation while a shrinking fleet drains), piecewise
//! constant between service starts and completions, so over any window
//! the integral equals the bytes the cloud actually served — the same
//! quantity the round engines accumulate from their per-round served
//! rates.

use std::collections::VecDeque;

use cloudmedia_des::{Component, Event, Kernel};
use cloudmedia_queueing::erlang_c_wait_probability;

use super::events::{CmEvent, ADMISSION, SESSIONS};
use super::RemoteOverflowSpec;
use crate::config::{SimConfig, SimMode};

/// EWMA weight for the per-channel mean inter-request gap.
const GAP_EWMA_WEIGHT: f64 = 0.05;

/// A request waiting for a free server.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    session: u64,
    chunk: usize,
    enqueued_at: f64,
}

/// One channel's admission state.
#[derive(Debug, Default)]
struct ChannelQueue {
    /// Online servers (`⌊reserved × online scale / per-VM bandwidth⌋`).
    servers: usize,
    /// Servers currently serving a transfer. May transiently exceed
    /// `servers` while a shrunk fleet drains.
    busy: usize,
    /// FIFO queue of requests awaiting a server.
    waiting: VecDeque<QueuedRequest>,
    /// Usable peer upload pool, bytes/s.
    pool: f64,
    /// Concurrent peer-served transfers.
    active_peer: u64,
    /// EWMA mean inter-request gap, seconds (0 = no data).
    mean_gap: f64,
    /// Last request time (−1 before the first).
    last_req_t: f64,
    /// Current cloud take, bytes/s.
    used_rate: f64,
}

impl ChannelQueue {
    /// The EWMA request rate λ, per second (0 = no data yet).
    fn lambda(&self) -> f64 {
        if self.mean_gap > 0.0 {
            1.0 / self.mean_gap
        } else {
            0.0
        }
    }
}

/// The admission component; see the module docs.
#[derive(Debug)]
pub struct Admission {
    p2p: bool,
    vm_bandwidth: f64,
    chunk_bytes: f64,
    /// Reserved cloud bandwidth per channel (current plan).
    reserved: Vec<f64>,
    reserved_total: f64,
    /// Bandwidth of VMs actually running.
    running: f64,
    channels: Vec<ChannelQueue>,
    used_rate_total: f64,
    /// Time of the last used-bandwidth integration.
    last_t: f64,
    /// ∫ used dt since the last sample flush, bytes.
    window_used: f64,
    /// Per-request admission waits, seconds.
    waits: Vec<f32>,
    deliveries: u64,
    cloud_requests: u64,
    peer_requests: u64,
    /// Σ Erlang-C wait probabilities evaluated at admission (cloud
    /// requests): the analytic prediction of `waited_requests`.
    predicted_wait_prob_sum: f64,
    /// Cloud requests that measurably waited for a server.
    waited_requests: u64,
    /// Remote overflow pool (federation hook): slot fleet, occupancy,
    /// and the latency its deliveries pay.
    remote: Option<RemoteState>,
    /// Requests redirected to the remote pool.
    redirected: u64,
}

/// Live state of the remote overflow pool.
#[derive(Debug)]
struct RemoteState {
    /// Transfer slots the remote capacity funds.
    slots: u64,
    /// Slots currently serving a redirected transfer.
    busy: u64,
    /// Extra delivery latency per redirected chunk, seconds.
    extra_latency: f64,
}

impl Admission {
    pub(crate) fn new(
        cfg: &SimConfig,
        vm_bandwidth: f64,
        remote_overflow: Option<RemoteOverflowSpec>,
    ) -> Self {
        let n = cfg.catalog.len();
        let remote = remote_overflow.map(|spec| RemoteState {
            slots: (spec.capacity_bps.max(0.0) / vm_bandwidth).floor() as u64,
            busy: 0,
            extra_latency: spec.extra_latency_seconds.max(0.0),
        });
        Self {
            remote,
            redirected: 0,
            p2p: cfg.mode == SimMode::P2p,
            vm_bandwidth,
            chunk_bytes: cfg.chunk_bytes(),
            reserved: vec![0.0; n],
            reserved_total: 0.0,
            running: 0.0,
            channels: (0..n)
                .map(|_| ChannelQueue {
                    last_req_t: -1.0,
                    ..ChannelQueue::default()
                })
                .collect(),
            used_rate_total: 0.0,
            last_t: 0.0,
            window_used: 0.0,
            waits: Vec::new(),
            deliveries: 0,
            cloud_requests: 0,
            peer_requests: 0,
            predicted_wait_prob_sum: 0.0,
            waited_requests: 0,
        }
    }

    /// `min(1, running / reserved)` — the same scale the round engines
    /// apply while VMs boot toward the plan.
    fn online_scale(&self) -> f64 {
        if self.reserved_total > 0.0 {
            (self.running / self.reserved_total).min(1.0)
        } else {
            0.0
        }
    }

    /// Integrates the piecewise-constant used rate up to `now`.
    fn advance(&mut self, now: f64) {
        debug_assert!(now >= self.last_t);
        self.window_used += self.used_rate_total * (now - self.last_t);
        self.last_t = now;
    }

    /// Recomputes channel `c`'s cloud take after a state change.
    fn refresh_channel(&mut self, c: usize) {
        let cap = self.reserved[c] * self.online_scale();
        let ch = &mut self.channels[c];
        let new = (ch.busy as f64 * self.vm_bandwidth).min(cap);
        self.used_rate_total += new - ch.used_rate;
        ch.used_rate = new;
    }

    /// Flushes and returns ∫ used dt since the previous flush.
    pub(crate) fn window_used(&mut self, now: f64) -> f64 {
        self.advance(now);
        std::mem::take(&mut self.window_used)
    }

    /// The recorded admission waits (consumes them).
    pub(crate) fn take_waits(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.waits)
    }

    /// Completed transfers.
    pub(crate) fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Requests routed to the cloud queue / served by peers.
    pub(crate) fn request_split(&self) -> (u64, u64) {
        (self.cloud_requests, self.peer_requests)
    }

    /// Requests redirected to the remote overflow site.
    pub(crate) fn redirected_requests(&self) -> u64 {
        self.redirected
    }

    /// Mean Erlang-C wait probability predicted at admission over all
    /// cloud requests, and the fraction that measurably waited — the
    /// model-vs-measured pair the report prints.
    pub(crate) fn wait_model_check(&self) -> (f64, f64) {
        if self.cloud_requests == 0 {
            return (0.0, 0.0);
        }
        (
            self.predicted_wait_prob_sum / self.cloud_requests as f64,
            self.waited_requests as f64 / self.cloud_requests as f64,
        )
    }

    /// Puts a request into service on channel `c` now; it waited since
    /// `enqueued_at`.
    fn start_service(&mut self, kernel: &mut Kernel<CmEvent>, c: usize, req: QueuedRequest) {
        let now = kernel.now();
        let wait = now - req.enqueued_at;
        self.waits.push(wait as f32);
        if wait > 1e-9 {
            self.waited_requests += 1;
        }
        self.channels[c].busy += 1;
        self.refresh_channel(c);
        let service = self.chunk_bytes / self.vm_bandwidth;
        // Release fires before delivery at the same instant (FIFO), so a
        // queued request takes the freed server before the delivered
        // session's follow-up request arrives.
        kernel.schedule_in(
            service,
            ADMISSION,
            CmEvent::TransferDone {
                channel: c,
                cloud: true,
            },
        );
        kernel.schedule_in(
            service,
            SESSIONS,
            CmEvent::Delivered {
                session: req.session,
                chunk: req.chunk,
                admission_wait: wait,
            },
        );
    }

    /// Starts queued requests while channel `c` has free servers.
    fn drain_queue(&mut self, kernel: &mut Kernel<CmEvent>, c: usize) {
        while self.channels[c].busy < self.channels[c].servers {
            let Some(req) = self.channels[c].waiting.pop_front() else {
                break;
            };
            self.start_service(kernel, c, req);
        }
    }

    /// Re-derives channel `c`'s server count from the current capacity
    /// and serves whatever the new capacity admits.
    fn resize_channel(&mut self, kernel: &mut Kernel<CmEvent>, c: usize) {
        let cap = self.reserved[c] * self.online_scale();
        // The epsilon absorbs float noise in `running / reserved`: a
        // channel holding exactly one VM of a fully booted plan must see
        // m = 1, not floor(0.99…).
        self.channels[c].servers = (cap / self.vm_bandwidth + 1e-6).floor() as usize;
        self.refresh_channel(c);
        self.drain_queue(kernel, c);
    }
}

impl Component<CmEvent> for Admission {
    fn handle(&mut self, event: Event<CmEvent>, kernel: &mut Kernel<CmEvent>) {
        let now = event.time;
        match event.payload {
            CmEvent::ChunkRequest {
                session,
                channel,
                chunk,
                owner_upload,
            } => {
                self.advance(now);
                let c = channel;
                // Channel λ EWMA from observed inter-request gaps (zero
                // gaps — simultaneous requests — count, or λ would read
                // low under clustered arrivals).
                {
                    let ch = &mut self.channels[c];
                    if ch.last_req_t >= 0.0 && now >= ch.last_req_t {
                        let gap = now - ch.last_req_t;
                        ch.mean_gap = if ch.mean_gap > 0.0 {
                            (1.0 - GAP_EWMA_WEIGHT) * ch.mean_gap + GAP_EWMA_WEIGHT * gap
                        } else {
                            gap
                        };
                    }
                    ch.last_req_t = now;
                }

                // Peers serve first, the cloud covers the residual —
                // the fluid allocator's order, realized per request. The
                // mesh is a fleet of `round(pool / per-connection
                // bandwidth)` transfer slots (nearest-slot rounding: see
                // the module docs): a request takes one iff some peer
                // owns the chunk (the fluid `owner_upload` constraint)
                // and a slot is free; otherwise it falls through to the
                // cloud. Slots bound aggregate peer throughput by the
                // physical pool (to within half a connection) —
                // per-transfer "fair share" rates would not (the early
                // transfers keep their high frozen rates while later
                // ones join, a harmonic-sum leak).
                let pool = self.channels[c].pool;
                let n_peer = self.channels[c].active_peer;
                let peer_slots = (pool / self.vm_bandwidth).round() as u64;
                let peer_ok = self.p2p && owner_upload > 0.0 && n_peer < peer_slots;
                if peer_ok {
                    self.peer_requests += 1;
                    let ch = &mut self.channels[c];
                    ch.active_peer += 1;
                    let transfer = self.chunk_bytes / self.vm_bandwidth;
                    self.waits.push(0.0);
                    kernel.schedule_in(
                        transfer,
                        ADMISSION,
                        CmEvent::TransferDone {
                            channel: c,
                            cloud: false,
                        },
                    );
                    kernel.schedule_in(
                        transfer,
                        SESSIONS,
                        CmEvent::Delivered {
                            session,
                            chunk,
                            admission_wait: 0.0,
                        },
                    );
                    return;
                }

                // Federation hook: a request that would have to *queue*
                // locally (every online server busy) may instead take a
                // free slot at the remote overflow site — served
                // immediately, delivered late by the inter-region
                // latency, and never touching the local queue or the
                // local used-bandwidth meter. (With redirection active
                // the local queue is an overflow system, so the Erlang-C
                // check below applies to the non-redirected stream only.)
                if self.channels[c].busy >= self.channels[c].servers {
                    if let Some(remote) = &mut self.remote {
                        if remote.busy < remote.slots {
                            remote.busy += 1;
                            self.redirected += 1;
                            self.waits.push(0.0);
                            let transfer = self.chunk_bytes / self.vm_bandwidth;
                            kernel.schedule_in(transfer, ADMISSION, CmEvent::RemoteTransferDone);
                            kernel.schedule_in(
                                transfer + remote.extra_latency,
                                SESSIONS,
                                CmEvent::Delivered {
                                    session,
                                    chunk,
                                    admission_wait: 0.0,
                                },
                            );
                            return;
                        }
                    }
                }

                // Cloud-served: record the analytic wait prediction at
                // the measured operating point, then queue FIFO. The
                // cloud-facing rate is the residual of the measured
                // request rate after the mesh's share.
                self.cloud_requests += 1;
                let m = self.channels[c].servers;
                let mu = self.vm_bandwidth / self.chunk_bytes;
                let lambda = self.channels[c].lambda();
                let peer_share = if self.p2p && lambda > 0.0 {
                    (pool / (lambda * self.chunk_bytes)).min(1.0)
                } else {
                    0.0
                };
                let lambda_cloud = lambda * (1.0 - peer_share);
                self.predicted_wait_prob_sum += erlang_c_wait_probability(m, lambda_cloud / mu);
                let req = QueuedRequest {
                    session,
                    chunk,
                    enqueued_at: now,
                };
                if self.channels[c].busy < m {
                    self.start_service(kernel, c, req);
                } else {
                    self.channels[c].waiting.push_back(req);
                }
            }
            CmEvent::TransferDone { channel, cloud } => {
                self.advance(now);
                self.deliveries += 1;
                if cloud {
                    debug_assert!(self.channels[channel].busy > 0);
                    self.channels[channel].busy -= 1;
                    self.refresh_channel(channel);
                    self.drain_queue(kernel, channel);
                } else {
                    debug_assert!(self.channels[channel].active_peer > 0);
                    self.channels[channel].active_peer -= 1;
                }
            }
            CmEvent::RemoteTransferDone => {
                self.advance(now);
                self.deliveries += 1;
                let remote = self.remote.as_mut().expect("remote transfers need a pool");
                debug_assert!(remote.busy > 0);
                remote.busy -= 1;
            }
            CmEvent::PoolUpdate {
                channel,
                usable_upload,
            } => {
                // Pools feed future admission decisions only; the used
                // meter tracks cloud transfers.
                self.channels[channel].pool = usable_upload;
            }
            CmEvent::CapacityUpdate {
                channel_reserved,
                running_bandwidth,
            } => {
                self.advance(now);
                self.reserved_total = channel_reserved.iter().sum();
                self.reserved = channel_reserved;
                self.running = running_bandwidth;
                for c in 0..self.channels.len() {
                    self.resize_channel(kernel, c);
                }
            }
            other => unreachable!("admission received {other:?}"),
        }
    }
}
