//! The viewer-sessions component.
//!
//! Owns every connected session: arrivals (pulled lazily from the
//! streaming trace iterator, one `NextArrival` event per arrival),
//! the viewing-model walk after each delivered chunk, prefetch gating,
//! stall accounting, and departures. Everything the rest of the system
//! needs to know leaves as events: `ChunkRequest` / `PoolUpdate` to the
//! admission component, `TrackJoin` / `TrackTransition` / `TrackLeave`
//! to the provisioner's tracker — exactly the measurements the paper's
//! tracking server collects.

use std::collections::BTreeMap;

use cloudmedia_des::{Component, Event, Kernel};
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::distributions::BoundedPareto;
use cloudmedia_workload::trace::{ArrivalStream, UserArrival};
use cloudmedia_workload::viewing::NextAction;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::events::{CmEvent, ADMISSION, PROVISIONER, SESSIONS};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::peer::{PendingChunk, PREFETCH_WINDOWS};

/// Session ids injected by flash-crowd bursts start here, far above any
/// trace user id.
const SYNTHETIC_ID_BASE: u64 = 1 << 40;

/// What one session is doing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SessState {
    /// A chunk request is in flight (admission wait + transfer).
    Downloading {
        chunk: usize,
        /// Playback deadline; `+inf` for the first chunk.
        deadline: f64,
    },
    /// Gated prefetch or pre-departure playback drain.
    Waiting { next: Option<PendingChunk> },
}

/// One connected viewer session.
#[derive(Debug, Clone, Copy)]
struct Session {
    channel: usize,
    /// Efficiency-scaled upload contribution, bytes/s.
    usable_upload: f64,
    /// Buffered-chunk bitmap.
    buffer: u64,
    state: SessState,
    last_stall_at: Option<f64>,
    joined_at: f64,
}

/// Point-in-time quality snapshot handed to the engine's sampler.
#[derive(Debug)]
pub(crate) struct QualitySnapshot {
    pub quality: f64,
    pub active: usize,
    pub per_channel_peers: Vec<usize>,
    pub per_channel_quality: Vec<f64>,
    pub mean_startup_delay: f64,
}

/// The sessions component; see the module docs.
#[derive(Debug)]
pub struct Sessions {
    catalog: Catalog,
    rng: StdRng,
    chunk_seconds: f64,
    eff: f64,
    sample_window: f64,
    stream: ArrivalStream,
    /// The arrival the pending `NextArrival` event will admit.
    pending_arrival: Option<UserArrival>,
    /// Connected sessions, ordered by id (deterministic iteration).
    sessions: BTreeMap<u64, Session>,
    /// Usable (efficiency-scaled) upload pool per channel.
    pool: Vec<f64>,
    /// Per-channel, per-chunk usable upload of the chunk's owners — the
    /// fluid allocator's `owner_upload` constraint, maintained
    /// incrementally on buffer additions and departures.
    owner_upload: Vec<Vec<f64>>,
    /// Upload-capacity distribution for injected viewers.
    upload_dist: BoundedPareto,
    next_synthetic_id: u64,
    injected: u64,
    /// The configuration's fault schedule (arrival shedding under
    /// [`crate::faults::DegradeMode::ShedNewArrivals`]).
    faults: crate::faults::FaultSchedule,
    /// Trace arrivals refused while shedding.
    shed: u64,
    /// Start-up delay accumulators for the current sample window.
    startup_sum: f64,
    startup_count: usize,
}

impl Sessions {
    /// Builds the component from the run configuration.
    ///
    /// # Errors
    ///
    /// Propagates trace-configuration validation failures.
    pub(crate) fn new(cfg: &SimConfig) -> Result<Self, SimError> {
        let stream = ArrivalStream::new(&cfg.catalog, &cfg.trace)?;
        let upload_dist = BoundedPareto::new(
            cfg.trace.upload_min_bps,
            cfg.trace.upload_max_bps,
            cfg.trace.upload_shape,
        )?;
        Ok(Self {
            catalog: cfg.catalog.clone(),
            rng: StdRng::seed_from_u64(cfg.behaviour_seed),
            chunk_seconds: cfg.chunk_seconds,
            eff: cfg.peer_efficiency,
            sample_window: cfg.sample_interval,
            stream,
            pending_arrival: None,
            sessions: BTreeMap::new(),
            pool: vec![0.0; cfg.catalog.len()],
            owner_upload: cfg
                .catalog
                .channels()
                .iter()
                .map(|spec| vec![0.0; spec.viewing.chunks])
                .collect(),
            upload_dist,
            next_synthetic_id: SYNTHETIC_ID_BASE,
            injected: 0,
            faults: cfg.faults.clone(),
            shed: 0,
            startup_sum: 0.0,
            startup_count: 0,
        })
    }

    /// Pulls the first trace arrival and schedules its `NextArrival`.
    pub(crate) fn schedule_first_arrival(&mut self, kernel: &mut Kernel<CmEvent>) {
        if let Some(a) = self.stream.next() {
            kernel.schedule_at(a.time, SESSIONS, CmEvent::NextArrival);
            self.pending_arrival = Some(a);
        }
    }

    /// Viewers injected by flash-crowd bursts so far.
    pub(crate) fn injected_viewers(&self) -> u64 {
        self.injected
    }

    /// Trace arrivals refused by the shedding degrade policy so far.
    pub(crate) fn shed_arrivals(&self) -> u64 {
        self.shed
    }

    /// Admits one viewer: creates the session and announces it.
    fn join(
        &mut self,
        kernel: &mut Kernel<CmEvent>,
        id: u64,
        channel: usize,
        start_chunk: usize,
        upload: f64,
    ) {
        let now = kernel.now();
        let usable = upload * self.eff;
        self.sessions.insert(
            id,
            Session {
                channel,
                usable_upload: usable,
                buffer: 0,
                state: SessState::Downloading {
                    chunk: start_chunk,
                    deadline: f64::INFINITY,
                },
                last_stall_at: None,
                joined_at: now,
            },
        );
        self.pool[channel] += usable;
        kernel.schedule_in(
            0.0,
            ADMISSION,
            CmEvent::PoolUpdate {
                channel,
                usable_upload: self.pool[channel],
            },
        );
        kernel.schedule_in(
            0.0,
            PROVISIONER,
            CmEvent::TrackJoin {
                channel,
                chunk: start_chunk,
            },
        );
        kernel.schedule_in(
            0.0,
            ADMISSION,
            CmEvent::ChunkRequest {
                session: id,
                channel,
                chunk: start_chunk,
                owner_upload: self.owner_upload[channel]
                    .get(start_chunk)
                    .copied()
                    .unwrap_or(0.0),
            },
        );
    }

    /// Removes a departed session and announces the pool change.
    fn depart(&mut self, kernel: &mut Kernel<CmEvent>, id: u64) {
        let s = self
            .sessions
            .remove(&id)
            .expect("departing session is connected");
        self.pool[s.channel] = (self.pool[s.channel] - s.usable_upload).max(0.0);
        let mut bits = s.buffer;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if let Some(o) = self.owner_upload[s.channel].get_mut(k) {
                *o = (*o - s.usable_upload).max(0.0);
            }
        }
        kernel.schedule_in(
            0.0,
            ADMISSION,
            CmEvent::PoolUpdate {
                channel: s.channel,
                usable_upload: self.pool[s.channel],
            },
        );
    }

    /// Walks the viewing model after `chunk` finished (or was found
    /// buffered): starts/gates the next download or schedules departure.
    /// `play_end` is the playback end time of `chunk`.
    fn advance_playback(
        &mut self,
        kernel: &mut Kernel<CmEvent>,
        id: u64,
        chunk: usize,
        mut play_end: f64,
    ) {
        let now = kernel.now();
        let s = self.sessions.get(&id).expect("session is connected");
        let channel = s.channel;
        let buffer = s.buffer;
        let viewing = self.catalog.channel(channel).viewing;
        let mut current = chunk;
        loop {
            match viewing.sample_next(&mut self.rng, current) {
                NextAction::Watch(next) => {
                    kernel.schedule_in(
                        0.0,
                        PROVISIONER,
                        CmEvent::TrackTransition {
                            channel,
                            from: current,
                            to: next,
                        },
                    );
                    if buffer & (1u64 << next) != 0 {
                        // Already buffered (a jump back): plays straight
                        // from the buffer; decide again after it.
                        play_end += self.chunk_seconds;
                        current = next;
                        continue;
                    }
                    let gate = play_end - PREFETCH_WINDOWS * self.chunk_seconds;
                    let s = self.sessions.get_mut(&id).expect("session is connected");
                    if gate > now {
                        s.state = SessState::Waiting {
                            next: Some(PendingChunk {
                                chunk: next,
                                deadline: play_end,
                            }),
                        };
                        kernel.schedule_at(gate, SESSIONS, CmEvent::Wake { session: id });
                    } else {
                        s.state = SessState::Downloading {
                            chunk: next,
                            deadline: play_end,
                        };
                        kernel.schedule_in(
                            0.0,
                            ADMISSION,
                            CmEvent::ChunkRequest {
                                session: id,
                                channel,
                                chunk: next,
                                owner_upload: self.owner_upload[channel]
                                    .get(next)
                                    .copied()
                                    .unwrap_or(0.0),
                            },
                        );
                    }
                    return;
                }
                NextAction::Leave => {
                    kernel.schedule_in(
                        0.0,
                        PROVISIONER,
                        CmEvent::TrackLeave {
                            channel,
                            from: current,
                        },
                    );
                    if play_end <= now {
                        self.depart(kernel, id);
                    } else {
                        // Drain playback (still uploading), then depart.
                        let s = self.sessions.get_mut(&id).expect("session is connected");
                        s.state = SessState::Waiting { next: None };
                        kernel.schedule_at(play_end, SESSIONS, CmEvent::Wake { session: id });
                    }
                    return;
                }
            }
        }
    }

    /// Builds the quality sample for `[now - window, now]` and resets the
    /// start-up accumulators.
    pub(crate) fn quality_snapshot(&mut self, now: f64) -> QualitySnapshot {
        let n_channels = self.pool.len();
        let mut per_channel_peers = vec![0usize; n_channels];
        let mut per_channel_smooth = vec![0usize; n_channels];
        let mut smooth = 0usize;
        for s in self.sessions.values() {
            per_channel_peers[s.channel] += 1;
            let stalled_recently = s
                .last_stall_at
                .is_some_and(|t| t >= now - self.sample_window);
            let overdue = matches!(
                s.state,
                SessState::Downloading { deadline, .. } if now > deadline
            );
            if !stalled_recently && !overdue {
                smooth += 1;
                per_channel_smooth[s.channel] += 1;
            }
        }
        let active = self.sessions.len();
        let quality = if active == 0 {
            1.0
        } else {
            smooth as f64 / active as f64
        };
        let per_channel_quality = per_channel_peers
            .iter()
            .zip(&per_channel_smooth)
            .map(|(&n, &s)| if n == 0 { 1.0 } else { s as f64 / n as f64 })
            .collect();
        let mean_startup_delay = if self.startup_count > 0 {
            self.startup_sum / self.startup_count as f64
        } else {
            0.0
        };
        self.startup_sum = 0.0;
        self.startup_count = 0;
        QualitySnapshot {
            quality,
            active,
            per_channel_peers,
            per_channel_quality,
            mean_startup_delay,
        }
    }
}

impl Component<CmEvent> for Sessions {
    fn handle(&mut self, event: Event<CmEvent>, kernel: &mut Kernel<CmEvent>) {
        let now = event.time;
        match event.payload {
            CmEvent::NextArrival => {
                let a = self
                    .pending_arrival
                    .take()
                    .expect("a NextArrival event always has its arrival staged");
                debug_assert_eq!(a.time, now);
                // Graceful degradation: during an active fleet-failure
                // window with ShedNewArrivals, refuse admission.
                if self.faults.shed_arrivals_at(a.time) {
                    self.shed += 1;
                } else {
                    self.join(
                        kernel,
                        a.user_id,
                        a.channel,
                        a.start_chunk,
                        a.upload_bytes_per_sec,
                    );
                }
                if let Some(next) = self.stream.next() {
                    kernel.schedule_at(next.time, SESSIONS, CmEvent::NextArrival);
                    self.pending_arrival = Some(next);
                }
            }
            CmEvent::FlashCrowd {
                channel,
                extra,
                window,
            } => {
                // Sub-round timing: each injected viewer lands at its own
                // uniformly sampled instant inside the window.
                for _ in 0..extra {
                    let dt = self.rng.random::<f64>() * window;
                    let upload = self.upload_dist.sample(&mut self.rng);
                    kernel.schedule_in(dt, SESSIONS, CmEvent::SyntheticJoin { channel, upload });
                }
            }
            CmEvent::SyntheticJoin { channel, upload } => {
                let start_chunk = self
                    .catalog
                    .channel(channel)
                    .viewing
                    .sample_start_chunk(&mut self.rng);
                let id = self.next_synthetic_id;
                self.next_synthetic_id += 1;
                self.injected += 1;
                self.join(kernel, id, channel, start_chunk, upload);
            }
            CmEvent::Wake { session } => {
                let s = self
                    .sessions
                    .get_mut(&session)
                    .expect("waiting sessions stay until they wake");
                let SessState::Waiting { next } = s.state else {
                    unreachable!("wake events target waiting sessions");
                };
                match next {
                    Some(pending) => {
                        let channel = s.channel;
                        s.state = SessState::Downloading {
                            chunk: pending.chunk,
                            deadline: pending.deadline,
                        };
                        kernel.schedule_in(
                            0.0,
                            ADMISSION,
                            CmEvent::ChunkRequest {
                                session,
                                channel,
                                chunk: pending.chunk,
                                owner_upload: self.owner_upload[channel]
                                    .get(pending.chunk)
                                    .copied()
                                    .unwrap_or(0.0),
                            },
                        );
                    }
                    None => self.depart(kernel, session),
                }
            }
            CmEvent::Delivered { session, chunk, .. } => {
                let s = self
                    .sessions
                    .get_mut(&session)
                    .expect("downloads belong to connected sessions");
                let SessState::Downloading {
                    chunk: cur,
                    deadline,
                } = s.state
                else {
                    unreachable!("deliveries target downloading sessions");
                };
                debug_assert_eq!(cur, chunk);
                s.buffer |= 1u64 << chunk;
                let (ch, usable) = (s.channel, s.usable_upload);
                if let Some(o) = self.owner_upload[ch].get_mut(chunk) {
                    *o += usable;
                }
                if deadline.is_finite() {
                    if now > deadline {
                        s.last_stall_at = Some(now);
                    }
                } else {
                    // First chunk: playback starts now.
                    self.startup_sum += now - s.joined_at;
                    self.startup_count += 1;
                }
                let play_start = if deadline.is_finite() {
                    deadline.max(now)
                } else {
                    now
                };
                self.advance_playback(kernel, session, chunk, play_start + self.chunk_seconds);
            }
            other => unreachable!("sessions received {other:?}"),
        }
    }
}
