//! The engine's event vocabulary and component addresses.

use cloudmedia_des::ComponentId;

/// The viewer-sessions component.
pub(crate) const SESSIONS: ComponentId = ComponentId(0);
/// The admission/service component.
pub(crate) const ADMISSION: ComponentId = ComponentId(1);
/// The provisioning component (tracker + planner + broker + billing).
pub(crate) const PROVISIONER: ComponentId = ComponentId(2);
/// The engine itself (metrics sampling).
pub(crate) const ENGINE: ComponentId = ComponentId(3);

/// Every event the CloudMedia components exchange. One enum keeps the
/// dispatch exhaustively type-checked.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CmEvent {
    // ---- delivered to SESSIONS ----
    /// The next trace arrival is due: admit it and schedule the one after.
    NextArrival,
    /// A flash-crowd-injected viewer joins `channel`.
    SyntheticJoin {
        /// Channel joined.
        channel: usize,
        /// Upload capacity, bytes/s.
        upload: f64,
    },
    /// A waiting session's timer fired (prefetch gate opened, or playback
    /// drained before departure).
    Wake {
        /// Session id.
        session: u64,
    },
    /// A requested chunk finished downloading.
    Delivered {
        /// Session id.
        session: u64,
        /// The chunk delivered.
        chunk: usize,
        /// Admission wait the request experienced (for startup/stall
        /// attribution the session does not need it, but scenarios print
        /// per-delivery waits in debug runs).
        admission_wait: f64,
    },
    /// Scenario injection: `extra` viewers arrive at `channel` over the
    /// next `window` seconds.
    FlashCrowd {
        /// Channel hit.
        channel: usize,
        /// Extra viewers.
        extra: usize,
        /// Spread window, seconds.
        window: f64,
    },

    // ---- delivered to ADMISSION ----
    /// A session requests a chunk (the session tracks its own deadline).
    ChunkRequest {
        /// Session id.
        session: u64,
        /// Channel.
        channel: usize,
        /// Chunk requested.
        chunk: usize,
        /// Usable upload of the peers currently owning this chunk,
        /// bytes/s — the per-chunk supply constraint the fluid
        /// allocator's `owner_upload` imposes, snapshotted at request
        /// time by the sessions component (which owns the buffers).
        owner_upload: f64,
    },
    /// A transfer admitted earlier finishes now; release its server or
    /// pool share.
    TransferDone {
        /// Channel.
        channel: usize,
        /// True if the transfer was cloud-served (occupied a VM).
        cloud: bool,
    },
    /// A transfer redirected to the remote overflow site finishes now;
    /// release its remote slot (remote slots are one global pool, so no
    /// channel is needed).
    RemoteTransferDone,
    /// The sessions component's usable upload pool for `channel` changed.
    PoolUpdate {
        /// Channel.
        channel: usize,
        /// Pool of usable (efficiency-scaled) peer upload, bytes/s.
        usable_upload: f64,
    },
    /// The provisioner announces the current cloud capacity.
    CapacityUpdate {
        /// Bandwidth reserved per channel by the current plan, bytes/s.
        channel_reserved: Vec<f64>,
        /// Bandwidth of VMs actually running (boot/shutdown aware).
        running_bandwidth: f64,
    },

    // ---- delivered to PROVISIONER ----
    /// Hourly provisioning boundary.
    ProvisionTick,
    /// A VM lifecycle transition is due: advance the cloud and
    /// re-announce capacity.
    CloudSync,
    /// Scenario injection: a fraction of the fleet fails now.
    VmFailure {
        /// Fraction of each cluster's active instances lost.
        fraction: f64,
    },
    /// A scheduled repair is due: lift the availability cap and restore
    /// the last planned VM targets.
    VmRecovery,
    /// Tracker measurement: a viewer joined `channel` at `chunk`.
    TrackJoin {
        /// Channel.
        channel: usize,
        /// Start chunk.
        chunk: usize,
    },
    /// Tracker measurement: a chunk-to-chunk transition.
    TrackTransition {
        /// Channel.
        channel: usize,
        /// From chunk.
        from: usize,
        /// To chunk.
        to: usize,
    },
    /// Tracker measurement: a departure after `from`.
    TrackLeave {
        /// Channel.
        channel: usize,
        /// Last chunk watched.
        from: usize,
    },

    // ---- delivered to ENGINE ----
    /// Metrics sampling boundary.
    SampleTick,
}
