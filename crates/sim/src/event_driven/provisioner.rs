//! The provisioning component: the paper's control path, event-driven.
//!
//! Runs the *identical* hourly pipeline as the round engines — tracker
//! measurements (fed by `Track*` events from the sessions component)
//! into the model-driven controller or a baseline planner, the resulting
//! VM targets and placement through the cloud broker, usage-time billing
//! — but at event granularity: boot and shutdown completions fire
//! `CloudSync` events that re-announce the online capacity to the
//! admission component mid-interval, which is what makes VM boot delay
//! a first-class observable instead of a sub-round artifact.
//!
//! Failure injection: a `VmFailure { fraction }` event shuts down the
//! given fraction of each cluster's active instances immediately (they
//! stop serving traffic at once; billing runs until power-off, as a real
//! provider would meter a crashed-but-reserved instance). The next
//! provisioning tick re-plans from measured demand and relaunches.

use cloudmedia_cloud::broker::{
    scale_fleet_capacity, scale_nfs_capacity, Cloud, ResourceRequest, RetryPolicy, SlaTerms,
};
use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_cloud::scheduler::PlacementPlan;
use cloudmedia_cloud::vm::{DEFAULT_BOOT_SECONDS, DEFAULT_SHUTDOWN_SECONDS};
use cloudmedia_core::controller::ProvisioningPlan;
use cloudmedia_des::{Component, Event, Kernel};

use super::events::{CmEvent, ADMISSION, PROVISIONER};
use super::DesScenario;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::faults::{FaultSchedule, FaultStats};
use crate::metrics::IntervalRecord;
use crate::simulator::{bootstrap_stats, interval_record, make_planner, Planner};
use crate::tracker::Tracker;

/// The provisioning component; see the module docs.
#[derive(Debug)]
pub struct Provisioner {
    cloud: Cloud,
    sla: SlaTerms,
    planner: Planner,
    tracker: Tracker,
    provisioning_interval: f64,
    n_channels: usize,
    channel_reserved: Vec<f64>,
    current_placement: Option<PlacementPlan>,
    /// Connected sessions per channel, maintained from join/leave
    /// tracking events.
    counts: Vec<usize>,
    intervals: Vec<IntervalRecord>,
    first_interval: bool,
    /// Run horizon; provisioning ticks fire strictly before it (the
    /// round engines' `while clock < horizon` boundary), so the DES run
    /// records the same interval count and never plans a fleet that
    /// could not serve.
    horizon: f64,
    boot_seconds: f64,
    shutdown_seconds: f64,
    vm_bandwidth: f64,
    vms_killed: u64,
    /// First control-path failure; the engine surfaces it after the run.
    error: Option<SimError>,
    /// Precomputed bootstrap observations for the very first interval.
    bootstrap: Vec<(usize, cloudmedia_core::predictor::ChannelObservation)>,
    /// The configuration's fault schedule (availability caps, tracker
    /// dropouts, cost shocks).
    faults: FaultSchedule,
    /// Broker retry policy for provisioning submissions.
    retry: RetryPolicy,
    /// Fault-plane counters.
    stats: FaultStats,
    /// VM targets of the last planned interval — what a repair restores.
    last_vm_targets: Vec<usize>,
    /// Last successfully planned interval (placement stripped), replayed
    /// when the tracker is dark.
    last_plan: Option<ProvisioningPlan>,
    /// Budget-shock factor already folded into the planner's budget.
    applied_budget_factor: f64,
}

impl Provisioner {
    /// Builds the component: cloud (with scenario latency overrides),
    /// planner, tracker.
    ///
    /// # Errors
    ///
    /// Propagates cloud and controller construction failures.
    pub(crate) fn new(cfg: &SimConfig, scenario: &DesScenario) -> Result<Self, SimError> {
        let boot_seconds = scenario.vm_boot_seconds.unwrap_or(DEFAULT_BOOT_SECONDS);
        let shutdown_seconds = scenario
            .vm_shutdown_seconds
            .unwrap_or(DEFAULT_SHUTDOWN_SECONDS);
        let cloud = Cloud::new(
            scale_fleet_capacity(&paper_virtual_clusters(), cfg.fleet_scale),
            scale_nfs_capacity(&paper_nfs_clusters(), cfg.fleet_scale),
            cfg.chunk_bytes() as u64,
        )?
        .with_vm_latencies(boot_seconds, shutdown_seconds);
        let sla = cloud.sla_terms();
        let vm_bandwidth = sla.virtual_clusters[0].vm_bandwidth_bytes_per_sec;
        let planner = make_planner(cfg, vm_bandwidth)?;
        let tracker = Tracker::new(&cfg.catalog)?;
        let n_channels = cfg.catalog.len();
        Ok(Self {
            cloud,
            sla,
            planner,
            tracker,
            provisioning_interval: cfg.provisioning_interval,
            n_channels,
            channel_reserved: vec![0.0; n_channels],
            current_placement: None,
            counts: vec![0; n_channels],
            intervals: Vec::new(),
            first_interval: true,
            horizon: cfg.trace.horizon_seconds,
            boot_seconds,
            shutdown_seconds,
            vm_bandwidth,
            vms_killed: 0,
            error: None,
            bootstrap: bootstrap_stats(&cfg.catalog, cfg),
            faults: cfg.faults.clone(),
            retry: RetryPolicy::paper_default(),
            stats: FaultStats::default(),
            last_vm_targets: Vec::new(),
            last_plan: None,
            applied_budget_factor: 1.0,
        })
    }

    /// Per-VM bandwidth of the paper's Standard cluster (the admission
    /// component's per-connection cap).
    pub(crate) fn vm_bandwidth(&self) -> f64 {
        self.vm_bandwidth
    }

    /// Bandwidth of VMs currently running, bytes/s.
    pub(crate) fn running_bandwidth(&self) -> f64 {
        self.cloud.running_bandwidth()
    }

    /// Settles cloud lifecycle and billing to the end of the run.
    pub(crate) fn finish(&mut self, horizon: f64) -> Result<(), SimError> {
        self.cloud.tick(horizon)?;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        Ok(())
    }

    /// The recorded provisioning intervals (consumes them).
    pub(crate) fn take_intervals(&mut self) -> Vec<IntervalRecord> {
        std::mem::take(&mut self.intervals)
    }

    /// Total VM rental cost so far, dollars.
    pub(crate) fn vm_cost(&self) -> f64 {
        self.cloud.billing().vm_cost().as_dollars()
    }

    /// Total storage cost so far, dollars.
    pub(crate) fn storage_cost(&self) -> f64 {
        self.cloud.billing().storage_cost().as_dollars()
    }

    /// Instances killed by failure injections.
    pub(crate) fn vms_killed(&self) -> u64 {
        self.vms_killed
    }

    /// The fault-plane counters (consumes them).
    pub(crate) fn take_fault_stats(&mut self) -> FaultStats {
        self.stats.vms_killed = self.vms_killed;
        std::mem::take(&mut self.stats)
    }

    /// Announces the current capacity to the admission component.
    fn announce_capacity(&self, kernel: &mut Kernel<CmEvent>) {
        kernel.schedule_in(
            0.0,
            ADMISSION,
            CmEvent::CapacityUpdate {
                channel_reserved: self.channel_reserved.clone(),
                running_bandwidth: self.cloud.running_bandwidth(),
            },
        );
    }

    /// One provisioning interval: measure, plan, submit, record.
    fn provision(&mut self, now: f64, kernel: &mut Kernel<CmEvent>) -> Result<(), SimError> {
        self.cloud.tick(now)?;
        // Mid-run cost shocks, folded in exactly as the round loop does.
        let (budget_factor, price_factor) = self.faults.shock_factors(now);
        if budget_factor != self.applied_budget_factor {
            self.planner
                .scale_vm_budget(budget_factor / self.applied_budget_factor)?;
            self.applied_budget_factor = budget_factor;
        }
        let planning_sla = if price_factor == 1.0 {
            self.sla.clone()
        } else {
            self.sla.with_vm_price_factor(price_factor)
        };
        let bootstrap = self.first_interval;
        let plan = if !bootstrap && self.faults.dropout_active(now) && self.last_plan.is_some() {
            // Tracker blackout: drain the lost measurements and replay
            // the last-known-good plan.
            let _ = self.tracker.interval_stats(self.provisioning_interval)?;
            self.stats.fallback_intervals += 1;
            self.last_plan.clone().expect("checked is_some above")
        } else {
            let stats = if bootstrap {
                self.first_interval = false;
                self.bootstrap.clone()
            } else {
                self.tracker.interval_stats(self.provisioning_interval)?
            };
            self.planner.plan_interval(&stats, &planning_sla)?
        };
        if let Some(p) = &plan.placement {
            self.current_placement = Some(p.clone());
        }
        let receipt = self.cloud.submit_with_retry(
            &ResourceRequest {
                vm_targets: plan.vm_targets.clone(),
                placement: plan.placement.clone(),
            },
            &self.retry,
        )?;
        self.stats.record_receipt(&receipt);
        self.last_vm_targets = plan.vm_targets.clone();
        self.channel_reserved.iter_mut().for_each(|v| *v = 0.0);
        for (key, allocs) in &plan.vm_plan.allocations {
            if key.channel >= self.n_channels {
                continue;
            }
            let bw: f64 = allocs
                .iter()
                .map(|a| a.vms * self.sla.virtual_clusters[a.cluster].vm_bandwidth_bytes_per_sec)
                .sum();
            self.channel_reserved[key.channel] += bw;
        }
        self.intervals.push(interval_record(
            now,
            &plan,
            self.current_placement.as_ref(),
            &self.sla,
            self.n_channels,
            self.counts.clone(),
        ));
        let mut stored = plan;
        stored.placement = None;
        self.last_plan = Some(stored);
        // Reserved changed now; running changes when boots/shutdowns
        // complete — sync capacity at both lifecycle instants.
        self.announce_capacity(kernel);
        kernel.schedule_in(self.boot_seconds, PROVISIONER, CmEvent::CloudSync);
        kernel.schedule_in(self.shutdown_seconds, PROVISIONER, CmEvent::CloudSync);
        // Ticks fire strictly inside the horizon, like the round loop's
        // `while clock < horizon` — a tick *at* the horizon would plan a
        // fleet that never serves and record a phantom interval.
        if now + self.provisioning_interval < self.horizon {
            kernel.schedule_in(
                self.provisioning_interval,
                PROVISIONER,
                CmEvent::ProvisionTick,
            );
        }
        Ok(())
    }

    /// Applies the fault schedule's availability cap for instant `now`
    /// (full availability when no scheduled failure is active — scenario
    /// failures never cap, preserving their historical semantics).
    fn sync_availability(&mut self, now: f64) -> Result<(), SimError> {
        let max_vms: Vec<usize> = self
            .cloud
            .vm_scheduler()
            .specs()
            .iter()
            .map(|s| s.max_vms)
            .collect();
        match self.faults.fleet_caps_at(&max_vms, now) {
            Some(caps) => self.cloud.set_availability(&caps)?,
            None => self.cloud.restore_full_availability(),
        }
        Ok(())
    }

    /// Kills `fraction` of each cluster's active instances.
    fn fail_vms(
        &mut self,
        now: f64,
        fraction: f64,
        kernel: &mut Kernel<CmEvent>,
    ) -> Result<(), SimError> {
        self.cloud.tick(now)?;
        self.sync_availability(now)?;
        let fraction = fraction.clamp(0.0, 1.0);
        let clusters = self.cloud.vm_scheduler().clusters();
        let mut targets = Vec::with_capacity(clusters);
        let mut killed = 0u64;
        for c in 0..clusters {
            let active = self.cloud.vm_scheduler().running(c);
            let survivors = (((active as f64) * (1.0 - fraction)).floor() as usize)
                .min(self.cloud.capacity_limit(c));
            killed += (active - survivors) as u64;
            targets.push(survivors);
        }
        self.vms_killed += killed;
        self.cloud.submit_request(&ResourceRequest {
            vm_targets: targets,
            placement: None,
        })?;
        // Shutting-down instances stop serving immediately; announce the
        // loss now and settle billing when they power off.
        self.announce_capacity(kernel);
        kernel.schedule_in(self.shutdown_seconds, PROVISIONER, CmEvent::CloudSync);
        Ok(())
    }

    /// A scheduled repair: lift the availability cap (to whatever any
    /// still-active failure allows) and relaunch the last planned VM
    /// targets through the retry policy.
    fn recover_vms(&mut self, now: f64, kernel: &mut Kernel<CmEvent>) -> Result<(), SimError> {
        self.cloud.tick(now)?;
        self.sync_availability(now)?;
        if !self.last_vm_targets.is_empty() {
            let receipt = self.cloud.submit_with_retry(
                &ResourceRequest {
                    vm_targets: self.last_vm_targets.clone(),
                    placement: None,
                },
                &self.retry,
            )?;
            self.stats.vms_recovered += receipt.vm_targets.iter().map(|&t| t as u64).sum::<u64>();
            self.stats.record_receipt(&receipt);
        }
        // Reserved capacity changed now; running capacity follows when
        // the relaunched instances finish booting.
        self.announce_capacity(kernel);
        kernel.schedule_in(self.boot_seconds, PROVISIONER, CmEvent::CloudSync);
        Ok(())
    }
}

impl Component<CmEvent> for Provisioner {
    fn handle(&mut self, event: Event<CmEvent>, kernel: &mut Kernel<CmEvent>) {
        let now = event.time;
        if self.error.is_some() {
            // The control path already failed; ignore further control
            // events and let the engine surface the stored error.
            return;
        }
        let result = match event.payload {
            CmEvent::ProvisionTick => self.provision(now, kernel),
            CmEvent::CloudSync => self.cloud.tick(now).map_err(SimError::from).map(|()| {
                self.announce_capacity(kernel);
            }),
            CmEvent::VmFailure { fraction } => self.fail_vms(now, fraction, kernel),
            CmEvent::VmRecovery => self.recover_vms(now, kernel),
            CmEvent::TrackJoin { channel, chunk } => {
                self.tracker.record_join(channel, chunk);
                self.counts[channel] += 1;
                Ok(())
            }
            CmEvent::TrackTransition { channel, from, to } => {
                self.tracker.record_transition(channel, from, to);
                Ok(())
            }
            CmEvent::TrackLeave { channel, from } => {
                self.tracker.record_leave(channel, from);
                self.counts[channel] = self.counts[channel].saturating_sub(1);
                Ok(())
            }
            other => unreachable!("provisioner received {other:?}"),
        };
        if let Err(e) = result {
            self.error = Some(e);
        }
    }
}
