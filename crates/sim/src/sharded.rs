//! The sharded channel-parallel round engine ([`SimKernel::Sharded`]).
//!
//! The single-site round engines ([`SimKernel::Indexed`] /
//! [`SimKernel::Scan`]) thread every channel through one behaviour RNG
//! and one event loop, which caps a run at one core no matter how many
//! channels the catalog holds. This module removes that cap for
//! scale-out experiments — thousands of channels, millions of
//! concurrent viewers — by making **the channel the unit of state**:
//!
//! - Each channel is a [`ChannelShard`] owning its peers (struct-of-
//!   arrays hot fields inside its single-lane `IndexedEngine`: the
//!   fixed-point usable-upload units, the download-slot map, the
//!   download index), its lazy arrival sub-stream
//!   ([`cloudmedia_workload::trace::ChannelArrivals`]), its tracker
//!   collector, and its own behaviour RNG seeded with a splitmix child
//!   of [`SimConfig::behaviour_seed`]
//!   ([`cloudmedia_workload::trace::child_seed`]).
//! - Every round, shards step independently — arrivals, allocation,
//!   download progress, viewing-model events — and the run loop fans
//!   them across the rayon worker pool when
//!   [`SimConfig::parallel_channels`] is set.
//! - Everything the shards share is either **read-only during the
//!   fan-out** (the catalog, the per-channel reservations, the online
//!   scale — all snapshotted before dispatch, the same read-barrier
//!   discipline the federated simulator uses) or **reduced in fixed
//!   channel order after it** (the round's used cloud rate, interval
//!   statistics, sample assembly).
//!
//! # Determinism contract
//!
//! Serial execution, parallel execution, any worker-pool size, and any
//! shard-to-task grouping all produce **bit-identical**
//! [`Metrics`]. The argument:
//!
//! 1. No two shards ever write the same accumulator: peers never change
//!    channels, arrivals are generated per channel, and the engine state
//!    is per shard. The fan-out therefore cannot reorder any arithmetic
//!    *inside* a shard, and shards have no arithmetic *between* them.
//! 2. Every cross-shard sum (`Σ` used cloud rate, startup-delay window
//!    sums, sample aggregation) is computed by the coordinator after the
//!    barrier, iterating shards in ascending channel order — one fixed
//!    f64 addition sequence regardless of which thread finished first.
//! 3. Each shard's RNG stream is a pure function of
//!    `(behaviour_seed, channel id)`, and each shard's arrival stream is
//!    a pure function of `(trace seed, channel id)` — neither depends on
//!    scheduling, shard grouping, or thread count.
//!
//! # Sub-channel lanes
//!
//! A channel is the unit of *state*, but no longer the unit of *work*:
//! a flash-crowd channel holding most of the population would otherwise
//! Amdahl-cap the whole run on one core. Each shard's engine may
//! therefore fan its two per-round download passes (demand aggregation
//! and advance) out over fixed-order **sub-lanes** — contiguous
//! segments of the shard's download index — as nested rayon scopes.
//! Idle workers steal lane jobs from hot shards off the shared pool
//! queue (the vendored pool prefers same-scope jobs, so a worker
//! blocked on its own shard helps that shard first). Determinism holds
//! by the same two rules as the shard fan-out: sub-lanes never share an
//! accumulator (each writes private fixed-point partials), and the
//! partials are folded in fixed lane order — and since they are
//! *integers*, even the fold order could not change the sums. Lane
//! count is derived from [`SimConfig::lanes`] (0 = one lane per pool
//! thread, engaging only on genuinely hot shards; explicit values lower
//! the engagement threshold so tests can exercise the machinery on
//! small populations — see `LANE_MIN_AUTO` / `LANE_MIN_FORCED`).
//!
//! `crates/sim/tests/sharding.rs` pins serial ≡ parallel over random
//! configurations, `crates/sim/tests/lane_invariance.rs` extends the
//! pin over lane counts × thread counts × fault schedules, and the unit
//! tests below pin invariance to the shard-to-task grouping (the knob
//! thread count actually turns).
//!
//! Because each channel draws from its own RNG stream, a sharded run is
//! a *different sample of the same viewer-behaviour process* than an
//! `Indexed` run (which interleaves all channels through one RNG): the
//! two agree in distribution and in steady-state means, not
//! bit-for-bit. `docs/SCALING.md` discusses when that trade is the
//! right one.

use cloudmedia_cloud::broker::{scale_fleet_capacity, scale_nfs_capacity, Cloud, ResourceRequest};
use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_cloud::scheduler::PlacementPlan;
use cloudmedia_telemetry::Telemetry;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::stats::{ChannelStatsCollector, Observation};
use cloudmedia_workload::trace::{child_seed, ChannelArrivals, UserArrival};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{SimConfig, SimMode};
use crate::error::SimError;
use crate::faults::{FaultDriver, FaultRun, FaultSchedule};
use crate::metrics::{Metrics, Sample};
use crate::peer::Peer;
use crate::simulator::{
    bootstrap_stats, interval_record, make_planner, process_round_events, IndexedEngine, RoundCtx,
    RoundEngine, QUIESCE_MAX_STREAK, QUIESCE_MIN_DUTY, QUIESCE_STREAK,
};
use crate::telem;
use crate::tracker::summarize_channel;

/// Per-shard wall times are sampled on every `SHARD_WALL_SAMPLE`-th
/// round rather than every round: a shard's step costs about as much as
/// a clock read, so timing every shard every round would dominate the
/// telemetry budget. Sampled totals still rank the shards (the Zipf
/// head channel dominates by orders of magnitude), which is what the
/// imbalance table is for.
const SHARD_WALL_SAMPLE: u64 = 64;

/// Minimum downloads per sub-lane in auto mode ([`SimConfig::lanes`]
/// = 0): below ~8k entries a segment's demand scan finishes faster than
/// pool dispatch costs, so only genuinely hot shards split.
const LANE_MIN_AUTO: usize = 8192;

/// Minimum downloads per sub-lane when the lane count is explicit
/// ([`SimConfig::lanes`] > 0): low enough that integration tests (and
/// deliberate experiments) exercise the split passes on small
/// populations. Correctness never depends on the threshold — lanes are
/// bit-identical at any engagement point.
const LANE_MIN_FORCED: usize = 8;

/// One channel's complete simulation state: the unit the run loop fans
/// out. See the module docs for what lives here and why nothing is
/// shared.
struct ChannelShard {
    /// Global channel id (shards are stored in channel order, so this
    /// equals the shard's index; kept explicit for clarity).
    channel: usize,
    /// Single-lane round engine holding the SoA hot fields (download
    /// index, fixed-point supply aggregates, wake wheel).
    engine: IndexedEngine,
    /// This channel's connected viewers.
    peers: Vec<Peer>,
    /// Behaviour RNG: splitmix child stream of `behaviour_seed`.
    rng: StdRng,
    /// Lazy arrival sub-stream for this channel.
    arrivals: ChannelArrivals,
    next_arrival: Option<UserArrival>,
    /// Tracker-side statistics for this channel.
    collector: ChannelStatsCollector,
    prior_routing: Vec<Vec<f64>>,
    prior_alpha: f64,
    // Round-event scratch, reused every round.
    removals: Vec<usize>,
    completed: Vec<usize>,
    woken: Vec<usize>,
    /// Cloud rate used by this shard in the round just stepped (a
    /// skipped quiescent round provably reuses the previous value).
    round_used: f64,
    /// Whether this shard may enter quiescent epochs
    /// ([`SimConfig::quiescence`]).
    quiesce: bool,
    /// Rounds stepped (the epoch scheduler's ring clock).
    rounds: u64,
    /// Consecutive fully-served rounds (epoch-entry hysteresis).
    clean_streak: u32,
    /// Clean rounds currently required to enter an epoch. Starts at
    /// [`QUIESCE_STREAK`] and doubles (up to [`QUIESCE_MAX_STREAK`])
    /// every time an epoch ends without having skipped at least one
    /// round in [`QUIESCE_MIN_DUTY`], so a channel whose epochs are
    /// never quiet enough to skip (per-round prefetch wake-ups, churny
    /// demand) stops paying the fuse/materialize cycle; one productive
    /// epoch resets it.
    streak_need: u32,
    /// Round the current epoch was entered at (drives the backoff).
    epoch_entered_at: u64,
    /// `skipped_rounds` snapshot at epoch entry (drives the backoff's
    /// productivity test).
    skips_at_entry: u64,
    /// Rounds skipped outright inside quiescent epochs (cumulative;
    /// reduced into `quiesce/rounds_skipped` at run end).
    skipped_rounds: u64,
    /// Epoch exits forced by a dirtied input — a served ratio leaving
    /// 1.0 or the round step leaving the quantization grid (cumulative;
    /// reduced into `quiesce/dirty_channels` at run end).
    epoch_breaks: u64,
    /// Arrivals refused by [`crate::faults::DegradeMode::ShedNewArrivals`]
    /// (cumulative; reduced in channel order at run end).
    shed: u64,
    // Startup-delay window accumulators (flushed at sample boundaries).
    startup_sum: f64,
    startup_count: usize,
    // Telemetry accumulators (side channel only — reduced in channel
    // order at run end; the cheap integer ones run unconditionally, the
    // wall clock only on sampled rounds of a telemetry-enabled run).
    /// Sampled wall time spent in [`ChannelShard::step_round`], ns.
    wall_ns: u64,
    /// High-water mark of this shard's connected viewers.
    peak_peers: usize,
    /// Arrivals admitted into this shard.
    admitted: u64,
    /// Chunk completions handled by this shard.
    n_completed: u64,
    /// Wake-ups handled by this shard.
    n_woken: u64,
}

impl std::fmt::Debug for ChannelShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelShard")
            .field("channel", &self.channel)
            .field("peers", &self.peers.len())
            .finish_non_exhaustive()
    }
}

impl ChannelShard {
    /// One allocation round for this shard: ingest arrivals, run the
    /// allocation stage, advance downloads, and handle the round's
    /// events — the exact per-round sequence of the single-site run
    /// loop, confined to one channel.
    fn step_round(
        &mut self,
        t1: f64,
        ctx: &RoundCtx<'_>,
        catalog: &Catalog,
        chunk_bytes: f64,
        chunk_seconds: f64,
        faults: &FaultSchedule,
    ) {
        let round = self.rounds;
        self.rounds += 1;
        // A round off the epoch's quantization grid (the horizon's final
        // partial round) invalidates every scheduled integer rate: exit
        // before anything — arrivals included — is processed at the new
        // step.
        if self.engine.epoch_active() && !self.engine.epoch_step_matches(ctx) {
            self.engine.epoch_materialize(&self.peers, round);
            self.epoch_breaks += 1;
            self.clean_streak = 0;
            self.note_epoch_end(round);
        }
        // Productivity eviction: a resident epoch that skips fewer than
        // one round in QUIESCE_MIN_DUTY is a net loss — its per-round
        // kernel (ring upkeep, delta replay, event merge) costs more
        // than the plain allocate/advance it replaced — so once the
        // shortfall is provable (at least QUIESCE_MIN_DUTY resident
        // rounds) the epoch is materialized voluntarily. The decision
        // reads only shard-local counters, so it is identical under any
        // thread count, and materialization is exact, so metrics are
        // untouched. The exit doubles `streak_need` via the same
        // backoff as a dirty break.
        if self.engine.epoch_active() {
            let lived = round - self.epoch_entered_at;
            if lived >= QUIESCE_MIN_DUTY
                && (self.skipped_rounds - self.skips_at_entry) * QUIESCE_MIN_DUTY < lived
            {
                self.engine.epoch_materialize(&self.peers, round);
                self.epoch_breaks += 1;
                self.clean_streak = 0;
                self.note_epoch_end(round);
            }
        }
        let in_epoch = self.engine.epoch_active();
        if in_epoch {
            // Pre-drain the wake wheel (due-ness only compares wake
            // times against `t1`, so the set is identical to the normal
            // path's post-kernel drain).
            self.engine.epoch_begin_round(&self.peers, t1, round);
        }
        let admitted_before = self.admitted;
        while let Some(a) = self.next_arrival.as_ref().filter(|a| a.time < t1) {
            // Admission control under ShedNewArrivals: pure function of
            // the arrival timestamp and the (read-only) schedule, so the
            // decision is identical under any shard grouping.
            if faults.shed_arrivals_at(a.time) {
                self.shed += 1;
                self.next_arrival = self.arrivals.next();
                continue;
            }
            self.peers.push(Peer::new(
                a.user_id,
                a.channel,
                a.upload_bytes_per_sec,
                a.start_chunk,
                chunk_bytes,
                a.time,
            ));
            self.engine.on_join(&self.peers, self.peers.len() - 1);
            self.collector.record(Observation::Join {
                chunk: a.start_chunk,
            });
            self.admitted += 1;
            self.next_arrival = self.arrivals.next();
        }
        self.peak_peers = self.peak_peers.max(self.peers.len());
        let had_arrivals = self.admitted != admitted_before;

        if in_epoch {
            if !had_arrivals && self.engine.epoch_can_skip(ctx, round) {
                // Nothing due, nothing scheduled, inputs unchanged:
                // every kernel input is bit-identical to last round's,
                // no peer/collector state would be touched, and the
                // cached `round_used` is exactly what a full round
                // would recompute.
                self.skipped_rounds += 1;
                return;
            }
            self.completed.clear();
            self.woken.clear();
            match self.engine.epoch_allocate(&self.peers, ctx, round) {
                Ok(used) => {
                    self.round_used = used;
                    self.engine
                        .epoch_events(round, &mut self.completed, &mut self.woken);
                }
                Err(used) => {
                    // A ratio left 1.0: the engine materialized with the
                    // kernel outputs (which never depend on ratios)
                    // already correct, so the round finishes on the
                    // normal advance path. The pre-drained wakes merge
                    // back in (the wheel is already empty for this
                    // round).
                    self.epoch_breaks += 1;
                    self.note_epoch_end(round);
                    self.round_used = used;
                    self.engine.advance_round(
                        &mut self.peers,
                        ctx,
                        t1,
                        &mut self.completed,
                        &mut self.woken,
                    );
                    self.engine.take_epoch_woken(&mut self.woken);
                }
            }
        } else {
            self.round_used = self.engine.allocate(&self.peers, ctx);
            self.completed.clear();
            self.woken.clear();
            self.engine.advance_round(
                &mut self.peers,
                ctx,
                t1,
                &mut self.completed,
                &mut self.woken,
            );
        }
        process_round_events(
            &mut self.engine,
            &mut self.peers,
            &self.completed,
            &self.woken,
            &mut self.removals,
            &mut self.collector,
            &mut self.rng,
            catalog,
            chunk_bytes,
            chunk_seconds,
            t1,
            &mut self.startup_sum,
            &mut self.startup_count,
        );
        self.n_completed += self.completed.len() as u64;
        self.n_woken += self.woken.len() as u64;

        if self.engine.epoch_active() {
            self.engine.epoch_end_round(
                had_arrivals || !self.completed.is_empty() || !self.woken.is_empty(),
            );
        } else if self.quiesce {
            // Epoch entry hysteresis: only a shard that strings together
            // `streak_need` quiet rounds (QUIESCE_STREAK, doubled by the
            // backoff while epochs stay unproductive) fuses its download
            // index into virtual schedules. Quiet means fully served AND
            // event-free — a channel whose every round carries prefetch
            // wake-ups or arrivals can hold ratios at 1.0 indefinitely
            // yet never skip a single round, so "fully served" alone
            // admits exactly the channels that make epochs a net loss.
            if self.engine.round_fully_served()
                && !had_arrivals
                && self.completed.is_empty()
                && self.woken.is_empty()
            {
                self.clean_streak += 1;
            } else {
                self.clean_streak = 0;
            }
            if self.clean_streak >= self.streak_need
                && self.engine.epoch_enter(round, ctx, chunk_bytes)
            {
                self.clean_streak = 0;
                self.epoch_entered_at = round;
                self.skips_at_entry = self.skipped_rounds;
            }
        }
    }

    /// Entry-backoff accounting at every epoch exit: an epoch that
    /// skipped fewer than one round in [`QUIESCE_MIN_DUTY`] of its
    /// lifetime was wasted work — its fuse, ring upkeep, and
    /// materialization cost more than the normal path it replaced — so
    /// the clean streak the next entry requires doubles (capped at
    /// [`QUIESCE_MAX_STREAK`]). An epoch that cleared the bar resets
    /// the threshold to [`QUIESCE_STREAK`].
    fn note_epoch_end(&mut self, round: u64) {
        let lived = round - self.epoch_entered_at;
        let skipped = self.skipped_rounds - self.skips_at_entry;
        if skipped * QUIESCE_MIN_DUTY >= lived.max(1) {
            self.streak_need = QUIESCE_STREAK;
        } else {
            self.streak_need = (self.streak_need * 2).min(QUIESCE_MAX_STREAK);
        }
    }

    /// [`ChannelShard::step_round`], optionally timing the step into the
    /// shard's sampled wall accumulator.
    #[allow(clippy::too_many_arguments)]
    fn step_round_timed(
        &mut self,
        time_it: bool,
        t1: f64,
        ctx: &RoundCtx<'_>,
        catalog: &Catalog,
        chunk_bytes: f64,
        chunk_seconds: f64,
        faults: &FaultSchedule,
    ) {
        if time_it {
            let t0 = std::time::Instant::now();
            self.step_round(t1, ctx, catalog, chunk_bytes, chunk_seconds, faults);
            self.wall_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        } else {
            self.step_round(t1, ctx, catalog, chunk_bytes, chunk_seconds, faults);
        }
    }
}

/// Runs a sharded simulation over the configured horizon, returning the
/// metrics plus the fault-plane counters, and recording stage timings,
/// per-shard imbalance rows, and counters into `tel`. Telemetry is a
/// pure side channel — the metrics are bit-identical to a run against
/// [`Telemetry::disabled`].
pub(crate) fn run_with_telemetry(cfg: &SimConfig, tel: &Telemetry) -> Result<FaultRun, SimError> {
    run_inner(cfg, None, tel, None)
}

/// [`run_with_telemetry`] with an explicit shard-to-task group size (tests use this to
/// pin that the grouping — the knob thread count actually turns —
/// cannot change results; `None` picks the load-balancing default).
#[cfg(test)]
pub(crate) fn run_with_groups(
    cfg: &SimConfig,
    group_override: Option<usize>,
    tel: &Telemetry,
) -> Result<FaultRun, SimError> {
    run_inner(cfg, group_override, tel, None)
}

/// [`run_with_telemetry`] that also measures the end-of-run per-peer
/// resident footprint (the `crate::footprint` accounting).
pub(crate) fn run_with_footprint(
    cfg: &SimConfig,
    tel: &Telemetry,
) -> Result<(FaultRun, crate::footprint::PeerFootprint), SimError> {
    let mut fp = crate::footprint::PeerFootprint::default();
    let run = run_inner(cfg, None, tel, Some(&mut fp))?;
    Ok((run, fp))
}

fn run_inner(
    cfg: &SimConfig,
    group_override: Option<usize>,
    tel: &Telemetry,
    footprint: Option<&mut crate::footprint::PeerFootprint>,
) -> Result<FaultRun, SimError> {
    let globals = telem::GlobalCounters::capture();
    let catalog = &cfg.catalog;
    let n_channels = catalog.len();
    let chunk_bytes = cfg.chunk_bytes();

    let mut cloud = Cloud::new(
        scale_fleet_capacity(&paper_virtual_clusters(), cfg.fleet_scale),
        scale_nfs_capacity(&paper_nfs_clusters(), cfg.fleet_scale),
        chunk_bytes as u64,
    )?;
    let sla = cloud.sla_terms();
    let vm_bandwidth = sla.virtual_clusters[0].vm_bandwidth_bytes_per_sec;
    let mut planner = make_planner(cfg, vm_bandwidth)?;
    let mut fault_driver = FaultDriver::new(&cfg.faults);
    let retry = *fault_driver.retry_policy();
    let mut last_plan: Option<cloudmedia_core::controller::ProvisioningPlan> = None;
    let mut last_plan_targets: Vec<usize> = Vec::new();
    let mut applied_budget_factor = 1.0_f64;
    let mut current_placement: Option<PlacementPlan> = None;
    let mut metrics = Metrics::default();

    // Sub-lane fan-out parameters for every shard engine. A truly
    // serial run (parallel_channels off) keeps every shard single-lane,
    // so `--serial` remains the one-thread reference. Auto mode (lanes
    // = 0) offers one lane per pool thread but engages them only on
    // shards hot enough to amortize dispatch; an explicit lane count
    // lowers the engagement threshold instead (tests and experiments).
    let (lane_cap, lane_min) = if !cfg.parallel_channels {
        (1, LANE_MIN_AUTO)
    } else if cfg.lanes == 0 {
        (rayon::current_num_threads().max(1), LANE_MIN_AUTO)
    } else {
        (cfg.lanes, LANE_MIN_FORCED)
    };

    let mut shards: Vec<ChannelShard> = Vec::with_capacity(n_channels);
    for spec in catalog.channels() {
        let mut arrivals = ChannelArrivals::new(spec, &cfg.trace)?;
        let next_arrival = arrivals.next();
        let mut engine = IndexedEngine::for_shard(
            spec.id,
            spec.viewing.chunks,
            cfg.peer_efficiency,
            cfg.round_seconds,
            lane_cap,
            lane_min,
        );
        engine.set_catchup_recording(tel.enabled());
        shards.push(ChannelShard {
            channel: spec.id,
            engine,
            peers: Vec::new(),
            rng: StdRng::seed_from_u64(child_seed(cfg.behaviour_seed, spec.id as u64)),
            arrivals,
            next_arrival,
            collector: ChannelStatsCollector::new(spec.viewing.chunks)?,
            prior_routing: spec.viewing.routing_rows()?,
            prior_alpha: spec.viewing.start_at_beginning,
            removals: Vec::new(),
            completed: Vec::new(),
            woken: Vec::new(),
            round_used: 0.0,
            quiesce: cfg.quiescence,
            rounds: 0,
            clean_streak: 0,
            streak_need: QUIESCE_STREAK,
            epoch_entered_at: 0,
            skips_at_entry: 0,
            skipped_rounds: 0,
            epoch_breaks: 0,
            shed: 0,
            startup_sum: 0.0,
            startup_count: 0,
            wall_ns: 0,
            peak_peers: 0,
            admitted: 0,
            n_completed: 0,
            n_woken: 0,
        });
    }

    let horizon = cfg.trace.horizon_seconds;
    let dt = cfg.round_seconds;
    let mut clock = 0.0_f64;
    let mut next_sample = cfg.sample_interval;
    let mut next_provision = 0.0_f64;
    let mut window_used = 0.0_f64;
    let mut window_start = 0.0_f64;

    let mut channel_reserved = vec![0.0_f64; n_channels];
    let mut reserved_total = 0.0_f64;

    let run_span = tel.span(telem::RUN_WALL);
    let mut clk = tel.stage_clock_sampled(telem::STAGE_TIME_SAMPLE);
    let mut round_idx: u64 = 0;
    let mut peers_peak = 0u64;

    while clock < horizon {
        let t1 = (clock + dt).min(horizon);
        let step = t1 - clock;
        clk.begin_round();

        // --- Fault boundaries (coordinator, serial) ------------------
        fault_driver.apply_due(clock, &mut cloud, &last_plan_targets)?;

        // --- Provisioning boundary (coordinator, serial) ------------
        if clock >= next_provision {
            let _interval_span = tel.span(telem::PROV_INTERVAL);
            let bootstrap = metrics.intervals.is_empty();
            let (budget_factor, price_factor) = cfg.faults.shock_factors(clock);
            if budget_factor != applied_budget_factor {
                planner.scale_vm_budget(budget_factor / applied_budget_factor)?;
                applied_budget_factor = budget_factor;
            }
            let planning_sla = if price_factor == 1.0 {
                sla.clone()
            } else {
                sla.with_vm_price_factor(price_factor)
            };
            let summarize = |shards: &mut [ChannelShard]| -> Result<Vec<(usize, _)>, SimError> {
                let mut out = Vec::with_capacity(n_channels);
                for s in shards.iter_mut() {
                    let obs = summarize_channel(
                        &mut s.collector,
                        &s.prior_routing,
                        s.prior_alpha,
                        cfg.provisioning_interval,
                    )?;
                    out.push((s.channel, obs));
                }
                Ok(out)
            };
            let plan = if !bootstrap && cfg.faults.dropout_active(clock) && last_plan.is_some() {
                // Tracker blackout: drain the interval's measurements so
                // the collectors reset exactly as in a non-faulted run,
                // then replay the last-known-good plan.
                let _s = tel.span(telem::PROV_TRACKER);
                let _ = summarize(&mut shards)?;
                fault_driver.stats.fallback_intervals += 1;
                last_plan.clone().expect("checked is_some above")
            } else {
                let stats = {
                    let _s = tel.span(telem::PROV_TRACKER);
                    if bootstrap {
                        bootstrap_stats(catalog, cfg)
                    } else {
                        summarize(&mut shards)?
                    }
                };
                let _s = tel.span(telem::PROV_PLAN);
                planner.plan_interval(&stats, &planning_sla)?
            };
            if let Some(p) = &plan.placement {
                current_placement = Some(p.clone());
            }
            let receipt = {
                let _s = tel.span(telem::PROV_SUBMIT);
                cloud.submit_with_retry(
                    &ResourceRequest {
                        vm_targets: plan.vm_targets.clone(),
                        placement: plan.placement.clone(),
                    },
                    &retry,
                )?
            };
            fault_driver.stats.record_receipt(&receipt);
            last_plan_targets = plan.vm_targets.clone();
            channel_reserved.iter_mut().for_each(|v| *v = 0.0);
            for (key, allocs) in &plan.vm_plan.allocations {
                if key.channel >= n_channels {
                    continue;
                }
                let bw: f64 = allocs
                    .iter()
                    .map(|a| a.vms * sla.virtual_clusters[a.cluster].vm_bandwidth_bytes_per_sec)
                    .sum();
                channel_reserved[key.channel] += bw;
            }
            reserved_total = channel_reserved.iter().sum();
            let per_channel_peers: Vec<usize> = shards.iter().map(|s| s.peers.len()).collect();
            metrics.intervals.push(interval_record(
                clock,
                &plan,
                current_placement.as_ref(),
                &sla,
                n_channels,
                per_channel_peers,
            ));
            let mut stored = plan;
            stored.placement = None;
            last_plan = Some(stored);
            next_provision += cfg.provisioning_interval;
        }
        clk.lap(telem::STAGE_PROVISIONING);

        // --- Round fan-out -------------------------------------------
        // Everything the shards read is snapshotted here (the read
        // barrier): the reservations, the online scale, the context.
        let online_scale = if reserved_total > 0.0 {
            (cloud.running_bandwidth() / reserved_total).min(1.0)
        } else {
            0.0
        };
        let ctx = RoundCtx {
            step,
            inv_step: 1.0 / step,
            vm_bandwidth,
            eff: cfg.peer_efficiency,
            p2p: cfg.mode == SimMode::P2p,
            online_scale,
            channel_reserved: &channel_reserved,
        };
        let time_shards = tel.enabled() && round_idx.is_multiple_of(SHARD_WALL_SAMPLE);
        if cfg.parallel_channels && shards.len() > 1 {
            // Several groups per worker so the Zipf-skewed head
            // channels level out across the pool (workers pull groups
            // as they free up).
            let tasks = (rayon::current_num_threads() * 8).max(1);
            let group = group_override
                .unwrap_or_else(|| shards.len().div_ceil(tasks))
                .max(1);
            let ctx_ref = &ctx;
            let faults = &cfg.faults;
            rayon::scope(|s| {
                for chunk in shards.chunks_mut(group) {
                    s.spawn(move |_| {
                        for shard in chunk {
                            shard.step_round_timed(
                                time_shards,
                                t1,
                                ctx_ref,
                                catalog,
                                chunk_bytes,
                                cfg.chunk_seconds,
                                faults,
                            );
                        }
                    });
                }
            });
        } else {
            for shard in shards.iter_mut() {
                shard.step_round_timed(
                    time_shards,
                    t1,
                    &ctx,
                    catalog,
                    chunk_bytes,
                    cfg.chunk_seconds,
                    &cfg.faults,
                );
            }
        }
        round_idx += 1;
        clk.lap(telem::STAGE_SHARD_STEP);

        // --- Channel-order reduction ---------------------------------
        let mut used_cloud_rate = 0.0_f64;
        for shard in &shards {
            used_cloud_rate += shard.round_used;
        }
        clk.lap(telem::STAGE_REDUCE);

        cloud.tick(t1)?;
        window_used += used_cloud_rate * step;
        clk.lap(telem::STAGE_CLOUD);

        // --- Sampling ------------------------------------------------
        if t1 >= next_sample || t1 >= horizon {
            let elapsed = (t1 - window_start).max(1e-9);
            let s = assemble_sample(
                &mut shards,
                t1,
                cloud.running_bandwidth(),
                window_used / elapsed,
                cfg.sample_interval,
            );
            peers_peak = peers_peak.max(s.active_peers as u64);
            metrics.samples.push(s);
            window_used = 0.0;
            window_start = t1;
            next_sample += cfg.sample_interval;
        }
        clk.lap(telem::STAGE_SAMPLING);

        clock = t1;
    }
    drop(run_span);

    metrics.total_vm_cost = cloud.billing().vm_cost().as_dollars();
    metrics.total_storage_cost = cloud.billing().storage_cost().as_dollars();
    // Channel-order reduction of the per-shard counters (integer sums,
    // so any order would agree; fixed order keeps the argument simple).
    for shard in &shards {
        fault_driver.stats.shed_arrivals += shard.shed;
    }
    if let Some(out) = footprint {
        // End-of-run per-peer resident accounting, folded in channel
        // order: the `Peer` records themselves plus each engine's
        // population-scaled state (supply/slot mirrors, download index,
        // wake slab + wheel entries).
        for shard in &shards {
            out.peers += shard.peers.len();
            out.bytes += shard.peers.len() * std::mem::size_of::<Peer>()
                + shard.engine.resident_peer_bytes();
        }
    }
    if tel.enabled() {
        // Per-sub-lane sampled wall times, in channel order (empty
        // unless a shard actually split).
        for shard in &shards {
            for w in shard.engine.lane_walls() {
                tel.observe(telem::HIST_LANE_WALL, w);
            }
        }
        // Shard-imbalance table and aggregates, in channel order. Wall
        // times are sampled (see `SHARD_WALL_SAMPLE`).
        let mut admitted = 0u64;
        let mut n_completed = 0u64;
        let mut n_woken = 0u64;
        let rows: Vec<Vec<u64>> = shards
            .iter()
            .map(|s| {
                admitted += s.admitted;
                n_completed += s.n_completed;
                n_woken += s.n_woken;
                tel.observe(telem::HIST_SHARD_WALL, s.wall_ns);
                vec![
                    s.channel as u64,
                    s.wall_ns,
                    s.peers.len() as u64,
                    s.peak_peers as u64,
                ]
            })
            .collect();
        tel.push_table(
            "shards",
            &["channel", "wall_ns_sampled", "peers_final", "peak_peers"],
            rows,
        );
        tel.add(telem::ARRIVALS_ADMITTED, admitted);
        tel.add(telem::COMPLETED_CHUNKS, n_completed);
        tel.add(telem::WOKEN_PEERS, n_woken);
        tel.add(telem::ROUNDS, round_idx);
        tel.gauge_max(telem::PEERS_PEAK, peers_peak);
        // Quiescence engagement, in channel order: skipped shard-rounds,
        // dirtied-epoch exits, and the catch-up spans of every download
        // fast-forwarded at a materialization.
        let mut skipped = 0u64;
        let mut breaks = 0u64;
        for shard in &shards {
            skipped += shard.skipped_rounds;
            breaks += shard.epoch_breaks;
            for &k in shard.engine.catchup_spans() {
                tel.observe(telem::HIST_CATCHUP_K, u64::from(k));
            }
        }
        tel.add(telem::QUIESCE_ROUNDS_SKIPPED, skipped);
        tel.add(telem::QUIESCE_DIRTY_CHANNELS, breaks);
    }
    telem::record_fault_stats(tel, &fault_driver.stats);
    globals.record_delta(tel);
    Ok(FaultRun {
        metrics,
        fault_stats: fault_driver.stats,
    })
}

/// Builds one [`Sample`] by folding the shards in channel order (fixed
/// f64 addition sequence), and resets their startup-window accumulators.
fn assemble_sample(
    shards: &mut [ChannelShard],
    time: f64,
    reserved: f64,
    used: f64,
    window: f64,
) -> Sample {
    let mut per_channel_peers = Vec::with_capacity(shards.len());
    let mut per_channel_quality = Vec::with_capacity(shards.len());
    let mut total = 0usize;
    let mut smooth_total = 0usize;
    let mut startup_sum = 0.0_f64;
    let mut startup_count = 0usize;
    for shard in shards.iter_mut() {
        let n = shard.peers.len();
        let smooth = shard
            .peers
            .iter()
            .filter(|p| p.smooth_in_window(time, window))
            .count();
        per_channel_peers.push(n);
        per_channel_quality.push(if n == 0 {
            1.0
        } else {
            smooth as f64 / n as f64
        });
        total += n;
        smooth_total += smooth;
        startup_sum += shard.startup_sum;
        startup_count += shard.startup_count;
        shard.startup_sum = 0.0;
        shard.startup_count = 0;
    }
    Sample {
        time,
        reserved_bandwidth: reserved,
        used_bandwidth: used,
        quality: if total == 0 {
            1.0
        } else {
            smooth_total as f64 / total as f64
        },
        active_peers: total,
        per_channel_peers,
        per_channel_quality,
        mean_startup_delay: if startup_count > 0 {
            startup_sum / startup_count as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimKernel;
    use cloudmedia_workload::viewing::ViewingModel;

    /// A small, fast sharded configuration.
    fn small(mode: SimMode, channels: usize, population: f64) -> SimConfig {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.catalog = Catalog::zipf(
            channels,
            0.8,
            ViewingModel::paper_default(),
            population,
            300.0,
        )
        .unwrap();
        cfg.trace.horizon_seconds = 4.0 * 3600.0;
        cfg.kernel = SimKernel::Sharded;
        cfg
    }

    /// The shard-to-task grouping is what worker-pool size actually
    /// changes; results must not depend on it — including the serial
    /// path (no grouping at all).
    #[test]
    fn grouping_cannot_change_results() {
        let cfg = small(SimMode::P2p, 5, 150.0);
        let baseline = {
            let mut serial = cfg.clone();
            serial.parallel_channels = false;
            run_with_telemetry(&serial, &Telemetry::disabled())
                .unwrap()
                .metrics
        };
        for group in [1, 2, 3, usize::MAX] {
            let m = run_with_groups(&cfg, Some(group), &Telemetry::disabled())
                .unwrap()
                .metrics;
            assert_eq!(m, baseline, "group size {group} diverged from serial");
        }
    }

    #[test]
    fn sharded_run_produces_sane_metrics() {
        let m = run_with_telemetry(
            &small(SimMode::ClientServer, 4, 150.0),
            &Telemetry::disabled(),
        )
        .unwrap()
        .metrics;
        assert_eq!(m.intervals.len(), 4, "one record per hour");
        assert!(!m.samples.is_empty());
        assert!(m.mean_quality() > 0.9, "quality {}", m.mean_quality());
        assert!(m.peak_peers() > 30, "peers showed up: {}", m.peak_peers());
        assert!(m.total_vm_cost > 0.0);
    }

    #[test]
    fn sharded_samples_split_by_channel() {
        let m = run_with_telemetry(
            &small(SimMode::ClientServer, 3, 120.0),
            &Telemetry::disabled(),
        )
        .unwrap()
        .metrics;
        for s in &m.samples {
            assert_eq!(s.per_channel_peers.len(), 3);
            assert_eq!(s.per_channel_quality.len(), 3);
            assert_eq!(s.per_channel_peers.iter().sum::<usize>(), s.active_peers);
        }
        // Zipf head channel sees the most viewers.
        let last = m.samples.last().unwrap();
        assert!(last.per_channel_peers[0] >= last.per_channel_peers[2]);
    }
}
