//! Time-series metrics recorded during a simulation run.
//!
//! Two cadences: fine-grained [`Sample`]s every sampling interval (the
//! paper's 5-minute streaming-quality window) and one [`IntervalRecord`]
//! per provisioning interval (the paper's hourly controller runs). These
//! series are exactly what the paper's Figs. 4–11 plot.

use serde::{Deserialize, Serialize};

/// One fine-grained sample (default cadence: 5 minutes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample time, seconds from simulation start.
    pub time: f64,
    /// Cloud bandwidth reserved (running VMs × R), bytes per second.
    pub reserved_bandwidth: f64,
    /// Cloud bandwidth actually used, averaged over the window, bytes/s.
    pub used_bandwidth: f64,
    /// Fraction of connected users with smooth playback over the past
    /// window (1.0 when nobody is connected).
    pub quality: f64,
    /// Connected users at sample time.
    pub active_peers: usize,
    /// Connected users per channel.
    pub per_channel_peers: Vec<usize>,
    /// Smooth-playback fraction per channel (1.0 for empty channels).
    pub per_channel_quality: Vec<f64>,
    /// Mean start-up delay (join to first playback) of sessions whose
    /// playback began in this window, seconds; 0.0 when none did.
    pub mean_startup_delay: f64,
}

/// One provisioning-interval record (default cadence: 1 hour).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Interval start time, seconds.
    pub time: f64,
    /// VM targets submitted per virtual cluster.
    pub vm_targets: Vec<usize>,
    /// Hourly cost of the integer VM targets, dollars.
    pub vm_hourly_cost: f64,
    /// Total cloud demand the controller derived, bytes per second.
    pub total_cloud_demand: f64,
    /// Expected peer contribution (P2P), bytes per second.
    pub expected_peer_contribution: f64,
    /// Per-channel cloud demand (provisioned bandwidth), bytes per second.
    pub per_channel_demand: Vec<f64>,
    /// Per-channel aggregate storage utility (`Σ u_f Δ_i x_if`).
    pub per_channel_storage_utility: Vec<f64>,
    /// Per-channel aggregate VM utility (`Σ u~_v z_iv`).
    pub per_channel_vm_utility: Vec<f64>,
    /// Whether the storage placement was recomputed this interval.
    pub placement_refreshed: bool,
    /// Connected users per channel at the interval boundary.
    pub per_channel_peers: Vec<usize>,
}

/// Full metrics of one run.
///
/// The quiescence engine's correctness bar is defined on this type:
/// every sample, interval record, and cost accumulator of a
/// quiescence-on run must be **bit-identical** to the quiescence-off
/// run of the same config (`crates/sim/tests/quiesce_invariance.rs`;
/// the committed golden in `crates/sim/tests/golden_steady.rs` pins a
/// heavily-skipped run's exact bytes). Skipped rounds contribute their
/// cached cloud usage analytically — never an approximation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Fine-grained samples.
    pub samples: Vec<Sample>,
    /// Per-provisioning-interval records.
    pub intervals: Vec<IntervalRecord>,
    /// Total VM rental cost over the run, dollars.
    pub total_vm_cost: f64,
    /// Total storage cost over the run, dollars.
    pub total_storage_cost: f64,
}

impl Metrics {
    /// Mean streaming quality across samples (the paper's headline
    /// quality number, e.g. 0.97 C/S vs 0.95 P2P).
    pub fn mean_quality(&self) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        self.samples.iter().map(|s| s.quality).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean reserved cloud bandwidth, bytes per second.
    pub fn mean_reserved_bandwidth(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.reserved_bandwidth)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Mean used cloud bandwidth, bytes per second.
    pub fn mean_used_bandwidth(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.used_bandwidth).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean hourly VM cost across intervals, dollars (the paper's Fig. 10
    /// averages: ≈ $48/h C/S, ≈ $4.27/h P2P).
    pub fn mean_vm_hourly_cost(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(|i| i.vm_hourly_cost).sum::<f64>() / self.intervals.len() as f64
    }

    /// Fraction of samples where reserved bandwidth covered used bandwidth
    /// (the paper's Fig. 4 claim: "in the majority of time, provisioned
    /// bandwidth is larger than the used").
    pub fn provision_coverage(&self) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        let covered = self
            .samples
            .iter()
            .filter(|s| s.reserved_bandwidth >= s.used_bandwidth - 1e-6)
            .count();
        covered as f64 / self.samples.len() as f64
    }

    /// Mean start-up delay across samples that observed session starts.
    pub fn mean_startup_delay(&self) -> f64 {
        let with_starts: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.mean_startup_delay > 0.0)
            .map(|s| s.mean_startup_delay)
            .collect();
        if with_starts.is_empty() {
            return 0.0;
        }
        with_starts.iter().sum::<f64>() / with_starts.len() as f64
    }

    /// Peak connected users across samples.
    pub fn peak_peers(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.active_peers)
            .max()
            .unwrap_or(0)
    }

    /// Samples restricted to `[from, to)`.
    pub fn samples_in(&self, from: f64, to: f64) -> impl Iterator<Item = &Sample> {
        self.samples
            .iter()
            .filter(move |s| s.time >= from && s.time < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(time: f64, reserved: f64, used: f64, quality: f64, peers: usize) -> Sample {
        Sample {
            time,
            reserved_bandwidth: reserved,
            used_bandwidth: used,
            quality,
            active_peers: peers,
            per_channel_peers: vec![peers],
            per_channel_quality: vec![quality],
            mean_startup_delay: 0.0,
        }
    }

    #[test]
    fn empty_metrics_are_benign() {
        let m = Metrics::default();
        assert_eq!(m.mean_quality(), 1.0);
        assert_eq!(m.mean_reserved_bandwidth(), 0.0);
        assert_eq!(m.provision_coverage(), 1.0);
        assert_eq!(m.peak_peers(), 0);
    }

    #[test]
    fn aggregates_compute_means() {
        let m = Metrics {
            samples: vec![
                sample(0.0, 10.0, 5.0, 1.0, 10),
                sample(300.0, 20.0, 25.0, 0.8, 30),
            ],
            ..Default::default()
        };
        assert!((m.mean_quality() - 0.9).abs() < 1e-12);
        assert!((m.mean_reserved_bandwidth() - 15.0).abs() < 1e-12);
        assert!((m.mean_used_bandwidth() - 15.0).abs() < 1e-12);
        assert!((m.provision_coverage() - 0.5).abs() < 1e-12);
        assert_eq!(m.peak_peers(), 30);
    }

    #[test]
    fn samples_in_window() {
        let m = Metrics {
            samples: vec![
                sample(0.0, 1.0, 1.0, 1.0, 1),
                sample(100.0, 1.0, 1.0, 1.0, 1),
                sample(200.0, 1.0, 1.0, 1.0, 1),
            ],
            ..Default::default()
        };
        assert_eq!(m.samples_in(50.0, 200.0).count(), 1);
        assert_eq!(m.samples_in(0.0, 1000.0).count(), 3);
    }
}
