//! The deterministic fault plane shared by every engine.
//!
//! A [`FaultSchedule`] is part of the seeded [`SimConfig`](crate::config::SimConfig):
//! a list of *timed, typed* events — correlated VM-fleet failure bursts
//! (with repair), federated site outages, tracker-measurement dropouts,
//! and mid-run cost shocks (budget cut / VM-price change) — that every
//! engine applies at the same simulated instants. All fault mutation
//! happens in serial coordinator code *before* any parallel fan-out, and
//! the schedule itself is plain data, so the existing determinism
//! contract holds: the same seed plus the same schedule produces
//! bit-identical metrics serially and in parallel, on every engine that
//! honours the event type (see `docs/RESILIENCE.md`).
//!
//! Event semantics:
//!
//! - **Fleet failure** ([`FleetFailure`]): at `at`, a fraction of each
//!   cluster's *running* VMs dies and the same fraction of the fleet's
//!   hosts becomes unavailable (the broker rejects over-cap requests
//!   until the repair at `at + recovery_seconds`, which restores the
//!   fleet and resubmits the last planned targets through
//!   [`RetryPolicy`]-governed retry).
//! - **Site outage** ([`SiteOutage`]): federated runs only. The site's
//!   capacity drops to zero for the duration; the global placement
//!   optimizer re-plans around it immediately (an emergency re-plan, not
//!   waiting for the hourly boundary) and again at recovery.
//! - **Tracker dropout** ([`TrackerDropout`]): a provisioning boundary
//!   falling inside the window has no fresh measurements; the controller
//!   falls back to its last-known-good plan instead of re-planning.
//! - **Cost shock** ([`CostShock`]): at the first provisioning boundary
//!   at or after `at`, the VM budget is multiplied by
//!   `vm_budget_factor` and the planning-time VM prices by
//!   `vm_price_factor` (billing for already-running VMs continues at the
//!   contracted prices; the shock models the market the *next* rental
//!   negotiates).
//!
//! When post-fault capacity cannot meet demand, [`DegradeMode`] picks the
//! degradation policy: dilute every stream (the fluid allocator's
//! default behaviour under an online-capacity deficit) or shed new
//! arrivals for the duration of the outage to protect viewers already
//! being served.

use cloudmedia_cloud::broker::{Cloud, ResourceRequest, RetryPolicy, SubmitReceipt};
use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, SimError};
use crate::metrics::Metrics;

/// A correlated VM-fleet failure burst: at `at`, `fraction` of each
/// cluster's running VMs dies and the same fraction of the fleet becomes
/// unavailable until the repair completes `recovery_seconds` later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetFailure {
    /// Failure instant, simulated seconds.
    pub at: f64,
    /// Fraction of the fleet lost, in `(0, 1]`.
    pub fraction: f64,
    /// Time until the repair restores the fleet, seconds (> 0; model a
    /// "permanent" loss by scheduling the repair beyond the horizon).
    pub recovery_seconds: f64,
}

impl FleetFailure {
    /// True while this failure's capacity is still gone.
    pub fn active_at(&self, t: f64) -> bool {
        self.at <= t && t < self.at + self.recovery_seconds
    }
}

/// A federated site outage: the site serves nothing for the duration and
/// the placement optimizer must route its regions' demand elsewhere.
/// Ignored by the single-site engines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteOutage {
    /// Outage start, simulated seconds.
    pub at: f64,
    /// Index of the lost site (region index in the federation).
    pub site: usize,
    /// Outage duration, seconds (> 0).
    pub duration_seconds: f64,
}

impl SiteOutage {
    /// True while the site is down.
    pub fn active_at(&self, t: f64) -> bool {
        self.at <= t && t < self.at + self.duration_seconds
    }
}

/// A tracker-measurement dropout window: provisioning boundaries inside
/// it see no fresh statistics and reuse the last-known-good plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerDropout {
    /// Dropout start, simulated seconds.
    pub at: f64,
    /// Dropout duration, seconds (> 0).
    pub duration_seconds: f64,
}

impl TrackerDropout {
    /// True while measurements are lost.
    pub fn active_at(&self, t: f64) -> bool {
        self.at <= t && t < self.at + self.duration_seconds
    }
}

/// A mid-run economic shock, applied at the first provisioning boundary
/// at or after `at`. Factors compose multiplicatively across shocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostShock {
    /// Shock instant, simulated seconds.
    pub at: f64,
    /// Multiplier on the VM rental budget `B_M` (1.0 = unchanged;
    /// 0.5 = the hour-N budget cut).
    pub vm_budget_factor: f64,
    /// Multiplier on the VM prices the *planner* sees from this point on
    /// (1.0 = unchanged). Billing of already-contracted rentals is not
    /// rewritten.
    pub vm_price_factor: f64,
}

/// What to do when post-fault capacity cannot meet demand.
///
/// ```
/// use cloudmedia_sim::faults::DegradeMode;
/// // The default matches the engines' no-fault behaviour: every stream
/// // shares the deficit.
/// assert_eq!(DegradeMode::default(), DegradeMode::DiluteAllStreams);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DegradeMode {
    /// Reject arrivals for the duration of a fleet outage so viewers
    /// already being served keep their bandwidth.
    ShedNewArrivals,
    /// Admit everyone and let the fluid allocator scale every stream
    /// down by the online-capacity ratio (the engines' default).
    #[default]
    DiluteAllStreams,
}

/// The full fault schedule of one run — plain seeded data, carried by
/// [`SimConfig`](crate::config::SimConfig) so serial and parallel
/// executions replay exactly the same shocks.
///
/// ```
/// use cloudmedia_sim::faults::{DegradeMode, FaultSchedule, FleetFailure};
///
/// let mut schedule = FaultSchedule::default();
/// assert!(schedule.is_empty());
/// schedule.vm_failures.push(FleetFailure {
///     at: 3600.0,
///     fraction: 0.5,
///     recovery_seconds: 600.0,
/// });
/// schedule.degrade = DegradeMode::ShedNewArrivals;
/// schedule.validate().unwrap();
/// assert!(schedule.outage_active(3900.0));
/// assert!(!schedule.outage_active(4200.0), "repaired");
/// assert!(schedule.shed_arrivals_at(3900.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultSchedule {
    /// Correlated VM-fleet failure bursts (all engines).
    pub vm_failures: Vec<FleetFailure>,
    /// Site outages (federated runs; ignored by single-site engines).
    pub site_outages: Vec<SiteOutage>,
    /// Tracker-measurement dropout windows (all engines).
    pub tracker_dropouts: Vec<TrackerDropout>,
    /// Budget / VM-price shocks (all engines).
    pub cost_shocks: Vec<CostShock>,
    /// Degradation policy under a post-fault capacity deficit.
    pub degrade: DegradeMode,
}

impl FaultSchedule {
    /// A single fleet-failure burst.
    pub fn vm_outage(at: f64, fraction: f64, recovery_seconds: f64) -> Self {
        Self {
            vm_failures: vec![FleetFailure {
                at,
                fraction,
                recovery_seconds,
            }],
            ..Self::default()
        }
    }

    /// A single site outage (federated runs).
    pub fn site_outage(at: f64, site: usize, duration_seconds: f64) -> Self {
        Self {
            site_outages: vec![SiteOutage {
                at,
                site,
                duration_seconds,
            }],
            ..Self::default()
        }
    }

    /// A single tracker blackout window.
    pub fn tracker_blackout(at: f64, duration_seconds: f64) -> Self {
        Self {
            tracker_dropouts: vec![TrackerDropout {
                at,
                duration_seconds,
            }],
            ..Self::default()
        }
    }

    /// A budget cut (or raise) at hour `at`.
    pub fn budget_shock(at: f64, vm_budget_factor: f64) -> Self {
        Self {
            cost_shocks: vec![CostShock {
                at,
                vm_budget_factor,
                vm_price_factor: 1.0,
            }],
            ..Self::default()
        }
    }

    /// True when no fault of any kind is scheduled.
    pub fn is_empty(&self) -> bool {
        self.vm_failures.is_empty()
            && self.site_outages.is_empty()
            && self.tracker_dropouts.is_empty()
            && self.cost_shocks.is_empty()
    }

    /// Validates every event.
    ///
    /// # Errors
    ///
    /// Rejects non-finite times, fractions outside `(0, 1]`, and
    /// non-positive durations or factors.
    pub fn validate(&self) -> Result<(), SimError> {
        for f in &self.vm_failures {
            if !(f.at.is_finite() && f.at >= 0.0) {
                return Err(invalid_param("vm_failures", "`at` must be non-negative"));
            }
            if !(f.fraction > 0.0 && f.fraction <= 1.0) {
                return Err(invalid_param("vm_failures", "`fraction` must be in (0, 1]"));
            }
            if !(f.recovery_seconds.is_finite() && f.recovery_seconds > 0.0) {
                return Err(invalid_param(
                    "vm_failures",
                    "`recovery_seconds` must be positive (schedule the repair \
                     beyond the horizon to model a permanent loss)",
                ));
            }
        }
        for o in &self.site_outages {
            if !(o.at.is_finite() && o.at >= 0.0) {
                return Err(invalid_param("site_outages", "`at` must be non-negative"));
            }
            if !(o.duration_seconds.is_finite() && o.duration_seconds > 0.0) {
                return Err(invalid_param(
                    "site_outages",
                    "`duration_seconds` must be positive",
                ));
            }
        }
        for d in &self.tracker_dropouts {
            if !(d.at.is_finite() && d.at >= 0.0) {
                return Err(invalid_param(
                    "tracker_dropouts",
                    "`at` must be non-negative",
                ));
            }
            if !(d.duration_seconds.is_finite() && d.duration_seconds > 0.0) {
                return Err(invalid_param(
                    "tracker_dropouts",
                    "`duration_seconds` must be positive",
                ));
            }
        }
        for s in &self.cost_shocks {
            if !(s.at.is_finite() && s.at >= 0.0) {
                return Err(invalid_param("cost_shocks", "`at` must be non-negative"));
            }
            if !(s.vm_budget_factor.is_finite() && s.vm_budget_factor > 0.0) {
                return Err(invalid_param(
                    "cost_shocks",
                    "`vm_budget_factor` must be positive",
                ));
            }
            if !(s.vm_price_factor.is_finite() && s.vm_price_factor > 0.0) {
                return Err(invalid_param(
                    "cost_shocks",
                    "`vm_price_factor` must be positive",
                ));
            }
        }
        Ok(())
    }

    /// True while any fleet-failure window is active.
    pub fn outage_active(&self, t: f64) -> bool {
        self.vm_failures.iter().any(|f| f.active_at(t))
    }

    /// True when the degradation policy sheds arrivals at `t`: shedding
    /// is selected *and* a fleet outage is in progress.
    pub fn shed_arrivals_at(&self, t: f64) -> bool {
        self.degrade == DegradeMode::ShedNewArrivals && self.outage_active(t)
    }

    /// True while any tracker dropout window covers `t`.
    pub fn dropout_active(&self, t: f64) -> bool {
        self.tracker_dropouts.iter().any(|d| d.active_at(t))
    }

    /// True while site `site` is down.
    pub fn site_down(&self, site: usize, t: f64) -> bool {
        self.site_outages
            .iter()
            .any(|o| o.site == site && o.active_at(t))
    }

    /// Down/up mask over `n_sites` sites at `t` (true = down).
    pub fn site_mask(&self, n_sites: usize, t: f64) -> Vec<bool> {
        (0..n_sites).map(|s| self.site_down(s, t)).collect()
    }

    /// Cumulative `(vm_budget_factor, vm_price_factor)` of every shock
    /// with `at <= t` (multiplicative composition, `(1, 1)` when none).
    pub fn shock_factors(&self, t: f64) -> (f64, f64) {
        self.cost_shocks
            .iter()
            .filter(|s| s.at <= t)
            .fold((1.0, 1.0), |(b, p), s| {
                (b * s.vm_budget_factor, p * s.vm_price_factor)
            })
    }

    /// The earliest scheduled fault instant, if any — the resilience
    /// report measures recovery from here.
    pub fn first_fault_at(&self) -> Option<f64> {
        let mut first: Option<f64> = None;
        let mut consider = |t: f64| {
            first = Some(match first {
                Some(f) => f.min(t),
                None => t,
            });
        };
        self.vm_failures.iter().for_each(|f| consider(f.at));
        self.site_outages.iter().for_each(|o| consider(o.at));
        self.tracker_dropouts.iter().for_each(|d| consider(d.at));
        self.cost_shocks.iter().for_each(|s| consider(s.at));
        first
    }

    /// Per-cluster availability caps while failures are active at `t`:
    /// `None` when the full fleet is available, otherwise the per-cluster
    /// VM counts that survive the worst still-active failure.
    pub fn fleet_caps_at(&self, max_vms: &[usize], t: f64) -> Option<Vec<usize>> {
        let worst = self
            .vm_failures
            .iter()
            .filter(|f| f.active_at(t))
            .map(|f| f.fraction)
            .fold(0.0f64, f64::max);
        if worst <= 0.0 {
            return None;
        }
        Some(
            max_vms
                .iter()
                .map(|&m| ((m as f64) * (1.0 - worst)).floor() as usize)
                .collect(),
        )
    }
}

/// Counters the fault plane accumulates during a run; serialized into the
/// resilience report.
///
/// Part of the quiescence bit-equality contract: a quiescence-on run
/// must produce these counters bit-identical to the same run with the
/// epoch engine off (`crates/sim/tests/quiesce_invariance.rs` pins it
/// alongside [`crate::metrics::Metrics`]) — fault-plane state changes
/// (VM kills, shed windows) dirty any epoch they touch, so no fault
/// event is ever absorbed into a skipped round.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct FaultStats {
    /// Running VMs killed by fleet failures.
    pub vms_killed: u64,
    /// VM targets restored by repairs.
    pub vms_recovered: u64,
    /// Arrivals rejected by [`DegradeMode::ShedNewArrivals`].
    pub shed_arrivals: u64,
    /// Broker submissions retried (attempts beyond the first).
    pub retry_attempts: u64,
    /// Simulated control-plane backoff accrued across retries, seconds.
    pub retry_backoff_seconds: f64,
    /// Submissions that landed only after degrading (targets clamped to
    /// surviving capacity).
    pub degraded_submissions: u64,
    /// Provisioning boundaries that fell back to the last-known-good plan
    /// because the tracker was dark.
    pub fallback_intervals: u64,
    /// Emergency placement re-plans triggered by site outages/recoveries
    /// (federated runs).
    pub emergency_replans: u64,
}

impl FaultStats {
    /// Folds a broker receipt into the counters.
    pub fn record_receipt(&mut self, receipt: &SubmitReceipt) {
        self.retry_attempts += u64::from(receipt.attempts.saturating_sub(1));
        self.retry_backoff_seconds += receipt.backoff_seconds;
        if receipt.degraded {
            self.degraded_submissions += 1;
        }
    }

    /// Element-wise accumulation (federated runs merge per-region stats
    /// in fixed region order).
    pub fn merge(&mut self, other: &FaultStats) {
        self.vms_killed += other.vms_killed;
        self.vms_recovered += other.vms_recovered;
        self.shed_arrivals += other.shed_arrivals;
        self.retry_attempts += other.retry_attempts;
        self.retry_backoff_seconds += other.retry_backoff_seconds;
        self.degraded_submissions += other.degraded_submissions;
        self.fallback_intervals += other.fallback_intervals;
        self.emergency_replans += other.emergency_replans;
    }
}

/// A metrics bundle returned by the fault-aware entry points: the usual
/// time series plus what the fault plane did to produce them.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// The run's recorded metrics.
    pub metrics: Metrics,
    /// Fault-plane counters.
    pub fault_stats: FaultStats,
}

/// One boundary the round engines cross: a failure instant or a repair.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Boundary {
    Failure(usize),
    Recovery,
}

/// Applies a [`FaultSchedule`]'s fleet failures and repairs to a round
/// engine's [`Cloud`] in serial coordinator code. The driver is pure
/// bookkeeping over the (sorted) schedule, so two engines stepping the
/// same schedule at the same round boundaries mutate their clouds
/// identically.
#[derive(Debug)]
pub(crate) struct FaultDriver {
    schedule: FaultSchedule,
    boundaries: Vec<(f64, Boundary)>,
    next: usize,
    retry: RetryPolicy,
    pub(crate) stats: FaultStats,
}

impl FaultDriver {
    pub(crate) fn new(schedule: &FaultSchedule) -> Self {
        let mut boundaries: Vec<(f64, Boundary)> = Vec::new();
        for (i, f) in schedule.vm_failures.iter().enumerate() {
            boundaries.push((f.at, Boundary::Failure(i)));
            boundaries.push((f.at + f.recovery_seconds, Boundary::Recovery));
        }
        // Stable order on time ties: failures before recoveries at the
        // same instant, then schedule order.
        boundaries.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| match (a.1, b.1) {
                    (Boundary::Failure(x), Boundary::Failure(y)) => x.cmp(&y),
                    (Boundary::Failure(_), Boundary::Recovery) => std::cmp::Ordering::Less,
                    (Boundary::Recovery, Boundary::Failure(_)) => std::cmp::Ordering::Greater,
                    (Boundary::Recovery, Boundary::Recovery) => std::cmp::Ordering::Equal,
                })
        });
        Self {
            schedule: schedule.clone(),
            boundaries,
            next: 0,
            retry: RetryPolicy::paper_default(),
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Applies every boundary due at or before `clock`: failures kill the
    /// configured fraction of running VMs and cap the fleet's
    /// availability; repairs lift the cap and resubmit the last planned
    /// targets through the retry policy (clamping again if another
    /// failure is still active).
    pub(crate) fn apply_due(
        &mut self,
        clock: f64,
        cloud: &mut Cloud,
        last_plan_targets: &[usize],
    ) -> Result<(), SimError> {
        while self.next < self.boundaries.len() && self.boundaries[self.next].0 <= clock {
            let (at, boundary) = self.boundaries[self.next];
            self.next += 1;
            let max_vms: Vec<usize> = cloud
                .vm_scheduler()
                .specs()
                .iter()
                .map(|s| s.max_vms)
                .collect();
            match boundary {
                Boundary::Failure(i) => {
                    let fraction = self.schedule.vm_failures[i].fraction;
                    let caps = self
                        .schedule
                        .fleet_caps_at(&max_vms, at)
                        .unwrap_or_else(|| max_vms.clone());
                    cloud.set_availability(&caps)?;
                    // Kill the failed fraction of what is actually
                    // running; survivors also respect the new cap.
                    let mut targets = Vec::with_capacity(max_vms.len());
                    let mut killed = 0u64;
                    for (cluster, &cap) in caps.iter().enumerate() {
                        let running = cloud.vm_scheduler().running(cluster);
                        let survivors =
                            (((running as f64) * (1.0 - fraction)).floor() as usize).min(cap);
                        killed += (running - survivors) as u64;
                        targets.push(survivors);
                    }
                    self.stats.vms_killed += killed;
                    cloud.submit_request(&ResourceRequest {
                        vm_targets: targets,
                        placement: None,
                    })?;
                }
                Boundary::Recovery => {
                    match self.schedule.fleet_caps_at(&max_vms, at) {
                        Some(caps) => cloud.set_availability(&caps)?,
                        None => cloud.restore_full_availability(),
                    }
                    if last_plan_targets.len() == max_vms.len() {
                        let receipt = cloud.submit_with_retry(
                            &ResourceRequest {
                                vm_targets: last_plan_targets.to_vec(),
                                placement: None,
                            },
                            &self.retry,
                        )?;
                        self.stats.vms_recovered +=
                            receipt.vm_targets.iter().map(|&t| t as u64).sum::<u64>();
                        self.stats.record_receipt(&receipt);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Resilience report: the faulted run compared against a fault-free
/// baseline of the same configuration, sample by sample.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResilienceReport {
    /// The earliest scheduled fault instant (0 when the schedule is
    /// empty).
    pub fault_start: f64,
    /// Mean streaming quality of the fault-free baseline run.
    pub baseline_mean_quality: f64,
    /// Mean streaming quality of the faulted run.
    pub faulted_mean_quality: f64,
    /// Lowest sampled quality of the faulted run at or after
    /// `fault_start`.
    pub quality_floor: f64,
    /// Deepest per-sample quality gap `baseline − faulted` after
    /// `fault_start`.
    pub dip_depth: f64,
    /// Total sampled time the faulted quality trailed the baseline by
    /// more than the tolerance, seconds.
    pub dip_duration_seconds: f64,
    /// Time from `fault_start` to the last sample still trailing the
    /// baseline (0 when quality never dipped).
    pub time_to_recover_seconds: f64,
    /// Faulted total cost minus baseline total cost, dollars (negative
    /// when the fault *saved* money, e.g. a budget cut).
    pub cost_overshoot_dollars: f64,
    /// What the fault plane did during the run.
    pub fault_stats: FaultStats,
}

/// Per-sample quality gap below which the faulted run counts as
/// recovered.
const RECOVERY_TOLERANCE: f64 = 0.005;

impl ResilienceReport {
    /// Builds the report from a fault-free baseline and a faulted run of
    /// the same configuration (identical sampling cadence).
    pub fn from_runs(
        baseline: &Metrics,
        faulted: &Metrics,
        fault_start: f64,
        fault_stats: FaultStats,
    ) -> Self {
        let mut quality_floor = f64::INFINITY;
        let mut dip_depth = 0.0f64;
        let mut dip_duration = 0.0f64;
        let mut last_dip_time = None;
        let mut prev_time = fault_start;
        for (b, f) in baseline.samples.iter().zip(&faulted.samples) {
            if f.time < fault_start {
                prev_time = f.time;
                continue;
            }
            let window = (f.time - prev_time).max(0.0);
            prev_time = f.time;
            quality_floor = quality_floor.min(f.quality);
            let gap = b.quality - f.quality;
            dip_depth = dip_depth.max(gap);
            if gap > RECOVERY_TOLERANCE {
                dip_duration += window;
                last_dip_time = Some(f.time);
            }
        }
        if !quality_floor.is_finite() {
            quality_floor = 0.0;
        }
        let time_to_recover = last_dip_time.map_or(0.0, |t| (t - fault_start).max(0.0));
        Self {
            fault_start,
            baseline_mean_quality: baseline.mean_quality(),
            faulted_mean_quality: faulted.mean_quality(),
            quality_floor,
            dip_depth,
            dip_duration_seconds: dip_duration,
            time_to_recover_seconds: time_to_recover,
            cost_overshoot_dollars: (faulted.total_vm_cost + faulted.total_storage_cost)
                - (baseline.total_vm_cost + baseline.total_storage_cost),
            fault_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Sample;

    fn sample(time: f64, quality: f64) -> Sample {
        Sample {
            time,
            reserved_bandwidth: 0.0,
            used_bandwidth: 0.0,
            quality,
            active_peers: 1,
            per_channel_peers: vec![1],
            per_channel_quality: vec![quality],
            mean_startup_delay: 0.0,
        }
    }

    fn metrics(qualities: &[f64]) -> Metrics {
        let mut m = Metrics::default();
        for (i, &q) in qualities.iter().enumerate() {
            m.samples.push(sample(300.0 * (i + 1) as f64, q));
        }
        m
    }

    #[test]
    fn validation_rejects_bad_events() {
        let mut s = FaultSchedule::vm_outage(100.0, 0.5, 600.0);
        s.validate().unwrap();
        s.vm_failures[0].fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = FaultSchedule::vm_outage(100.0, 0.5, 0.0);
        assert!(s.validate().is_err());
        s = FaultSchedule::site_outage(0.0, 1, -5.0);
        assert!(s.validate().is_err());
        s = FaultSchedule::tracker_blackout(f64::NAN, 60.0);
        assert!(s.validate().is_err());
        s = FaultSchedule::budget_shock(3600.0, 0.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn windows_and_masks() {
        let mut s = FaultSchedule::site_outage(1000.0, 1, 500.0);
        s.tracker_dropouts.push(TrackerDropout {
            at: 2000.0,
            duration_seconds: 100.0,
        });
        assert!(!s.site_down(1, 999.0));
        assert!(s.site_down(1, 1000.0));
        assert!(!s.site_down(1, 1500.0), "half-open window");
        assert!(!s.site_down(0, 1200.0));
        assert_eq!(s.site_mask(3, 1200.0), vec![false, true, false]);
        assert!(s.dropout_active(2050.0));
        assert!(!s.dropout_active(2100.0));
        assert_eq!(s.first_fault_at(), Some(1000.0));
        assert!(FaultSchedule::default().first_fault_at().is_none());
    }

    #[test]
    fn shock_factors_compose() {
        let mut s = FaultSchedule::budget_shock(3600.0, 0.5);
        s.cost_shocks.push(CostShock {
            at: 7200.0,
            vm_budget_factor: 0.8,
            vm_price_factor: 1.25,
        });
        assert_eq!(s.shock_factors(0.0), (1.0, 1.0));
        assert_eq!(s.shock_factors(3600.0), (0.5, 1.0));
        let (b, p) = s.shock_factors(10_000.0);
        assert!((b - 0.4).abs() < 1e-12);
        assert!((p - 1.25).abs() < 1e-12);
    }

    #[test]
    fn fleet_caps_take_the_worst_active_failure() {
        let mut s = FaultSchedule::vm_outage(100.0, 0.5, 1000.0);
        s.vm_failures.push(FleetFailure {
            at: 200.0,
            fraction: 0.2,
            recovery_seconds: 2000.0,
        });
        let max = vec![75, 30, 45];
        assert_eq!(s.fleet_caps_at(&max, 50.0), None);
        assert_eq!(s.fleet_caps_at(&max, 300.0), Some(vec![37, 15, 22]));
        // First failure repaired at 1100; the 20% one still active.
        assert_eq!(s.fleet_caps_at(&max, 1500.0), Some(vec![60, 24, 36]));
        assert_eq!(s.fleet_caps_at(&max, 2300.0), None);
    }

    #[test]
    fn driver_kills_and_repairs_deterministically() {
        let mut cloud = Cloud::paper_default().unwrap();
        cloud
            .submit_request(&ResourceRequest {
                vm_targets: vec![40, 10, 0],
                placement: None,
            })
            .unwrap();
        cloud.tick(100.0).unwrap();
        let schedule = FaultSchedule::vm_outage(200.0, 0.5, 300.0);
        let mut driver = FaultDriver::new(&schedule);
        let plan_targets = vec![40, 10, 0];
        cloud.tick(200.0).unwrap();
        driver.apply_due(200.0, &mut cloud, &plan_targets).unwrap();
        assert_eq!(driver.stats.vms_killed, 25, "half of 40 + half of 10");
        assert_eq!(cloud.availability(), &[37, 15, 22]);
        // Mid-outage nothing more happens.
        cloud.tick(400.0).unwrap();
        driver.apply_due(400.0, &mut cloud, &plan_targets).unwrap();
        assert_eq!(driver.stats.vms_killed, 25);
        // Repair restores the fleet and resubmits the plan.
        cloud.tick(500.0).unwrap();
        driver.apply_due(500.0, &mut cloud, &plan_targets).unwrap();
        assert_eq!(cloud.availability(), &[75, 30, 45]);
        assert_eq!(driver.stats.vms_recovered, 50);
        cloud.tick(600.0).unwrap();
        assert!((cloud.running_bandwidth() - 50.0 * 1.25e6).abs() < 1.0);
    }

    #[test]
    fn report_measures_dip_and_recovery() {
        let baseline = metrics(&[0.97, 0.97, 0.97, 0.97, 0.97, 0.97]);
        let faulted = metrics(&[0.97, 0.97, 0.80, 0.85, 0.97, 0.97]);
        // Samples at 300..1800; fault lands at 600.
        let r = ResilienceReport::from_runs(&baseline, &faulted, 600.0, FaultStats::default());
        assert!((r.dip_depth - 0.17).abs() < 1e-12);
        assert!((r.quality_floor - 0.80).abs() < 1e-12);
        assert!((r.dip_duration_seconds - 600.0).abs() < 1e-9);
        // Last trailing sample at t=1200 → 600 s to recover.
        assert!((r.time_to_recover_seconds - 600.0).abs() < 1e-9);
        let clean = ResilienceReport::from_runs(&baseline, &baseline, 600.0, FaultStats::default());
        assert_eq!(clean.time_to_recover_seconds, 0.0);
        assert_eq!(clean.dip_depth, 0.0);
    }
}
