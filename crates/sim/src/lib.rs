//! Discrete-event VoD system simulator for the CloudMedia reproduction.
//!
//! The paper evaluated CloudMedia on 100+ lab machines running real VoD
//! client processes; this crate substitutes a fluid-bandwidth system
//! simulator that exercises the identical control path — trace-driven
//! viewers, P2P mesh with rarest-first scheduling, the tracker's
//! measurements, the hourly provisioning controller, the cloud broker, and
//! usage-time billing — and records the series the paper's figures plot.
//!
//! - [`config`]: run configuration ([`config::SimConfig::paper_default`]
//!   reproduces the paper's experimental setup),
//! - [`peer`]: viewer state (downloads, buffer bitmap, stall accounting),
//! - [`allocation`]: max–min fair cloud sharing and rarest-first peer
//!   bandwidth allocation,
//! - [`tracker`]: per-interval measurement of `Λ(c)`, `α`, `P(c)`,
//! - [`simulator`]: the main loop,
//! - `sharded` (via [`config::SimKernel::Sharded`]): the scale-out
//!   channel-parallel round engine (one shard per channel, fanned
//!   across the worker pool; see `docs/SCALING.md`),
//! - [`federation`]: the multi-region simulator (per-region engines in
//!   lockstep, coupled by the global placement optimizer),
//! - [`metrics`]: recorded time series (quality, reserved/used bandwidth,
//!   cost, per-channel breakdowns).
//!
//! # Example
//!
//! ```no_run
//! use cloudmedia_sim::config::{SimConfig, SimMode};
//! use cloudmedia_sim::simulator::Simulator;
//!
//! let sim = Simulator::new(SimConfig::paper_default(SimMode::P2p)).unwrap();
//! let metrics = sim.run().unwrap();
//! println!("mean quality: {:.3}", metrics.mean_quality());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod allocation;
pub mod config;
mod error;
pub mod event_driven;
pub mod faults;
pub mod federation;
pub mod footprint;
pub mod metrics;
pub mod peer;
mod sharded;
pub mod simulator;
pub mod telem;
pub mod tracker;

pub use config::{SimConfig, SimKernel, SimMode};
pub use error::SimError;
pub use event_driven::{
    DesReport, DesRun, DesScenario, FlashCrowdSpec, RemoteOverflowSpec, VmFailureSpec,
};
pub use faults::{
    CostShock, DegradeMode, FaultRun, FaultSchedule, FaultStats, FleetFailure, ResilienceReport,
    SiteOutage, TrackerDropout,
};
pub use federation::{DeploymentKind, FederatedConfig, FederatedMetrics, FederatedSimulator};
pub use footprint::{PeerFootprint, PEER_BUDGET_BYTES};
pub use metrics::Metrics;
pub use simulator::Simulator;

/// The process's peak resident set size (`VmHWM` from
/// `/proc/self/status`), if the platform exposes it. Scale-out
/// reporting (the `cloudmedia scale` CLI, `bench_scale`'s
/// `scale_sweep` rows) uses this to record the memory footprint of
/// very large runs; it is a high-water mark, monotone over the
/// process lifetime.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}
