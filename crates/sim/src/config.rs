//! Simulation configuration.

use cloudmedia_core::analysis::{ProvisioningTarget, PsiEstimator};
use cloudmedia_core::baseline::ProvisionerKind;
use cloudmedia_core::controller::StreamingMode;
use cloudmedia_core::predictor::PredictorKind;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::distributions::BoundedPareto;
use cloudmedia_workload::trace::TraceConfig;
use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, SimError};
use crate::faults::FaultSchedule;

/// Which streaming architecture the simulated system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimMode {
    /// All chunks come from cloud VMs.
    ClientServer,
    /// Mesh P2P with rarest-first peer scheduling and cloud fallback.
    P2p,
}

/// Which simulation engine drives the run.
///
/// The two *round* engines (`Scan`, `Indexed`) produce **bit-identical**
/// metrics for the same seed and differ only in speed. The *event-driven*
/// engine is a different microscopic model on the `cloudmedia-des`
/// kernel: it agrees with the round engines in steady-state means (see
/// [`crate::event_driven`] for the tolerance argument) and additionally
/// models per-request admission latency, VM boot delay, and failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SimKernel {
    /// Reference round engine: rescans the full peer population every
    /// round and allocates fresh buffers per round, as the original
    /// implementation did. Kept as the baseline for benchmarks and as
    /// the oracle for the indexed engine's regression test.
    Scan,
    /// Production round engine: per-channel peer index maintained
    /// incrementally on join/leave, incrementally-tracked chunk-owner
    /// counts, fused single-pass per-channel aggregation into reusable
    /// scratch, in-place allocation kernels, and (for large populations)
    /// channel-parallel execution.
    #[default]
    Indexed,
    /// Event-driven engine on the deterministic DES kernel: components
    /// (viewer sessions, admission, provisioner) exchange timestamped
    /// events instead of being scanned per round, which adds per-request
    /// latency, VM boot/teardown delay, failure injection, and
    /// sub-round-timed flash crowds to the scenario space.
    EventDriven,
    /// Scale-out round engine for very large catalogs and populations:
    /// every channel is an independent **shard** owning its peers, its
    /// round state, its lazy arrival sub-stream, its tracker collector,
    /// and its own behaviour RNG (a splitmix child of `behaviour_seed`).
    /// Rounds fan the shards across the rayon worker pool when
    /// [`SimConfig::parallel_channels`] is set, and every cross-shard
    /// reduction runs in fixed channel order — so serial and parallel
    /// execution (at any thread count) produce **bit-identical**
    /// [`crate::metrics::Metrics`], pinned by
    /// `crates/sim/tests/sharding.rs`.
    ///
    /// Because each channel draws from its own RNG stream (the
    /// single-RNG round engines interleave all channels through one
    /// stream), a sharded run is a *different sample of the same
    /// process* than an `Indexed`/`Scan` run — identical model,
    /// matching distributions, but not bit-equal to them. See
    /// `docs/SCALING.md` for the determinism rules.
    Sharded,
}

/// Which event-queue scheduler backs the DES kernel when
/// [`SimKernel::EventDriven`] runs.
///
/// Both schedulers deliver **bit-identical** event sequences (the
/// determinism contract is property-tested in `crates/des/tests`); they
/// differ only in speed. The timing wheel is the default — O(1)
/// amortized schedule/cancel/pop over slab-allocated events versus the
/// heap's `O(log n)` sifts — and the `des_kernel` criterion bench plus
/// the `engine_throughput` section of `BENCH_sim.json` track the gap.
///
/// ```
/// use cloudmedia_sim::config::{SchedulerChoice, SimConfig, SimMode};
///
/// let mut cfg = SimConfig::paper_default(SimMode::P2p);
/// assert_eq!(cfg.scheduler, SchedulerChoice::Wheel);
/// // Select the reference heap (identical events, slower queue):
/// cfg.scheduler = SchedulerChoice::Heap;
/// assert_eq!(
///     cloudmedia_des::SchedulerKind::from(cfg.scheduler),
///     cloudmedia_des::SchedulerKind::BinaryHeap,
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerChoice {
    /// Reference binary-heap queue with lazy cancellation.
    Heap,
    /// Hierarchical timing wheel (slab storage, free-list recycling,
    /// eager O(1) cancellation).
    #[default]
    Wheel,
}

impl From<SchedulerChoice> for cloudmedia_des::SchedulerKind {
    fn from(choice: SchedulerChoice) -> Self {
        match choice {
            SchedulerChoice::Heap => cloudmedia_des::SchedulerKind::BinaryHeap,
            SchedulerChoice::Wheel => cloudmedia_des::SchedulerKind::TimingWheel,
        }
    }
}

/// Full configuration of one simulation run.
///
/// `Deserialize` is implemented by hand (the vendored derive has no
/// `#[serde(default)]`): the `scheduler` field is optional in JSON and
/// defaults to [`SchedulerChoice::Wheel`], so config files written
/// before the field existed keep loading.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimConfig {
    /// Channel catalog (popularity, viewing models, arrival rates).
    pub catalog: Catalog,
    /// Trace generation settings (horizon, diurnal profile, uploads, seed).
    pub trace: TraceConfig,
    /// Streaming architecture.
    pub mode: SimMode,
    /// Provisioning interval `T`, seconds.
    pub provisioning_interval: f64,
    /// VM rental budget `B_M`, dollars per hour.
    pub vm_budget_per_hour: f64,
    /// Storage budget `B_S`, dollars per hour.
    pub storage_budget_per_hour: f64,
    /// Demand predictor used by the controller.
    pub predictor: PredictorKind,
    /// Joint-ownership estimator for P2P analysis.
    pub psi: PsiEstimator,
    /// Retrieval-time guarantee used when sizing capacity.
    pub provisioning_target: ProvisioningTarget,
    /// Provisioning strategy: the paper's model-driven controller or a
    /// baseline (reactive autoscaler / fixed dedicated fleet).
    pub provisioner: ProvisionerKind,
    /// Provisioning safety factor (1.0 = provision the raw equilibrium
    /// demand).
    pub safety_factor: f64,
    /// Fluid allocation round, seconds.
    pub round_seconds: f64,
    /// Metrics sampling interval, seconds (paper's quality window: 5 min).
    pub sample_interval: f64,
    /// RNG seed for viewer behaviour inside the simulator.
    pub behaviour_seed: u64,
    /// Streaming playback rate `r`, bytes per second.
    pub streaming_rate: f64,
    /// Chunk playback time `T0`, seconds.
    pub chunk_seconds: f64,
    /// Fraction of peers' upload capacity usable per round in P2P mode,
    /// in `(0, 1]`. Models mesh friction the fluid allocator does not see
    /// — stale buffer maps, neighbor fan-out limits, request pipelining
    /// gaps — which is why the paper's P2P quality (≈ 0.95) trails its
    /// client–server quality (≈ 0.97).
    pub peer_efficiency: f64,
    /// Round-engine implementation (identical results, different speed).
    pub kernel: SimKernel,
    /// DES event-queue scheduler used by [`SimKernel::EventDriven`]
    /// (identical event order, different speed). Ignored by the round
    /// engines.
    pub scheduler: SchedulerChoice,
    /// Fan [`SimKernel::Sharded`] channel shards across the rayon worker
    /// pool (default). Shards never share an accumulator inside a round
    /// and every cross-shard coupling (provisioning, the online scale,
    /// metric assembly) happens at synchronization barriers in fixed
    /// channel order, so serial and parallel execution are
    /// **bit-identical**. Disable to force serial shard stepping
    /// (debugging, single-core baselines). Ignored by every other
    /// kernel.
    pub parallel_channels: bool,
    /// Cap on the sub-channel **lanes** a single shard may split its
    /// downloading peers across inside one round (the giant-channel
    /// parallel path; see `docs/SCALING.md`). `0` (the default) sizes
    /// the cap to the worker-pool width and keeps the auto engagement
    /// threshold, so small shards stay serial; an explicit value forces
    /// that many lanes with a low threshold (test/benchmark knob).
    /// Lane partitions are fixed-order index ranges and reductions fold
    /// integer partials in lane order, so any lane count and any thread
    /// count produce bit-identical results. Ignored unless
    /// [`SimKernel::Sharded`] runs with `parallel_channels`.
    pub lanes: usize,
    /// Multiplier on the paper's Table II/III cloud capacity (fleet
    /// sizes and NFS storage; per-VM bandwidth and prices unchanged).
    /// 1.0 is the paper testbed — 150 VMs sized for ~2500 concurrent
    /// viewers; [`SimConfig::scale_out`] grows it (and the budgets) in
    /// proportion to the target population.
    pub fleet_scale: f64,
    /// The deterministic fault plane: timed fleet failures, site
    /// outages, tracker dropouts, and cost shocks every engine replays
    /// identically (see [`crate::faults`] and `docs/RESILIENCE.md`).
    /// Empty by default — no faults.
    pub faults: FaultSchedule,
    /// Quiescence-aware epoch engine (the [`SimKernel::Sharded`] hot
    /// path; see `docs/SCALING.md` "Quiescence and epochs"). When a
    /// channel's inputs are provably steady, its shard enters an
    /// **epoch**: downloads are virtualized as integer demand deltas on
    /// the 1/1024 fixed-point grid and event-free rounds are skipped
    /// outright, fast-forwarding peers in closed form when next
    /// observed. Skipped rounds are bit-identical to stepped ones
    /// (pinned by `crates/sim/tests/quiesce_invariance.rs`). On by
    /// default; `--no-quiesce` (or `"quiescence": false`) disables it.
    pub quiescence: bool,
}

impl serde::Deserialize for SimConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        fn req<T: serde::Deserialize>(v: &serde::Value, field: &str) -> Result<T, serde::DeError> {
            T::from_value(
                v.get(field).ok_or_else(|| {
                    serde::de_error(format!("SimConfig: missing field `{field}`"))
                })?,
            )
        }
        Ok(Self {
            catalog: req(v, "catalog")?,
            trace: req(v, "trace")?,
            mode: req(v, "mode")?,
            provisioning_interval: req(v, "provisioning_interval")?,
            vm_budget_per_hour: req(v, "vm_budget_per_hour")?,
            storage_budget_per_hour: req(v, "storage_budget_per_hour")?,
            predictor: req(v, "predictor")?,
            psi: req(v, "psi")?,
            provisioning_target: req(v, "provisioning_target")?,
            provisioner: req(v, "provisioner")?,
            safety_factor: req(v, "safety_factor")?,
            round_seconds: req(v, "round_seconds")?,
            sample_interval: req(v, "sample_interval")?,
            behaviour_seed: req(v, "behaviour_seed")?,
            streaming_rate: req(v, "streaming_rate")?,
            chunk_seconds: req(v, "chunk_seconds")?,
            peer_efficiency: req(v, "peer_efficiency")?,
            kernel: req(v, "kernel")?,
            // Optional with a default: added after configs were already
            // in the wild.
            scheduler: match v.get("scheduler") {
                Some(value) => serde::Deserialize::from_value(value)?,
                None => SchedulerChoice::default(),
            },
            // Same story: optional, defaulting to parallel execution.
            parallel_channels: match v.get("parallel_channels") {
                Some(value) => serde::Deserialize::from_value(value)?,
                None => true,
            },
            // Optional: configs written before sub-channel lanes
            // existed load with the auto cap.
            lanes: match v.get("lanes") {
                Some(value) => serde::Deserialize::from_value(value)?,
                None => 0,
            },
            fleet_scale: match v.get("fleet_scale") {
                Some(value) => serde::Deserialize::from_value(value)?,
                None => 1.0,
            },
            // Optional: configs written before the fault plane existed
            // load with an empty (no-fault) schedule.
            faults: match v.get("faults") {
                Some(value) => serde::Deserialize::from_value(value)?,
                None => FaultSchedule::default(),
            },
            // Optional: configs written before the quiescence engine
            // existed load with it on (results are bit-identical).
            quiescence: match v.get("quiescence") {
                Some(value) => serde::Deserialize::from_value(value)?,
                None => true,
            },
        })
    }
}

impl SimConfig {
    /// The paper's experimental setup for the given mode: 20 channels,
    /// one week, hourly provisioning, `B_M` = $100/h, `B_S` = $1/h.
    ///
    /// The concurrent population is calibrated so the *flash-crowd peak*
    /// is ≈ 2500 viewers (the paper's stated scale). The paper's Table II
    /// fleet is 150 VMs = 1500 Mbps; at 400 kbps per viewer the peak
    /// population a pure client–server deployment can serve is ≈ 3000, so
    /// 2500 must be the peak, not the diurnal mean — otherwise the paper's
    /// own flash crowds (Fig. 4 peaks ≈ 2250 Mbps) would be unservable.
    pub fn paper_default(mode: SimMode) -> Self {
        // Peak diurnal multiplier ≈ 3.5; unit-multiplier population of
        // ~715 puts the flash-crowd peak at ≈ 2500 concurrent viewers.
        let catalog = Catalog::zipf(
            20,
            0.8,
            cloudmedia_workload::viewing::ViewingModel::paper_default(),
            715.0,
            300.0,
        )
        .expect("paper defaults are valid");
        Self {
            catalog,
            trace: TraceConfig::paper_default(),
            mode,
            provisioning_interval: 3600.0,
            vm_budget_per_hour: 100.0,
            storage_budget_per_hour: 1.0,
            predictor: PredictorKind::LastInterval,
            psi: PsiEstimator::Independent,
            provisioning_target: ProvisioningTarget::MeanSojourn,
            provisioner: ProvisionerKind::Model,
            safety_factor: 1.0,
            round_seconds: 10.0,
            sample_interval: 300.0,
            behaviour_seed: 0x5EED_0001,
            streaming_rate: 50_000.0,
            chunk_seconds: 300.0,
            peer_efficiency: 0.85,
            kernel: SimKernel::default(),
            scheduler: SchedulerChoice::default(),
            parallel_channels: true,
            lanes: 0,
            fleet_scale: 1.0,
            faults: FaultSchedule::default(),
            quiescence: true,
        }
    }

    /// A scale-out configuration: a [`Catalog::mega_catalog`] of
    /// `channels` Zipf channels calibrated to `population` expected
    /// concurrent viewers, driven by the [`SimKernel::Sharded`] engine
    /// with channel-parallel rounds. Everything else follows the paper
    /// defaults (hourly provisioning, 10-second rounds, 5-minute
    /// sampling); set `trace.horizon_seconds` for the run length.
    ///
    /// ```
    /// use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
    ///
    /// let mut cfg = SimConfig::scale_out(SimMode::ClientServer, 500, 50_000.0).unwrap();
    /// cfg.trace.horizon_seconds = 2.0 * 3600.0;
    /// assert_eq!(cfg.kernel, SimKernel::Sharded);
    /// assert_eq!(cfg.catalog.len(), 500);
    /// cfg.validate().unwrap();
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates catalog validation failures (zero channels,
    /// non-positive population).
    pub fn scale_out(mode: SimMode, channels: usize, population: f64) -> Result<Self, SimError> {
        let mut cfg = Self::paper_default(mode);
        cfg.catalog = Catalog::mega_catalog(channels, population)
            .map_err(|e| invalid_param("catalog", e.to_string()))?;
        cfg.kernel = SimKernel::Sharded;
        cfg.parallel_channels = true;
        // The paper testbed (150 VMs, $100/h + $1/h budgets) serves
        // ~2500 concurrent viewers; grow capacity and budgets in
        // proportion so the controller's optimization stays feasible at
        // any population.
        let factor = (population / 2500.0).max(1.0);
        cfg.fleet_scale = factor;
        cfg.vm_budget_per_hour *= factor;
        cfg.storage_budget_per_hour *= factor;
        Ok(cfg)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive intervals or a sampling interval
    /// finer than the round.
    pub fn validate(&self) -> Result<(), SimError> {
        self.trace.validate()?;
        if !(self.round_seconds.is_finite() && self.round_seconds > 0.0) {
            return Err(invalid_param("round_seconds", "must be positive"));
        }
        if self.sample_interval < self.round_seconds {
            return Err(invalid_param(
                "sample_interval",
                "must be at least one allocation round",
            ));
        }
        if self.provisioning_interval < self.sample_interval {
            return Err(invalid_param(
                "provisioning_interval",
                "must be at least one sample interval",
            ));
        }
        if !(self.safety_factor.is_finite() && self.safety_factor > 0.0) {
            return Err(invalid_param("safety_factor", "must be positive"));
        }
        if self.catalog.is_empty() {
            return Err(invalid_param(
                "catalog",
                "must contain at least one channel",
            ));
        }
        // Every engine keeps per-peer chunk sets as u64 bitmaps; a
        // channel beyond 64 chunks would silently alias buffer slots in
        // release builds, so reject it at the configuration boundary.
        for spec in self.catalog.channels() {
            if spec.viewing.chunks > crate::peer::MAX_CHUNKS {
                return Err(invalid_param(
                    "catalog",
                    format!(
                        "channel {} has {} chunks; chunk sets are u64 bitmaps, max {}",
                        spec.id,
                        spec.viewing.chunks,
                        crate::peer::MAX_CHUNKS
                    ),
                ));
            }
        }
        if !(self.streaming_rate.is_finite() && self.streaming_rate > 0.0) {
            return Err(invalid_param("streaming_rate", "must be positive"));
        }
        if !(self.chunk_seconds.is_finite() && self.chunk_seconds > 0.0) {
            return Err(invalid_param("chunk_seconds", "must be positive"));
        }
        if !(self.peer_efficiency > 0.0 && self.peer_efficiency <= 1.0) {
            return Err(invalid_param("peer_efficiency", "must be in (0, 1]"));
        }
        if self.lanes > 1024 {
            return Err(invalid_param(
                "lanes",
                "must be at most 1024 (0 = auto, one lane per worker)",
            ));
        }
        if !(self.fleet_scale.is_finite() && self.fleet_scale >= 1.0) {
            return Err(invalid_param(
                "fleet_scale",
                "must be at least 1.0 (the paper testbed)",
            ));
        }
        self.faults.validate()?;
        Ok(())
    }

    /// Chunk size in bytes, `r · T0`.
    pub fn chunk_bytes(&self) -> f64 {
        self.streaming_rate * self.chunk_seconds
    }

    /// Mean per-peer upload capacity implied by the trace's Pareto
    /// parameters; fed to the controller's P2P analysis.
    pub fn mean_upload(&self) -> f64 {
        BoundedPareto::new(
            self.trace.upload_min_bps,
            self.trace.upload_max_bps,
            self.trace.upload_shape,
        )
        .map(|p| p.mean())
        .unwrap_or(0.0)
    }

    /// The controller streaming mode corresponding to [`SimMode`].
    ///
    /// The P2P mean upload fed to the analysis is the *effective* value
    /// `mean_upload() × peer_efficiency`: the provider calibrates `u` from
    /// the peer throughput its tracker actually observes, not from the
    /// nominal access-link distribution. (Feeding the nominal mean makes
    /// the analytic peer contribution systematically optimistic and the
    /// cloud fallback vanishes exactly when peer supply ≈ demand.)
    pub fn streaming_mode(&self) -> StreamingMode {
        match self.mode {
            SimMode::ClientServer => StreamingMode::ClientServer,
            SimMode::P2p => StreamingMode::P2p {
                mean_upload: self.mean_upload() * self.peer_efficiency,
                psi: self.psi,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_json_without_scheduler_field_still_loads() {
        // `scheduler` was added after config files were already in the
        // wild; a pre-existing JSON config (no such key) must load with
        // the default instead of failing deserialization.
        let cfg = SimConfig::paper_default(SimMode::P2p);
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&cfg) else {
            panic!("config serializes to an object");
        };
        fields.retain(|(k, _)| k != "scheduler");
        let legacy = serde::Value::Object(fields);
        let parsed = <SimConfig as serde::Deserialize>::from_value(&legacy).unwrap();
        assert_eq!(parsed.scheduler, SchedulerChoice::Wheel);
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn config_json_without_parallel_channels_field_still_loads() {
        let cfg = SimConfig::paper_default(SimMode::P2p);
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&cfg) else {
            panic!("config serializes to an object");
        };
        fields.retain(|(k, _)| k != "parallel_channels");
        let legacy = serde::Value::Object(fields);
        let parsed = <SimConfig as serde::Deserialize>::from_value(&legacy).unwrap();
        assert!(parsed.parallel_channels, "defaults to parallel");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn config_json_without_lanes_field_still_loads() {
        let cfg = SimConfig::paper_default(SimMode::P2p);
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&cfg) else {
            panic!("config serializes to an object");
        };
        fields.retain(|(k, _)| k != "lanes");
        let legacy = serde::Value::Object(fields);
        let parsed = <SimConfig as serde::Deserialize>::from_value(&legacy).unwrap();
        assert_eq!(parsed.lanes, 0, "defaults to the auto lane cap");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn oversized_lane_cap_rejected() {
        let mut c = SimConfig::paper_default(SimMode::P2p);
        c.lanes = 1024;
        c.validate().unwrap();
        c.lanes = 1025;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("lanes"), "got: {err}");
    }

    #[test]
    fn config_json_without_faults_field_still_loads() {
        let cfg = SimConfig::paper_default(SimMode::P2p);
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&cfg) else {
            panic!("config serializes to an object");
        };
        fields.retain(|(k, _)| k != "faults");
        let legacy = serde::Value::Object(fields);
        let parsed = <SimConfig as serde::Deserialize>::from_value(&legacy).unwrap();
        assert!(parsed.faults.is_empty(), "defaults to no faults");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn config_json_without_quiescence_field_still_loads() {
        let cfg = SimConfig::paper_default(SimMode::P2p);
        let serde::Value::Object(mut fields) = serde::Serialize::to_value(&cfg) else {
            panic!("config serializes to an object");
        };
        fields.retain(|(k, _)| k != "quiescence");
        let legacy = serde::Value::Object(fields);
        let parsed = <SimConfig as serde::Deserialize>::from_value(&legacy).unwrap();
        assert!(parsed.quiescence, "defaults to quiescence on");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn fault_schedule_round_trips_and_validates_through_config() {
        use crate::faults::{DegradeMode, FaultSchedule};
        let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
        cfg.faults = FaultSchedule::vm_outage(3600.0, 0.4, 900.0);
        cfg.faults.degrade = DegradeMode::ShedNewArrivals;
        let value = serde::Serialize::to_value(&cfg);
        let parsed = <SimConfig as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(parsed, cfg);
        cfg.validate().unwrap();
        cfg.faults.vm_failures[0].fraction = 2.0;
        assert!(cfg.validate().is_err(), "schedule validated with config");
    }

    #[test]
    fn sharded_config_round_trips_through_json() {
        let mut cfg = SimConfig::paper_default(SimMode::P2p);
        cfg.kernel = SimKernel::Sharded;
        cfg.parallel_channels = false;
        cfg.fleet_scale = 40.0;
        let value = serde::Serialize::to_value(&cfg);
        let parsed = <SimConfig as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(parsed, cfg);
        assert_eq!(parsed.kernel, SimKernel::Sharded);
        assert!(!parsed.parallel_channels);
        assert_eq!(parsed.fleet_scale, 40.0);
    }

    #[test]
    fn scale_out_builds_a_sharded_mega_config() {
        let cfg = SimConfig::scale_out(SimMode::P2p, 300, 25_000.0).unwrap();
        assert_eq!(cfg.kernel, SimKernel::Sharded);
        assert!(cfg.parallel_channels);
        assert_eq!(cfg.catalog.len(), 300);
        let pop = cfg.catalog.expected_population(cfg.chunk_seconds);
        assert!((pop - 25_000.0).abs() / 25_000.0 < 1e-9, "population {pop}");
        cfg.validate().unwrap();
        assert!(SimConfig::scale_out(SimMode::P2p, 0, 25_000.0).is_err());
        assert!(SimConfig::scale_out(SimMode::P2p, 10, -5.0).is_err());
    }

    #[test]
    fn paper_default_validates() {
        SimConfig::paper_default(SimMode::ClientServer)
            .validate()
            .unwrap();
        SimConfig::paper_default(SimMode::P2p).validate().unwrap();
    }

    #[test]
    fn mean_upload_is_within_pareto_bounds() {
        let c = SimConfig::paper_default(SimMode::P2p);
        let u = c.mean_upload();
        assert!(u > c.trace.upload_min_bps && u < c.trace.upload_max_bps);
        // Shape-3 Pareto concentrates near the minimum: mean well below
        // the midpoint.
        assert!(u < (c.trace.upload_min_bps + c.trace.upload_max_bps) / 4.0);
    }

    #[test]
    fn streaming_mode_maps_correctly() {
        let cs = SimConfig::paper_default(SimMode::ClientServer);
        assert!(matches!(cs.streaming_mode(), StreamingMode::ClientServer));
        let p2p = SimConfig::paper_default(SimMode::P2p);
        assert!(matches!(p2p.streaming_mode(), StreamingMode::P2p { .. }));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SimConfig::paper_default(SimMode::P2p);
        c.round_seconds = 0.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_default(SimMode::P2p);
        c.sample_interval = 1.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_default(SimMode::P2p);
        c.provisioning_interval = 100.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_default(SimMode::P2p);
        c.safety_factor = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn over_64_chunk_channels_rejected() {
        let mut c = SimConfig::paper_default(SimMode::P2p);
        let mut viewing = cloudmedia_workload::viewing::ViewingModel::paper_default();
        viewing.chunks = 80;
        c.catalog =
            cloudmedia_workload::catalog::Catalog::zipf(2, 0.8, viewing, 40.0, 300.0).unwrap();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("u64 bitmaps"), "got: {err}");
    }
}
