//! Peer state: pipelined chunk downloads, buffer, playback smoothness.
//!
//! A viewer's player downloads the next chunk of its trajectory while the
//! current one plays, starting up to one extra playback window early (the
//! paper's clients buffer aggressively — "the local playback buffer is
//! sufficient to cache any one video"). A chunk whose download finishes
//! after its playback deadline causes a stall of `done − deadline`
//! seconds; the paper's smooth-playback criterion is the absence of such
//! stalls over the trailing five-minute window.
//!
//! # Packed layout
//!
//! [`Peer`] is the per-viewer record every engine keeps resident, so at
//! scale-out populations (10⁶–10⁷ connected viewers) its size *is* the
//! memory model. The struct packs to **72 bytes**: the [`PeerState`]
//! enum is stored as a one-byte tag plus two overlaid `f64` payload
//! slots (bytes-left / wake-time and the deadline), the chunk index is a
//! `u8` (chunk sets are `u64` bitmaps, so a chunk index never exceeds
//! 63), the channel id is a `u32`, and the "never stalled" niche of
//! `last_stall_at` is a NaN sentinel instead of an `Option`
//! discriminant. The payloads remain the exact `f64` values the
//! unpacked representation held, so packing is invisible to every
//! metric — [`Peer::state`] reconstructs the logical enum bit-for-bit.
//! `crates/sim/tests/peer_footprint.rs` pins the size so future field
//! additions fail loudly instead of silently regressing RSS.

/// Maximum number of chunks per channel supported by the `u64` buffer
/// bitmap.
pub const MAX_CHUNKS: usize = 64;

/// How far ahead of a chunk's playback deadline its download may start,
/// in playback windows (`T0`). Two windows bound the prefetch lead to one
/// chunk beyond the currently playing one.
pub const PREFETCH_WINDOWS: f64 = 2.0;

/// What a peer is currently doing — the logical view reconstructed from
/// the packed tag + payload fields (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeerState {
    /// Downloading `chunk`, needed for playback by `deadline`
    /// (`f64::INFINITY` for the session's first chunk, whose playback
    /// simply starts when it arrives).
    Downloading {
        /// Chunk being fetched.
        chunk: usize,
        /// Bytes still to download.
        bytes_left: f64,
        /// Playback deadline; finishing later is a stall.
        deadline: f64,
    },
    /// Not downloading: either gated prefetch (the next download may not
    /// start before `wake_at`) or draining playback before departure.
    Waiting {
        /// The next chunk to download and its deadline; `None` means the
        /// peer leaves at `wake_at`.
        next: Option<PendingChunk>,
        /// Time to start the pending download, or to depart.
        wake_at: f64,
    },
}

/// A decided-but-not-yet-started chunk download.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingChunk {
    /// Chunk to download.
    pub chunk: usize,
    /// Playback deadline of that chunk.
    pub deadline: f64,
}

/// Packed state tags (see the module docs).
const TAG_DOWNLOADING: u8 = 0;
const TAG_WAIT_NEXT: u8 = 1;
const TAG_WAIT_LEAVE: u8 = 2;

/// One connected viewer, packed to 72 bytes (pinned by
/// `crates/sim/tests/peer_footprint.rs`; see the module docs for the
/// layout).
///
/// Quiescence invariant: while a shard sits in an epoch a downloading
/// peer's `f_a` (bytes left) is deliberately **stale** — the epoch
/// engine tracks the download as a virtual schedule and only writes
/// `f_a` back at materialization, fast-forwarding it with the same
/// fixed-point recurrence the stepped path runs, so the written value
/// is bit-identical to what round-by-round advancement would have
/// produced. No code outside the engine may read a downloading peer's
/// `f_a` mid-epoch (the invariance proptest in
/// `crates/sim/tests/quiesce_invariance.rs` would catch the drift).
#[derive(Debug, Clone)]
pub struct Peer {
    /// Stable identifier from the arrival trace.
    pub id: u64,
    /// Upload capacity, bytes per second (P2P mode).
    pub upload_capacity: f64,
    /// State payload A: bytes still to download (downloading) or the
    /// wake time (waiting).
    f_a: f64,
    /// State payload B: the current (downloading) or pending (waiting
    /// with a next chunk) chunk's playback deadline; unused while
    /// draining toward departure.
    f_b: f64,
    /// Bitmap of chunks buffered (available for upload).
    pub buffer: u64,
    /// Time of the most recent stall event; NaN = never stalled.
    last_stall_at: f64,
    /// Total stall seconds accumulated over the session.
    pub total_stall: f64,
    /// Time the peer joined the channel.
    pub joined_at: f64,
    /// Channel the peer is watching.
    channel: u32,
    /// Which [`PeerState`] variant the payload slots hold.
    tag: u8,
    /// Current (downloading) or pending (waiting) chunk; < 64.
    chunk: u8,
}

impl PartialEq for Peer {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.channel == other.channel
            && self.upload_capacity == other.upload_capacity
            && self.tag == other.tag
            && self.chunk == other.chunk
            && self.f_a == other.f_a
            && self.f_b == other.f_b
            && self.buffer == other.buffer
            && self.last_stall_at() == other.last_stall_at()
            && self.total_stall == other.total_stall
            && self.joined_at == other.joined_at
    }
}

impl Peer {
    /// Creates a peer that starts downloading `chunk` at `now` with no
    /// deadline (initial buffering is start-up delay, not a stall).
    pub fn new(
        id: u64,
        channel: usize,
        upload_capacity: f64,
        chunk: usize,
        chunk_bytes: f64,
        now: f64,
    ) -> Self {
        debug_assert!(chunk < MAX_CHUNKS);
        debug_assert!(u32::try_from(channel).is_ok());
        Self {
            id,
            upload_capacity,
            f_a: chunk_bytes,
            f_b: f64::INFINITY,
            buffer: 0,
            last_stall_at: f64::NAN,
            total_stall: 0.0,
            joined_at: now,
            channel: channel as u32,
            tag: TAG_DOWNLOADING,
            chunk: chunk as u8,
        }
    }

    /// Channel the peer is watching.
    #[inline]
    pub fn channel(&self) -> usize {
        self.channel as usize
    }

    /// The logical state, reconstructed from the packed fields. The
    /// payloads are stored as the exact `f64` values, so this is a
    /// lossless view.
    #[inline]
    pub fn state(&self) -> PeerState {
        match self.tag {
            TAG_DOWNLOADING => PeerState::Downloading {
                chunk: self.chunk as usize,
                bytes_left: self.f_a,
                deadline: self.f_b,
            },
            TAG_WAIT_NEXT => PeerState::Waiting {
                next: Some(PendingChunk {
                    chunk: self.chunk as usize,
                    deadline: self.f_b,
                }),
                wake_at: self.f_a,
            },
            _ => PeerState::Waiting {
                next: None,
                wake_at: self.f_a,
            },
        }
    }

    /// Packs the logical state into the tag + payload fields.
    #[inline]
    pub fn set_state(&mut self, state: PeerState) {
        match state {
            PeerState::Downloading {
                chunk,
                bytes_left,
                deadline,
            } => {
                debug_assert!(chunk < MAX_CHUNKS);
                self.tag = TAG_DOWNLOADING;
                self.chunk = chunk as u8;
                self.f_a = bytes_left;
                self.f_b = deadline;
            }
            PeerState::Waiting {
                next: Some(pending),
                wake_at,
            } => {
                debug_assert!(pending.chunk < MAX_CHUNKS);
                self.tag = TAG_WAIT_NEXT;
                self.chunk = pending.chunk as u8;
                self.f_a = wake_at;
                self.f_b = pending.deadline;
            }
            PeerState::Waiting {
                next: None,
                wake_at,
            } => {
                self.tag = TAG_WAIT_LEAVE;
                self.chunk = 0;
                self.f_a = wake_at;
                self.f_b = 0.0;
            }
        }
    }

    /// The wake time of a waiting peer (prefetch gate or departure
    /// drain). Must not be called while downloading.
    #[inline]
    pub fn wake_at(&self) -> f64 {
        debug_assert_ne!(self.tag, TAG_DOWNLOADING, "wake_at of a downloader");
        self.f_a
    }

    /// The chunk the peer is currently fetching, if downloading.
    pub fn downloading_chunk(&self) -> Option<usize> {
        (self.tag == TAG_DOWNLOADING).then_some(self.chunk as usize)
    }

    /// True if the peer has `chunk` buffered.
    pub fn owns(&self, chunk: usize) -> bool {
        debug_assert!(chunk < MAX_CHUNKS);
        self.buffer & (1u64 << chunk) != 0
    }

    /// Marks `chunk` as buffered.
    pub fn add_to_buffer(&mut self, chunk: usize) {
        debug_assert!(chunk < MAX_CHUNKS);
        self.buffer |= 1u64 << chunk;
    }

    /// Number of buffered chunks.
    pub fn buffered_chunks(&self) -> u32 {
        self.buffer.count_ones()
    }

    /// Time of the most recent stall event, if any.
    pub fn last_stall_at(&self) -> Option<f64> {
        if self.last_stall_at.is_nan() {
            None
        } else {
            Some(self.last_stall_at)
        }
    }

    /// Records a stall of `seconds` observed at `now`.
    pub fn record_stall(&mut self, now: f64, seconds: f64) {
        debug_assert!(seconds > 0.0);
        self.last_stall_at = now;
        self.total_stall += seconds;
    }

    /// True if the peer experienced smooth playback throughout the window
    /// `[now − window, now]`: no recorded stall in the window and no
    /// in-flight download already past its deadline.
    pub fn smooth_in_window(&self, now: f64, window: f64) -> bool {
        // NaN (never stalled) compares false, which is exactly the
        // "no stall in the window" answer.
        if self.last_stall_at >= now - window {
            return false;
        }
        if self.tag == TAG_DOWNLOADING && now > self.f_b {
            return false; // currently stalled mid-download
        }
        true
    }

    /// Begins downloading `chunk` with the given playback `deadline`.
    pub fn start_chunk(&mut self, chunk: usize, chunk_bytes: f64, deadline: f64) {
        debug_assert!(chunk < MAX_CHUNKS);
        self.tag = TAG_DOWNLOADING;
        self.chunk = chunk as u8;
        self.f_a = chunk_bytes;
        self.f_b = deadline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer() -> Peer {
        Peer::new(1, 0, 100e3, 0, 15e6, 0.0)
    }

    #[test]
    fn new_peer_downloads_start_chunk_without_deadline() {
        let p = peer();
        assert_eq!(p.downloading_chunk(), Some(0));
        assert_eq!(p.buffered_chunks(), 0);
        // No deadline: start-up buffering never counts as a stall.
        assert!(p.smooth_in_window(1e9, 300.0));
    }

    #[test]
    fn packed_layout_stays_at_72_bytes() {
        assert_eq!(std::mem::size_of::<Peer>(), 72);
    }

    #[test]
    fn state_round_trips_through_the_packed_fields() {
        let mut p = peer();
        for state in [
            PeerState::Downloading {
                chunk: 7,
                bytes_left: 123.456,
                deadline: f64::INFINITY,
            },
            PeerState::Waiting {
                next: Some(PendingChunk {
                    chunk: 63,
                    deadline: 900.25,
                }),
                wake_at: 300.5,
            },
            PeerState::Waiting {
                next: None,
                wake_at: 42.0,
            },
        ] {
            p.set_state(state);
            assert_eq!(p.state(), state);
        }
    }

    #[test]
    fn buffer_bitmap_roundtrip() {
        let mut p = peer();
        assert!(!p.owns(5));
        p.add_to_buffer(5);
        p.add_to_buffer(0);
        assert!(p.owns(5));
        assert!(p.owns(0));
        assert!(!p.owns(1));
        assert_eq!(p.buffered_chunks(), 2);
        p.add_to_buffer(5);
        assert_eq!(p.buffered_chunks(), 2, "idempotent");
    }

    #[test]
    fn stall_breaks_smoothness_within_window_only() {
        let mut p = peer();
        p.set_state(PeerState::Waiting {
            next: None,
            wake_at: 1e9,
        });
        p.record_stall(100.0, 5.0);
        assert!(!p.smooth_in_window(150.0, 300.0));
        assert!(p.smooth_in_window(500.0, 300.0), "stall aged out");
        assert_eq!(p.total_stall, 5.0);
        assert_eq!(p.last_stall_at(), Some(100.0));
    }

    #[test]
    fn overdue_download_counts_as_stalled() {
        let mut p = peer();
        p.start_chunk(3, 15e6, 400.0);
        assert!(p.smooth_in_window(399.0, 300.0));
        assert!(!p.smooth_in_window(401.0, 300.0));
    }

    #[test]
    fn waiting_peer_is_smooth() {
        let mut p = peer();
        p.set_state(PeerState::Waiting {
            next: Some(PendingChunk {
                chunk: 2,
                deadline: 900.0,
            }),
            wake_at: 300.0,
        });
        assert!(p.smooth_in_window(500.0, 300.0));
        assert_eq!(p.wake_at(), 300.0);
    }

    #[test]
    fn start_chunk_sets_deadline_and_preserves_buffer() {
        let mut p = peer();
        p.add_to_buffer(0);
        p.start_chunk(3, 15e6, 777.0);
        assert_eq!(p.downloading_chunk(), Some(3));
        match p.state() {
            PeerState::Downloading {
                bytes_left,
                deadline,
                ..
            } => {
                assert_eq!(bytes_left, 15e6);
                assert_eq!(deadline, 777.0);
            }
            _ => panic!("expected Downloading"),
        }
        assert!(p.owns(0));
    }

    #[test]
    fn fresh_identical_peers_compare_equal() {
        // `last_stall_at` is a NaN sentinel internally; equality must
        // treat two never-stalled peers as equal regardless.
        assert_eq!(peer(), peer());
        let mut stalled = peer();
        stalled.record_stall(10.0, 1.0);
        assert_ne!(peer(), stalled);
    }
}
