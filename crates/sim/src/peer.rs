//! Peer state: pipelined chunk downloads, buffer, playback smoothness.
//!
//! A viewer's player downloads the next chunk of its trajectory while the
//! current one plays, starting up to one extra playback window early (the
//! paper's clients buffer aggressively — "the local playback buffer is
//! sufficient to cache any one video"). A chunk whose download finishes
//! after its playback deadline causes a stall of `done − deadline`
//! seconds; the paper's smooth-playback criterion is the absence of such
//! stalls over the trailing five-minute window.

use serde::{Deserialize, Serialize};

/// Maximum number of chunks per channel supported by the `u64` buffer
/// bitmap.
pub const MAX_CHUNKS: usize = 64;

/// How far ahead of a chunk's playback deadline its download may start,
/// in playback windows (`T0`). Two windows bound the prefetch lead to one
/// chunk beyond the currently playing one.
pub const PREFETCH_WINDOWS: f64 = 2.0;

/// What a peer is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PeerState {
    /// Downloading `chunk`, needed for playback by `deadline`
    /// (`f64::INFINITY` for the session's first chunk, whose playback
    /// simply starts when it arrives).
    Downloading {
        /// Chunk being fetched.
        chunk: usize,
        /// Bytes still to download.
        bytes_left: f64,
        /// Playback deadline; finishing later is a stall.
        deadline: f64,
    },
    /// Not downloading: either gated prefetch (the next download may not
    /// start before `wake_at`) or draining playback before departure.
    Waiting {
        /// The next chunk to download and its deadline; `None` means the
        /// peer leaves at `wake_at`.
        next: Option<PendingChunk>,
        /// Time to start the pending download, or to depart.
        wake_at: f64,
    },
}

/// A decided-but-not-yet-started chunk download.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingChunk {
    /// Chunk to download.
    pub chunk: usize,
    /// Playback deadline of that chunk.
    pub deadline: f64,
}

/// One connected viewer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Peer {
    /// Stable identifier from the arrival trace.
    pub id: u64,
    /// Channel the peer is watching.
    pub channel: usize,
    /// Upload capacity, bytes per second (P2P mode).
    pub upload_capacity: f64,
    /// Current activity.
    pub state: PeerState,
    /// Bitmap of chunks buffered (available for upload).
    pub buffer: u64,
    /// Time of the most recent stall event, if any.
    pub last_stall_at: Option<f64>,
    /// Total stall seconds accumulated over the session.
    pub total_stall: f64,
    /// Time the peer joined the channel.
    pub joined_at: f64,
}

impl Peer {
    /// Creates a peer that starts downloading `chunk` at `now` with no
    /// deadline (initial buffering is start-up delay, not a stall).
    pub fn new(
        id: u64,
        channel: usize,
        upload_capacity: f64,
        chunk: usize,
        chunk_bytes: f64,
        now: f64,
    ) -> Self {
        debug_assert!(chunk < MAX_CHUNKS);
        Self {
            id,
            channel,
            upload_capacity,
            state: PeerState::Downloading {
                chunk,
                bytes_left: chunk_bytes,
                deadline: f64::INFINITY,
            },
            buffer: 0,
            last_stall_at: None,
            total_stall: 0.0,
            joined_at: now,
        }
    }

    /// The chunk the peer is currently fetching, if downloading.
    pub fn downloading_chunk(&self) -> Option<usize> {
        match self.state {
            PeerState::Downloading { chunk, .. } => Some(chunk),
            PeerState::Waiting { .. } => None,
        }
    }

    /// True if the peer has `chunk` buffered.
    pub fn owns(&self, chunk: usize) -> bool {
        debug_assert!(chunk < MAX_CHUNKS);
        self.buffer & (1u64 << chunk) != 0
    }

    /// Marks `chunk` as buffered.
    pub fn add_to_buffer(&mut self, chunk: usize) {
        debug_assert!(chunk < MAX_CHUNKS);
        self.buffer |= 1u64 << chunk;
    }

    /// Number of buffered chunks.
    pub fn buffered_chunks(&self) -> u32 {
        self.buffer.count_ones()
    }

    /// Records a stall of `seconds` observed at `now`.
    pub fn record_stall(&mut self, now: f64, seconds: f64) {
        debug_assert!(seconds > 0.0);
        self.last_stall_at = Some(now);
        self.total_stall += seconds;
    }

    /// True if the peer experienced smooth playback throughout the window
    /// `[now − window, now]`: no recorded stall in the window and no
    /// in-flight download already past its deadline.
    pub fn smooth_in_window(&self, now: f64, window: f64) -> bool {
        if let Some(t) = self.last_stall_at {
            if t >= now - window {
                return false;
            }
        }
        if let PeerState::Downloading { deadline, .. } = self.state {
            if now > deadline {
                return false; // currently stalled mid-download
            }
        }
        true
    }

    /// Begins downloading `chunk` with the given playback `deadline`.
    pub fn start_chunk(&mut self, chunk: usize, chunk_bytes: f64, deadline: f64) {
        debug_assert!(chunk < MAX_CHUNKS);
        self.state = PeerState::Downloading {
            chunk,
            bytes_left: chunk_bytes,
            deadline,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer() -> Peer {
        Peer::new(1, 0, 100e3, 0, 15e6, 0.0)
    }

    #[test]
    fn new_peer_downloads_start_chunk_without_deadline() {
        let p = peer();
        assert_eq!(p.downloading_chunk(), Some(0));
        assert_eq!(p.buffered_chunks(), 0);
        // No deadline: start-up buffering never counts as a stall.
        assert!(p.smooth_in_window(1e9, 300.0));
    }

    #[test]
    fn buffer_bitmap_roundtrip() {
        let mut p = peer();
        assert!(!p.owns(5));
        p.add_to_buffer(5);
        p.add_to_buffer(0);
        assert!(p.owns(5));
        assert!(p.owns(0));
        assert!(!p.owns(1));
        assert_eq!(p.buffered_chunks(), 2);
        p.add_to_buffer(5);
        assert_eq!(p.buffered_chunks(), 2, "idempotent");
    }

    #[test]
    fn stall_breaks_smoothness_within_window_only() {
        let mut p = peer();
        p.state = PeerState::Waiting {
            next: None,
            wake_at: 1e9,
        };
        p.record_stall(100.0, 5.0);
        assert!(!p.smooth_in_window(150.0, 300.0));
        assert!(p.smooth_in_window(500.0, 300.0), "stall aged out");
        assert_eq!(p.total_stall, 5.0);
    }

    #[test]
    fn overdue_download_counts_as_stalled() {
        let mut p = peer();
        p.start_chunk(3, 15e6, 400.0);
        assert!(p.smooth_in_window(399.0, 300.0));
        assert!(!p.smooth_in_window(401.0, 300.0));
    }

    #[test]
    fn waiting_peer_is_smooth() {
        let mut p = peer();
        p.state = PeerState::Waiting {
            next: Some(PendingChunk {
                chunk: 2,
                deadline: 900.0,
            }),
            wake_at: 300.0,
        };
        assert!(p.smooth_in_window(500.0, 300.0));
    }

    #[test]
    fn start_chunk_sets_deadline_and_preserves_buffer() {
        let mut p = peer();
        p.add_to_buffer(0);
        p.start_chunk(3, 15e6, 777.0);
        assert_eq!(p.downloading_chunk(), Some(3));
        match p.state {
            PeerState::Downloading {
                bytes_left,
                deadline,
                ..
            } => {
                assert_eq!(bytes_left, 15e6);
                assert_eq!(deadline, 777.0);
            }
            _ => panic!("expected Downloading"),
        }
        assert!(p.owns(0));
    }
}
