//! Error types for the VoD simulator.

use std::error::Error;
use std::fmt;

use cloudmedia_cloud::CloudError;
use cloudmedia_core::CoreError;
use cloudmedia_workload::WorkloadError;

/// Errors produced by the simulator.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A provisioning computation failed.
    Core(CoreError),
    /// A cloud operation failed.
    Cloud(CloudError),
    /// Workload generation failed.
    Workload(WorkloadError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            SimError::Core(e) => write!(f, "provisioning failed: {e}"),
            SimError::Cloud(e) => write!(f, "cloud failed: {e}"),
            SimError::Workload(e) => write!(f, "workload failed: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Cloud(e) => Some(e),
            SimError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<CloudError> for SimError {
    fn from(e: CloudError) -> Self {
        SimError::Cloud(e)
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

pub(crate) fn invalid_param(name: &'static str, message: impl Into<String>) -> SimError {
    SimError::InvalidParameter {
        name,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = invalid_param("round", "too small");
        assert!(e.to_string().contains("round"));
        let e: SimError = CloudError::UnknownCluster { cluster: 1 }.into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("cloud"));
    }
}
