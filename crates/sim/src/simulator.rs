//! The CloudMedia system simulator.
//!
//! Replays a synthetic arrival trace against the full system: viewers join
//! channels, download chunks (from cloud VMs in client–server mode, or
//! from the P2P mesh with rarest-first scheduling plus cloud fallback),
//! jump and leave per the viewing model; the tracker measures statistics;
//! every provisioning interval the controller re-derives demand and
//! reconfigures the cloud through the broker; billing meters the cost.
//!
//! Downloads progress in fixed fluid rounds (default 10 s): each round,
//! bandwidth is allocated to in-flight chunk downloads, bytes advance, and
//! completed chunks trigger viewing-model transitions.
//!
//! # Round engines
//!
//! The per-round work is driven by one of two interchangeable engines
//! selected by [`SimKernel`]:
//!
//! - [`SimKernel::Indexed`] (production): round cost scales with *what
//!   happens*, not with how many viewers are connected. Per channel it
//!   keeps a sorted struct-of-arrays index of the in-flight downloads,
//!   incrementally-maintained chunk-owner counts, and **fixed-point peer
//!   supply aggregates** — the upload pool and per-chunk owner-upload
//!   sums are integers in 1/1024-byte/s units, updated in O(1) on every
//!   join, buffer addition, and departure, so no per-round walk of the
//!   channel membership exists at all. Demand aggregation streams only
//!   the *active downloaders*; waiting peers sit in a calendar wheel
//!   bucketed by wake round and are touched exactly once, when due.
//!   Allocation runs through mask-sparse in-place kernels over each
//!   channel's requested chunks, and fans out across channels (`rayon`)
//!   for very large populations. **Zero heap allocation per round** in
//!   steady state: every buffer — per-channel lanes, sort scratch, the
//!   wheel, the event lists — is owned by the engine or the run loop and
//!   reused across all ~60 k rounds of a week-long run. Arrivals are
//!   pulled lazily from the streaming
//!   [`cloudmedia_workload::trace::ArrivalStream`], so a full simulated
//!   week (or year) never materializes its trace.
//! - [`SimKernel::Scan`] (reference): the original engine — three full
//!   peer-population scans per round and fresh `Vec`s for every cloud
//!   allocation. Kept as the benchmark baseline and as the oracle the
//!   indexed engine is tested against.
//!
//! Both engines produce **bit-identical** [`Metrics`] for the same seed.
//! This is by construction:
//!
//! - Per-slot *demand* sums are f64, but each receives contributions from
//!   exactly one channel's downloaders, and the indexed engine's download
//!   index is kept sorted by global peer index — the same relative order
//!   the full-population scan visits — so every demand sum is the same
//!   sequence of f64 additions.
//! - Peer *supply* aggregates (upload pool, per-chunk owner upload) are
//!   integers in fixed-point units shared by both engines
//!   (`quantize_usable`). Integer addition is associative, so the scan
//!   engine's per-round rescan and the indexed engine's incremental
//!   updates produce the identical value regardless of order, and the
//!   `u64 → f64` conversion both engines apply is exact (sums stay far
//!   below 2^53).
//! - Owner counts are integers, so their incremental maintenance is
//!   exact; the mask-sparse kernels skip only slots whose demand is an
//!   exact zero, which contributes nothing to any sum.
//! - Round events (chunk completions, which draw from the shared RNG,
//!   and wake-ups) are replayed in ascending peer order — the order the
//!   reference scan encounters them — regardless of which lane or wheel
//!   bucket discovered them.
//! - Channel-parallelism cannot reorder anything: channels never share
//!   an accumulator.
//!
//! Set `CLOUDMEDIA_PROFILE=1` to print a per-phase wall-time breakdown
//! of a run on stderr (used by `cloudmedia-bench`'s `bench_sim`).

use cloudmedia_cloud::broker::{
    scale_fleet_capacity, scale_nfs_capacity, Cloud, ResourceRequest, SlaTerms,
};
use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_cloud::scheduler::{ChunkKey, PlacementPlan};
use cloudmedia_core::baseline::{BaselinePlanner, ProvisionerKind};
use cloudmedia_core::controller::{BudgetPolicy, Controller, ControllerConfig, ProvisioningPlan};
use cloudmedia_core::predictor::ChannelObservation;
use cloudmedia_core::CoreError;
use cloudmedia_telemetry::Telemetry;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::trace::ArrivalStream;
use cloudmedia_workload::viewing::NextAction;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::allocation::peer_allocation;
use crate::allocation::ChannelRound;
use crate::config::{SimConfig, SimKernel, SimMode};
use crate::error::SimError;
use crate::faults::{FaultDriver, FaultRun};
use crate::metrics::{IntervalRecord, Metrics, Sample};
use crate::peer::{Peer, PeerState, PendingChunk};
use crate::telem;
use crate::tracker::{Tracker, ViewingSink};

/// Wall-time spent in each phase of a profiled run (seconds), captured
/// when `CLOUDMEDIA_PROFILE=1`; see [`last_phase_profile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct PhaseProfile {
    /// Hourly provisioning (controller + broker submission).
    pub provisioning: f64,
    /// Arrival ingestion.
    pub arrivals: f64,
    /// The engine's per-round allocation stage.
    pub allocation: f64,
    /// Download advancement and event handling.
    pub progress: f64,
    /// Cloud lifecycle + billing ticks.
    pub cloud: f64,
    /// Metric sampling.
    pub sampling: f64,
}

thread_local! {
    static LAST_PROFILE: std::cell::Cell<Option<PhaseProfile>> =
        const { std::cell::Cell::new(None) };
}

/// The phase breakdown of the most recent `Simulator::run` on this
/// thread, if it ran with `CLOUDMEDIA_PROFILE=1`. Consumed by
/// `cloudmedia-bench`'s `bench_sim` to report per-stage speedups.
pub fn last_phase_profile() -> Option<PhaseProfile> {
    LAST_PROFILE.with(|c| c.get())
}

/// Minimum connected population before the indexed engine fans the
/// per-channel allocation stage out across threads. Below this, one core
/// finishes the stage faster than pool dispatch costs.
const PAR_MIN_PEERS: usize = 16_384;

/// Fixed-point scale for peer upload-supply aggregation: 1/1024 byte/s
/// units. A power of two, so quantization and the `u64 → f64` readback
/// are exact binary operations; integer sums are associative, which is
/// what lets the indexed engine maintain the upload pool and per-chunk
/// owner-upload sums incrementally while staying bit-identical to the
/// scan engine's per-round rescan (see the module docs).
///
/// Headroom: a 10 Mbps peer is ~1.3e9 units; a hundred million such
/// peers sum to ~1.3e17, inside `u64`; realistic pools stay below 2^53,
/// so the f64 conversion is exact.
pub(crate) const UPLOAD_SCALE: f64 = 1024.0;

/// Quantizes one peer's usable upload (`capacity × efficiency`) onto the
/// fixed-point supply grid. Both engines call this — it is the single
/// definition of a peer's supply contribution.
#[inline]
pub(crate) fn quantize_usable(capacity: f64, eff: f64) -> u64 {
    (capacity * eff * UPLOAD_SCALE).round() as u64
}

/// Converts a fixed-point supply aggregate back to bytes/s.
///
/// Public alongside [`quantize_rate`] so external harnesses (the bench
/// crate's `catchup_kernel`) can replay the exact service recurrence
/// the quiescence engine fast-forwards on.
#[inline]
#[must_use]
pub fn dequantize(units: u64) -> f64 {
    units as f64 * (1.0 / UPLOAD_SCALE)
}

/// Quantizes one download's requested rate for this round —
/// `min(bytes_left / step, vm_bandwidth)` — onto the fixed-point grid
/// (`inv_step` is the precomputed `1 / step`; the multiply replaces a
/// per-downloader division). Per-slot demand sums are integers for the
/// same reason the supply aggregates are: order-free summation, so
/// neither engine needs to visit downloaders in any particular order.
/// Rounds **up** so an almost-finished download (a sub-unit trickle)
/// still requests a nonzero rate and can complete instead of stalling
/// forever.
#[inline]
#[must_use]
pub fn quantize_rate(bytes_left: f64, inv_step: f64, vm_bandwidth: f64) -> u64 {
    ((bytes_left * inv_step).min(vm_bandwidth) * UPLOAD_SCALE).ceil() as u64
}

/// The system simulator. Construct with a [`SimConfig`] and call
/// [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation over the trace horizon and returns the recorded
    /// metrics.
    ///
    /// # Errors
    ///
    /// Propagates trace generation, provisioning, and cloud failures.
    pub fn run(&self) -> Result<Metrics, SimError> {
        self.run_with_faults().map(|run| run.metrics)
    }

    /// Runs the simulation and also returns the fault-plane counters
    /// accumulated while applying the configuration's
    /// [`FaultSchedule`](crate::faults::FaultSchedule). With an empty
    /// schedule the metrics are bit-identical to [`Simulator::run`] and
    /// the counters are all zero.
    ///
    /// # Errors
    ///
    /// Propagates trace generation, provisioning, and cloud failures.
    pub fn run_with_faults(&self) -> Result<FaultRun, SimError> {
        self.run_with_telemetry(&Telemetry::disabled())
    }

    /// Runs the simulation while recording stage timings, counters, and
    /// (when the registry was built with tracing) span events into `tel`
    /// — the registry from [`crate::telem::new_registry`]. Telemetry is
    /// a pure side channel: the returned metrics are bit-identical to a
    /// run against [`Telemetry::disabled`].
    ///
    /// # Errors
    ///
    /// Propagates trace generation, provisioning, and cloud failures.
    pub fn run_with_telemetry(&self, tel: &Telemetry) -> Result<FaultRun, SimError> {
        let cfg = &self.config;
        let n_channels = cfg.catalog.len();
        let max_chunks = cfg
            .catalog
            .channels()
            .iter()
            .map(|c| c.viewing.chunks)
            .max()
            .expect("catalog validated non-empty");
        match cfg.kernel {
            SimKernel::Scan => {
                let mut engine = ScanEngine::new(n_channels, max_chunks);
                run_loop(cfg, &mut engine, tel)
            }
            SimKernel::Indexed => {
                let mut engine = IndexedEngine::new(
                    n_channels,
                    max_chunks,
                    cfg.peer_efficiency,
                    cfg.round_seconds,
                );
                run_loop(cfg, &mut engine, tel)
            }
            SimKernel::EventDriven => crate::event_driven::run_with_telemetry(
                cfg,
                &crate::event_driven::DesScenario::default(),
                tel,
            )
            .map(|run| FaultRun {
                metrics: run.metrics,
                fault_stats: run.fault_stats,
            }),
            SimKernel::Sharded => crate::sharded::run_with_telemetry(cfg, tel),
        }
    }
}

/// Read-only per-round inputs handed to the engines. Shared with the
/// federated simulator (`crate::federation`), which drives one engine per
/// region through the same interface.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoundCtx<'a> {
    /// Round duration, seconds.
    pub(crate) step: f64,
    /// `1 / step`, precomputed for the demand quantization.
    pub(crate) inv_step: f64,
    /// Per-connection rate cap (one VM's bandwidth), bytes/s.
    pub(crate) vm_bandwidth: f64,
    /// Usable fraction of peer upload capacity.
    pub(crate) eff: f64,
    /// True in P2P mode.
    pub(crate) p2p: bool,
    /// `min(1, online/reserved)` scaling of per-channel reservations.
    pub(crate) online_scale: f64,
    /// Cloud bandwidth reserved per channel by the current plan, bytes/s.
    pub(crate) channel_reserved: &'a [f64],
}

/// A per-round allocation engine: told about peer lifecycle events, asked
/// once per round to run the allocation stage and to name the peers that
/// can act this round. `Send` so the federated simulator can drive one
/// engine per region on the rayon pool.
pub(crate) trait RoundEngine: Send {
    /// A peer was appended at global index `idx` (always in the
    /// `Downloading` state).
    fn on_join(&mut self, peers: &[Peer], idx: usize);

    /// The peer at `idx` (watching `channel`) finished a chunk and added
    /// it to its buffer.
    fn on_buffer(&mut self, channel: usize, idx: usize, chunk: usize);

    /// The peer at `idx` started downloading `chunk` (left the `Waiting`
    /// state) with `bytes_left` to fetch by `deadline`.
    fn on_download_started(
        &mut self,
        channel: usize,
        idx: usize,
        chunk: usize,
        bytes_left: f64,
        deadline: f64,
    );

    /// The peer at `idx` moved straight to its next download after a
    /// completion: refresh the engine's view of its in-flight chunk.
    fn sync_download(
        &mut self,
        channel: usize,
        idx: usize,
        chunk: usize,
        bytes_left: f64,
        deadline: f64,
    );

    /// The peer at `idx` (stable id `id`) stopped downloading and now
    /// waits until `wake_at` (prefetch gate or playback drain before
    /// departure).
    fn on_download_stopped(&mut self, channel: usize, idx: usize, id: u64, wake_at: f64);

    /// Called immediately before `peers.swap_remove(idx)` (the peer at
    /// the last index moves into `idx`).
    fn on_remove(&mut self, peers: &[Peer], idx: usize);

    /// Runs demand aggregation, P2P allocation, and cloud allocation for
    /// one round; returns the total cloud rate used.
    fn allocate(&mut self, peers: &[Peer], ctx: &RoundCtx<'_>) -> f64;

    /// Advances every in-flight download by one round (pro-rating each
    /// peer's share of its slot's served rate, exactly as the original
    /// scan did) and finds the waits that come due by `t1`. Indices of
    /// peers whose chunk completed go to `completed`; indices of due
    /// waiters go to `woken`; both sorted ascending. Downloads that did
    /// not complete have their remaining bytes written back internally —
    /// the caller only ever handles events.
    fn advance_round(
        &mut self,
        peers: &mut [Peer],
        ctx: &RoundCtx<'_>,
        t1: f64,
        completed: &mut Vec<usize>,
        woken: &mut Vec<usize>,
    );
}

// ----------------------------------------------------------------------
// Scan engine: the original three-scans-per-round implementation.
// ----------------------------------------------------------------------

/// Reference engine preserving the pre-index implementation: per round it
/// rescans the entire peer population for demand, again for P2P upload
/// state, and allocates fresh vectors for the cloud stage — exactly the
/// allocation profile the indexed engine was built to eliminate.
#[derive(Debug)]
pub(crate) struct ScanEngine {
    n_channels: usize,
    max_chunks: usize,
    requested: Vec<f64>,
    peer_served: Vec<f64>,
    cloud_served: Vec<f64>,
    rounds: Vec<ChannelRound>,
    /// Fixed-point upload-pool accumulator per channel (rescanned every
    /// round; shared supply grid with the indexed engine).
    pool_units: Vec<u64>,
    /// Fixed-point owner-upload accumulator per slot.
    owner_units: Vec<u64>,
    /// Fixed-point demand accumulator per slot.
    req_units: Vec<u64>,
    /// Served-rate ratio per slot (recomputed each round).
    ratio: Vec<f64>,
}

impl ScanEngine {
    pub(crate) fn new(n_channels: usize, max_chunks: usize) -> Self {
        let slots = n_channels * max_chunks;
        Self {
            n_channels,
            max_chunks,
            requested: vec![0.0; slots],
            peer_served: vec![0.0; slots],
            cloud_served: vec![0.0; slots],
            rounds: (0..n_channels)
                .map(|_| ChannelRound {
                    requested_rate: vec![0.0; max_chunks],
                    owners: vec![0; max_chunks],
                    owner_upload: vec![0.0; max_chunks],
                    upload_pool: 0.0,
                })
                .collect(),
            pool_units: vec![0; n_channels],
            owner_units: vec![0; slots],
            req_units: vec![0; slots],
            ratio: vec![0.0; slots],
        }
    }
}

impl RoundEngine for ScanEngine {
    fn on_join(&mut self, _peers: &[Peer], _idx: usize) {}

    fn on_buffer(&mut self, _channel: usize, _idx: usize, _chunk: usize) {}

    fn on_download_started(
        &mut self,
        _channel: usize,
        _idx: usize,
        _chunk: usize,
        _bytes_left: f64,
        _deadline: f64,
    ) {
    }

    fn sync_download(
        &mut self,
        _channel: usize,
        _idx: usize,
        _chunk: usize,
        _bytes_left: f64,
        _deadline: f64,
    ) {
    }

    fn on_download_stopped(&mut self, _channel: usize, _idx: usize, _id: u64, _wake_at: f64) {}

    fn on_remove(&mut self, _peers: &[Peer], _idx: usize) {}

    fn allocate(&mut self, peers: &[Peer], ctx: &RoundCtx<'_>) -> f64 {
        let max_chunks = self.max_chunks;
        let slots = self.n_channels * max_chunks;

        // --- Demand aggregation: full-population scan ---------------
        self.req_units[..slots].iter_mut().for_each(|v| *v = 0);
        for p in peers {
            if let PeerState::Downloading {
                chunk, bytes_left, ..
            } = p.state()
            {
                self.req_units[p.channel() * max_chunks + chunk] +=
                    quantize_rate(bytes_left, ctx.inv_step, ctx.vm_bandwidth);
            }
        }
        for (out, &units) in self.requested[..slots].iter_mut().zip(&self.req_units) {
            *out = dequantize(units);
        }

        // --- Peer-side allocation (P2P only): second full scan ------
        if ctx.p2p {
            for (c, round) in self.rounds.iter_mut().enumerate() {
                round.owners.iter_mut().for_each(|v| *v = 0);
                round
                    .requested_rate
                    .copy_from_slice(&self.requested[c * max_chunks..(c + 1) * max_chunks]);
            }
            self.pool_units.iter_mut().for_each(|v| *v = 0);
            self.owner_units[..slots].iter_mut().for_each(|v| *v = 0);
            for p in peers {
                let round = &mut self.rounds[p.channel()];
                let usable = quantize_usable(p.upload_capacity, ctx.eff);
                self.pool_units[p.channel()] += usable;
                let mut bits = p.buffer;
                while bits != 0 {
                    let chunk = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if chunk < max_chunks {
                        round.owners[chunk] += 1;
                        self.owner_units[p.channel() * max_chunks + chunk] += usable;
                    }
                }
            }
            for (c, round) in self.rounds.iter_mut().enumerate() {
                round.upload_pool = dequantize(self.pool_units[c]);
                for (k, out) in round.owner_upload.iter_mut().enumerate() {
                    *out = dequantize(self.owner_units[c * max_chunks + k]);
                }
            }
            for (c, round) in self.rounds.iter().enumerate() {
                let served = peer_allocation(round);
                self.peer_served[c * max_chunks..(c + 1) * max_chunks].copy_from_slice(&served);
            }
        } else {
            self.peer_served[..slots].iter_mut().for_each(|v| *v = 0.0);
        }

        // --- Cloud allocation over the residual demand ---------------
        // Fresh buffers every round, as the original implementation
        // allocated them.
        let mut cloud_served = vec![0.0_f64; slots];
        for c in 0..self.n_channels {
            let span = c * max_chunks..(c + 1) * max_chunks;
            let residual: Vec<f64> = span
                .clone()
                .map(|i| (self.requested[i] - self.peer_served[i]).max(0.0))
                .collect();
            let served = crate::allocation::allocate_pool(
                &residual,
                ctx.channel_reserved[c] * ctx.online_scale,
            );
            cloud_served[span].copy_from_slice(&served);
        }
        let used: f64 = cloud_served.iter().sum();
        self.cloud_served = cloud_served;
        for i in 0..slots {
            self.ratio[i] = if self.requested[i] > 0.0 {
                (self.peer_served[i] + self.cloud_served[i]) / self.requested[i]
            } else {
                0.0
            };
        }
        used
    }

    fn advance_round(
        &mut self,
        peers: &mut [Peer],
        ctx: &RoundCtx<'_>,
        t1: f64,
        completed: &mut Vec<usize>,
        woken: &mut Vec<usize>,
    ) {
        // Full-population scan, as the original implementation advanced
        // downloads.
        for (idx, p) in peers.iter_mut().enumerate() {
            match p.state() {
                PeerState::Downloading {
                    chunk,
                    bytes_left,
                    deadline,
                } => {
                    let slot = p.channel() * self.max_chunks + chunk;
                    let my_req =
                        dequantize(quantize_rate(bytes_left, ctx.inv_step, ctx.vm_bandwidth));
                    let my_rate = my_req * self.ratio[slot];
                    let new_left = bytes_left - my_rate * ctx.step;
                    if new_left <= 1e-6 {
                        completed.push(idx);
                    } else {
                        p.set_state(PeerState::Downloading {
                            chunk,
                            bytes_left: new_left,
                            deadline,
                        });
                    }
                }
                PeerState::Waiting { wake_at, .. } => {
                    if wake_at <= t1 {
                        woken.push(idx);
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Indexed engine: per-channel peer index + incremental aggregates.
// ----------------------------------------------------------------------

/// One in-flight download in a lane's index: the downloader's global
/// peer index, the chunk it fetches, and the authoritative bytes-left
/// counter (the peer's own state is only refreshed at completion
/// boundaries). 16 bytes, so a lane's whole download index streams
/// through cache in the advance loop. The round's requested rate is not
/// cached: `advance` re-derives it from `bytes` with the same exact
/// fixed-point quantization `process` used, which costs one multiply
/// and saves 8 bytes per downloader.
#[derive(Debug, Clone, Copy)]
struct DlEntry {
    /// Global peer index (re-keyed on `swap_remove`).
    idx: u32,
    /// Chunk being fetched.
    chunk: u32,
    /// Bytes still to download.
    bytes: f64,
}

/// Per-sub-lane scratch for the split (parallel) demand and advance
/// passes over one hot channel's download index: a private fixed-point
/// demand accumulator, the chunk mask it wrote, the completions its
/// segment produced, and a sampled wall-time counter for the
/// `hist/lane_wall_ns` telemetry histogram.
#[derive(Debug)]
struct LaneScratch {
    /// Fixed-point demand partials, folded into the lane in sub-lane
    /// order after the fan-out (integer sums, so the fold order cannot
    /// change the totals).
    req_units: Vec<u64>,
    /// Chunk slots this sub-lane wrote in `req_units`.
    mask: u64,
    /// Peer indices whose download completed in this sub-lane's segment.
    completed: Vec<u32>,
    /// Sampled wall time spent in this sub-lane, nanoseconds.
    wall_ns: u64,
}

/// One channel's round state and scratch, owned by the indexed engine.
///
/// All per-chunk vectors are sized `max_chunks` (≤ 64, so chunk sets are
/// `u64` masks) at construction and reused for the entire run; the
/// download index retains capacity across rounds, so a steady-state
/// round performs no heap allocation. Peer supply (upload pool,
/// per-chunk owner upload) lives in fixed-point integers maintained
/// incrementally — there is no per-round membership walk.
#[derive(Debug)]
struct ChannelLane {
    /// This channel's index (for `channel_reserved` lookup).
    id: usize,
    /// In-flight downloads, in no particular order (every cross-peer sum
    /// is fixed-point and therefore order-free, so the index uses O(1)
    /// push / swap-remove; the engine's `dl_slot` map locates entries).
    dl: Vec<DlEntry>,
    /// Number of peers owning each chunk — maintained incrementally on
    /// buffer additions and departures (integers, so maintenance is
    /// exact).
    owners: Vec<usize>,
    /// Σ usable upload over owners of each chunk, fixed-point units
    /// (incremental; see [`UPLOAD_SCALE`]).
    owner_units: Vec<u64>,
    /// Σ usable upload over the channel's members, fixed-point units
    /// (incremental).
    pool_units: u64,
    /// Fixed-point demand accumulator per chunk this round.
    req_units: Vec<u64>,
    /// Chunk slots written last processed round (cleared lazily at the
    /// start of the next).
    written_mask: u64,
    /// Requested download rate per chunk this round.
    requested: Vec<f64>,
    /// Peer-served rate per chunk this round.
    peer_served: Vec<f64>,
    /// Cloud-served rate per chunk this round.
    cloud_served: Vec<f64>,
    /// Residual (cloud-facing) demand per chunk this round.
    residual: Vec<f64>,
    /// f64 view of `owner_units`, refreshed for the requested chunks
    /// each round (the allocation kernel reads no others).
    owner_upload: Vec<f64>,
    /// Served-rate ratio `(peer + cloud) / requested` per chunk this
    /// round — hoists the advance loop's division out to one per chunk.
    ratio: Vec<f64>,
    /// Sort scratch for the allocation kernels.
    order: Vec<usize>,
}

impl ChannelLane {
    fn new(id: usize, max_chunks: usize) -> Self {
        assert!(max_chunks <= 64, "chunk sets are u64 masks");
        Self {
            id,
            dl: Vec::new(),
            owners: vec![0; max_chunks],
            owner_units: vec![0; max_chunks],
            pool_units: 0,
            req_units: vec![0; max_chunks],
            written_mask: 0,
            requested: vec![0.0; max_chunks],
            peer_served: vec![0.0; max_chunks],
            cloud_served: vec![0.0; max_chunks],
            residual: vec![0.0; max_chunks],
            owner_upload: vec![0.0; max_chunks],
            ratio: vec![0.0; max_chunks],
            order: Vec::new(),
        }
    }

    /// Lazily clears last round's written slots; afterwards every
    /// per-chunk buffer is all-zero.
    fn clear_written(&mut self) {
        let mut m = self.written_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            self.requested[k] = 0.0;
            self.peer_served[k] = 0.0;
            self.cloud_served[k] = 0.0;
            self.residual[k] = 0.0;
            self.req_units[k] = 0;
        }
        self.written_mask = 0;
    }

    /// Clears last round's written outputs but — unlike
    /// [`ChannelLane::clear_written`] — keeps the fixed-point demand
    /// accumulator: inside a quiescent epoch `req_units` is maintained
    /// incrementally across rounds by scheduled integer deltas instead
    /// of being rebuilt from a download-index walk.
    fn clear_outputs(&mut self) {
        let mut m = self.written_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            self.requested[k] = 0.0;
            self.peer_served[k] = 0.0;
            self.cloud_served[k] = 0.0;
            self.residual[k] = 0.0;
        }
        self.written_mask = 0;
    }

    /// Fused per-round pass for this channel: demand aggregation over the
    /// active downloaders, fixed-point supply readback, and both
    /// allocation kernels — all confined to the requested chunk slots,
    /// so per-round cost scales with active downloads rather than
    /// channel size or chunk count.
    fn process(&mut self, ctx: &RoundCtx<'_>) {
        self.clear_written();
        if self.dl.is_empty() {
            // Nothing is requested: every output stays zero and the lane
            // costs O(1) this round.
            return;
        }

        let mut req_mask: u64 = 0;
        for e in &self.dl {
            let units = quantize_rate(e.bytes, ctx.inv_step, ctx.vm_bandwidth);
            self.req_units[e.chunk as usize] += units;
            req_mask |= 1 << e.chunk;
        }
        self.finish(ctx, req_mask);
    }

    /// Split variant of [`ChannelLane::process`] for a hot channel: the
    /// demand scan fans out over `scratch.len()` contiguous sub-lanes
    /// (fixed-order segments of the download index) on the rayon pool;
    /// each sub-lane accumulates private fixed-point partials, which are
    /// folded back in sub-lane order. The demand sums are integers, so
    /// segmentation and thread count cannot change a single bit of the
    /// totals — this path is exactly [`ChannelLane::process`] with the
    /// additions reassociated.
    fn process_split(&mut self, ctx: &RoundCtx<'_>, scratch: &mut [LaneScratch], time_it: bool) {
        self.clear_written();
        if self.dl.is_empty() {
            return;
        }
        let seg = self.dl.len().div_ceil(scratch.len());
        let dl = &self.dl;
        rayon::scope(|s| {
            for (part, sc) in dl.chunks(seg).zip(scratch.iter_mut()) {
                s.spawn(move |_| {
                    let t0 = time_it.then(std::time::Instant::now);
                    sc.mask = 0;
                    for e in part {
                        let units = quantize_rate(e.bytes, ctx.inv_step, ctx.vm_bandwidth);
                        sc.req_units[e.chunk as usize] += units;
                        sc.mask |= 1 << e.chunk;
                    }
                    if let Some(t0) = t0 {
                        sc.wall_ns += t0.elapsed().as_nanos() as u64;
                    }
                });
            }
        });
        let mut req_mask: u64 = 0;
        for sc in scratch.iter_mut() {
            let mut m = sc.mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                self.req_units[k] += sc.req_units[k];
                sc.req_units[k] = 0;
            }
            req_mask |= sc.mask;
            sc.mask = 0;
        }
        self.finish(ctx, req_mask);
    }

    /// The serial tail of the round pass: requested-rate readback, both
    /// allocation kernels, and the served-rate ratios — identical
    /// whichever demand pass (serial or split) filled `req_units`.
    fn finish(&mut self, ctx: &RoundCtx<'_>, req_mask: u64) {
        let mut m = req_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            self.requested[k] = dequantize(self.req_units[k]);
        }
        self.written_mask = req_mask;

        if ctx.p2p {
            // Supply readback: the incremental integer aggregates convert
            // exactly; only the requested chunks are materialized.
            let mut m = req_mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                self.owner_upload[k] = dequantize(self.owner_units[k]);
            }
            crate::allocation::peer_allocation_sparse(
                &self.requested,
                &self.owners,
                &self.owner_upload,
                dequantize(self.pool_units),
                &mut self.peer_served,
                &mut self.order,
                req_mask,
            );
        }
        let mut m = req_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            self.residual[k] = (self.requested[k] - self.peer_served[k]).max(0.0);
        }
        crate::allocation::allocate_pool_sparse(
            &self.residual,
            ctx.channel_reserved[self.id] * ctx.online_scale,
            &mut self.cloud_served,
            &mut self.order,
            req_mask,
        );
        // One division per requested chunk; the advance loop then costs
        // a single multiply per downloader.
        let mut m = req_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            self.ratio[k] = (self.peer_served[k] + self.cloud_served[k]) / self.requested[k];
        }
    }

    /// Advances this lane's in-flight downloads by one round, streaming
    /// the download index; completed downloads are appended to
    /// `completed` (order restored by the caller's global sort). The
    /// requested rate is re-derived from `bytes` — unchanged since the
    /// demand pass — with the identical quantization, so the advance is
    /// bit-equal to the old cached-rate implementation.
    fn advance(&mut self, ctx: &RoundCtx<'_>, completed: &mut Vec<usize>) {
        for e in &mut self.dl {
            let my_req = dequantize(quantize_rate(e.bytes, ctx.inv_step, ctx.vm_bandwidth));
            let my_rate = my_req * self.ratio[e.chunk as usize];
            let new_left = e.bytes - my_rate * ctx.step;
            if new_left <= 1e-6 {
                completed.push(e.idx as usize);
            } else {
                e.bytes = new_left;
            }
        }
    }

    /// Split variant of [`ChannelLane::advance`]: the same fixed-order
    /// sub-lane segments as [`ChannelLane::process_split`] advance in
    /// parallel (each entry's update reads only its own bytes and the
    /// shared read-only ratios), and each sub-lane's completions are
    /// concatenated in sub-lane order — the caller's global sort makes
    /// the discovery order immaterial anyway.
    fn advance_split(
        &mut self,
        ctx: &RoundCtx<'_>,
        scratch: &mut [LaneScratch],
        completed: &mut Vec<usize>,
        time_it: bool,
    ) {
        if self.dl.is_empty() {
            return;
        }
        let seg = self.dl.len().div_ceil(scratch.len());
        let ratio = &self.ratio;
        rayon::scope(|s| {
            for (part, sc) in self.dl.chunks_mut(seg).zip(scratch.iter_mut()) {
                s.spawn(move |_| {
                    let t0 = time_it.then(std::time::Instant::now);
                    sc.completed.clear();
                    for e in part {
                        let my_req =
                            dequantize(quantize_rate(e.bytes, ctx.inv_step, ctx.vm_bandwidth));
                        let my_rate = my_req * ratio[e.chunk as usize];
                        let new_left = e.bytes - my_rate * ctx.step;
                        if new_left <= 1e-6 {
                            sc.completed.push(e.idx);
                        } else {
                            e.bytes = new_left;
                        }
                    }
                    if let Some(t0) = t0 {
                        sc.wall_ns += t0.elapsed().as_nanos() as u64;
                    }
                });
            }
        });
        for sc in scratch {
            completed.extend(sc.completed.iter().map(|&i| i as usize));
        }
    }
}

/// Calendar wheel of waiting peers, bucketed by round. Pushing is O(1);
/// each round drains exactly the buckets the clock passed. An entry more
/// than one revolution ahead (never at realistic wait lengths — gates
/// wait minutes, drains at most a session's buffered playback) simply
/// stays in its wrapped bucket until its own revolution comes around.
/// Due-ness is always re-checked against the actual round clock, so
/// bucket placement never changes behavior — only where an entry waits.
///
/// Entries are bare 4-byte slots into the engine's wake slab; wake
/// times are not duplicated into the wheel but read back through the
/// `wake_of` lookup handed to [`WakeWheel::drain_due`] (they live on
/// the waiting peers themselves), which cuts the wheel's per-waiter
/// footprint from 16 to 4 bytes.
#[derive(Debug)]
struct WakeWheel {
    /// Round duration (bucket width), seconds.
    dt: f64,
    /// `buckets[b]` holds slots whose `floor(wake_at / dt) % LEN == b`.
    buckets: Vec<Vec<u32>>,
    /// Highest absolute bucket index already drained.
    drained: i64,
    /// Scratch for entries drained early (same bucket, later in the
    /// round window); re-checked next round.
    pending: Vec<u32>,
}

impl WakeWheel {
    /// One week of 10-second rounds is 60 480 buckets; 8192 (~22 h at the
    /// default round) keeps the wheel compact while far exceeding any
    /// prefetch-gate or drain wait.
    const LEN: usize = 8192;

    /// Bucket count for a single-channel shard's wheel: the sharded
    /// engine owns one wheel *per channel*, so the full-size wheel's
    /// fixed cost (8192 `Vec`s ≈ 200 KB) would multiply by thousands of
    /// channels. 256 buckets (~43 min at the default round) still cover
    /// every prefetch-gate wait and almost all drain waits; longer waits
    /// wrap and are skipped once per revolution, which placement never
    /// affects behavior — only where the entry sits.
    const SHARD_LEN: usize = 256;

    fn new(dt: f64, len: usize) -> Self {
        Self {
            dt,
            buckets: (0..len).map(|_| Vec::new()).collect(),
            drained: -1,
            pending: Vec::new(),
        }
    }

    fn abs_bucket(&self, wake_at: f64) -> i64 {
        (wake_at / self.dt).floor() as i64
    }

    fn push(&mut self, slot: u32, wake_at: f64) {
        let b = self.abs_bucket(wake_at);
        if b <= self.drained {
            // The wake falls inside a bucket the clock already passed
            // this round (possible whenever wake times are not aligned
            // to round boundaries, e.g. chunk_seconds not a multiple of
            // round_seconds). The bucket will not be drained again for a
            // full revolution, so park the entry in `pending`, which is
            // re-checked at the start of every round.
            self.pending.push(slot);
        } else {
            let len = self.buckets.len() as i64;
            self.buckets[(b.rem_euclid(len)) as usize].push(slot);
        }
    }

    /// Collects every slot whose wake time (per `wake_of`) is `<= t1`
    /// into `due`.
    fn drain_due(&mut self, t1: f64, due: &mut Vec<u32>, wake_of: impl Fn(u32) -> f64) {
        // Entries drained early in a previous pass.
        self.pending.retain(|&slot| {
            if wake_of(slot) <= t1 {
                due.push(slot);
                false
            } else {
                true
            }
        });
        let target = self.abs_bucket(t1);
        while self.drained < target {
            self.drained += 1;
            let drained = self.drained;
            let dt = self.dt;
            let pos = (drained.rem_euclid(self.buckets.len() as i64)) as usize;
            let bucket = &mut self.buckets[pos];
            for i in (0..bucket.len()).rev() {
                let slot = bucket[i];
                let wake_at = wake_of(slot);
                // Same-revolution entries only; a far-future collision
                // (> one revolution ahead) stays for a later pass.
                if (wake_at / dt).floor() as i64 != drained {
                    continue;
                }
                bucket.swap_remove(i);
                if wake_at <= t1 {
                    due.push(slot);
                } else {
                    self.pending.push(slot);
                }
            }
        }
    }
}

/// "Not downloading" marker in [`IndexedEngine::dl_slot`].
const DL_NONE: u32 = u32::MAX;

// ----------------------------------------------------------------------
// Quiescent epochs: exact multi-round fast-forward for steady shards.
// ----------------------------------------------------------------------

/// Ring length of the epoch event scheduler, in rounds. Every virtual
/// download's whole schedule must fit strictly inside one revolution
/// ([`MAX_TRAJ`] bounds the trajectory), so a bucket is always fully
/// drained at its own round before the clock wraps back onto it.
const EPOCH_RING: usize = 64;

/// Longest admissible service trajectory, in rounds. A schedule placed
/// at round `r` touches buckets up to `r + MAX_TRAJ + 1`, which must
/// stay inside one ring revolution; shards whose chunk takes longer
/// than this to download at the VM rate cap simply never quiesce.
const MAX_TRAJ: u32 = EPOCH_RING as u32 - 2;

/// Consecutive fully-served rounds a shard must string together before
/// it enters a quiescent epoch — hysteresis so a channel oscillating
/// around saturation does not pay the fuse/materialize cycle each round.
pub(crate) const QUIESCE_STREAK: u32 = 4;

/// Entry-backoff ceiling: after repeated unproductive epochs a shard's
/// required clean streak doubles up to this many rounds (85 simulated
/// minutes on the paper's 10 s grid), so a channel whose epochs never
/// pay for themselves effectively stops re-trying until the load
/// pattern changes. Chosen with [`QUIESCE_MIN_DUTY`]: backoff decays
/// the moment one epoch actually earns its keep.
pub(crate) const QUIESCE_MAX_STREAK: u32 = 512;

/// Productivity bar for the entry backoff: an epoch is worth having
/// only if it skipped at least one round in [`QUIESCE_MIN_DUTY`] — a
/// busy channel can hold an epoch open for hours (ratios pinned at 1.0)
/// while per-round prefetch wake-ups deny every single skip, and such
/// an epoch is pure fuse/ring/materialize overhead no matter how long
/// it lived. Productive epochs reset the shard's entry threshold to
/// [`QUIESCE_STREAK`]; unproductive ones double it.
pub(crate) const QUIESCE_MIN_DUTY: u64 = 8;

/// One scheduled change to a lane's fixed-point demand accumulator:
/// at the delta's round, chunk `chunk` gains `units` demand units and
/// `count` active downloaders. Emitted when a virtual download starts
/// (`+u₀`, `+1`), when its quantized rate steps down mid-flight
/// (`u_{j} − u_{j−1}`, `0`), and the round after it completes
/// (`−u_last`, `−1`). Integer arithmetic, so maintenance is exact.
#[derive(Debug, Clone, Copy)]
struct EpochDelta {
    /// Chunk slot the delta applies to (chunk sets are ≤ 64 wide).
    chunk: u8,
    /// Active-downloader count change for the chunk.
    count: i8,
    /// Fixed-point demand change, 1/1024 byte/s units.
    units: i64,
}

/// One ring bucket: the demand deltas applied at the bucket's round
/// (before the allocation kernels) and the virtual downloads completing
/// in it (surfaced as ordinary completion events after the kernels).
#[derive(Debug, Default)]
struct EpochBucket {
    deltas: Vec<EpochDelta>,
    completes: Vec<u32>,
}

/// Per-engine state of a quiescent epoch (see the `IndexedEngine` epoch
/// methods for the protocol). While active, the lane's download index
/// is empty: every in-flight download is *virtual* — represented only
/// by its wake-slab slot, its closed-form start state
/// (`virt_round`/`virt_bytes`), and its pre-scheduled demand deltas and
/// completion round in the ring.
#[derive(Debug)]
struct EpochState {
    active: bool,
    /// Round currently being processed (the shard's round counter).
    round: u64,
    /// `buckets[round % EPOCH_RING]` holds the round's scheduled work.
    buckets: Vec<EpochBucket>,
    /// Active virtual downloads per chunk (drives `active_mask`).
    chunk_active: Vec<u32>,
    /// Chunk slots with at least one active virtual download — the
    /// round's `req_mask`, maintained on count 0↔1 transitions.
    active_mask: u64,
    /// Per-slab-slot schedule origin: the first round the virtual
    /// download contributes demand (valid while the slot holds one).
    virt_round: Vec<u64>,
    /// Bytes left at the schedule origin.
    virt_bytes: Vec<f64>,
    /// Quantization context the schedules were built with; a round with
    /// a different `step` (the horizon's final partial round) exits the
    /// epoch *before* any kernel runs, because the scheduled integer
    /// demand is only exact at this grid.
    step: f64,
    inv_step: f64,
    vm_bw: f64,
    chunk_bytes: f64,
    /// Supply inputs of the last kernel run; a change forces a kernel
    /// round (provisioning and fault-plane dirtiness both flow through
    /// these two values — see `epoch_can_skip`).
    last_reserved: f64,
    last_scale: f64,
    /// True when the previous epoch round processed no events, so the
    /// P2P supply aggregates (owners, pool) are unchanged; client-server
    /// kernels read neither, so CS skips do not require it.
    quiet: bool,
    /// True until the epoch's first `epoch_allocate`. A skip replays the
    /// *cached* cloud usage, which right after entry still belongs to
    /// the normal-path entry round — a round whose demand may have
    /// included downloads that completed during it and were therefore
    /// never virtualized (no tear-down delta exists for them in the
    /// ring). The first in-epoch round must recompute from the ring's
    /// own demand before any skip is sound.
    fresh: bool,
}

impl EpochState {
    fn new(max_chunks: usize) -> Self {
        Self {
            active: false,
            round: 0,
            buckets: (0..EPOCH_RING).map(|_| EpochBucket::default()).collect(),
            chunk_active: vec![0; max_chunks],
            active_mask: 0,
            virt_round: Vec::new(),
            virt_bytes: Vec::new(),
            step: 0.0,
            inv_step: 0.0,
            vm_bw: 0.0,
            chunk_bytes: 0.0,
            last_reserved: 0.0,
            last_scale: 0.0,
            quiet: false,
            fresh: false,
        }
    }
}

/// Rounds a download of `bytes` takes under permanently exact service
/// (ratio 1.0), walking the same quantize/advance recurrence as
/// [`ChannelLane::advance`] — `None` if it exceeds [`MAX_TRAJ`].
fn quiesce_traj_len(bytes: f64, step: f64, inv_step: f64, vm_bw: f64) -> Option<u32> {
    let mut b = bytes;
    let mut len = 0u32;
    loop {
        let u = quantize_rate(b, inv_step, vm_bw);
        len += 1;
        if len > MAX_TRAJ {
            return None;
        }
        let new_left = b - dequantize(u) * step;
        if new_left <= 1e-6 {
            return Some(len);
        }
        b = new_left;
    }
}

/// Size of one in-flight download record, exposed for the worst-case
/// accounting in [`crate::footprint`].
pub(crate) const DL_ENTRY_BYTES: usize = std::mem::size_of::<DlEntry>();

/// How often (in rounds) the split sub-lane passes sample their per-lane
/// wall time for the `hist/lane_wall_ns` telemetry histogram. Sampling
/// keeps the clock reads off the hot path; telemetry never affects
/// results.
const LANE_WALL_SAMPLE: u64 = 64;

/// Production engine; see the module docs for the design and the
/// bit-exactness argument.
#[derive(Debug)]
pub(crate) struct IndexedEngine {
    lanes: Vec<ChannelLane>,
    /// First global channel id this engine covers; `lanes[c - base]` is
    /// channel `c`'s lane. 0 for the full-catalog single-site engine;
    /// the sharded engine instantiates one single-lane engine per
    /// channel with `base` = that channel's id.
    base: usize,
    max_chunks: usize,
    /// Usable-upload factor (`peer_efficiency`), applied once at join.
    eff: f64,
    /// Each connected peer's fixed-point usable upload, indexed by
    /// global peer index (mirrors `peers` across `swap_remove`).
    /// Packed to `u32`: the grid is 1/1024 byte/s, so the cap is
    /// ~4 GB/s of usable upload per peer — far beyond any residential
    /// uplink the workloads model (joins assert it).
    usable_units: Vec<u32>,
    /// While downloading: the peer's position in its lane's download
    /// index. While waiting: its slot in `wake_slab` (the peer's own
    /// state tag disambiguates). [`DL_NONE`] only in the instant between
    /// a drained wake and the event-processing that restarts or removes
    /// the peer. Indexed by global peer index.
    dl_slot: Vec<u32>,
    /// Waiting peers' slab slots, bucketed by wake round.
    wheel: WakeWheel,
    /// Slab of waiting peers' current global indices (re-keyed across
    /// `swap_remove`), addressed by the slots stored in the wheel.
    /// Replaces the old stable-id hash map: resolution is one array
    /// load, and the per-waiter cost is 4 bytes plus the free list.
    wake_slab: Vec<u32>,
    /// Free `wake_slab` slots available for reuse.
    free_slots: Vec<u32>,
    /// Scratch for drained wake slots.
    due: Vec<u32>,
    /// Sub-lane fan-out cap for a single-channel engine's round passes
    /// (1 = always serial). Set by the sharded runtime; the fan-out also
    /// requires `dl.len() >= 2 * lane_min`.
    lane_cap: usize,
    /// Minimum downloads per sub-lane before another lane engages.
    lane_min: usize,
    /// Per-sub-lane scratch (`lane_cap` entries when lanes are enabled).
    scratch: Vec<LaneScratch>,
    /// Rounds processed, for sampled sub-lane wall telemetry.
    rounds: u64,
    /// Quiescent-epoch scheduler (single-channel shard engines only;
    /// inert until the sharded runtime calls `epoch_enter`).
    epoch: EpochState,
    /// Wake-ups pre-drained at the top of an epoch round (ascending
    /// peer order), consumed by `epoch_events` or — after an in-round
    /// epoch break — appended to the normal advance path's wake list.
    epoch_woken: Vec<usize>,
    /// Catch-up spans (rounds each virtual download was fast-forwarded
    /// at materialization), recorded only when `record_catchup` is set
    /// by a telemetry-enabled run; feeds the `hist/catchup_k` histogram.
    catchup: Vec<u32>,
    record_catchup: bool,
}

impl IndexedEngine {
    pub(crate) fn new(n_channels: usize, max_chunks: usize, eff: f64, round_seconds: f64) -> Self {
        Self::with_base(
            0,
            n_channels,
            max_chunks,
            eff,
            round_seconds,
            WakeWheel::LEN,
        )
    }

    /// An engine covering global channels `base .. base + n_channels`,
    /// with a `wheel_len`-bucket wake wheel. The sharded engine builds
    /// one per channel (`n_channels == 1`,
    /// `wheel_len == WakeWheel::SHARD_LEN`); peers keep their global
    /// channel ids, and [`RoundCtx::channel_reserved`] stays the global
    /// per-channel slice.
    pub(crate) fn with_base(
        base: usize,
        n_channels: usize,
        max_chunks: usize,
        eff: f64,
        round_seconds: f64,
        wheel_len: usize,
    ) -> Self {
        Self {
            lanes: (0..n_channels)
                .map(|c| ChannelLane::new(base + c, max_chunks))
                .collect(),
            base,
            max_chunks,
            eff,
            usable_units: Vec::new(),
            dl_slot: Vec::new(),
            wheel: WakeWheel::new(round_seconds, wheel_len),
            wake_slab: Vec::new(),
            free_slots: Vec::new(),
            due: Vec::new(),
            lane_cap: 1,
            lane_min: 1,
            scratch: Vec::new(),
            rounds: 0,
            epoch: EpochState::new(max_chunks),
            epoch_woken: Vec::new(),
            catchup: Vec::new(),
            record_catchup: false,
        }
    }

    /// A single-channel engine for one shard of the sharded run loop,
    /// with its round passes allowed to fan out over up to `lane_cap`
    /// sub-lanes of at least `lane_min` downloads each (`lane_cap == 1`
    /// keeps the shard fully serial).
    pub(crate) fn for_shard(
        channel: usize,
        max_chunks: usize,
        eff: f64,
        round_seconds: f64,
        lane_cap: usize,
        lane_min: usize,
    ) -> Self {
        let mut engine = Self::with_base(
            channel,
            1,
            max_chunks,
            eff,
            round_seconds,
            WakeWheel::SHARD_LEN,
        );
        engine.lane_cap = lane_cap.max(1);
        engine.lane_min = lane_min.max(1);
        if engine.lane_cap > 1 {
            engine.scratch = (0..engine.lane_cap)
                .map(|_| LaneScratch {
                    req_units: vec![0; max_chunks],
                    mask: 0,
                    completed: Vec::new(),
                    wall_ns: 0,
                })
                .collect();
        }
        engine
    }

    /// How many sub-lanes a round pass over `n_dl` downloads fans out
    /// over: one lane per `lane_min` downloads, capped at `lane_cap`.
    /// A pure function of the download count and the engine's fixed
    /// parameters, so both round passes of a round agree.
    fn sub_lanes(&self, n_dl: usize) -> usize {
        if self.lane_cap <= 1 {
            1
        } else {
            (n_dl / self.lane_min).clamp(1, self.lane_cap)
        }
    }

    /// Sampled per-sub-lane wall times (ns) accumulated over the run,
    /// for the `hist/lane_wall_ns` histogram; empty when the engine
    /// never split.
    pub(crate) fn lane_walls(&self) -> impl Iterator<Item = u64> + '_ {
        self.scratch.iter().map(|s| s.wall_ns).filter(|&w| w > 0)
    }

    /// Bytes of engine-resident state that scale with the connected
    /// population: the supply and download-slot mirrors, the in-flight
    /// download index, and the waiting peers' slab + wheel entries.
    /// Fixed per-engine overhead (bucket headers, sub-lane scratch) is
    /// excluded — it does not grow with viewers. The `Peer` array itself
    /// is accounted by the caller (`crate::footprint`).
    pub(crate) fn resident_peer_bytes(&self) -> usize {
        use std::mem::size_of;
        let downloads: usize = self.lanes.iter().map(|l| l.dl.len()).sum();
        let waiting = self.wake_slab.len() - self.free_slots.len();
        self.usable_units.len() * size_of::<u32>()
            + self.dl_slot.len() * size_of::<u32>()
            + downloads * size_of::<DlEntry>()
            + waiting * 2 * size_of::<u32>()
    }

    /// Claims a wake-slab slot for peer `idx` (reuse before growth).
    fn alloc_slot(&mut self, idx: usize) -> u32 {
        match self.free_slots.pop() {
            Some(slot) => {
                self.wake_slab[slot as usize] = idx as u32;
                slot
            }
            None => {
                self.wake_slab.push(idx as u32);
                (self.wake_slab.len() - 1) as u32
            }
        }
    }

    // ------------------------------------------------------------------
    // Quiescent epochs.
    //
    // Protocol (driven by `ChannelShard::step_round`): after
    // `QUIESCE_STREAK` consecutive rounds in which every requested chunk
    // was served at ratio exactly 1.0, the shard calls `epoch_enter`,
    // which *virtualizes* the download index: each in-flight download's
    // future is pre-computed on the fixed-point grid (the trajectory of
    // quantized rates is a pure function of its bytes-left, because full
    // service makes `advance` deterministic) and written into the ring
    // as integer demand deltas plus a completion round. From then on a
    // round costs O(scheduled events + active chunks) instead of
    // O(downloads): apply the round's deltas, run the unchanged
    // `ChannelLane::finish` kernels on the incrementally maintained
    // demand, verify every written ratio is still exactly 1.0, and
    // surface the ring's completions/wheel's wakes as ordinary events.
    // A round with no arrivals, no scheduled work, unchanged supply and
    // (in P2P) no prior-round events is skipped outright — the cached
    // cloud usage is provably identical.
    //
    // Exactness: the ratio check *is* the dirtiness predicate. Demand is
    // the same integer sum the index walk would produce; the kernels are
    // the same code reading the same inputs; and while ratios stay 1.0,
    // `advance` multiplies by exactly 1.0, so bytes-left follows the
    // precomputed trajectory bit for bit. The moment any input change
    // (provisioning, fault plane, membership, demand) pushes a ratio off
    // 1.0 — or the round step leaves the grid the schedules were built
    // on — the epoch materializes: bytes-left is replayed in closed
    // form (`k` iterations of the exact recurrence, no approximation)
    // and the round continues on the normal path with the already
    // correct kernel outputs. Peers are never touched by any of this —
    // a virtual download's peer keeps its real `Downloading` state, so
    // sampling, stalls, and startup accounting read identical bytes
    // with quiescence on or off.
    // ------------------------------------------------------------------

    /// Whether a quiescent epoch is active.
    pub(crate) fn epoch_active(&self) -> bool {
        self.epoch.active
    }

    /// Whether the round context still matches the grid the epoch's
    /// schedules were quantized on. The horizon's final partial round
    /// changes `step`, which invalidates every scheduled integer rate —
    /// the shard must materialize before that round's kernels.
    pub(crate) fn epoch_step_matches(&self, ctx: &RoundCtx<'_>) -> bool {
        ctx.step == self.epoch.step
    }

    /// True when every chunk requested this round was served at ratio
    /// exactly 1.0 (vacuously true for an idle channel) — the shard's
    /// epoch-entry streak condition.
    pub(crate) fn round_fully_served(&self) -> bool {
        if self.lanes.len() != 1 {
            return false;
        }
        let lane = &self.lanes[0];
        let mut m = lane.written_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            if lane.ratio[k] != 1.0 {
                return false;
            }
        }
        true
    }

    /// Enters a quiescent epoch at the end of round `round`: fuses every
    /// in-flight download into a virtual schedule starting next round.
    /// Returns `false` (state untouched) if any trajectory would not fit
    /// the ring.
    pub(crate) fn epoch_enter(&mut self, round: u64, ctx: &RoundCtx<'_>, chunk_bytes: f64) -> bool {
        debug_assert_eq!(self.lanes.len(), 1, "epochs are per-shard");
        debug_assert!(!self.epoch.active);
        // Validity dry-run: the fresh-chunk trajectory (what every
        // restart and arrival schedules) and each in-flight remainder
        // must fit one ring revolution.
        if quiesce_traj_len(chunk_bytes, ctx.step, ctx.inv_step, ctx.vm_bandwidth).is_none() {
            return false;
        }
        if self.lanes[0]
            .dl
            .iter()
            .any(|e| quiesce_traj_len(e.bytes, ctx.step, ctx.inv_step, ctx.vm_bandwidth).is_none())
        {
            return false;
        }
        self.epoch.active = true;
        self.epoch.round = round;
        self.epoch.step = ctx.step;
        self.epoch.inv_step = ctx.inv_step;
        self.epoch.vm_bw = ctx.vm_bandwidth;
        self.epoch.chunk_bytes = chunk_bytes;
        self.epoch.last_reserved = ctx.channel_reserved[self.lanes[0].id];
        self.epoch.last_scale = ctx.online_scale;
        self.epoch.quiet = false;
        self.epoch.fresh = true;
        // Demand restarts from zero and is rebuilt by the scheduled
        // deltas (the fused downloads re-emit their own `+u₀`).
        self.lanes[0].clear_written();
        self.epoch.chunk_active.iter_mut().for_each(|c| *c = 0);
        self.epoch.active_mask = 0;
        let entries = std::mem::take(&mut self.lanes[0].dl);
        for e in &entries {
            let slot = self.alloc_slot(e.idx as usize);
            self.dl_slot[e.idx as usize] = slot;
            self.schedule_virtual(slot, e.chunk as usize, e.bytes, round + 1);
        }
        true
    }

    /// Schedules a virtual download on slab slot `slot`: walks the exact
    /// service recurrence from `bytes`, emitting a demand delta at every
    /// quantized-rate change, the completion at its final demand round,
    /// and the tear-down delta one round later.
    fn schedule_virtual(&mut self, slot: u32, chunk: usize, bytes: f64, first_round: u64) {
        let s = slot as usize;
        if self.epoch.virt_round.len() <= s {
            self.epoch.virt_round.resize(s + 1, 0);
            self.epoch.virt_bytes.resize(s + 1, 0.0);
        }
        self.epoch.virt_round[s] = first_round;
        self.epoch.virt_bytes[s] = bytes;
        let (step, inv_step, vm_bw) = (self.epoch.step, self.epoch.inv_step, self.epoch.vm_bw);
        let mut b = bytes;
        let mut prev: i64 = 0;
        let mut r = first_round;
        loop {
            let u = quantize_rate(b, inv_step, vm_bw) as i64;
            let count: i8 = if r == first_round { 1 } else { 0 };
            if u != prev || count != 0 {
                self.push_delta(r, chunk, u - prev, count);
            }
            prev = u;
            let new_left = b - dequantize(u as u64) * step;
            if new_left <= 1e-6 {
                self.epoch.buckets[(r % EPOCH_RING as u64) as usize]
                    .completes
                    .push(slot);
                self.push_delta(r + 1, chunk, -prev, -1);
                return;
            }
            b = new_left;
            r += 1;
            debug_assert!(
                r - first_round <= u64::from(MAX_TRAJ),
                "trajectory outruns the ring (checked at epoch entry)"
            );
        }
    }

    fn push_delta(&mut self, round: u64, chunk: usize, units: i64, count: i8) {
        self.epoch.buckets[(round % EPOCH_RING as u64) as usize]
            .deltas
            .push(EpochDelta {
                chunk: chunk as u8,
                count,
                units,
            });
    }

    /// Opens an epoch round: records the round number (the scheduling
    /// origin for this round's joins/restarts) and pre-drains the wake
    /// wheel — due-ness only compares wake times against `t1`, so
    /// draining before the kernels collects exactly the set the normal
    /// path's post-kernel drain would.
    pub(crate) fn epoch_begin_round(&mut self, peers: &[Peer], t1: f64, round: u64) {
        self.epoch.round = round;
        self.epoch_woken.clear();
        self.due.clear();
        {
            let Self {
                wheel,
                wake_slab,
                due,
                ..
            } = self;
            wheel.drain_due(t1, due, |slot| {
                peers[wake_slab[slot as usize] as usize].wake_at()
            });
        }
        for i in 0..self.due.len() {
            let slot = self.due[i];
            let idx = self.wake_slab[slot as usize] as usize;
            debug_assert!(matches!(peers[idx].state(), PeerState::Waiting { .. }));
            self.dl_slot[idx] = DL_NONE;
            self.free_slots.push(slot);
            self.epoch_woken.push(idx);
        }
        self.epoch_woken.sort_unstable();
    }

    /// Whether this epoch round can be skipped outright: the cached
    /// cloud usage was computed *inside* the epoch (never on the entry
    /// round's normal pass, whose demand may have included downloads
    /// that completed before virtualization), no pre-drained wakes,
    /// nothing scheduled in the round's ring bucket, the same supply
    /// inputs as the last kernel run, and (P2P only) no events last
    /// round — under those conditions every kernel input is
    /// bit-identical to the previous round's, so the cached cloud usage
    /// and the untouched peer/collector state are exactly what a full
    /// round would produce. The caller separately guarantees no arrival
    /// was admitted this round.
    pub(crate) fn epoch_can_skip(&self, ctx: &RoundCtx<'_>, round: u64) -> bool {
        let e = &self.epoch;
        let b = &e.buckets[(round % EPOCH_RING as u64) as usize];
        !e.fresh
            && self.epoch_woken.is_empty()
            && b.deltas.is_empty()
            && b.completes.is_empty()
            && ctx.channel_reserved[self.lanes[0].id] == e.last_reserved
            && ctx.online_scale == e.last_scale
            && (!ctx.p2p || e.quiet)
    }

    /// The epoch round's allocation stage: applies the round's scheduled
    /// demand deltas, runs the unchanged serial kernels on the
    /// incrementally maintained demand, and checks the exactness
    /// predicate. `Ok(used)` keeps the epoch; `Err(used)` means a ratio
    /// left 1.0 — the engine has already materialized (the kernel
    /// outputs are correct either way; demand never depends on ratios),
    /// and the shard finishes the round on the normal advance path.
    pub(crate) fn epoch_allocate(
        &mut self,
        peers: &[Peer],
        ctx: &RoundCtx<'_>,
        round: u64,
    ) -> Result<f64, f64> {
        self.rounds += 1;
        self.epoch.fresh = false;
        let bucket = (round % EPOCH_RING as u64) as usize;
        // Split borrows: the bucket's deltas vs the count/mask state.
        let mut deltas = std::mem::take(&mut self.epoch.buckets[bucket].deltas);
        let lane = &mut self.lanes[0];
        lane.clear_outputs();
        for d in deltas.drain(..) {
            let k = usize::from(d.chunk);
            lane.req_units[k] = (lane.req_units[k] as i64 + d.units) as u64;
            let c = &mut self.epoch.chunk_active[k];
            *c = (*c as i32 + i32::from(d.count)) as u32;
            if *c == 0 {
                self.epoch.active_mask &= !(1 << k);
            } else {
                self.epoch.active_mask |= 1 << k;
            }
        }
        self.epoch.buckets[bucket].deltas = deltas;
        let req_mask = self.epoch.active_mask;
        if req_mask != 0 {
            lane.finish(ctx, req_mask);
        }
        self.epoch.last_reserved = ctx.channel_reserved[lane.id];
        self.epoch.last_scale = ctx.online_scale;
        // Same running sum as `allocate` over the (single) lane.
        let mut used = 0.0;
        let mut m = lane.written_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            used += lane.cloud_served[k];
        }
        let mut exact = true;
        let mut m = lane.written_mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            if lane.ratio[k] != 1.0 {
                exact = false;
                break;
            }
        }
        if exact {
            Ok(used)
        } else {
            self.epoch_materialize(peers, round);
            Err(used)
        }
    }

    /// Surfaces the epoch round's events: the ring bucket's virtual
    /// completions (their slab slots stay claimed — the post-completion
    /// state handlers reuse them) and the pre-drained wakes, each in
    /// ascending peer order — exactly the sets and order the normal
    /// advance-plus-drain path would produce.
    pub(crate) fn epoch_events(
        &mut self,
        round: u64,
        completed: &mut Vec<usize>,
        woken: &mut Vec<usize>,
    ) {
        let bucket = (round % EPOCH_RING as u64) as usize;
        let mut completes = std::mem::take(&mut self.epoch.buckets[bucket].completes);
        completed.extend(
            completes
                .drain(..)
                .map(|slot| self.wake_slab[slot as usize] as usize),
        );
        self.epoch.buckets[bucket].completes = completes;
        completed.sort_unstable();
        woken.extend_from_slice(&self.epoch_woken);
    }

    /// Appends the wakes pre-drained by `epoch_begin_round` to `woken`
    /// (used on the in-round break path, where `advance_round`'s own
    /// drain finds the wheel already empty for this round).
    pub(crate) fn take_epoch_woken(&mut self, woken: &mut Vec<usize>) {
        woken.extend_from_slice(&self.epoch_woken);
        woken.sort_unstable();
        self.epoch_woken.clear();
    }

    /// Records whether the epoch round just finished was event-free
    /// (feeds the P2P skip condition: owners/pool unchanged).
    pub(crate) fn epoch_end_round(&mut self, had_events: bool) {
        self.epoch.quiet = !had_events;
    }

    /// Exits the epoch, rebuilding the download index: every virtual
    /// download's bytes-left is fast-forwarded `k = round − origin`
    /// rounds by replaying the exact recurrence (every replayed round
    /// verifiably ran at ratio 1.0, so this is bit-identical to `k`
    /// single-round advances), and the round then continues on the
    /// normal path. All remaining ring entries are discarded and the
    /// incremental demand state is zeroed.
    pub(crate) fn epoch_materialize(&mut self, peers: &[Peer], round: u64) {
        debug_assert!(self.epoch.active);
        let (step, inv_step, vm_bw) = (self.epoch.step, self.epoch.inv_step, self.epoch.vm_bw);
        for bucket in 0..EPOCH_RING {
            let mut completes = std::mem::take(&mut self.epoch.buckets[bucket].completes);
            for slot in completes.drain(..) {
                let idx = self.wake_slab[slot as usize] as usize;
                let PeerState::Downloading { chunk, .. } = peers[idx].state() else {
                    unreachable!("virtual downloads keep their peers in Downloading");
                };
                let k = round - self.epoch.virt_round[slot as usize];
                let mut b = self.epoch.virt_bytes[slot as usize];
                for _ in 0..k {
                    let u = quantize_rate(b, inv_step, vm_bw);
                    b -= dequantize(u) * step;
                    debug_assert!(b > 1e-6, "completion was scheduled before round {round}");
                }
                if self.record_catchup {
                    self.catchup.push(k as u32);
                }
                let lane = &mut self.lanes[0];
                self.dl_slot[idx] = lane.dl.len() as u32;
                lane.dl.push(DlEntry {
                    idx: idx as u32,
                    chunk: chunk as u32,
                    bytes: b,
                });
                self.free_slots.push(slot);
            }
            self.epoch.buckets[bucket].completes = completes;
            self.epoch.buckets[bucket].deltas.clear();
        }
        for k in 0..self.max_chunks {
            self.lanes[0].req_units[k] = 0;
            self.epoch.chunk_active[k] = 0;
        }
        self.epoch.active_mask = 0;
        self.epoch.active = false;
    }

    /// Enables catch-up span recording (telemetry-enabled runs only;
    /// recording is a pure side channel).
    pub(crate) fn set_catchup_recording(&mut self, on: bool) {
        self.record_catchup = on;
    }

    /// Catch-up spans recorded at materializations (rounds each virtual
    /// download was fast-forwarded), for `hist/catchup_k`.
    pub(crate) fn catchup_spans(&self) -> &[u32] {
        &self.catchup
    }
}

impl RoundEngine for IndexedEngine {
    fn on_join(&mut self, peers: &[Peer], idx: usize) {
        debug_assert_eq!(idx, peers.len() - 1, "joins append at the end");
        let p = &peers[idx];
        debug_assert_eq!(p.buffer, 0, "peers join with an empty buffer");
        let usable = quantize_usable(p.upload_capacity, self.eff);
        let packed = u32::try_from(usable)
            .expect("peer upload exceeds the packed u32 supply grid (~4 GB/s)");
        self.usable_units.push(packed);
        let lane = &mut self.lanes[p.channel() - self.base];
        lane.pool_units += usable;
        let PeerState::Downloading {
            chunk, bytes_left, ..
        } = p.state()
        else {
            unreachable!("peers join downloading their start chunk");
        };
        if self.epoch.active {
            // Mid-epoch arrival: its download is virtual from the start,
            // contributing demand in the round being ingested.
            let round = self.epoch.round;
            let slot = self.alloc_slot(idx);
            self.dl_slot.push(slot);
            self.schedule_virtual(slot, chunk, bytes_left, round);
            return;
        }
        self.dl_slot.push(lane.dl.len() as u32);
        lane.dl.push(DlEntry {
            idx: idx as u32,
            chunk: chunk as u32,
            bytes: bytes_left,
        });
    }

    fn on_buffer(&mut self, channel: usize, idx: usize, chunk: usize) {
        let lane = &mut self.lanes[channel - self.base];
        lane.owners[chunk] += 1;
        lane.owner_units[chunk] += u64::from(self.usable_units[idx]);
    }

    fn on_download_started(
        &mut self,
        channel: usize,
        idx: usize,
        chunk: usize,
        bytes_left: f64,
        _deadline: f64,
    ) {
        debug_assert_eq!(self.dl_slot[idx], DL_NONE, "peer was not downloading");
        if self.epoch.active {
            // A drained waiter restarts mid-epoch: schedule the fresh
            // chunk's virtual trajectory from next round (this round's
            // demand pass already ran).
            let round = self.epoch.round;
            let slot = self.alloc_slot(idx);
            self.dl_slot[idx] = slot;
            self.schedule_virtual(slot, chunk, bytes_left, round + 1);
            return;
        }
        let lane = &mut self.lanes[channel - self.base];
        self.dl_slot[idx] = lane.dl.len() as u32;
        lane.dl.push(DlEntry {
            idx: idx as u32,
            chunk: chunk as u32,
            bytes: bytes_left,
        });
    }

    fn sync_download(
        &mut self,
        channel: usize,
        idx: usize,
        chunk: usize,
        bytes_left: f64,
        _deadline: f64,
    ) {
        if self.epoch.active {
            // A virtual download completed and its peer immediately
            // started the next chunk: reuse the slab slot for the new
            // virtual schedule. `advance_playback` guarantees this is
            // always a genuine restart (`start_chunk` ran), never the
            // stale resync of a departing peer: a completion's
            // `play_end` is at least one chunk duration in the future,
            // so immediate departures cannot reach this hook in-epoch.
            debug_assert_eq!(bytes_left, self.epoch.chunk_bytes);
            let round = self.epoch.round;
            let slot = self.dl_slot[idx];
            debug_assert_ne!(slot, DL_NONE);
            self.schedule_virtual(slot, chunk, bytes_left, round + 1);
            return;
        }
        let pos = self.dl_slot[idx] as usize;
        let entry = &mut self.lanes[channel - self.base].dl[pos];
        debug_assert_eq!(entry.idx as usize, idx, "download index is consistent");
        entry.chunk = chunk as u32;
        entry.bytes = bytes_left;
    }

    fn on_download_stopped(&mut self, channel: usize, idx: usize, _id: u64, wake_at: f64) {
        if self.epoch.active {
            // A virtual download completed and its peer went back to
            // waiting: the slab slot it already holds simply becomes its
            // wait slot (the ring's completion entry for it was consumed
            // this round, so nothing dangles).
            let slot = self.dl_slot[idx];
            debug_assert_ne!(slot, DL_NONE);
            debug_assert_eq!(self.wake_slab[slot as usize] as usize, idx);
            self.wheel.push(slot, wake_at);
            return;
        }
        let lane = &mut self.lanes[channel - self.base];
        let pos = self.dl_slot[idx] as usize;
        debug_assert_eq!(lane.dl[pos].idx as usize, idx);
        lane.dl.swap_remove(pos);
        if let Some(moved) = lane.dl.get(pos) {
            self.dl_slot[moved.idx as usize] = pos as u32;
        }
        // Park the waiter in the slab; `dl_slot` holds its slab slot
        // until the wake drains (the peer's state tag disambiguates the
        // two uses of `dl_slot`).
        let slot = self.alloc_slot(idx);
        self.dl_slot[idx] = slot;
        // `wake_at` is strictly in the future (gates and drains both
        // check against `now` before waiting).
        self.wheel.push(slot, wake_at);
    }

    fn on_remove(&mut self, peers: &[Peer], idx: usize) {
        let removed = &peers[idx];
        let lane = &mut self.lanes[removed.channel() - self.base];
        let usable = u64::from(self.usable_units[idx]);
        lane.pool_units -= usable;
        // Drop the departing peer's chunks from the owner aggregates —
        // integer subtraction, so the running sums stay exact.
        let mut bits = removed.buffer;
        while bits != 0 {
            let chunk = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if chunk < self.max_chunks {
                lane.owners[chunk] -= 1;
                lane.owner_units[chunk] -= usable;
            }
        }
        if self.epoch.active {
            // In-epoch departures are always drained waiters (a
            // completion's `play_end` is at least one chunk duration
            // ahead of the clock, so completions never depart in the
            // same round) — no download-index entry, no slab slot, no
            // pending ring entries.
            debug_assert_eq!(self.dl_slot[idx], DL_NONE);
        } else if matches!(removed.state(), PeerState::Downloading { .. }) {
            let pos = self.dl_slot[idx] as usize;
            debug_assert_eq!(lane.dl[pos].idx as usize, idx);
            lane.dl.swap_remove(pos);
            if let Some(moved_entry) = lane.dl.get(pos) {
                self.dl_slot[moved_entry.idx as usize] = pos as u32;
            }
        } else {
            // A waiting peer is only removed in the round its wake
            // drained (the departure path), so it has no live wheel
            // entry or slab slot.
            debug_assert_eq!(self.dl_slot[idx], DL_NONE);
        }
        // `swap_remove` moves the peer at the last global index into
        // `idx`; re-key it. The supply aggregates are value-based, not
        // position-based, so only the download index and the wake slab
        // care.
        self.usable_units.swap_remove(idx);
        self.dl_slot.swap_remove(idx);
        let last = peers.len() - 1;
        if last != idx {
            let moved = &peers[last];
            let slot = self.dl_slot[idx];
            if slot != DL_NONE {
                if !self.epoch.active && matches!(moved.state(), PeerState::Downloading { .. }) {
                    let entry = &mut self.lanes[moved.channel() - self.base].dl[slot as usize];
                    debug_assert_eq!(entry.idx as usize, last);
                    entry.idx = idx as u32;
                } else {
                    // Waiting peers always live in the slab; in-epoch so
                    // do downloading peers (their downloads are virtual,
                    // keyed by slab slot — ring entries reference the
                    // slot, so only the slab needs re-keying).
                    debug_assert_eq!(self.wake_slab[slot as usize] as usize, last);
                    self.wake_slab[slot as usize] = idx as u32;
                }
            }
        }
    }

    fn allocate(&mut self, peers: &[Peer], ctx: &RoundCtx<'_>) -> f64 {
        self.rounds += 1;
        if peers.len() >= PAR_MIN_PEERS && self.lanes.len() > 1 {
            // Contiguous channel groups across threads. Channels never
            // share an accumulator, so scheduling cannot affect results.
            let threads = rayon::current_num_threads().min(self.lanes.len()).max(1);
            let group = self.lanes.len().div_ceil(threads);
            rayon::scope(|s| {
                for lanes in self.lanes.chunks_mut(group) {
                    s.spawn(move |_| {
                        for lane in lanes {
                            lane.process(ctx);
                        }
                    });
                }
            });
        } else if self.lanes.len() == 1 && self.sub_lanes(self.lanes[0].dl.len()) > 1 {
            // A hot single-channel shard: fan the demand scan out over
            // fixed-order sub-lanes (bit-identical by integer-sum
            // reassociation; see `process_split`).
            let subs = self.sub_lanes(self.lanes[0].dl.len());
            let time_it = self.rounds.is_multiple_of(LANE_WALL_SAMPLE);
            self.lanes[0].process_split(ctx, &mut self.scratch[..subs], time_it);
        } else {
            for lane in &mut self.lanes {
                lane.process(ctx);
            }
        }
        // One running accumulator over channels in order, visiting only
        // written slots — the same addition sequence as a dense flat sum,
        // since the skipped slots hold exact zeros.
        let mut used = 0.0;
        for lane in &self.lanes {
            let mut m = lane.written_mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                m &= m - 1;
                used += lane.cloud_served[k];
            }
        }
        used
    }

    fn advance_round(
        &mut self,
        peers: &mut [Peer],
        ctx: &RoundCtx<'_>,
        t1: f64,
        completed: &mut Vec<usize>,
        woken: &mut Vec<usize>,
    ) {
        let subs = if self.lanes.len() == 1 {
            self.sub_lanes(self.lanes[0].dl.len())
        } else {
            1
        };
        if subs > 1 {
            let time_it = self.rounds.is_multiple_of(LANE_WALL_SAMPLE);
            self.lanes[0].advance_split(ctx, &mut self.scratch[..subs], completed, time_it);
        } else {
            for lane in &mut self.lanes {
                lane.advance(ctx, completed);
            }
        }
        completed.sort_unstable();
        self.due.clear();
        {
            // Wake times live on the waiting peers; the slab maps a
            // wheel slot to the peer's current index.
            let Self {
                wheel,
                wake_slab,
                due,
                ..
            } = self;
            wheel.drain_due(t1, due, |slot| {
                peers[wake_slab[slot as usize] as usize].wake_at()
            });
        }
        for &slot in &self.due {
            let idx = self.wake_slab[slot as usize] as usize;
            debug_assert!(matches!(peers[idx].state(), PeerState::Waiting { .. }));
            // The slot is free again; clear the peer's slab reference so
            // a restarted download can claim `dl_slot` (asserted there).
            self.dl_slot[idx] = DL_NONE;
            self.free_slots.push(slot);
            woken.push(idx);
        }
        woken.sort_unstable();
    }
}

// ----------------------------------------------------------------------
// Shared run loop.
// ----------------------------------------------------------------------

/// The round loop shared by both engines: provisioning, arrivals, the
/// engine's allocation stage, download progress and viewing-model
/// transitions, cloud billing, and sampling. The configuration's fault
/// schedule is applied in this serial loop — fleet failures/repairs at
/// round boundaries, cost shocks and tracker dropouts at provisioning
/// boundaries, arrival shedding per arrival timestamp — so every fault
/// decision is a pure function of the simulated clock and the run stays
/// bit-identical across engines and parallelism.
fn run_loop<E: RoundEngine>(
    cfg: &SimConfig,
    engine: &mut E,
    tel: &Telemetry,
) -> Result<FaultRun, SimError> {
    // Legacy env-var profiling (CLOUDMEDIA_PROFILE=1), consumed by
    // `bench_sim`: when the caller didn't pass a live registry, stand up
    // a private one so the phase breakdown can still be computed.
    let profile = std::env::var("CLOUDMEDIA_PROFILE").is_ok();
    let private_reg;
    let tel = if profile && !tel.enabled() {
        private_reg = telem::new_registry(false);
        &private_reg
    } else {
        tel
    };
    // Process-wide counter baseline, taken before the arrival stream
    // exists so its lazy draws are attributed to this run.
    let globals = telem::GlobalCounters::capture();
    let before = profile.then(|| tel.snapshot());

    let catalog = &cfg.catalog;
    let n_channels = catalog.len();
    let chunk_bytes = cfg.chunk_bytes();

    // Arrivals stream lazily in global time order — O(channels) memory
    // and no up-front trace materialization or sort.
    let mut arrival_stream = ArrivalStream::new(catalog, &cfg.trace)?;
    let mut next_arrival = arrival_stream.next();

    let mut cloud = Cloud::new(
        scale_fleet_capacity(&paper_virtual_clusters(), cfg.fleet_scale),
        scale_nfs_capacity(&paper_nfs_clusters(), cfg.fleet_scale),
        chunk_bytes as u64,
    )?;
    let sla = cloud.sla_terms();
    let vm_bandwidth = sla.virtual_clusters[0].vm_bandwidth_bytes_per_sec;

    let mut planner = make_planner(cfg, vm_bandwidth)?;
    let mut fault_driver = FaultDriver::new(&cfg.faults);
    let retry = *fault_driver.retry_policy();
    // The last successfully planned interval (placement stripped) — the
    // controller's fallback when the tracker is dark — and its VM
    // targets, restored by fleet repairs.
    let mut last_plan: Option<ProvisioningPlan> = None;
    let mut last_plan_targets: Vec<usize> = Vec::new();
    // Budget-shock factor already folded into the planner's budget.
    let mut applied_budget_factor = 1.0_f64;
    let mut current_placement: Option<PlacementPlan> = None;
    let mut tracker = Tracker::new(catalog)?;
    let mut rng = StdRng::seed_from_u64(cfg.behaviour_seed);

    let mut peers: Vec<Peer> = Vec::new();
    let mut metrics = Metrics::default();

    let horizon = cfg.trace.horizon_seconds;
    let dt = cfg.round_seconds;
    let mut clock = 0.0_f64;
    let mut next_sample = cfg.sample_interval;
    let mut next_provision = 0.0_f64;
    let mut window_used = 0.0_f64; // integral of used bandwidth, bytes
    let mut window_start = 0.0_f64;
    let mut window_startup_sum = 0.0_f64;
    let mut window_startup_count = 0usize;

    // Per-channel cloud bandwidth reserved by the current plan. The
    // paper's port-forwarding sends chunk requests to designated VMs,
    // and a shared VM serves consecutive chunks of one channel — so a
    // channel can use its own reserved VMs for any of its chunks, but
    // cannot borrow another channel's.
    let mut channel_reserved = vec![0.0_f64; n_channels];
    let mut reserved_total = 0.0_f64;
    // Event scratch, reused across rounds.
    let mut removals: Vec<usize> = Vec::new();
    let mut completed: Vec<usize> = Vec::new();
    let mut woken: Vec<usize> = Vec::new();

    // Stage attribution: the lap clock times one round in
    // STAGE_TIME_SAMPLE and scales up, so stage boundaries cost a
    // fraction of a clock read per round (and one branch when telemetry
    // is off). The whole-run span also feeds the trace when the
    // registry buffers spans.
    let run_span = tel.span(telem::RUN_WALL);
    let mut clk = tel.stage_clock_sampled(telem::STAGE_TIME_SAMPLE);
    // Round-loop totals accumulate in plain locals and hit the registry
    // once after the loop — per-round atomic adds are measurable on a
    // 60k-round week.
    let mut rounds_total = 0u64;
    let mut completed_total = 0u64;
    let mut woken_total = 0u64;
    let mut admitted_total = 0u64;
    let mut peers_peak = 0u64;

    while clock < horizon {
        let t1 = (clock + dt).min(horizon);
        let step = t1 - clock;
        clk.begin_round();

        // --- Fault boundaries (fleet failures and repairs) ----------
        fault_driver.apply_due(clock, &mut cloud, &last_plan_targets)?;

        // --- Provisioning boundary ---------------------------------
        {
            if clock >= next_provision {
                let _interval_span = tel.span(telem::PROV_INTERVAL);
                let bootstrap = metrics.intervals.is_empty();
                // Mid-run cost shocks: fold newly due budget factors into
                // the planner once, and plan against the shocked price
                // book (billing of already-running rentals is unchanged).
                let (budget_factor, price_factor) = cfg.faults.shock_factors(clock);
                if budget_factor != applied_budget_factor {
                    planner.scale_vm_budget(budget_factor / applied_budget_factor)?;
                    applied_budget_factor = budget_factor;
                }
                let planning_sla = if price_factor == 1.0 {
                    sla.clone()
                } else {
                    sla.with_vm_price_factor(price_factor)
                };
                let plan = if !bootstrap && cfg.faults.dropout_active(clock) && last_plan.is_some()
                {
                    // Tracker blackout: the interval's measurements are
                    // lost. Drain them anyway (the collector's reset
                    // state must match a non-faulted run) and fall back
                    // to the last-known-good plan instead of panicking
                    // on empty statistics.
                    let _s = tel.span(telem::PROV_TRACKER);
                    let _ = tracker.interval_stats(cfg.provisioning_interval)?;
                    fault_driver.stats.fallback_intervals += 1;
                    last_plan.clone().expect("checked is_some above")
                } else {
                    let stats = {
                        let _s = tel.span(telem::PROV_TRACKER);
                        if bootstrap {
                            bootstrap_stats(catalog, cfg)
                        } else {
                            tracker.interval_stats(cfg.provisioning_interval)?
                        }
                    };
                    let _s = tel.span(telem::PROV_PLAN);
                    planner.plan_interval(&stats, &planning_sla)?
                };
                if let Some(p) = &plan.placement {
                    current_placement = Some(p.clone());
                }
                let receipt = {
                    let _s = tel.span(telem::PROV_SUBMIT);
                    cloud.submit_with_retry(
                        &ResourceRequest {
                            vm_targets: plan.vm_targets.clone(),
                            placement: plan.placement.clone(),
                        },
                        &retry,
                    )?
                };
                fault_driver.stats.record_receipt(&receipt);
                last_plan_targets = plan.vm_targets.clone();
                channel_reserved.iter_mut().for_each(|v| *v = 0.0);
                for (key, allocs) in &plan.vm_plan.allocations {
                    if key.channel >= n_channels {
                        continue;
                    }
                    let bw: f64 = allocs
                        .iter()
                        .map(|a| a.vms * sla.virtual_clusters[a.cluster].vm_bandwidth_bytes_per_sec)
                        .sum();
                    channel_reserved[key.channel] += bw;
                }
                reserved_total = channel_reserved.iter().sum();
                let mut per_channel_peers = vec![0usize; n_channels];
                for p in &peers {
                    per_channel_peers[p.channel()] += 1;
                }
                metrics.intervals.push(interval_record(
                    clock,
                    &plan,
                    current_placement.as_ref(),
                    &sla,
                    n_channels,
                    per_channel_peers,
                ));
                // Keep the plan as the dropout fallback, placement
                // stripped: re-placing chunks is not part of replaying a
                // stale plan.
                let mut stored = plan;
                stored.placement = None;
                last_plan = Some(stored);
                next_provision += cfg.provisioning_interval;
            }
        }
        clk.lap(telem::STAGE_PROVISIONING);

        // --- Arrivals ----------------------------------------------
        let mut admitted_this_round = 0u64;
        while let Some(a) = next_arrival.as_ref().filter(|a| a.time < t1) {
            // Graceful degradation (ShedNewArrivals): during an
            // active fleet-failure window, refuse admission instead
            // of diluting every stream. The decision depends only on
            // the arrival timestamp, so it is engine-independent.
            if cfg.faults.shed_arrivals_at(a.time) {
                fault_driver.stats.shed_arrivals += 1;
                next_arrival = arrival_stream.next();
                continue;
            }
            peers.push(Peer::new(
                a.user_id,
                a.channel,
                a.upload_bytes_per_sec,
                a.start_chunk,
                chunk_bytes,
                a.time,
            ));
            engine.on_join(&peers, peers.len() - 1);
            tracker.record_join(a.channel, a.start_chunk);
            admitted_this_round += 1;
            next_arrival = arrival_stream.next();
        }
        if admitted_this_round > 0 {
            admitted_total += admitted_this_round;
            peers_peak = peers_peak.max(peers.len() as u64);
        }
        clk.lap(telem::STAGE_ARRIVALS);

        // --- Allocation stage (engine-specific) ---------------------
        let cloud_pool = cloud.running_bandwidth();
        let online_scale = if reserved_total > 0.0 {
            (cloud_pool / reserved_total).min(1.0)
        } else {
            0.0
        };
        let ctx = RoundCtx {
            step,
            inv_step: 1.0 / step,
            vm_bandwidth,
            eff: cfg.peer_efficiency,
            p2p: cfg.mode == SimMode::P2p,
            online_scale,
            channel_reserved: &channel_reserved,
        };
        let used_cloud_rate = engine.allocate(&peers, &ctx);
        clk.lap(telem::STAGE_ALLOCATION);

        // --- Progress downloads, handle completions -----------------
        // The engine advances every in-flight download and reports the
        // round's events: completed chunks and due wake-ups. Events are
        // then handled in ascending peer order — the same order the
        // original full scan encountered them — so RNG draws, tracker
        // records, and removals are identical.
        completed.clear();
        woken.clear();
        engine.advance_round(&mut peers, &ctx, t1, &mut completed, &mut woken);
        clk.lap(telem::STAGE_ADVANCE);
        rounds_total += 1;
        completed_total += completed.len() as u64;
        woken_total += woken.len() as u64;
        process_round_events(
            engine,
            &mut peers,
            &completed,
            &woken,
            &mut removals,
            &mut tracker,
            &mut rng,
            catalog,
            chunk_bytes,
            cfg.chunk_seconds,
            t1,
            &mut window_startup_sum,
            &mut window_startup_count,
        );
        clk.lap(telem::STAGE_EVENTS);

        // --- Advance the cloud (billing + VM lifecycle) --------------
        cloud.tick(t1)?;
        window_used += used_cloud_rate * step;
        clk.lap(telem::STAGE_CLOUD);

        // --- Sampling ------------------------------------------------
        if t1 >= next_sample || t1 >= horizon {
            let elapsed = (t1 - window_start).max(1e-9);
            let startup = if window_startup_count > 0 {
                window_startup_sum / window_startup_count as f64
            } else {
                0.0
            };
            metrics.samples.push(sample(
                t1,
                cloud.running_bandwidth(),
                window_used / elapsed,
                startup,
                &peers,
                n_channels,
                cfg,
            ));
            window_used = 0.0;
            window_startup_sum = 0.0;
            window_startup_count = 0;
            window_start = t1;
            next_sample += cfg.sample_interval;
        }
        clk.lap(telem::STAGE_SAMPLING);

        clock = t1;
    }
    drop(run_span);

    tel.add(telem::ROUNDS, rounds_total);
    tel.add(telem::COMPLETED_CHUNKS, completed_total);
    tel.add(telem::WOKEN_PEERS, woken_total);
    tel.add(telem::ARRIVALS_ADMITTED, admitted_total);
    tel.gauge_max(telem::PEERS_PEAK, peers_peak);
    telem::record_fault_stats(tel, &fault_driver.stats);
    globals.record_delta(tel);

    if profile {
        let snap = tel.snapshot();
        let base = before.expect("captured when profiling");
        let secs = |id: cloudmedia_telemetry::MetricId| {
            snap.value(id).wrapping_sub(base.value(id)) as f64 * 1e-9
        };
        let count =
            |id: cloudmedia_telemetry::MetricId| snap.value(id).wrapping_sub(base.value(id));
        let rounds = count(telem::ROUNDS).max(1);
        let phases = PhaseProfile {
            provisioning: secs(telem::STAGE_PROVISIONING),
            arrivals: secs(telem::STAGE_ARRIVALS),
            allocation: secs(telem::STAGE_ALLOCATION),
            progress: secs(telem::STAGE_ADVANCE) + secs(telem::STAGE_EVENTS),
            cloud: secs(telem::STAGE_CLOUD),
            sampling: secs(telem::STAGE_SAMPLING),
        };
        eprintln!(
            "phases: prov={:.3}s arrivals={:.3}s alloc={:.3}s progress={:.3}s (advance={:.3}s, {:.1} done + {:.1} woken / round) cloud={:.3}s sample={:.3}s",
            phases.provisioning,
            phases.arrivals,
            phases.allocation,
            phases.progress,
            secs(telem::STAGE_ADVANCE),
            count(telem::COMPLETED_CHUNKS) as f64 / rounds as f64,
            count(telem::WOKEN_PEERS) as f64 / rounds as f64,
            phases.cloud,
            phases.sampling
        );
        LAST_PROFILE.with(|c| c.set(Some(phases)));
    }
    metrics.total_vm_cost = cloud.billing().vm_cost().as_dollars();
    metrics.total_storage_cost = cloud.billing().storage_cost().as_dollars();
    Ok(FaultRun {
        metrics,
        fault_stats: fault_driver.stats,
    })
}

/// Advances a peer's playback pipeline after it finished downloading
/// `chunk`: walks the viewing model through already-buffered chunks, then
/// either starts (or gates) the next download or schedules departure.
/// `play_end` is the playback end time of the just-finished chunk.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_playback<S: ViewingSink>(
    p: &mut Peer,
    idx: usize,
    chunk: usize,
    mut play_end: f64,
    chunk_bytes: f64,
    chunk_seconds: f64,
    now: f64,
    catalog: &Catalog,
    tracker: &mut S,
    rng: &mut StdRng,
    removals: &mut Vec<usize>,
) {
    let viewing = &catalog.channel(p.channel()).viewing;
    let mut current = chunk;
    loop {
        match viewing.sample_next(rng, current) {
            NextAction::Watch(next) => {
                tracker.transition(p.channel(), current, next);
                if p.owns(next) {
                    // Already buffered (a jump back): it plays straight
                    // from the buffer; decide again after it.
                    play_end += chunk_seconds;
                    current = next;
                    continue;
                }
                // Prefetch gate: the download may start up to
                // PREFETCH_WINDOWS playback windows before its deadline.
                let gate = play_end - crate::peer::PREFETCH_WINDOWS * chunk_seconds;
                if gate > now {
                    p.set_state(PeerState::Waiting {
                        next: Some(PendingChunk {
                            chunk: next,
                            deadline: play_end,
                        }),
                        wake_at: gate,
                    });
                } else {
                    p.start_chunk(next, chunk_bytes, play_end);
                }
                return;
            }
            NextAction::Leave => {
                tracker.leave(p.channel(), current);
                if play_end <= now {
                    removals.push(idx);
                } else {
                    // Drain playback (still uploading), then depart.
                    p.set_state(PeerState::Waiting {
                        next: None,
                        wake_at: play_end,
                    });
                }
                return;
            }
        }
    }
}

/// Handles one round's events — chunk completions and due wake-ups,
/// merged in ascending peer order (the order the original full scan
/// encountered them, so RNG draws, tracker records, and removals are
/// identical) — then removes departed peers, highest index first so
/// earlier indices stay valid across `swap_remove`. Shared verbatim by
/// the single-site run loop and the federated per-region runtime
/// (`crate::federation`), so event ordering can never diverge between
/// them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_round_events<E: RoundEngine + ?Sized, S: ViewingSink>(
    engine: &mut E,
    peers: &mut Vec<Peer>,
    completed: &[usize],
    woken: &[usize],
    removals: &mut Vec<usize>,
    tracker: &mut S,
    rng: &mut StdRng,
    catalog: &Catalog,
    chunk_bytes: f64,
    chunk_seconds: f64,
    t1: f64,
    window_startup_sum: &mut f64,
    window_startup_count: &mut usize,
) {
    let (mut ci, mut wi) = (0usize, 0usize);
    while ci < completed.len() || wi < woken.len() {
        let is_completion = match (completed.get(ci), woken.get(wi)) {
            (Some(&c), Some(&w)) => c < w,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if is_completion {
            let idx = completed[ci];
            ci += 1;
            let p = &mut peers[idx];
            let PeerState::Downloading {
                chunk, deadline, ..
            } = p.state()
            else {
                unreachable!("completion events come from downloading peers");
            };
            // Chunk complete at (approximately) t1.
            debug_assert!(!p.owns(chunk), "a chunk downloads at most once");
            p.add_to_buffer(chunk);
            engine.on_buffer(p.channel(), idx, chunk);
            if deadline.is_finite() {
                if t1 > deadline {
                    p.record_stall(t1, t1 - deadline);
                }
            } else {
                // First chunk: playback starts now.
                *window_startup_sum += t1 - p.joined_at;
                *window_startup_count += 1;
            }
            // The chunk plays from its deadline (or from now, after a
            // stall or for the first chunk).
            let play_start = if deadline.is_finite() {
                deadline.max(t1)
            } else {
                t1
            };
            advance_playback(
                p,
                idx,
                chunk,
                play_start + chunk_seconds,
                chunk_bytes,
                chunk_seconds,
                t1,
                catalog,
                tracker,
                rng,
                removals,
            );
            // The playback walk either began the next download, gated it
            // (or a departure drain) behind a wake-up, or scheduled an
            // immediate departure.
            match p.state() {
                PeerState::Waiting { wake_at, .. } => {
                    engine.on_download_stopped(p.channel(), idx, p.id, wake_at);
                }
                PeerState::Downloading {
                    chunk,
                    bytes_left,
                    deadline,
                } => {
                    engine.sync_download(p.channel(), idx, chunk, bytes_left, deadline);
                }
            }
        } else {
            let idx = woken[wi];
            wi += 1;
            let p = &mut peers[idx];
            let PeerState::Waiting { next, wake_at } = p.state() else {
                unreachable!("wake events come from waiting peers");
            };
            debug_assert!(wake_at <= t1);
            match next {
                Some(pending) => {
                    p.start_chunk(pending.chunk, chunk_bytes, pending.deadline);
                    engine.on_download_started(
                        p.channel(),
                        idx,
                        pending.chunk,
                        chunk_bytes,
                        pending.deadline,
                    );
                }
                None => removals.push(idx),
            }
        }
    }
    // Remove departed peers, highest index first so earlier indices stay
    // valid across `swap_remove`.
    removals.sort_unstable();
    for &idx in removals.iter().rev() {
        engine.on_remove(peers, idx);
        peers.swap_remove(idx);
    }
    removals.clear();
}

/// Bootstrap observations for the very first interval: the provider's
/// "empirical user scale and viewing pattern information" (paper Sec. V-B)
/// — the catalog's base rates scaled by the diurnal multiplier at time 0.
pub(crate) fn bootstrap_stats(
    catalog: &Catalog,
    cfg: &SimConfig,
) -> Vec<(usize, ChannelObservation)> {
    let mult = cfg.trace.diurnal.multiplier(0.0);
    catalog
        .channels()
        .iter()
        .map(|spec| {
            (
                spec.id,
                ChannelObservation {
                    arrival_rate: spec.base_arrival_rate * mult,
                    alpha: spec.viewing.start_at_beginning,
                    routing: spec
                        .viewing
                        .routing_rows()
                        .expect("catalog channels validated at construction"),
                },
            )
        })
        .collect()
}

/// The pluggable provisioning strategy driving the simulation. Shared
/// with the event-driven engine, which runs the identical control path.
#[derive(Debug)]
pub(crate) enum Planner {
    /// The paper's model-driven controller (boxed: it dwarfs the
    /// baseline variant).
    Model(Box<Controller>),
    /// A baseline strategy (reactive or fixed).
    Baseline(BaselinePlanner),
}

/// Builds the configured provisioning planner for a run (the controller
/// configuration mirrors the paper's defaults with the run's overrides).
pub(crate) fn make_planner(cfg: &SimConfig, vm_bandwidth: f64) -> Result<Planner, SimError> {
    let controller_config = ControllerConfig {
        interval_seconds: cfg.provisioning_interval,
        vm_budget_per_hour: cfg.vm_budget_per_hour,
        storage_budget_per_hour: cfg.storage_budget_per_hour,
        mode: cfg.streaming_mode(),
        streaming_rate: cfg.streaming_rate,
        chunk_seconds: cfg.chunk_seconds,
        vm_bandwidth,
        safety_factor: cfg.safety_factor,
        target: cfg.provisioning_target,
        // Fault-plane runs degrade uniformly (diluting every stream)
        // instead of aborting when a mid-run budget shock makes the
        // configured budget infeasible; fault-free runs keep the strict
        // paper semantics of surfacing the "increase the budget" signal.
        budget_policy: if cfg.faults.is_empty() {
            BudgetPolicy::Strict
        } else {
            BudgetPolicy::BestEffort
        },
        ..ControllerConfig::paper_default(cfg.streaming_mode())
    };
    Ok(match cfg.provisioner {
        ProvisionerKind::Model => {
            Planner::Model(Box::new(Controller::new(controller_config, cfg.predictor)?))
        }
        baseline => Planner::Baseline(BaselinePlanner::new(
            baseline,
            cfg.streaming_rate,
            cfg.chunk_seconds,
            cfg.vm_budget_per_hour,
            cfg.storage_budget_per_hour,
        )?),
    })
}

impl Planner {
    pub(crate) fn plan_interval(
        &mut self,
        stats: &[(usize, cloudmedia_core::predictor::ChannelObservation)],
        sla: &SlaTerms,
    ) -> Result<ProvisioningPlan, CoreError> {
        match self {
            Planner::Model(c) => c.plan_interval(stats, sla),
            Planner::Baseline(b) => b.plan_interval(stats, sla),
        }
    }

    /// Scales the VM rental budget by `factor` (mid-run budget shocks
    /// apply to the model controller and the baselines alike).
    pub(crate) fn scale_vm_budget(&mut self, factor: f64) -> Result<(), CoreError> {
        match self {
            Planner::Model(c) => c.scale_vm_budget(factor),
            Planner::Baseline(b) => b.scale_vm_budget(factor),
        }
    }
}

pub(crate) fn interval_record(
    time: f64,
    plan: &ProvisioningPlan,
    placement: Option<&PlacementPlan>,
    sla: &SlaTerms,
    n_channels: usize,
    per_channel_peers: Vec<usize>,
) -> IntervalRecord {
    let mut per_channel_demand = vec![0.0; n_channels];
    let mut per_channel_storage = vec![0.0; n_channels];
    let mut per_channel_vm = vec![0.0; n_channels];
    for d in &plan.chunk_demands {
        let c = d.key.channel;
        if c >= n_channels {
            continue;
        }
        per_channel_demand[c] += d.demand;
        if let Some(pl) = placement {
            if let Some(&f) = pl.get(&d.key) {
                per_channel_storage[c] += sla.nfs_clusters[f].utility * d.demand;
            }
        }
    }
    for (key, allocs) in &plan.vm_plan.allocations {
        if key.channel >= n_channels {
            continue;
        }
        for a in allocs {
            per_channel_vm[key.channel] += sla.virtual_clusters[a.cluster].utility * a.vms;
        }
    }
    IntervalRecord {
        time,
        vm_targets: plan.vm_targets.clone(),
        vm_hourly_cost: plan.vm_plan.integer_hourly_cost,
        total_cloud_demand: plan.total_cloud_demand,
        expected_peer_contribution: plan.expected_peer_contribution,
        per_channel_demand,
        per_channel_storage_utility: per_channel_storage,
        per_channel_vm_utility: per_channel_vm,
        placement_refreshed: plan.placement.is_some(),
        per_channel_peers,
    }
}

pub(crate) fn sample(
    time: f64,
    reserved: f64,
    used: f64,
    mean_startup_delay: f64,
    peers: &[Peer],
    n_channels: usize,
    cfg: &SimConfig,
) -> Sample {
    let window = cfg.sample_interval;
    let mut per_channel_peers = vec![0usize; n_channels];
    let mut per_channel_smooth = vec![0usize; n_channels];
    let mut smooth = 0usize;
    for p in peers {
        per_channel_peers[p.channel()] += 1;
        if p.smooth_in_window(time, window) {
            smooth += 1;
            per_channel_smooth[p.channel()] += 1;
        }
    }
    let quality = if peers.is_empty() {
        1.0
    } else {
        smooth as f64 / peers.len() as f64
    };
    let per_channel_quality = per_channel_peers
        .iter()
        .zip(&per_channel_smooth)
        .map(|(&n, &s)| if n == 0 { 1.0 } else { s as f64 / n as f64 })
        .collect();
    Sample {
        time,
        reserved_bandwidth: reserved,
        used_bandwidth: used,
        quality,
        active_peers: peers.len(),
        per_channel_peers,
        per_channel_quality,
        mean_startup_delay,
    }
}

/// A `(ChunkKey, demand)` pair list grouped per channel; helper shared by
/// experiment harnesses.
pub fn group_demand_by_channel(demands: &[(ChunkKey, f64)], n_channels: usize) -> Vec<f64> {
    let mut out = vec![0.0; n_channels];
    for (key, demand) in demands {
        if key.channel < n_channels {
            out[key.channel] += demand;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast configuration: 3 channels, ~120 viewers, 6 hours.
    fn small_config(mode: SimMode) -> SimConfig {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.catalog = Catalog::zipf(
            3,
            0.8,
            cloudmedia_workload::viewing::ViewingModel::paper_default(),
            60.0,
            300.0,
        )
        .unwrap();
        cfg.trace.horizon_seconds = 6.0 * 3600.0;
        cfg.round_seconds = 10.0;
        cfg
    }

    #[test]
    fn client_server_run_produces_sane_metrics() {
        let m = Simulator::new(small_config(SimMode::ClientServer))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.intervals.len(), 6, "one record per hour");
        assert!(!m.samples.is_empty());
        assert!(m.mean_quality() > 0.9, "quality {q}", q = m.mean_quality());
        assert!(m.peak_peers() > 20, "peers showed up: {}", m.peak_peers());
        assert!(m.total_vm_cost > 0.0);
        assert!(m.total_storage_cost > 0.0);
        assert!(
            m.total_storage_cost < 0.01 * m.total_vm_cost,
            "storage is negligible"
        );
    }

    #[test]
    fn provisioned_covers_used_most_of_the_time() {
        let m = Simulator::new(small_config(SimMode::ClientServer))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            m.provision_coverage() > 0.85,
            "coverage {c}",
            c = m.provision_coverage()
        );
    }

    #[test]
    fn p2p_needs_less_cloud_than_client_server() {
        let cs = Simulator::new(small_config(SimMode::ClientServer))
            .unwrap()
            .run()
            .unwrap();
        let p2p = Simulator::new(small_config(SimMode::P2p))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            p2p.mean_used_bandwidth() < cs.mean_used_bandwidth(),
            "P2P used {p} vs C/S used {c}",
            p = p2p.mean_used_bandwidth(),
            c = cs.mean_used_bandwidth()
        );
        assert!(p2p.total_vm_cost < cs.total_vm_cost);
        assert!(
            p2p.mean_quality() > 0.85,
            "P2P quality {q}",
            q = p2p.mean_quality()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Simulator::new(small_config(SimMode::P2p))
            .unwrap()
            .run()
            .unwrap();
        let b = Simulator::new(small_config(SimMode::P2p))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scan_and_indexed_engines_agree_exactly() {
        for mode in [SimMode::ClientServer, SimMode::P2p] {
            let mut scan_cfg = small_config(mode);
            scan_cfg.kernel = SimKernel::Scan;
            let mut indexed_cfg = small_config(mode);
            indexed_cfg.kernel = SimKernel::Indexed;
            let scan = Simulator::new(scan_cfg).unwrap().run().unwrap();
            let indexed = Simulator::new(indexed_cfg).unwrap().run().unwrap();
            assert_eq!(scan, indexed, "engines diverged in {mode:?}");
        }
    }

    #[test]
    fn baseline_provisioners_run_end_to_end() {
        use cloudmedia_core::baseline::ProvisionerKind;
        let mut fixed_cfg = small_config(SimMode::ClientServer);
        // Peak-size the fixed fleet for the small catalog (~120 avg users,
        // flash-crowd peak ~3x): 360 viewers x 50 KB/s x margin.
        fixed_cfg.provisioner = ProvisionerKind::Fixed {
            peak_demand: 360.0 * 50_000.0 * 1.1,
        };
        let fixed = Simulator::new(fixed_cfg).unwrap().run().unwrap();
        let model = Simulator::new(small_config(SimMode::ClientServer))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            fixed.mean_quality() > 0.95,
            "fixed quality {}",
            fixed.mean_quality()
        );
        assert!(
            fixed.mean_vm_hourly_cost() > model.mean_vm_hourly_cost(),
            "the fixed peak fleet must cost more than the elastic controller              (fixed {f} vs model {m})",
            f = fixed.mean_vm_hourly_cost(),
            m = model.mean_vm_hourly_cost()
        );

        let mut reactive_cfg = small_config(SimMode::ClientServer);
        reactive_cfg.provisioner = ProvisionerKind::Reactive { headroom: 0.2 };
        let reactive = Simulator::new(reactive_cfg).unwrap().run().unwrap();
        assert!(
            reactive.mean_quality() > 0.9,
            "reactive quality {}",
            reactive.mean_quality()
        );
    }

    /// The channel-parallel allocation path (engaged above
    /// `PAR_MIN_PEERS`) must produce exactly the same per-slot rates as
    /// the reference engine's sequential scan.
    #[test]
    fn parallel_allocation_is_bit_identical_to_scan() {
        let n_channels = 5;
        let max_chunks = 16;
        let n_peers = PAR_MIN_PEERS + 1024;
        let mut scan = ScanEngine::new(n_channels, max_chunks);
        let mut indexed = IndexedEngine::new(n_channels, max_chunks, 0.85, 10.0);
        let mut peers: Vec<Peer> = Vec::new();
        // Deterministic synthetic population with buffered history.
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..n_peers {
            let channel = (next() as usize) % n_channels;
            let chunk = (next() as usize) % max_chunks;
            let upload = 1e4 + (next() % 100_000) as f64;
            peers.push(Peer::new(i as u64, channel, upload, chunk, 15e6, 0.0));
            scan.on_join(&peers, i);
            indexed.on_join(&peers, i);
            for _ in 0..(next() % 6) {
                let owned = (next() as usize) % max_chunks;
                if owned != chunk && !peers[i].owns(owned) {
                    peers[i].add_to_buffer(owned);
                    scan.on_buffer(channel, i, owned);
                    indexed.on_buffer(channel, i, owned);
                }
            }
        }
        let channel_reserved = vec![5.0e7; n_channels];
        let ctx = RoundCtx {
            step: 10.0,
            inv_step: 0.1,
            vm_bandwidth: 1.25e6,
            eff: 0.85,
            p2p: true,
            online_scale: 1.0,
            channel_reserved: &channel_reserved,
        };
        let used_scan = scan.allocate(&peers, &ctx);
        let used_indexed = indexed.allocate(&peers, &ctx);
        assert_eq!(
            used_scan.to_bits(),
            used_indexed.to_bits(),
            "used-rate sums differ"
        );
        for c in 0..n_channels {
            let lane = &indexed.lanes[c];
            for k in 0..max_chunks {
                let i = c * max_chunks + k;
                assert_eq!(
                    scan.requested[i].to_bits(),
                    lane.requested[k].to_bits(),
                    "requested[{c}][{k}]"
                );
                assert_eq!(
                    scan.peer_served[i].to_bits(),
                    lane.peer_served[k].to_bits(),
                    "peer_served[{c}][{k}]"
                );
                assert_eq!(
                    scan.cloud_served[i].to_bits(),
                    lane.cloud_served[k].to_bits(),
                    "cloud_served[{c}][{k}]"
                );
            }
        }
    }

    #[test]
    fn group_demand_by_channel_sums() {
        let demands = vec![
            (
                ChunkKey {
                    channel: 0,
                    chunk: 0,
                },
                1.0,
            ),
            (
                ChunkKey {
                    channel: 0,
                    chunk: 1,
                },
                2.0,
            ),
            (
                ChunkKey {
                    channel: 2,
                    chunk: 0,
                },
                5.0,
            ),
        ];
        let grouped = group_demand_by_channel(&demands, 3);
        assert_eq!(grouped, vec![3.0, 0.0, 5.0]);
    }
}
