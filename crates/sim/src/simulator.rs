//! The CloudMedia system simulator.
//!
//! Replays a synthetic arrival trace against the full system: viewers join
//! channels, download chunks (from cloud VMs in client–server mode, or
//! from the P2P mesh with rarest-first scheduling plus cloud fallback),
//! jump and leave per the viewing model; the tracker measures statistics;
//! every provisioning interval the controller re-derives demand and
//! reconfigures the cloud through the broker; billing meters the cost.
//!
//! Downloads progress in fixed fluid rounds (default 10 s): each round,
//! bandwidth is allocated to in-flight chunk downloads, bytes advance, and
//! completed chunks trigger viewing-model transitions.

use cloudmedia_cloud::broker::{Cloud, ResourceRequest, SlaTerms};
use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_cloud::scheduler::{ChunkKey, PlacementPlan};
use cloudmedia_core::baseline::{BaselinePlanner, ProvisionerKind};
use cloudmedia_core::controller::{Controller, ControllerConfig, ProvisioningPlan};
use cloudmedia_core::CoreError;
use cloudmedia_core::predictor::ChannelObservation;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::trace::generate_arrivals;
use cloudmedia_workload::viewing::NextAction;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::allocation::{allocate_pool, peer_allocation, ChannelRound};
use crate::config::{SimConfig, SimMode};
use crate::error::SimError;
use crate::metrics::{IntervalRecord, Metrics, Sample};
use crate::peer::{PendingChunk, Peer, PeerState};
use crate::tracker::Tracker;

/// The system simulator. Construct with a [`SimConfig`] and call
/// [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation over the trace horizon and returns the recorded
    /// metrics.
    ///
    /// # Errors
    ///
    /// Propagates trace generation, provisioning, and cloud failures.
    pub fn run(&self) -> Result<Metrics, SimError> {
        let cfg = &self.config;
        let catalog = &cfg.catalog;
        let n_channels = catalog.len();
        let max_chunks = catalog
            .channels()
            .iter()
            .map(|c| c.viewing.chunks)
            .max()
            .expect("catalog validated non-empty");
        let chunk_bytes = cfg.chunk_bytes();

        let trace = generate_arrivals(catalog, &cfg.trace)?;
        let arrivals = trace.arrivals();
        let mut next_arrival = 0usize;

        let mut cloud = Cloud::new(
            paper_virtual_clusters(),
            paper_nfs_clusters(),
            chunk_bytes as u64,
        )?;
        let sla = cloud.sla_terms();
        let vm_bandwidth = sla.virtual_clusters[0].vm_bandwidth_bytes_per_sec;

        let controller_config = ControllerConfig {
            interval_seconds: cfg.provisioning_interval,
            vm_budget_per_hour: cfg.vm_budget_per_hour,
            storage_budget_per_hour: cfg.storage_budget_per_hour,
            mode: cfg.streaming_mode(),
            streaming_rate: cfg.streaming_rate,
            chunk_seconds: cfg.chunk_seconds,
            vm_bandwidth,
            safety_factor: cfg.safety_factor,
            target: cfg.provisioning_target,
            ..ControllerConfig::paper_default(cfg.streaming_mode())
        };
        let mut planner = match cfg.provisioner {
            ProvisionerKind::Model => {
                Planner::Model(Controller::new(controller_config, cfg.predictor)?)
            }
            baseline => Planner::Baseline(BaselinePlanner::new(
                baseline,
                cfg.streaming_rate,
                cfg.chunk_seconds,
                cfg.vm_budget_per_hour,
                cfg.storage_budget_per_hour,
            )?),
        };
        let mut current_placement: Option<PlacementPlan> = None;
        let mut tracker = Tracker::new(catalog)?;
        let mut rng = StdRng::seed_from_u64(cfg.behaviour_seed);

        let mut peers: Vec<Peer> = Vec::new();
        let mut metrics = Metrics::default();

        let horizon = cfg.trace.horizon_seconds;
        let dt = cfg.round_seconds;
        let mut clock = 0.0_f64;
        let mut next_sample = cfg.sample_interval;
        let mut next_provision = 0.0_f64;
        let mut window_used = 0.0_f64; // integral of used bandwidth, bytes
        let mut window_start = 0.0_f64;
        let mut window_startup_sum = 0.0_f64;
        let mut window_startup_count = 0usize;

        // Scratch buffers reused across rounds.
        let slots = n_channels * max_chunks;
        let mut requested = vec![0.0_f64; slots];
        let mut peer_served = vec![0.0_f64; slots];
        // Per-channel cloud bandwidth reserved by the current plan. The
        // paper's port-forwarding sends chunk requests to designated VMs,
        // and a shared VM serves consecutive chunks of one channel — so a
        // channel can use its own reserved VMs for any of its chunks, but
        // cannot borrow another channel's.
        let mut channel_reserved = vec![0.0_f64; n_channels];
        let mut reserved_total = 0.0_f64;
        let mut rounds: Vec<ChannelRound> = (0..n_channels)
            .map(|_| ChannelRound {
                requested_rate: vec![0.0; max_chunks],
                owners: vec![0; max_chunks],
                owner_upload: vec![0.0; max_chunks],
                upload_pool: 0.0,
            })
            .collect();

        while clock < horizon {
            let t1 = (clock + dt).min(horizon);
            let step = t1 - clock;

            // --- Provisioning boundary ---------------------------------
            if clock >= next_provision {
                let stats = if metrics.intervals.is_empty() {
                    bootstrap_stats(catalog, cfg)
                } else {
                    tracker.interval_stats(cfg.provisioning_interval)?
                };
                let plan = planner.plan_interval(&stats, &sla)?;
                if let Some(p) = &plan.placement {
                    current_placement = Some(p.clone());
                }
                cloud.submit_request(&ResourceRequest {
                    vm_targets: plan.vm_targets.clone(),
                    placement: plan.placement.clone(),
                })?;
                channel_reserved.iter_mut().for_each(|v| *v = 0.0);
                for (key, allocs) in &plan.vm_plan.allocations {
                    if key.channel >= n_channels {
                        continue;
                    }
                    let bw: f64 = allocs
                        .iter()
                        .map(|a| a.vms * sla.virtual_clusters[a.cluster].vm_bandwidth_bytes_per_sec)
                        .sum();
                    channel_reserved[key.channel] += bw;
                }
                reserved_total = channel_reserved.iter().sum();
                metrics.intervals.push(interval_record(
                    clock,
                    &plan,
                    current_placement.as_ref(),
                    &sla,
                    n_channels,
                    &peers,
                ));
                next_provision += cfg.provisioning_interval;
            }

            // --- Arrivals ----------------------------------------------
            while next_arrival < arrivals.len() && arrivals[next_arrival].time < t1 {
                let a = &arrivals[next_arrival];
                peers.push(Peer::new(
                    a.user_id,
                    a.channel,
                    a.upload_bytes_per_sec,
                    a.start_chunk,
                    chunk_bytes,
                    a.time,
                ));
                tracker.record_join(a.channel, a.start_chunk);
                next_arrival += 1;
            }

            // --- Demand aggregation ------------------------------------
            requested[..slots].iter_mut().for_each(|v| *v = 0.0);
            for p in &peers {
                if let PeerState::Downloading { chunk, bytes_left, .. } = p.state {
                    let req = (bytes_left / step).min(vm_bandwidth);
                    requested[p.channel * max_chunks + chunk] += req;
                }
            }

            // --- Peer-side allocation (P2P only) ------------------------
            let cloud_pool = cloud.running_bandwidth();
            let mut used_cloud_rate = 0.0;
            if cfg.mode == SimMode::P2p {
                for (c, round) in rounds.iter_mut().enumerate() {
                    round.upload_pool = 0.0;
                    round.owners.iter_mut().for_each(|v| *v = 0);
                    round.owner_upload.iter_mut().for_each(|v| *v = 0.0);
                    round
                        .requested_rate
                        .copy_from_slice(&requested[c * max_chunks..(c + 1) * max_chunks]);
                }
                let eff = cfg.peer_efficiency;
                for p in &peers {
                    let round = &mut rounds[p.channel];
                    let usable = p.upload_capacity * eff;
                    round.upload_pool += usable;
                    let mut bits = p.buffer;
                    while bits != 0 {
                        let chunk = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if chunk < max_chunks {
                            round.owners[chunk] += 1;
                            round.owner_upload[chunk] += usable;
                        }
                    }
                }
                for (c, round) in rounds.iter().enumerate() {
                    let served = peer_allocation(round);
                    peer_served[c * max_chunks..(c + 1) * max_chunks].copy_from_slice(&served);
                }
            } else {
                peer_served[..slots].iter_mut().for_each(|v| *v = 0.0);
            }

            // --- Cloud allocation over the residual demand --------------
            // Each channel is served by its designated VMs: capped at the
            // plan's per-channel reservation, scaled by how much of the
            // reservation is actually online (boot latency, fleet limits).
            let online_scale = if reserved_total > 0.0 {
                (cloud_pool / reserved_total).min(1.0)
            } else {
                0.0
            };
            let mut cloud_served = vec![0.0_f64; slots];
            for c in 0..n_channels {
                let span = c * max_chunks..(c + 1) * max_chunks;
                let residual: Vec<f64> = span
                    .clone()
                    .map(|i| (requested[i] - peer_served[i]).max(0.0))
                    .collect();
                let served = allocate_pool(&residual, channel_reserved[c] * online_scale);
                cloud_served[span].copy_from_slice(&served);
            }
            used_cloud_rate += cloud_served.iter().sum::<f64>();

            // --- Progress downloads, handle completions -----------------
            let mut removals: Vec<usize> = Vec::new();
            for (idx, p) in peers.iter_mut().enumerate() {
                match p.state {
                    PeerState::Downloading { chunk, bytes_left, deadline } => {
                        let slot = p.channel * max_chunks + chunk;
                        let total_rate = peer_served[slot] + cloud_served[slot];
                        let req_total = requested[slot];
                        let my_req = (bytes_left / step).min(vm_bandwidth);
                        let my_rate = if req_total > 0.0 {
                            total_rate * my_req / req_total
                        } else {
                            0.0
                        };
                        let new_left = bytes_left - my_rate * step;
                        if new_left <= 1e-6 {
                            // Chunk complete at (approximately) t1.
                            p.add_to_buffer(chunk);
                            if deadline.is_finite() {
                                if t1 > deadline {
                                    p.record_stall(t1, t1 - deadline);
                                }
                            } else {
                                // First chunk: playback starts now.
                                window_startup_sum += t1 - p.joined_at;
                                window_startup_count += 1;
                            }
                            // The chunk plays from its deadline (or from
                            // now, after a stall or for the first chunk).
                            let play_start =
                                if deadline.is_finite() { deadline.max(t1) } else { t1 };
                            advance_playback(
                                p,
                                idx,
                                chunk,
                                play_start + cfg.chunk_seconds,
                                chunk_bytes,
                                cfg.chunk_seconds,
                                t1,
                                catalog,
                                &mut tracker,
                                &mut rng,
                                &mut removals,
                            );
                        } else {
                            p.state = PeerState::Downloading {
                                chunk,
                                bytes_left: new_left,
                                deadline,
                            };
                        }
                    }
                    PeerState::Waiting { next, wake_at } => {
                        if wake_at <= t1 {
                            match next {
                                Some(pending) => {
                                    p.start_chunk(pending.chunk, chunk_bytes, pending.deadline);
                                }
                                None => removals.push(idx),
                            }
                        }
                    }
                }
            }
            // Remove departed peers (descending index for swap_remove).
            removals.sort_unstable_by(|a, b| b.cmp(a));
            for idx in removals {
                peers.swap_remove(idx);
            }

            // --- Advance the cloud (billing + VM lifecycle) --------------
            cloud.tick(t1)?;
            window_used += used_cloud_rate * step;

            // --- Sampling ------------------------------------------------
            if t1 >= next_sample || t1 >= horizon {
                let elapsed = (t1 - window_start).max(1e-9);
                let startup = if window_startup_count > 0 {
                    window_startup_sum / window_startup_count as f64
                } else {
                    0.0
                };
                metrics.samples.push(sample(
                    t1,
                    cloud.running_bandwidth(),
                    window_used / elapsed,
                    startup,
                    &peers,
                    n_channels,
                    cfg,
                ));
                window_used = 0.0;
                window_startup_sum = 0.0;
                window_startup_count = 0;
                window_start = t1;
                next_sample += cfg.sample_interval;
            }

            clock = t1;
        }

        metrics.total_vm_cost = cloud.billing().vm_cost().as_dollars();
        metrics.total_storage_cost = cloud.billing().storage_cost().as_dollars();
        Ok(metrics)
    }
}

/// Advances a peer's playback pipeline after it finished downloading
/// `chunk`: walks the viewing model through already-buffered chunks, then
/// either starts (or gates) the next download or schedules departure.
/// `play_end` is the playback end time of the just-finished chunk.
#[allow(clippy::too_many_arguments)]
fn advance_playback(
    p: &mut Peer,
    idx: usize,
    chunk: usize,
    mut play_end: f64,
    chunk_bytes: f64,
    chunk_seconds: f64,
    now: f64,
    catalog: &Catalog,
    tracker: &mut Tracker,
    rng: &mut StdRng,
    removals: &mut Vec<usize>,
) {
    let viewing = &catalog.channel(p.channel).viewing;
    let mut current = chunk;
    loop {
        match viewing.sample_next(rng, current) {
            NextAction::Watch(next) => {
                tracker.record_transition(p.channel, current, next);
                if p.owns(next) {
                    // Already buffered (a jump back): it plays straight
                    // from the buffer; decide again after it.
                    play_end += chunk_seconds;
                    current = next;
                    continue;
                }
                // Prefetch gate: the download may start up to
                // PREFETCH_WINDOWS playback windows before its deadline.
                let gate = play_end - crate::peer::PREFETCH_WINDOWS * chunk_seconds;
                if gate > now {
                    p.state = PeerState::Waiting {
                        next: Some(PendingChunk { chunk: next, deadline: play_end }),
                        wake_at: gate,
                    };
                } else {
                    p.start_chunk(next, chunk_bytes, play_end);
                }
                return;
            }
            NextAction::Leave => {
                tracker.record_leave(p.channel, current);
                if play_end <= now {
                    removals.push(idx);
                } else {
                    // Drain playback (still uploading), then depart.
                    p.state = PeerState::Waiting { next: None, wake_at: play_end };
                }
                return;
            }
        }
    }
}

/// Bootstrap observations for the very first interval: the provider's
/// "empirical user scale and viewing pattern information" (paper Sec. V-B)
/// — the catalog's base rates scaled by the diurnal multiplier at time 0.
fn bootstrap_stats(catalog: &Catalog, cfg: &SimConfig) -> Vec<(usize, ChannelObservation)> {
    let mult = cfg.trace.diurnal.multiplier(0.0);
    catalog
        .channels()
        .iter()
        .map(|spec| {
            (
                spec.id,
                ChannelObservation {
                    arrival_rate: spec.base_arrival_rate * mult,
                    alpha: spec.viewing.start_at_beginning,
                    routing: spec
                        .viewing
                        .routing_rows()
                        .expect("catalog channels validated at construction"),
                },
            )
        })
        .collect()
}

/// The pluggable provisioning strategy driving the simulation.
#[derive(Debug)]
enum Planner {
    /// The paper's model-driven controller.
    Model(Controller),
    /// A baseline strategy (reactive or fixed).
    Baseline(BaselinePlanner),
}

impl Planner {
    fn plan_interval(
        &mut self,
        stats: &[(usize, cloudmedia_core::predictor::ChannelObservation)],
        sla: &SlaTerms,
    ) -> Result<ProvisioningPlan, CoreError> {
        match self {
            Planner::Model(c) => c.plan_interval(stats, sla),
            Planner::Baseline(b) => b.plan_interval(stats, sla),
        }
    }
}

fn interval_record(
    time: f64,
    plan: &ProvisioningPlan,
    placement: Option<&PlacementPlan>,
    sla: &SlaTerms,
    n_channels: usize,
    peers: &[Peer],
) -> IntervalRecord {
    let mut per_channel_demand = vec![0.0; n_channels];
    let mut per_channel_storage = vec![0.0; n_channels];
    let mut per_channel_vm = vec![0.0; n_channels];
    for d in &plan.chunk_demands {
        let c = d.key.channel;
        if c >= n_channels {
            continue;
        }
        per_channel_demand[c] += d.demand;
        if let Some(pl) = placement {
            if let Some(&f) = pl.get(&d.key) {
                per_channel_storage[c] += sla.nfs_clusters[f].utility * d.demand;
            }
        }
    }
    for (key, allocs) in &plan.vm_plan.allocations {
        if key.channel >= n_channels {
            continue;
        }
        for a in allocs {
            per_channel_vm[key.channel] += sla.virtual_clusters[a.cluster].utility * a.vms;
        }
    }
    let mut per_channel_peers = vec![0usize; n_channels];
    for p in peers {
        per_channel_peers[p.channel] += 1;
    }
    IntervalRecord {
        time,
        vm_targets: plan.vm_targets.clone(),
        vm_hourly_cost: plan.vm_plan.integer_hourly_cost,
        total_cloud_demand: plan.total_cloud_demand,
        expected_peer_contribution: plan.expected_peer_contribution,
        per_channel_demand,
        per_channel_storage_utility: per_channel_storage,
        per_channel_vm_utility: per_channel_vm,
        placement_refreshed: plan.placement.is_some(),
        per_channel_peers,
    }
}

fn sample(
    time: f64,
    reserved: f64,
    used: f64,
    mean_startup_delay: f64,
    peers: &[Peer],
    n_channels: usize,
    cfg: &SimConfig,
) -> Sample {
    let window = cfg.sample_interval;
    let mut per_channel_peers = vec![0usize; n_channels];
    let mut per_channel_smooth = vec![0usize; n_channels];
    let mut smooth = 0usize;
    for p in peers {
        per_channel_peers[p.channel] += 1;
        if p.smooth_in_window(time, window) {
            smooth += 1;
            per_channel_smooth[p.channel] += 1;
        }
    }
    let quality = if peers.is_empty() {
        1.0
    } else {
        smooth as f64 / peers.len() as f64
    };
    let per_channel_quality = per_channel_peers
        .iter()
        .zip(&per_channel_smooth)
        .map(|(&n, &s)| if n == 0 { 1.0 } else { s as f64 / n as f64 })
        .collect();
    Sample {
        time,
        reserved_bandwidth: reserved,
        used_bandwidth: used,
        quality,
        active_peers: peers.len(),
        per_channel_peers,
        per_channel_quality,
        mean_startup_delay,
    }
}

/// A `(ChunkKey, demand)` pair list grouped per channel; helper shared by
/// experiment harnesses.
pub fn group_demand_by_channel(
    demands: &[(ChunkKey, f64)],
    n_channels: usize,
) -> Vec<f64> {
    let mut out = vec![0.0; n_channels];
    for (key, demand) in demands {
        if key.channel < n_channels {
            out[key.channel] += demand;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast configuration: 3 channels, ~120 viewers, 6 hours.
    fn small_config(mode: SimMode) -> SimConfig {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.catalog = Catalog::zipf(
            3,
            0.8,
            cloudmedia_workload::viewing::ViewingModel::paper_default(),
            60.0,
            300.0,
        )
        .unwrap();
        cfg.trace.horizon_seconds = 6.0 * 3600.0;
        cfg.round_seconds = 10.0;
        cfg
    }

    #[test]
    fn client_server_run_produces_sane_metrics() {
        let m = Simulator::new(small_config(SimMode::ClientServer)).unwrap().run().unwrap();
        assert_eq!(m.intervals.len(), 6, "one record per hour");
        assert!(!m.samples.is_empty());
        assert!(m.mean_quality() > 0.9, "quality {q}", q = m.mean_quality());
        assert!(m.peak_peers() > 20, "peers showed up: {}", m.peak_peers());
        assert!(m.total_vm_cost > 0.0);
        assert!(m.total_storage_cost > 0.0);
        assert!(m.total_storage_cost < 0.01 * m.total_vm_cost, "storage is negligible");
    }

    #[test]
    fn provisioned_covers_used_most_of_the_time() {
        let m = Simulator::new(small_config(SimMode::ClientServer)).unwrap().run().unwrap();
        assert!(
            m.provision_coverage() > 0.85,
            "coverage {c}",
            c = m.provision_coverage()
        );
    }

    #[test]
    fn p2p_needs_less_cloud_than_client_server() {
        let cs = Simulator::new(small_config(SimMode::ClientServer)).unwrap().run().unwrap();
        let p2p = Simulator::new(small_config(SimMode::P2p)).unwrap().run().unwrap();
        assert!(
            p2p.mean_used_bandwidth() < cs.mean_used_bandwidth(),
            "P2P used {p} vs C/S used {c}",
            p = p2p.mean_used_bandwidth(),
            c = cs.mean_used_bandwidth()
        );
        assert!(p2p.total_vm_cost < cs.total_vm_cost);
        assert!(p2p.mean_quality() > 0.85, "P2P quality {q}", q = p2p.mean_quality());
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Simulator::new(small_config(SimMode::P2p)).unwrap().run().unwrap();
        let b = Simulator::new(small_config(SimMode::P2p)).unwrap().run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_provisioners_run_end_to_end() {
        use cloudmedia_core::baseline::ProvisionerKind;
        let mut fixed_cfg = small_config(SimMode::ClientServer);
        // Peak-size the fixed fleet for the small catalog (~120 avg users,
        // flash-crowd peak ~3x): 360 viewers x 50 KB/s x margin.
        fixed_cfg.provisioner =
            ProvisionerKind::Fixed { peak_demand: 360.0 * 50_000.0 * 1.1 };
        let fixed = Simulator::new(fixed_cfg).unwrap().run().unwrap();
        let model = Simulator::new(small_config(SimMode::ClientServer)).unwrap().run().unwrap();
        assert!(fixed.mean_quality() > 0.95, "fixed quality {}", fixed.mean_quality());
        assert!(
            fixed.mean_vm_hourly_cost() > model.mean_vm_hourly_cost(),
            "the fixed peak fleet must cost more than the elastic controller              (fixed {f} vs model {m})",
            f = fixed.mean_vm_hourly_cost(),
            m = model.mean_vm_hourly_cost()
        );

        let mut reactive_cfg = small_config(SimMode::ClientServer);
        reactive_cfg.provisioner = ProvisionerKind::Reactive { headroom: 0.2 };
        let reactive = Simulator::new(reactive_cfg).unwrap().run().unwrap();
        assert!(reactive.mean_quality() > 0.9, "reactive quality {}", reactive.mean_quality());
    }

    #[test]
    fn group_demand_by_channel_sums() {
        let demands = vec![
            (ChunkKey { channel: 0, chunk: 0 }, 1.0),
            (ChunkKey { channel: 0, chunk: 1 }, 2.0),
            (ChunkKey { channel: 2, chunk: 0 }, 5.0),
        ];
        let grouped = group_demand_by_channel(&demands, 3);
        assert_eq!(grouped, vec![3.0, 0.0, 5.0]);
    }
}
