//! The tracking server.
//!
//! The paper's tracker "maintains peer lists for each video and the chunks
//! they are caching" and, each provisioning interval, "summarizes the
//! average user arrival rate `Λ(c)` to each channel, as well as the viewing
//! patterns `P_ij`" for the controller. This module aggregates the
//! per-channel observations and emits [`ChannelObservation`]s, blending the
//! empirical transition counts with the provider's prior viewing model so
//! a quiet hour cannot zero out the routing structure.

use cloudmedia_core::predictor::ChannelObservation;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::stats::{ChannelStatsCollector, Observation};

use crate::error::SimError;

/// Pseudo-count weight used to blend the prior routing into the empirical
/// transition matrix. Shared with the sharded engine's per-shard
/// collectors so both tracker implementations summarize identically.
pub(crate) const ROUTING_SMOOTHING: f64 = 10.0;

/// Where the simulation loop reports viewing-model events (transitions
/// and departures). The single-site and federated run loops record into
/// the global [`Tracker`]; the sharded run loop records into each
/// shard's own per-channel collector, so the event path never takes a
/// cross-shard lock.
pub(crate) trait ViewingSink {
    /// A viewer on `channel` finished `from` and moved to `to`.
    fn transition(&mut self, channel: usize, from: usize, to: usize);
    /// A viewer on `channel` departed after finishing `from`.
    fn leave(&mut self, channel: usize, from: usize);
}

impl ViewingSink for Tracker {
    fn transition(&mut self, channel: usize, from: usize, to: usize) {
        self.record_transition(channel, from, to);
    }

    fn leave(&mut self, channel: usize, from: usize) {
        self.record_leave(channel, from);
    }
}

/// A single channel's collector is itself a sink: the sharded engine's
/// shards record straight into their own collector, ignoring the
/// (constant) channel id.
impl ViewingSink for ChannelStatsCollector {
    fn transition(&mut self, _channel: usize, from: usize, to: usize) {
        self.record(Observation::Transition { from, to });
    }

    fn leave(&mut self, _channel: usize, from: usize) {
        self.record(Observation::Leave { from });
    }
}

/// Summarizes one channel's interval from its collector and prior —
/// the per-channel body of [`Tracker::interval_stats`], shared with the
/// sharded engine so per-shard summaries are bitwise the same
/// computation. Resets the collector.
pub(crate) fn summarize_channel(
    collector: &mut cloudmedia_workload::stats::ChannelStatsCollector,
    prior_routing: &[Vec<f64>],
    prior_alpha: f64,
    interval_seconds: f64,
) -> Result<ChannelObservation, SimError> {
    let routing = collector.transition_matrix(prior_routing, ROUTING_SMOOTHING)?;
    let obs = ChannelObservation {
        arrival_rate: collector.arrival_rate(interval_seconds),
        alpha: collector.alpha(prior_alpha),
        routing,
    };
    collector.reset();
    Ok(obs)
}

/// Tracker-side statistics aggregation for every channel.
#[derive(Debug)]
pub struct Tracker {
    collectors: Vec<ChannelStatsCollector>,
    priors: Vec<Vec<Vec<f64>>>,
    prior_alphas: Vec<f64>,
}

impl Tracker {
    /// Creates a tracker for the catalog, using each channel's viewing
    /// model as the prior.
    ///
    /// # Errors
    ///
    /// Propagates viewing-model validation failures.
    pub fn new(catalog: &Catalog) -> Result<Self, SimError> {
        let mut collectors = Vec::with_capacity(catalog.len());
        let mut priors = Vec::with_capacity(catalog.len());
        let mut prior_alphas = Vec::with_capacity(catalog.len());
        for spec in catalog.channels() {
            collectors.push(ChannelStatsCollector::new(spec.viewing.chunks)?);
            priors.push(spec.viewing.routing_rows()?);
            prior_alphas.push(spec.viewing.start_at_beginning);
        }
        Ok(Self {
            collectors,
            priors,
            prior_alphas,
        })
    }

    /// Records a user joining `channel` at `chunk`.
    pub fn record_join(&mut self, channel: usize, chunk: usize) {
        self.collectors[channel].record(Observation::Join { chunk });
    }

    /// Records a chunk-to-chunk transition.
    pub fn record_transition(&mut self, channel: usize, from: usize, to: usize) {
        self.collectors[channel].record(Observation::Transition { from, to });
    }

    /// Records a departure after `from`.
    pub fn record_leave(&mut self, channel: usize, from: usize) {
        self.collectors[channel].record(Observation::Leave { from });
    }

    /// Summarizes the interval that just ended and resets the counters:
    /// one `(channel, observation)` per channel.
    ///
    /// # Errors
    ///
    /// Propagates estimator failures.
    pub fn interval_stats(
        &mut self,
        interval_seconds: f64,
    ) -> Result<Vec<(usize, ChannelObservation)>, SimError> {
        let mut out = Vec::with_capacity(self.collectors.len());
        for (c, collector) in self.collectors.iter_mut().enumerate() {
            let obs = summarize_channel(
                collector,
                &self.priors[c],
                self.prior_alphas[c],
                interval_seconds,
            )?;
            out.push((c, obs));
        }
        Ok(out)
    }

    /// Number of tracked channels.
    pub fn channels(&self) -> usize {
        self.collectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudmedia_workload::viewing::ViewingModel;

    fn catalog() -> Catalog {
        Catalog::zipf(2, 1.0, ViewingModel::paper_default(), 200.0, 300.0).unwrap()
    }

    #[test]
    fn empty_interval_falls_back_to_prior() {
        let cat = catalog();
        let mut t = Tracker::new(&cat).unwrap();
        let stats = t.interval_stats(3600.0).unwrap();
        assert_eq!(stats.len(), 2);
        let (_, obs) = &stats[0];
        assert_eq!(obs.arrival_rate, 0.0);
        assert_eq!(obs.alpha, cat.channel(0).viewing.start_at_beginning);
        let prior = cat.channel(0).viewing.routing_rows().unwrap();
        for (row, prow) in obs.routing.iter().zip(&prior) {
            for (p, pp) in row.iter().zip(prow) {
                assert!((p - pp).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn joins_produce_arrival_rate() {
        let cat = catalog();
        let mut t = Tracker::new(&cat).unwrap();
        for _ in 0..360 {
            t.record_join(0, 0);
        }
        let stats = t.interval_stats(3600.0).unwrap();
        assert!((stats[0].1.arrival_rate - 0.1).abs() < 1e-12);
        assert_eq!(stats[1].1.arrival_rate, 0.0);
        // Counters reset after summarizing.
        let stats2 = t.interval_stats(3600.0).unwrap();
        assert_eq!(stats2[0].1.arrival_rate, 0.0);
    }

    #[test]
    fn heavy_observation_overrides_prior() {
        let cat = catalog();
        let mut t = Tracker::new(&cat).unwrap();
        // 10000 transitions 0 -> 5 swamp the smoothing pseudo-counts.
        for _ in 0..10_000 {
            t.record_transition(0, 0, 5);
        }
        let stats = t.interval_stats(3600.0).unwrap();
        assert!(stats[0].1.routing[0][5] > 0.99);
    }

    #[test]
    fn alpha_measured_from_joins() {
        let cat = catalog();
        let mut t = Tracker::new(&cat).unwrap();
        t.record_join(1, 0);
        t.record_join(1, 0);
        t.record_join(1, 3);
        t.record_join(1, 7);
        let stats = t.interval_stats(3600.0).unwrap();
        assert!((stats[1].1.alpha - 0.5).abs() < 1e-12);
    }
}
