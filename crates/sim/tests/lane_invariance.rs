//! The sub-channel lane determinism contract: splitting a shard's
//! downloading peers across **lanes** — any lane count, on any number
//! of pool threads — cannot change a single bit of the results.
//!
//! One layer below `sharding.rs`: there the unit of parallelism is the
//! channel shard; here it is the contiguous peer-index lane *inside* a
//! shard (the giant-channel path, `docs/SCALING.md`). Lanes only read
//! shared round state snapshotted before the fan-out and accumulate
//! into private integer partials that the coordinator folds in fixed
//! lane order, so the reference run — serial, single-lane — must be
//! reproduced exactly. CI drives this suite under several
//! `RAYON_NUM_THREADS` settings; the thread count is pool-global per
//! process, which is why it is an environment axis rather than a
//! proptest parameter.

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::faults::FaultSchedule;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;
use proptest::prelude::*;

/// A sharded configuration with few, hot channels — the shape where
/// lanes engage (an explicit lane count lowers the engagement
/// threshold to benchmark/test scale).
fn lane_config(
    mode: SimMode,
    channels: usize,
    population: f64,
    trace_seed: u64,
    behaviour_seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.catalog = Catalog::zipf(
        channels,
        0.8,
        ViewingModel::paper_default(),
        population,
        300.0,
    )
    .unwrap();
    cfg.trace.horizon_seconds = 3.0 * 3600.0;
    cfg.trace.seed = trace_seed;
    cfg.behaviour_seed = behaviour_seed;
    cfg.kernel = SimKernel::Sharded;
    cfg
}

/// Runs `cfg` and returns the metrics + fault counters.
fn run(cfg: SimConfig) -> cloudmedia_sim::FaultRun {
    Simulator::new(cfg).unwrap().run_with_faults().unwrap()
}

proptest! {
    // Each case is several multi-hour simulations; a reduced fixed case
    // count keeps CI within budget (the vendored proptest has no
    // env-var override, so the count lives here).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance contract: for any configuration and any lane
    /// count, the parallel laned run is bit-identical to the serial
    /// single-lane reference.
    #[test]
    fn any_lane_count_matches_the_serial_single_lane_reference(
        channels in 1usize..4,
        population in 150.0..450.0f64,
        lanes in 0usize..8,
        trace_seed in any::<u64>(),
        behaviour_seed in any::<u64>(),
        p2p in any::<bool>(),
        with_faults in any::<bool>(),
    ) {
        let mode = if p2p { SimMode::P2p } else { SimMode::ClientServer };
        let mut reference = lane_config(
            mode, channels, population, trace_seed, behaviour_seed,
        );
        if with_faults {
            // An active fault plane mid-horizon: outage boundaries,
            // arrival shedding, and retry accounting must all stay on
            // the serial path's bit pattern too.
            reference.faults = FaultSchedule::vm_outage(3600.0, 0.4, 900.0);
        }
        let mut laned = reference.clone();
        reference.parallel_channels = false;
        laned.parallel_channels = true;
        laned.lanes = lanes;
        let a = run(reference);
        let b = run(laned);
        // Full structural equality: every sample, interval record, and
        // cost, f64s compared exactly — plus the fault counters.
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.fault_stats, b.fault_stats);
    }
}

/// A directed sweep on one fixed giant-channel config: every explicit
/// lane count (including over-provisioned ones far beyond the
/// downloading population / `LANE_MIN_FORCED` quotient) reproduces the
/// serial reference, and so does auto mode.
#[test]
fn lane_count_sweep_on_a_giant_channel_is_invariant() {
    let mut reference = lane_config(SimMode::ClientServer, 1, 400.0, 0xC10D_1A4E, 0x5EED_0001);
    reference.parallel_channels = false;
    let want = run(reference.clone());
    for lanes in [0usize, 1, 2, 3, 5, 8, 64] {
        let mut cfg = reference.clone();
        cfg.parallel_channels = true;
        cfg.lanes = lanes;
        let got = run(cfg);
        assert_eq!(want.metrics, got.metrics, "lanes={lanes}");
        assert_eq!(want.fault_stats, got.fault_stats, "lanes={lanes}");
    }
}

/// The fan-out must actually engage on a hot channel — otherwise every
/// assertion above is vacuous. The `hist/lane_wall_ns` histogram only
/// receives observations from the split path's sampled timers, so a
/// non-empty histogram is proof the laned code ran.
#[test]
fn laned_runs_actually_take_the_split_path() {
    let mut cfg = lane_config(SimMode::ClientServer, 1, 400.0, 0xFA40_0071, 0x5EED_0001);
    cfg.parallel_channels = true;
    cfg.lanes = 4;
    let tel = cloudmedia_sim::telem::new_registry(false);
    Simulator::new(cfg)
        .unwrap()
        .run_with_telemetry(&tel)
        .unwrap();
    let snap = tel.snapshot();
    let observations: u64 = snap
        .buckets(cloudmedia_sim::telem::HIST_LANE_WALL)
        .iter()
        .sum();
    assert!(
        observations > 0,
        "no sub-lane wall samples recorded: the lane fan-out never engaged"
    );
}

/// Lanes compose with shard parallelism: many channels and forced
/// lanes at once still match serial, with faults active.
#[test]
fn lanes_and_shards_compose_under_faults() {
    let mut reference = lane_config(SimMode::P2p, 5, 500.0, 7, 11);
    reference.faults = FaultSchedule::vm_outage(5400.0, 0.5, 1200.0);
    reference.parallel_channels = false;
    let mut laned = reference.clone();
    laned.parallel_channels = true;
    laned.lanes = 4;
    let a = run(reference);
    let b = run(laned);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.fault_stats, b.fault_stats);
}
