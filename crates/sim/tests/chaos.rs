//! Determinism contract of the fault plane.
//!
//! The `FaultSchedule` is seeded configuration data: every fault
//! decision is a pure function of the simulated clock (or applied in a
//! serial coordinator section), so
//!
//! 1. an *empty* schedule must reduce `run_with_faults` bit-exactly to
//!    the plain `run` with all-zero fault counters, and
//! 2. a *faulted* run must be bit-identical under serial and parallel
//!    execution — on the Sharded channel-parallel engine and on the
//!    federated region-parallel simulator alike.
//!
//! On top of the determinism pins, this suite checks the headline fault
//! behaviors on a small configuration: a VM-fleet burst dents quality
//! and the repair + controller restore it, and `ShedNewArrivals`
//! actually sheds (and counts) arrivals during the outage window.

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::faults::{DegradeMode, FaultSchedule, ResilienceReport};
use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::Metrics;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

/// A small, fast configuration: 3 channels, ~120 viewers.
fn small_cfg(kernel: SimKernel, hours: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(3, 0.8, ViewingModel::paper_default(), 60.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg.kernel = kernel;
    cfg
}

/// One schedule exercising every single-site fault class at once.
fn combined_schedule(horizon: f64) -> FaultSchedule {
    let mut s = FaultSchedule::vm_outage(0.4 * horizon, 0.5, 0.15 * horizon);
    s.tracker_dropouts =
        FaultSchedule::tracker_blackout(0.6 * horizon, 0.1 * horizon).tracker_dropouts;
    s.cost_shocks = FaultSchedule::budget_shock(0.8 * horizon, 0.6).cost_shocks;
    s.validate().unwrap();
    s
}

fn window_quality(m: &Metrics, from: f64, to: f64) -> f64 {
    let s: Vec<&_> = m.samples_in(from, to).collect();
    s.iter().map(|x| x.quality).sum::<f64>() / s.len().max(1) as f64
}

#[test]
fn empty_schedule_reduces_to_the_plain_run() {
    for kernel in [SimKernel::Scan, SimKernel::Indexed, SimKernel::Sharded] {
        let cfg = small_cfg(kernel, 6.0);
        let plain = Simulator::new(cfg.clone()).unwrap().run().unwrap();
        let faulted = Simulator::new(cfg).unwrap().run_with_faults().unwrap();
        assert_eq!(
            plain, faulted.metrics,
            "{kernel:?}: empty schedule must be a no-op"
        );
        assert_eq!(
            faulted.fault_stats,
            Default::default(),
            "{kernel:?}: no fault counters without faults"
        );
    }
}

#[test]
fn faulted_sharded_run_is_bit_identical_serial_vs_parallel() {
    let horizon = 10.0 * 3600.0;
    let mut cfg = small_cfg(SimKernel::Sharded, 10.0);
    cfg.faults = combined_schedule(horizon);
    cfg.faults.degrade = DegradeMode::ShedNewArrivals;

    cfg.parallel_channels = true;
    let parallel = Simulator::new(cfg.clone())
        .unwrap()
        .run_with_faults()
        .unwrap();
    cfg.parallel_channels = false;
    let serial = Simulator::new(cfg).unwrap().run_with_faults().unwrap();

    assert_eq!(parallel.metrics, serial.metrics, "metrics diverged");
    assert_eq!(
        parallel.fault_stats, serial.fault_stats,
        "fault counters diverged"
    );
    assert!(
        parallel.fault_stats.vms_killed > 0,
        "the schedule actually fired"
    );
}

#[test]
fn faulted_federated_run_is_bit_identical_serial_vs_parallel() {
    let mut fc =
        FederatedConfig::paper_default(DeploymentKind::Federated, SimMode::ClientServer, 8.0);
    // Mid-interval start so the outage exercises the emergency re-plan
    // path, not just the hourly boundary.
    fc.base.faults = FaultSchedule::site_outage(3.0 * 3600.0 + 600.0, 1, 1.5 * 3600.0);

    fc.parallel_regions = true;
    let parallel = FederatedSimulator::new(fc.clone()).unwrap().run().unwrap();
    fc.parallel_regions = false;
    let serial = FederatedSimulator::new(fc).unwrap().run().unwrap();

    assert_eq!(
        parallel.fault_stats, serial.fault_stats,
        "fault counters diverged"
    );
    for (i, (a, b)) in parallel
        .per_region
        .iter()
        .zip(&serial.per_region)
        .enumerate()
    {
        assert_eq!(a.metrics, b.metrics, "region {i} metrics diverged");
    }
    assert!(
        parallel.fault_stats.emergency_replans > 0,
        "mid-interval outage must force an emergency re-plan"
    );
}

#[test]
fn vm_outage_dents_quality_and_the_repair_restores_it() {
    let hours = 12.0;
    // Mid-interval burst: the dent is visible until the repair (at
    // `at + recovery`, still before the next hourly re-plan at 5 h).
    let (at, recovery) = (4.25 * 3600.0, 0.5 * 3600.0);
    let cfg = small_cfg(SimKernel::Indexed, hours);
    let baseline = Simulator::new(cfg.clone()).unwrap().run().unwrap();

    let mut faulted_cfg = cfg;
    faulted_cfg.faults = FaultSchedule::vm_outage(at, 0.6, recovery);
    let faulted = Simulator::new(faulted_cfg)
        .unwrap()
        .run_with_faults()
        .unwrap();

    assert!(
        faulted.fault_stats.vms_killed > 0,
        "the burst killed instances"
    );
    assert!(
        faulted.fault_stats.vms_recovered > 0,
        "the repair resubmitted them"
    );

    let during_fault = window_quality(&faulted.metrics, at, at + recovery);
    let during_base = window_quality(&baseline, at, at + recovery);
    assert!(
        during_fault < during_base - 0.01,
        "outage dents quality: {during_fault:.4} vs baseline {during_base:.4}"
    );
    // After the repair (plus one provisioning interval of slack) the
    // faulted run is back at baseline quality.
    let after_fault = window_quality(&faulted.metrics, at + recovery + 3600.0, hours * 3600.0);
    let after_base = window_quality(&baseline, at + recovery + 3600.0, hours * 3600.0);
    assert!(
        after_fault > after_base - 0.005,
        "quality recovers: {after_fault:.4} vs baseline {after_base:.4}"
    );

    // The resilience report sees the same story.
    let report = ResilienceReport::from_runs(&baseline, &faulted.metrics, at, faulted.fault_stats);
    assert!(report.dip_depth > 0.0, "report records a dip");
    assert!(
        report.time_to_recover_seconds < (hours * 3600.0 - at),
        "report records recovery within the horizon"
    );
}

#[test]
fn shedding_new_arrivals_is_counted_and_caps_load() {
    let hours = 10.0;
    let (at, recovery) = (4.0 * 3600.0, 3.0 * 3600.0);
    let cfg = small_cfg(SimKernel::Indexed, hours);
    let baseline = Simulator::new(cfg.clone()).unwrap().run().unwrap();

    let mut shed_cfg = cfg;
    shed_cfg.faults = FaultSchedule::vm_outage(at, 0.5, recovery);
    shed_cfg.faults.degrade = DegradeMode::ShedNewArrivals;
    let shed = Simulator::new(shed_cfg).unwrap().run_with_faults().unwrap();

    assert!(shed.fault_stats.shed_arrivals > 0, "arrivals were shed");
    let peak = |m: &Metrics| {
        m.samples_in(at, at + recovery)
            .map(|s| s.active_peers)
            .max()
            .unwrap_or(0)
    };
    assert!(
        peak(&shed.metrics) <= peak(&baseline),
        "shedding must not raise the outage-window population"
    );
}
