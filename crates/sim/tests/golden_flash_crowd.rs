//! Golden-run pinning for the giant-channel flash-crowd scenario: a
//! committed single-channel config with a sharp arrival bump, plus the
//! exact `Metrics` JSON each engine family must reproduce —
//! Scan/Indexed share one golden (they are bit-identical by contract),
//! the sharded engine has its own (different per-channel RNG streams,
//! same process). Any change to allocation arithmetic, RNG consumption
//! order, the packed peer layout's semantics, or the lane fan-out shows
//! up here as a diff against a checked-in file.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! CLOUDMEDIA_BLESS=1 cargo test -p cloudmedia-sim --test golden_flash_crowd
//! ```
//!
//! and commit the rewritten `tests/fixtures/` files with the change
//! that required them.

use std::path::PathBuf;

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::metrics::Metrics;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::diurnal::{DiurnalPattern, FlashCrowd};
use cloudmedia_workload::viewing::ViewingModel;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn blessing() -> bool {
    std::env::var_os("CLOUDMEDIA_BLESS").is_some()
}

/// The scenario: one channel, a quiet baseline, and a sharp flash
/// crowd one hour in — the giant-channel shape the sub-lane fan-out
/// exists for, at a population small enough to keep the suite fast.
/// `lanes` is forced so the sharded golden pins the *laned* code path.
fn fixture_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(1, 0.8, ViewingModel::paper_default(), 150.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 2.0 * 3600.0;
    cfg.trace.seed = 0xF1A5_C04D;
    cfg.trace.diurnal = DiurnalPattern::new(
        0.6,
        vec![FlashCrowd {
            peak_hour: 1.0,
            width_hours: 0.25,
            amplitude: 8.0,
        }],
    )
    .unwrap();
    cfg.behaviour_seed = 0x5EED_F1A5;
    cfg.lanes = 3;
    cfg
}

fn run(mut cfg: SimConfig, kernel: SimKernel) -> Metrics {
    cfg.kernel = kernel;
    Simulator::new(cfg).unwrap().run().unwrap()
}

/// Compares `got` against the committed golden (or rewrites it under
/// `CLOUDMEDIA_BLESS=1`). Comparison is on parsed `Metrics` structs —
/// persistence.rs pins that the JSON round trip is bit-exact — so the
/// goldens are insensitive to formatting, only to values.
fn assert_matches_golden(got: &Metrics, file: &str) {
    let path = fixture_path(file);
    if blessing() {
        let json = serde_json::to_string_pretty(got).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        return;
    }
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with CLOUDMEDIA_BLESS=1", file));
    let want: Metrics = serde_json::from_str(&json).unwrap();
    assert_eq!(
        &want, got,
        "{file}: run diverged from the committed golden (re-bless only for \
         intentional behavior changes)"
    );
}

/// The committed config fixture stays in sync with the in-code
/// constructor, so the golden metrics are pinned to a config readers
/// can inspect (and load themselves) rather than to code history.
#[test]
fn fixture_config_matches_the_committed_json() {
    let cfg = fixture_config();
    let path = fixture_path("flash_crowd_config.json");
    if blessing() {
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        return;
    }
    let json = std::fs::read_to_string(&path).expect("committed config fixture");
    let committed: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(committed, cfg, "fixture config drifted from the test's");
    committed.validate().unwrap();
}

/// Scan and Indexed agree with each other *and* with the committed
/// golden for the flash-crowd scenario.
#[test]
fn round_engines_match_the_flash_crowd_golden() {
    let scan = run(fixture_config(), SimKernel::Scan);
    let indexed = run(fixture_config(), SimKernel::Indexed);
    assert_eq!(scan, indexed, "Scan and Indexed diverged");
    assert!(scan.peak_peers() > 0, "the scenario exercised nobody");
    assert_matches_golden(&scan, "flash_crowd_round_engines.json");
}

/// The sharded engine (parallel, with forced lanes) matches its own
/// golden — pinning the laned giant-channel path end to end.
#[test]
fn sharded_engine_matches_the_flash_crowd_golden() {
    let sharded = run(fixture_config(), SimKernel::Sharded);
    assert!(sharded.peak_peers() > 0, "the scenario exercised nobody");
    assert_matches_golden(&sharded, "flash_crowd_sharded.json");
}
