//! Differential memory regression: the scale-out story rests on small
//! per-viewer resident state, and this suite pins it two ways — the
//! analytic worst case computed from real type layouts, and a measured
//! end-of-run footprint from a live sharded flash-crowd run. Either
//! assertion fails the moment a per-peer field grows past the budget.

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::footprint;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

/// The analytic ceiling: a downloading peer (the worst case) must fit
/// the budget with the layouts the compiler actually produced.
#[test]
fn worst_case_peer_fits_the_budget() {
    let worst = footprint::worst_case_bytes_per_peer();
    assert!(
        worst <= footprint::PEER_BUDGET_BYTES,
        "worst-case downloading peer is {worst} B, budget is {} B",
        footprint::PEER_BUDGET_BYTES
    );
    // The packed record itself is the bulk of the budget; if it grows,
    // someone widened a field without re-packing (see peer.rs's layout
    // pin for the exact figure).
    assert_eq!(std::mem::size_of::<cloudmedia_sim::peer::Peer>(), 72);
}

/// The measured footprint of a live single-channel flash-crowd run —
/// the giant-channel shape the lane fan-out exists for — stays within
/// the budget. Waiting peers carry a smaller tail than downloading
/// ones, so the population mean lands under the worst case.
#[test]
fn measured_flash_crowd_footprint_stays_under_budget() {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(1, 0.8, ViewingModel::paper_default(), 500.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 2.0 * 3600.0;
    cfg.lanes = 4;
    let fp = footprint::measure(&cfg).unwrap();
    assert!(
        fp.peers > 100,
        "measurement run ended with only {} connected viewers",
        fp.peers
    );
    let per_peer = fp.bytes_per_peer();
    assert!(
        per_peer <= footprint::PEER_BUDGET_BYTES as f64,
        "measured {per_peer:.1} B/peer over {} peers, budget {}",
        fp.peers,
        footprint::PEER_BUDGET_BYTES
    );
    // And the measurement is not trivially zero-byte: the packed Peer
    // alone accounts for 72 B of every viewer.
    assert!(
        per_peer >= std::mem::size_of::<cloudmedia_sim::peer::Peer>() as f64,
        "measured {per_peer:.1} B/peer is below the bare record size"
    );
}

/// The measurement helper validates its configuration first.
#[test]
fn measure_rejects_invalid_configs() {
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.round_seconds = 0.0;
    assert!(footprint::measure(&cfg).is_err());
}
