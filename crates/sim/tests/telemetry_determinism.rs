//! Telemetry is a pure side channel: enabling the metrics registry (or
//! the trace sink on top of it) must not change a single bit of any
//! simulation result. This suite pins that contract for all four
//! kernels and for the federated simulator in both its serial and
//! parallel region-execution modes.
//!
//! The engines read no state back out of the registry — every telemetry
//! call is write-only — so the only ways the contract could break are a
//! refactor that accidentally moves simulation work inside an
//! `if tel.enabled()` block, or a sampling clock that starts gating
//! simulation (not just measurement) logic. Both would show up here as
//! a metrics mismatch.

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::federation::{
    DeploymentKind, FederatedConfig, FederatedMetrics, FederatedSimulator,
};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::telem;

/// Short enough to keep the suite fast, long enough to cross several
/// provisioning intervals, diurnal phases, and (for the sampled stage
/// clocks) many `STAGE_TIME_SAMPLE` periods.
const HOURS: f64 = 6.0;

fn config(kernel: SimKernel, mode: SimMode) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.trace.horizon_seconds = HOURS * 3600.0;
    cfg.kernel = kernel;
    cfg
}

/// Runs `cfg` three ways — telemetry off, metrics-only registry, and
/// metrics + trace registry — and asserts the metrics and fault
/// counters are bit-identical across all three.
fn assert_single_site_deterministic(cfg: SimConfig) {
    let sim = Simulator::new(cfg).unwrap();
    let dark = sim.run_with_faults().unwrap();

    let metrics_tel = telem::new_registry(false);
    let lit = sim.run_with_telemetry(&metrics_tel).unwrap();
    assert_eq!(
        dark.metrics, lit.metrics,
        "metrics registry changed the results"
    );
    assert_eq!(dark.fault_stats, lit.fault_stats);
    let snap = metrics_tel.snapshot();
    assert!(
        snap.value(telem::ROUNDS) > 0 || snap.value(telem::DES_EVENTS) > 0,
        "the lit run recorded nothing"
    );

    let trace_tel = telem::new_registry(true);
    let traced = sim.run_with_telemetry(&trace_tel).unwrap();
    assert_eq!(
        dark.metrics, traced.metrics,
        "trace recording changed the results"
    );
    assert_eq!(dark.fault_stats, traced.fault_stats);
}

#[test]
fn scan_kernel_is_telemetry_invariant() {
    assert_single_site_deterministic(config(SimKernel::Scan, SimMode::ClientServer));
}

#[test]
fn indexed_kernel_is_telemetry_invariant() {
    assert_single_site_deterministic(config(SimKernel::Indexed, SimMode::ClientServer));
    assert_single_site_deterministic(config(SimKernel::Indexed, SimMode::P2p));
}

#[test]
fn event_driven_kernel_is_telemetry_invariant() {
    assert_single_site_deterministic(config(SimKernel::EventDriven, SimMode::ClientServer));
}

#[test]
fn sharded_kernel_is_telemetry_invariant_serial_and_parallel() {
    for parallel in [false, true] {
        let mut cfg = config(SimKernel::Sharded, SimMode::ClientServer);
        cfg.parallel_channels = parallel;
        assert_single_site_deterministic(cfg);
    }
}

/// Field-by-field equality for [`FederatedMetrics`] (the struct holds
/// site/region specs that don't implement `PartialEq`, so a derive
/// isn't available). Floats are compared by bit pattern: determinism
/// here means *bit*-identical, not approximately equal.
fn assert_federated_eq(a: &FederatedMetrics, b: &FederatedMetrics, label: &str) {
    assert_eq!(
        a.total_vm_cost.to_bits(),
        b.total_vm_cost.to_bits(),
        "{label}: vm cost"
    );
    assert_eq!(
        a.total_storage_cost.to_bits(),
        b.total_storage_cost.to_bits(),
        "{label}: storage cost"
    );
    assert_eq!(
        a.total_transfer_cost.to_bits(),
        b.total_transfer_cost.to_bits(),
        "{label}: transfer cost"
    );
    assert_eq!(
        a.total_latency_penalty_cost.to_bits(),
        b.total_latency_penalty_cost.to_bits(),
        "{label}: latency penalty"
    );
    assert_eq!(a.fault_stats, b.fault_stats, "{label}: fault stats");
    assert_eq!(a.per_region.len(), b.per_region.len());
    for (ra, rb) in a.per_region.iter().zip(&b.per_region) {
        assert_eq!(ra.metrics, rb.metrics, "{label}: region metrics");
        assert_eq!(
            ra.cloud_bytes.to_bits(),
            rb.cloud_bytes.to_bits(),
            "{label}: region cloud bytes"
        );
        assert_eq!(
            ra.redirected_bytes.to_bits(),
            rb.redirected_bytes.to_bits(),
            "{label}: region redirected bytes"
        );
        assert_eq!(
            ra.transfer_cost.to_bits(),
            rb.transfer_cost.to_bits(),
            "{label}: region transfer cost"
        );
        assert_eq!(
            ra.latency_penalty_cost.to_bits(),
            rb.latency_penalty_cost.to_bits(),
            "{label}: region latency penalty"
        );
    }
}

#[test]
fn federated_simulator_is_telemetry_invariant_serial_and_parallel() {
    for parallel in [false, true] {
        let mut fc = FederatedConfig::paper_default(DeploymentKind::Federated, SimMode::P2p, HOURS);
        fc.parallel_regions = parallel;
        let sim = FederatedSimulator::new(fc).unwrap();
        let label = if parallel { "parallel" } else { "serial" };

        let dark = sim.run().unwrap();

        let metrics_tel = telem::new_registry(false);
        let lit = sim.run_with_telemetry(&metrics_tel).unwrap();
        assert_federated_eq(&dark, &lit, label);
        assert!(metrics_tel.snapshot().value(telem::ROUNDS) > 0);

        let trace_tel = telem::new_registry(true);
        let traced = sim.run_with_telemetry(&trace_tel).unwrap();
        assert_federated_eq(&dark, &traced, label);
    }
}
