//! Golden-run pinning for the steady-state mega-catalog scenario — the
//! workload the quiescence-aware epoch engine exists for. The committed
//! config is a small Zipf catalog under a plain diurnal profile (no
//! flash crowds), so most channels settle into fully-served epochs and
//! the sharded engine skips the bulk of their rounds; the golden
//! `Metrics` JSON therefore pins the *epoch* code path end to end —
//! entry, skipping, closed-form catch-up, and materialization — not
//! just the stepped path. An engagement assertion keeps the pin honest:
//! if quiescence stops engaging, the test fails rather than silently
//! pinning the ordinary path.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! CLOUDMEDIA_BLESS=1 cargo test -p cloudmedia-sim --test golden_steady
//! ```
//!
//! and commit the rewritten `tests/fixtures/` files with the change
//! that required them.

use std::path::PathBuf;

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::metrics::Metrics;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::telem;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn blessing() -> bool {
    std::env::var_os("CLOUDMEDIA_BLESS").is_some()
}

/// The scenario: a 16-channel Zipf mega catalog at a population small
/// enough to keep the suite fast, over a horizon long enough to cross
/// several provisioning intervals and let steady channels quiesce.
fn fixture_config() -> SimConfig {
    let mut cfg = SimConfig::scale_out(SimMode::ClientServer, 16, 1500.0).unwrap();
    cfg.trace.horizon_seconds = 3.0 * 3600.0;
    cfg.trace.seed = 0x57EA_D1E5;
    cfg.behaviour_seed = 0x5EED_57EA;
    cfg
}

/// Compares `got` against the committed golden (or rewrites it under
/// `CLOUDMEDIA_BLESS=1`). Comparison is on parsed `Metrics` structs —
/// persistence.rs pins that the JSON round trip is bit-exact — so the
/// goldens are insensitive to formatting, only to values.
fn assert_matches_golden(got: &Metrics, file: &str) {
    let path = fixture_path(file);
    if blessing() {
        let json = serde_json::to_string_pretty(got).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        return;
    }
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with CLOUDMEDIA_BLESS=1", file));
    let want: Metrics = serde_json::from_str(&json).unwrap();
    assert_eq!(
        &want, got,
        "{file}: run diverged from the committed golden (re-bless only for \
         intentional behavior changes)"
    );
}

/// The committed config fixture stays in sync with the in-code
/// constructor, so the golden metrics are pinned to a config readers
/// can inspect (and load themselves) rather than to code history.
#[test]
fn fixture_config_matches_the_committed_json() {
    let cfg = fixture_config();
    let path = fixture_path("steady_config.json");
    if blessing() {
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        return;
    }
    let json = std::fs::read_to_string(&path).expect("committed config fixture");
    let committed: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(committed, cfg, "fixture config drifted from the test's");
    committed.validate().unwrap();
}

/// The sharded engine with quiescence engaged matches the committed
/// golden, and the epoch engine demonstrably did the work (rounds were
/// skipped, so the golden pins the fast-forward arithmetic).
#[test]
fn sharded_engine_matches_the_steady_golden() {
    let tel = telem::new_registry(false);
    let run = Simulator::new(fixture_config())
        .unwrap()
        .run_with_telemetry(&tel)
        .unwrap();
    assert!(
        run.metrics.peak_peers() > 0,
        "the scenario exercised nobody"
    );
    assert!(
        tel.snapshot().value(telem::QUIESCE_ROUNDS_SKIPPED) > 0,
        "quiescence never engaged — the golden would pin the wrong path"
    );
    assert_matches_golden(&run.metrics, "steady_sharded.json");
}

/// The same scenario with quiescence disabled reproduces the same
/// golden byte for byte — the epoch engine is a pure optimization.
#[test]
fn no_quiesce_matches_the_same_steady_golden() {
    let mut cfg = fixture_config();
    cfg.quiescence = false;
    let metrics = Simulator::new(cfg).unwrap().run().unwrap();
    assert_matches_golden(&metrics, "steady_sharded.json");
}
