//! Property-based tests of the fluid allocation kernels: max–min
//! fairness invariants for `allocate_pool`, rarest-first ordering for
//! `peer_allocation`, and bit-exact agreement between the allocating
//! wrappers and the in-place / mask-sparse kernels.

use cloudmedia_sim::allocation::{
    allocate_pool, allocate_pool_into, allocate_pool_sparse, peer_allocation, peer_allocation_into,
    peer_allocation_sparse, ChannelRound,
};
use proptest::prelude::*;

/// Demand vectors with realistic sparsity: up to 64 slots, most zero.
fn demand_strategy() -> impl Strategy<Value = Vec<f64>> {
    collection::vec((0.0..1.0f64, 0.0..2.0e6f64), 1..64).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(coin, d)| if coin < 0.6 { 0.0 } else { d })
            .collect()
    })
}

fn mask_of(demands: &[f64]) -> u64 {
    let mut mask = 0u64;
    for (i, &d) in demands.iter().enumerate() {
        if d > 0.0 {
            mask |= 1 << i;
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn allocate_pool_respects_demands_and_pool(
        demands in demand_strategy(),
        pool in 0.0..5.0e7f64,
    ) {
        let alloc = allocate_pool(&demands, pool);
        let total: f64 = demands.iter().sum();
        let granted: f64 = alloc.iter().sum();
        for (a, d) in alloc.iter().zip(&demands) {
            prop_assert!(*a >= 0.0);
            prop_assert!(a <= d, "allocation {a} exceeds demand {d}");
        }
        // Pool conservation: everything available is handed out, up to
        // total demand.
        prop_assert!(granted <= pool * (1.0 + 1e-12) + 1e-9);
        let expected = total.min(pool);
        prop_assert!(
            (granted - expected).abs() <= 1e-6 * expected.max(1.0),
            "granted {granted} != min(total, pool) = {expected}"
        );
    }

    #[test]
    fn allocate_pool_has_max_min_water_level(
        demands in demand_strategy(),
        pool in 1.0..5.0e7f64,
    ) {
        let alloc = allocate_pool(&demands, pool);
        // Max–min fairness: every unsaturated entry sits at the common
        // water level (no entry can gain without a larger one losing).
        let level = alloc.iter().cloned().fold(0.0, f64::max);
        for (a, d) in alloc.iter().zip(&demands) {
            if *d > 0.0 && *a < d * (1.0 - 1e-9) {
                prop_assert!(
                    (*a - level).abs() <= 1e-6 * level.max(1.0),
                    "unsaturated entry {a} below the water level {level}"
                );
            }
        }
    }

    #[test]
    fn in_place_and_sparse_pool_kernels_match_wrapper_exactly(
        demands in demand_strategy(),
        pool in 0.0..5.0e7f64,
    ) {
        let reference = allocate_pool(&demands, pool);
        let mut out = vec![0.0; demands.len()];
        let mut order = Vec::new();
        allocate_pool_into(&demands, pool, &mut out, &mut order);
        prop_assert_eq!(&out, &reference);
        // Sparse contract: output pre-zeroed, only masked slots written.
        let mut sparse_out = vec![0.0; demands.len()];
        allocate_pool_sparse(&demands, pool, &mut sparse_out, &mut order, mask_of(&demands));
        prop_assert_eq!(&sparse_out, &reference);
    }

    #[test]
    fn peer_allocation_is_rarest_first(
        spec in collection::vec(
            (0.0..1.0f64, 0.0..2.0e6f64, 0usize..40, 0.0..3.0e6f64),
            1..64,
        ),
        pool in 0.0..2.0e7f64,
    ) {
        let requested: Vec<f64> =
            spec.iter().map(|&(c, d, _, _)| if c < 0.5 { 0.0 } else { d }).collect();
        let owners: Vec<usize> = spec.iter().map(|&(_, _, o, _)| o).collect();
        let owner_upload: Vec<f64> = spec.iter().map(|&(_, _, _, u)| u).collect();
        let round = ChannelRound {
            requested_rate: requested.clone(),
            owners: owners.clone(),
            owner_upload: owner_upload.clone(),
            upload_pool: pool,
        };
        let served = peer_allocation(&round);

        // Independent greedy replay in rarest-first order.
        let mut order: Vec<usize> =
            (0..requested.len()).filter(|&i| requested[i] > 0.0).collect();
        order.sort_by_key(|&i| (owners[i], i));
        let mut remaining = pool;
        let mut expected = vec![0.0; requested.len()];
        for &i in &order {
            if remaining <= 0.0 {
                break;
            }
            let give = requested[i].min(owner_upload[i]).min(remaining);
            expected[i] = give;
            remaining -= give;
        }
        prop_assert_eq!(&served, &expected);

        // Invariants independently of the replay.
        let mut total = 0.0;
        for i in 0..requested.len() {
            prop_assert!(served[i] <= requested[i]);
            prop_assert!(served[i] <= owner_upload[i]);
            total += served[i];
        }
        prop_assert!(total <= pool * (1.0 + 1e-12) + 1e-9);
        // Rarest-first: a chunk receives service only if every strictly
        // rarer requested chunk was served to one of its caps.
        for (pos, &i) in order.iter().enumerate() {
            if served[i] > 0.0 {
                for &j in order.iter().take(pos) {
                    let cap = requested[j].min(owner_upload[j]);
                    prop_assert!(
                        served[j] >= cap - 1e-9,
                        "chunk {i} served while rarer chunk {j} was starved"
                    );
                }
            }
        }
    }

    #[test]
    fn in_place_and_sparse_peer_kernels_match_wrapper_exactly(
        spec in collection::vec(
            (0.0..1.0f64, 0.0..2.0e6f64, 0usize..40, 0.0..3.0e6f64),
            1..64,
        ),
        pool in 0.0..2.0e7f64,
    ) {
        let requested: Vec<f64> =
            spec.iter().map(|&(c, d, _, _)| if c < 0.5 { 0.0 } else { d }).collect();
        let owners: Vec<usize> = spec.iter().map(|&(_, _, o, _)| o).collect();
        let owner_upload: Vec<f64> = spec.iter().map(|&(_, _, _, u)| u).collect();
        let round = ChannelRound {
            requested_rate: requested.clone(),
            owners: owners.clone(),
            owner_upload: owner_upload.clone(),
            upload_pool: pool,
        };
        let reference = peer_allocation(&round);
        let mut served = vec![0.0; requested.len()];
        let mut order = Vec::new();
        peer_allocation_into(&requested, &owners, &owner_upload, pool, &mut served, &mut order);
        prop_assert_eq!(&served, &reference);
        let mut sparse_served = vec![0.0; requested.len()];
        peer_allocation_sparse(
            &requested,
            &owners,
            &owner_upload,
            pool,
            &mut sparse_served,
            &mut order,
            mask_of(&requested),
        );
        prop_assert_eq!(&sparse_served, &reference);
    }
}
