//! Regression tests pinning the indexed engine to the scan-based
//! reference: for the same seeded configuration, `SimKernel::Indexed`
//! must reproduce `SimKernel::Scan`'s `Metrics` **exactly** (full
//! structural equality, every float bit farmed through the run) — the
//! indexed engine is an optimization, never a behavior change.

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

fn run(cfg: SimConfig) -> cloudmedia_sim::Metrics {
    Simulator::new(cfg)
        .expect("config valid")
        .run()
        .expect("run succeeds")
}

fn assert_engines_agree(mut cfg: SimConfig, label: &str) {
    cfg.kernel = SimKernel::Scan;
    let scan = run(cfg.clone());
    cfg.kernel = SimKernel::Indexed;
    let indexed = run(cfg);
    assert_eq!(scan, indexed, "engines diverged: {label}");
    assert!(
        scan.peak_peers() > 0,
        "{label}: the scenario exercised nobody"
    );
}

fn base_config(mode: SimMode, channels: usize, population: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.catalog = Catalog::zipf(
        channels,
        0.8,
        ViewingModel::paper_default(),
        population,
        300.0,
    )
    .unwrap();
    cfg.trace.horizon_seconds = 4.0 * 3600.0;
    cfg
}

#[test]
fn engines_agree_client_server() {
    assert_engines_agree(
        base_config(SimMode::ClientServer, 3, 80.0),
        "client-server small",
    );
}

#[test]
fn engines_agree_p2p() {
    assert_engines_agree(base_config(SimMode::P2p, 3, 80.0), "p2p small");
}

#[test]
fn engines_agree_under_heavy_churn() {
    // High jump and leave probabilities maximize removals and
    // `swap_remove` re-keying — the paths where the indexed engine's
    // caches must invalidate to stay bit-exact.
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        let mut cfg = base_config(mode, 4, 120.0);
        cfg.catalog = Catalog::zipf(
            4,
            0.8,
            ViewingModel {
                chunks: 12,
                start_at_beginning: 0.5,
                jump_prob: 0.35,
                leave_prob: 0.3,
            },
            120.0,
            300.0,
        )
        .unwrap();
        assert_engines_agree(cfg, &format!("heavy churn {mode:?}"));
    }
}

#[test]
fn engines_agree_across_seeds() {
    for seed in [1u64, 0xDEAD_BEEF, 0x1234_5678_9ABC] {
        let mut cfg = base_config(SimMode::P2p, 3, 60.0);
        cfg.behaviour_seed = seed;
        cfg.trace.seed = seed.wrapping_mul(0x9E37_79B9);
        assert_engines_agree(cfg, &format!("seed {seed:#x}"));
    }
}

#[test]
fn engines_agree_when_chunk_time_misaligns_with_rounds() {
    // chunk_seconds that is not a multiple of round_seconds produces
    // wake times inside the current round's already-drained wheel
    // bucket — the case where a buggy wheel strands waiting peers
    // forever (regression for exactly that bug).
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        let mut cfg = base_config(mode, 3, 80.0);
        cfg.chunk_seconds = 12.0;
        cfg.round_seconds = 10.0;
        cfg.sample_interval = 300.0;
        cfg.trace.horizon_seconds = 12.0 * 3600.0;
        assert_engines_agree(cfg, &format!("misaligned chunk time {mode:?}"));
    }
}

#[test]
fn engines_agree_with_non_default_round() {
    // A round length that does not divide the horizon exactly exercises
    // the final clamped round and the wake wheel's bucket math with a
    // drifting clock.
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        let mut cfg = base_config(mode, 3, 60.0);
        cfg.round_seconds = 7.3;
        cfg.sample_interval = 300.0;
        cfg.trace.horizon_seconds = 3.0 * 3600.0 + 11.0;
        assert_engines_agree(cfg, &format!("odd round length {mode:?}"));
    }
}
