//! Metrics and configuration JSON round trips: experiment outputs are
//! archived as JSON and must reload bit-exactly.

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::metrics::Metrics;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

#[test]
fn metrics_round_trip_exactly() {
    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.catalog = Catalog::zipf(2, 0.8, ViewingModel::paper_default(), 50.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 2.0 * 3600.0;
    let metrics = Simulator::new(cfg).unwrap().run().unwrap();
    let json = serde_json::to_string(&metrics).unwrap();
    let back: Metrics = serde_json::from_str(&json).unwrap();
    assert_eq!(metrics, back);
}

#[test]
fn config_round_trip_preserves_simulation_results() {
    // A config that survives serialization must reproduce the same run.
    let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
    cfg.catalog = Catalog::zipf(2, 0.8, ViewingModel::paper_default(), 50.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = 2.0 * 3600.0;
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
    let a = Simulator::new(cfg).unwrap().run().unwrap();
    let b = Simulator::new(back).unwrap().run().unwrap();
    assert_eq!(a, b);
}
