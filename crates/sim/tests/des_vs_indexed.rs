//! Regression tests for the event-driven engine.
//!
//! Unlike the Scan/Indexed pair (which are bit-identical by
//! construction), the event-driven engine is a different microscopic
//! model; these tests pin (a) its *tolerance contract* against the
//! Indexed engine — steady-state cloud bandwidth, cost, and per-channel
//! provisioned demand agree within the documented bounds on the
//! paper-default configuration — (b) its determinism, and (c) the three
//! new scenario classes (VM boot delay, VM failure injection, sub-round
//! flash crowds) end to end.
//!
//! The tolerance run here uses a 48-hour horizon to keep debug-build
//! test time sane; `bench_des` performs the same comparison over the
//! full paper week in release mode and records the measured deltas in
//! `BENCH_sim.json` (observed ≈ 1 % on both metrics for both modes).

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::event_driven::{run, DesRun, DesScenario, FlashCrowdSpec, VmFailureSpec};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::Metrics;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;

/// Documented tolerance: relative deviation of steady-state mean used
/// cloud bandwidth (DES vs Indexed).
const USED_BW_TOLERANCE: f64 = 0.15;
/// Documented tolerance: relative deviation of total VM rental cost.
const COST_TOLERANCE: f64 = 0.10;
/// Documented tolerance: relative deviation of a channel's mean
/// provisioned demand (channels above the significance floor).
const CHANNEL_DEMAND_TOLERANCE: f64 = 0.30;

fn paper_cfg(mode: SimMode, hours: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg
}

/// A small, fast configuration: 3 channels, ~120 viewers.
fn small_cfg(mode: SimMode, hours: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.catalog = Catalog::zipf(3, 0.8, ViewingModel::paper_default(), 60.0, 300.0).unwrap();
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg
}

fn indexed(mut cfg: SimConfig) -> Metrics {
    cfg.kernel = SimKernel::Indexed;
    Simulator::new(cfg).unwrap().run().unwrap()
}

fn des(cfg: &SimConfig) -> DesRun {
    run(cfg, &DesScenario::default()).unwrap()
}

fn mean_per_channel_demand(m: &Metrics) -> Vec<f64> {
    let n = m.intervals[0].per_channel_demand.len();
    let mut v = vec![0.0; n];
    for i in &m.intervals {
        for (c, d) in i.per_channel_demand.iter().enumerate() {
            v[c] += d;
        }
    }
    v.iter().map(|x| x / m.intervals.len() as f64).collect()
}

fn assert_within(label: &str, a: f64, b: f64, tol: f64) {
    let rel = (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel <= tol,
        "{label}: DES {a:.4e} vs Indexed {b:.4e} (rel {rel:.3} > tol {tol})"
    );
}

fn assert_tolerance_contract(mode: SimMode) {
    let cfg = paper_cfg(mode, 48.0);
    let d = des(&cfg);
    let x = indexed(cfg);
    assert_within(
        &format!("{mode:?} mean used bandwidth"),
        d.metrics.mean_used_bandwidth(),
        x.mean_used_bandwidth(),
        USED_BW_TOLERANCE,
    );
    assert_within(
        &format!("{mode:?} total VM cost"),
        d.metrics.total_vm_cost,
        x.total_vm_cost,
        COST_TOLERANCE,
    );
    let dd = mean_per_channel_demand(&d.metrics);
    let xx = mean_per_channel_demand(&x);
    // Channels carrying at least ~1 VM of demand must agree per-channel.
    for (c, (a, b)) in dd.iter().zip(&xx).enumerate() {
        if *b > 1.25e6 {
            assert_within(
                &format!("{mode:?} channel {c} mean provisioned demand"),
                *a,
                *b,
                CHANNEL_DEMAND_TOLERANCE,
            );
        }
    }
    // The engine exercised real load.
    assert!(d.metrics.peak_peers() > 1000, "paper-scale population");
    assert!(d.report.deliveries > 10_000, "chunks flowed");
}

#[test]
fn des_matches_indexed_steady_state_client_server() {
    assert_tolerance_contract(SimMode::ClientServer);
}

#[test]
fn des_matches_indexed_steady_state_p2p() {
    assert_tolerance_contract(SimMode::P2p);
}

#[test]
fn des_runs_are_deterministic() {
    let cfg = small_cfg(SimMode::P2p, 12.0);
    let a = des(&cfg);
    let b = des(&cfg);
    assert_eq!(a.metrics, b.metrics, "metrics must be bit-identical");
    assert_eq!(a.report, b.report, "reports must be bit-identical");
    // And through the Simulator facade:
    let mut cfg2 = cfg.clone();
    cfg2.kernel = SimKernel::EventDriven;
    let c = Simulator::new(cfg2).unwrap().run().unwrap();
    assert_eq!(a.metrics, c, "facade runs the same engine");
}

#[test]
fn des_reports_admission_latency_percentiles() {
    let cfg = small_cfg(SimMode::ClientServer, 12.0);
    let d = des(&cfg);
    let l = &d.report.admission_latency;
    assert!(l.count > 1000, "latency recorded per request: {}", l.count);
    assert!(l.p50 <= l.p90 && l.p90 <= l.p99 && l.p99 <= l.max);
    assert!(l.mean.is_finite() && l.mean >= 0.0);
    // The Erlang-C prediction must be in the same regime as the
    // measured wait fraction (both probabilities, same order).
    let (p, m) = (
        d.report.predicted_wait_fraction,
        d.report.measured_wait_fraction,
    );
    assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&m));
    assert!(
        (p - m).abs() < 0.35,
        "Erlang-C prediction {p:.3} vs measured {m:.3} diverged"
    );
}

#[test]
fn vm_failure_injection_dents_capacity_and_recovers() {
    let cfg = small_cfg(SimMode::ClientServer, 12.0);
    let baseline = des(&cfg);
    let scenario = DesScenario {
        failures: vec![VmFailureSpec {
            at: 6.5 * 3600.0,
            fraction: 0.6,
            recovery_seconds: 0.0,
        }],
        ..DesScenario::default()
    };
    let failed = run(&cfg, &scenario).unwrap();
    assert!(failed.report.vms_killed > 0, "the burst killed instances");
    // Reserved (running) bandwidth right after the failure is lower
    // than in the baseline run…
    let window = |m: &Metrics, from: f64, to: f64| -> f64 {
        let s: Vec<&_> = m.samples_in(from, to).collect();
        s.iter().map(|x| x.reserved_bandwidth).sum::<f64>() / s.len().max(1) as f64
    };
    let during_fail = window(&failed.metrics, 6.5 * 3600.0, 7.0 * 3600.0);
    let during_base = window(&baseline.metrics, 6.5 * 3600.0, 7.0 * 3600.0);
    assert!(
        during_fail < 0.8 * during_base,
        "failure dents running bandwidth: {during_fail:.3e} vs {during_base:.3e}"
    );
    // …and the hourly controller recovers it within two intervals.
    let after_fail = window(&failed.metrics, 9.0 * 3600.0, 12.0 * 3600.0);
    let after_base = window(&baseline.metrics, 9.0 * 3600.0, 12.0 * 3600.0);
    assert!(
        after_fail > 0.7 * after_base,
        "controller re-provisions after the burst: {after_fail:.3e} vs {after_base:.3e}"
    );
}

#[test]
fn vm_failure_repair_event_restores_capacity_before_the_next_plan() {
    let cfg = small_cfg(SimMode::ClientServer, 12.0);
    let baseline = des(&cfg);
    // Burst mid-interval, repaired 10 minutes later — well before the
    // next hourly controller tick at 7 h, so any recovery seen in the
    // [repair, next tick) window is the repair event's doing.
    let (at, recovery) = (6.25 * 3600.0, 600.0);
    let scenario = DesScenario {
        failures: vec![VmFailureSpec {
            at,
            fraction: 0.6,
            recovery_seconds: recovery,
        }],
        ..DesScenario::default()
    };
    let repaired = run(&cfg, &scenario).unwrap();
    assert!(repaired.report.vms_killed > 0, "the burst killed instances");
    assert!(
        repaired.fault_stats.vms_recovered > 0,
        "the repair event resubmitted the lost instances"
    );
    let window = |m: &Metrics, from: f64, to: f64| -> f64 {
        let s: Vec<&_> = m.samples_in(from, to).collect();
        s.iter().map(|x| x.reserved_bandwidth).sum::<f64>() / s.len().max(1) as f64
    };
    // Dented while down…
    let down_fail = window(&repaired.metrics, at, at + recovery);
    let down_base = window(&baseline.metrics, at, at + recovery);
    assert!(
        down_fail < 0.8 * down_base,
        "failure dents running bandwidth: {down_fail:.3e} vs {down_base:.3e}"
    );
    // …and back at baseline capacity after the repair but *before* the
    // 7 h controller tick (allowing the VM boot delay to elapse).
    let repaired_window = window(&repaired.metrics, at + recovery + 300.0, 7.0 * 3600.0);
    let base_window = window(&baseline.metrics, at + recovery + 300.0, 7.0 * 3600.0);
    assert!(
        repaired_window > 0.95 * base_window,
        "repair restores capacity ahead of the controller: \
         {repaired_window:.3e} vs {base_window:.3e}"
    );
}

#[test]
fn flash_crowd_injection_spikes_population_with_sub_round_timing() {
    let cfg = small_cfg(SimMode::P2p, 10.0);
    let baseline = des(&cfg);
    let at = 6.0 * 3600.0 + 17.0; // deliberately not round-aligned
    let scenario = DesScenario {
        flash_crowds: vec![FlashCrowdSpec {
            at,
            channel: 0,
            extra_viewers: 300,
            window_seconds: 45.0,
        }],
        ..DesScenario::default()
    };
    let crowded = run(&cfg, &scenario).unwrap();
    assert_eq!(crowded.report.injected_viewers, 300);
    // Compare the population in the samples right after the burst:
    // sessions churn (some injected viewers watch one chunk and leave),
    // so the window population — not the global diurnal peak — is the
    // right observable.
    let window_peak = |m: &cloudmedia_sim::Metrics| {
        m.samples_in(at, at + 900.0)
            .map(|s| s.active_peers)
            .max()
            .unwrap_or(0)
    };
    let (with_burst, without) = (
        window_peak(&crowded.metrics),
        window_peak(&baseline.metrics),
    );
    assert!(
        with_burst >= without + 150,
        "the burst shows up in the population: {with_burst} vs {without}"
    );
}

#[test]
fn vm_boot_delay_scenario_slows_startup() {
    let cfg = small_cfg(SimMode::ClientServer, 8.0);
    let fast = des(&cfg);
    let slow = run(
        &cfg,
        &DesScenario {
            vm_boot_seconds: Some(1200.0),
            ..DesScenario::default()
        },
    )
    .unwrap();
    // With 20-minute boots, every hourly scale-up leaves demand waiting
    // on cold capacity: startup delay and admission waits rise.
    assert!(
        slow.report.admission_latency.mean > fast.report.admission_latency.mean,
        "slow boots raise admission latency: {:.2}s vs {:.2}s",
        slow.report.admission_latency.mean,
        fast.report.admission_latency.mean
    );
    assert!(slow.metrics.mean_quality() <= fast.metrics.mean_quality() + 1e-9);
}

#[test]
fn remote_overflow_absorbs_admission_waits() {
    use cloudmedia_sim::event_driven::RemoteOverflowSpec;
    // Stretch boots to 20 minutes so every hourly scale-up queues
    // requests on cold capacity; the federation hook then redirects
    // those would-wait requests to a remote pool instead.
    let cfg = small_cfg(SimMode::ClientServer, 8.0);
    let slow_boots = DesScenario {
        vm_boot_seconds: Some(1200.0),
        ..DesScenario::default()
    };
    let local_only = run(&cfg, &slow_boots).unwrap();
    let federated = run(
        &cfg,
        &DesScenario {
            remote_overflow: Some(RemoteOverflowSpec {
                capacity_bps: 50e6,
                extra_latency_seconds: 2.0,
            }),
            ..slow_boots.clone()
        },
    )
    .unwrap();
    assert_eq!(local_only.report.redirected_requests, 0);
    assert!(
        federated.report.redirected_requests > 0,
        "cold-capacity waits should redirect"
    );
    // Redirected requests never sit in the local queue, so the measured
    // wait improves.
    assert!(
        federated.report.admission_latency.mean < local_only.report.admission_latency.mean,
        "redirection cuts mean admission latency: {:.2}s vs {:.2}s",
        federated.report.admission_latency.mean,
        local_only.report.admission_latency.mean
    );
    // Determinism holds with the hook active.
    let again = run(
        &cfg,
        &DesScenario {
            remote_overflow: Some(RemoteOverflowSpec {
                capacity_bps: 50e6,
                extra_latency_seconds: 2.0,
            }),
            ..slow_boots
        },
    )
    .unwrap();
    assert_eq!(again, federated);
}

#[test]
fn event_driven_kernel_round_trips_through_config_json() {
    let mut cfg = small_cfg(SimMode::P2p, 1.0);
    cfg.kernel = SimKernel::EventDriven;
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.kernel, SimKernel::EventDriven);
    assert_eq!(cfg, back);
}
