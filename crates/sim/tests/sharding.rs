//! The sharded engine's determinism contract: serial and
//! channel-parallel execution produce **bit-identical** metrics for the
//! same configuration — over random catalogs, seeds, populations, and
//! modes — plus scale smoke and the federation guard rail.
//!
//! The analogue of `federation.rs`'s parallel-regions pinning, one
//! layer down: here the unit of parallelism is the channel shard, and
//! thread count / shard grouping must be unobservable in the results
//! (the in-crate unit tests additionally pin grouping invariance
//! directly; this suite drives the public API).

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::viewing::ViewingModel;
use proptest::prelude::*;

/// A sharded configuration with the given shape knobs.
fn sharded_config(
    mode: SimMode,
    channels: usize,
    population: f64,
    hours: f64,
    trace_seed: u64,
    behaviour_seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::paper_default(mode);
    cfg.catalog = Catalog::zipf(
        channels,
        0.8,
        ViewingModel::paper_default(),
        population,
        300.0,
    )
    .unwrap();
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg.trace.seed = trace_seed;
    cfg.behaviour_seed = behaviour_seed;
    cfg.kernel = SimKernel::Sharded;
    cfg
}

proptest! {
    // Each case is a pair of multi-hour simulations; keep the case
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance contract: for any configuration, disabling
    /// `parallel_channels` cannot change a single bit of the metrics.
    #[test]
    fn serial_and_parallel_sharded_runs_are_bit_identical(
        channels in 1usize..10,
        population in 50.0..400.0f64,
        trace_seed in any::<u64>(),
        behaviour_seed in any::<u64>(),
        p2p in any::<bool>(),
    ) {
        let mode = if p2p { SimMode::P2p } else { SimMode::ClientServer };
        let hours = 3.0;
        let mut parallel = sharded_config(
            mode, channels, population, hours, trace_seed, behaviour_seed,
        );
        parallel.parallel_channels = true;
        let mut serial = parallel.clone();
        serial.parallel_channels = false;
        let a = Simulator::new(parallel).unwrap().run().unwrap();
        let b = Simulator::new(serial).unwrap().run().unwrap();
        // `Metrics` equality is full structural equality over every
        // sample, interval record, and cost — f64s compared exactly.
        prop_assert_eq!(a, b);
    }
}

/// Repeated runs of the same sharded configuration are identical
/// (the per-shard RNG streams are pure functions of the seeds).
#[test]
fn sharded_runs_are_deterministic() {
    let cfg = sharded_config(SimMode::P2p, 4, 160.0, 4.0, 0xC10D_4ED1, 0x5EED_0001);
    let a = Simulator::new(cfg.clone()).unwrap().run().unwrap();
    let b = Simulator::new(cfg).unwrap().run().unwrap();
    assert_eq!(a, b);
}

/// The sharded engine agrees with the Indexed engine in distribution:
/// not bit-for-bit (per-channel RNG streams are a different sample of
/// the same process), but the steady-state aggregates must line up.
#[test]
fn sharded_tracks_indexed_in_the_mean() {
    let mut sharded_cfg = sharded_config(SimMode::ClientServer, 5, 300.0, 12.0, 7, 11);
    let mut indexed_cfg = sharded_cfg.clone();
    indexed_cfg.kernel = SimKernel::Indexed;
    sharded_cfg.parallel_channels = true;
    let sharded = Simulator::new(sharded_cfg).unwrap().run().unwrap();
    let indexed = Simulator::new(indexed_cfg).unwrap().run().unwrap();
    let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-9);
    assert!(
        rel(sharded.mean_used_bandwidth(), indexed.mean_used_bandwidth()) < 0.10,
        "used bandwidth: sharded {} vs indexed {}",
        sharded.mean_used_bandwidth(),
        indexed.mean_used_bandwidth()
    );
    assert!(
        rel(sharded.total_vm_cost, indexed.total_vm_cost) < 0.10,
        "cost: sharded {} vs indexed {}",
        sharded.total_vm_cost,
        indexed.total_vm_cost
    );
    assert!(sharded.mean_quality() > 0.9);
}

/// A mega-catalog scale smoke at a population no single paper-default
/// run approaches, in both execution modes — the small-footprint
/// sibling of the CI scale smoke and `bench_scale`'s sweep.
#[test]
fn mega_catalog_smoke_runs_serial_and_parallel() {
    for parallel in [false, true] {
        let mut cfg = SimConfig::scale_out(SimMode::ClientServer, 100, 50_000.0).unwrap();
        cfg.trace.horizon_seconds = 1800.0;
        cfg.parallel_channels = parallel;
        let m = Simulator::new(cfg).unwrap().run().unwrap();
        assert!(
            m.peak_peers() > 10_000,
            "ramp reached {} viewers (parallel={parallel})",
            m.peak_peers()
        );
        assert!(m.mean_quality() > 0.9);
    }
}

/// The federated simulator must refuse the sharded kernel (regions
/// already own the worker pool) with actionable guidance.
#[test]
fn federation_rejects_sharded_kernel() {
    let mut fc =
        FederatedConfig::paper_default(DeploymentKind::Federated, SimMode::ClientServer, 2.0);
    fc.base.kernel = SimKernel::Sharded;
    let err = match FederatedSimulator::new(fc) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("sharded kernel must be rejected"),
    };
    assert!(err.contains("parallel_channels"), "unhelpful error: {err}");
}
