//! The quiescence contract: the epoch engine is a pure optimization.
//! Any sharded run with quiescence on must be **bit-identical** — full
//! `Metrics` (every sample, every cost accumulator) and `FaultStats` —
//! to the same run with quiescence off, across random catalogs,
//! populations, lane caps, streaming modes, fault schedules, and
//! behaviour seeds.
//!
//! A separate engagement test proves the epoch path actually runs
//! (skipped-round counter > 0 on a steady workload), so the property
//! cannot pass vacuously with quiescence never engaging.

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::faults::FaultSchedule;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::telem;
use proptest::prelude::*;

/// Random fault schedules inside the first few simulated hours: none,
/// a VM fleet outage, a tracker blackout, or both.
fn fault_strategy() -> impl Strategy<Value = FaultSchedule> {
    (
        (0.0..1.0f64, 600.0..7200.0f64, 0.1..0.6f64, 300.0..1800.0f64),
        (0.0..1.0f64, 900.0..7200.0f64, 300.0..1500.0f64),
    )
        .prop_map(
            |((vm_coin, at, fraction, recovery), (tr_coin, tr_at, duration))| {
                let mut schedule = FaultSchedule::default();
                if vm_coin < 0.5 {
                    schedule.vm_failures =
                        FaultSchedule::vm_outage(at, fraction, recovery).vm_failures;
                }
                if tr_coin < 0.4 {
                    schedule.tracker_dropouts =
                        FaultSchedule::tracker_blackout(tr_at, duration).tracker_dropouts;
                }
                schedule
            },
        )
}

fn scenario(
    channels: usize,
    population: f64,
    lanes: usize,
    p2p: bool,
    faults: FaultSchedule,
    seed: u64,
    hours: f64,
) -> SimConfig {
    let mode = if p2p {
        SimMode::P2p
    } else {
        SimMode::ClientServer
    };
    let mut cfg = SimConfig::scale_out(mode, channels, population).expect("valid scale config");
    cfg.trace.horizon_seconds = hours * 3600.0;
    cfg.lanes = lanes;
    cfg.faults = faults;
    cfg.behaviour_seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn quiescence_on_bit_equals_quiescence_off(
        channels in 1usize..10,
        population in 300.0..2500.0f64,
        lanes in 0usize..4,
        p2p in any::<bool>(),
        parallel in any::<bool>(),
        faults in fault_strategy(),
        seed in any::<u64>(),
        hours in 1.0..3.0f64,
    ) {
        let mut on = scenario(channels, population, lanes, p2p, faults.clone(), seed, hours);
        on.parallel_channels = parallel;
        on.quiescence = true;
        let mut off = on.clone();
        off.quiescence = false;

        let run_on = Simulator::new(on).unwrap().run_with_faults().unwrap();
        let run_off = Simulator::new(off).unwrap().run_with_faults().unwrap();
        prop_assert_eq!(
            run_on.metrics, run_off.metrics,
            "quiescence changed the metrics (channels={}, pop={}, lanes={}, p2p={}, parallel={}, seed={:#x})",
            channels, population, lanes, p2p, parallel, seed
        );
        prop_assert_eq!(run_on.fault_stats, run_off.fault_stats);
    }
}

/// Engagement proof: on a steady mega-catalog run with sparse channels
/// the epoch engine must skip rounds outright — otherwise the property
/// above holds vacuously. Sparse matters: entry requires consecutive
/// event-free rounds, and a channel needs tens of viewers or fewer
/// before whole rounds pass with no prefetch wake-ups (the Zipf tail
/// here runs ~16 viewers).
#[test]
fn quiescence_engages_on_steady_workloads() {
    let mut cfg =
        SimConfig::scale_out(SimMode::ClientServer, 12, 600.0).expect("valid scale config");
    cfg.trace.horizon_seconds = 4.0 * 3600.0;

    let tel = telem::new_registry(false);
    Simulator::new(cfg)
        .unwrap()
        .run_with_telemetry(&tel)
        .unwrap();
    let snap = tel.snapshot();
    let skipped = snap.value(telem::QUIESCE_ROUNDS_SKIPPED);
    assert!(
        skipped > 0,
        "steady run skipped no rounds — quiescence never engaged"
    );
}

/// The escape hatch really disables the engine: a quiescence-off run
/// records no skipped rounds and no epoch exits.
#[test]
fn no_quiesce_records_nothing() {
    let mut cfg =
        SimConfig::scale_out(SimMode::ClientServer, 12, 2000.0).expect("valid scale config");
    cfg.trace.horizon_seconds = 2.0 * 3600.0;
    cfg.quiescence = false;

    let tel = telem::new_registry(false);
    Simulator::new(cfg)
        .unwrap()
        .run_with_telemetry(&tel)
        .unwrap();
    let snap = tel.snapshot();
    assert_eq!(snap.value(telem::QUIESCE_ROUNDS_SKIPPED), 0);
    assert_eq!(snap.value(telem::QUIESCE_DIRTY_CHANNELS), 0);
}
