//! Integration contract of the federated multi-region deployment
//! (`geo_federation`): on the default three-site deployment the
//! federation's total cost sits between the two extremes the repo
//! already modeled —
//!
//! ```text
//! central  ≤  federated  ≤  independent
//! ```
//!
//! - **independent** pays every region's peak at its own regional
//!   prices;
//! - **federated** redirects peak/premium demand into cheaper off-peak
//!   sites (paying transfer + SLA latency penalty per redirected GB),
//!   and all-local remains feasible, so it can only improve on
//!   independent;
//! - **central** enjoys both time-zone multiplexing (flattest demand
//!   curve) and the reference market's prices, with no transfer costs —
//!   the cost floor (its price is the latency of serving almost everyone
//!   remotely, which the cost metric does not see).
//!
//! The full-week numbers are recorded by `ext_multi_region_sim` in the
//! `geo_federation` section of `BENCH_sim.json`; this suite pins the
//! ordering (and the presence of redirected traffic) on the default
//! three-site week so `cargo test` keeps it honest PR to PR.

use cloudmedia_sim::config::SimMode;
use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};

fn run(kind: DeploymentKind, hours: f64) -> cloudmedia_sim::federation::FederatedMetrics {
    FederatedSimulator::new(FederatedConfig::paper_default(
        kind,
        SimMode::ClientServer,
        hours,
    ))
    .unwrap()
    .run()
    .unwrap()
}

#[test]
fn three_way_cost_ordering_holds_with_redirection() {
    // The paper's full experimental horizon: one week.
    const HOURS: f64 = 168.0;
    let independent = run(DeploymentKind::Independent, HOURS);
    let federated = run(DeploymentKind::Federated, HOURS);
    let central = run(DeploymentKind::Central, HOURS);

    // The federation actually redirects traffic on the default
    // deployment (premium-priced regions tap the reference market).
    assert!(
        federated.redirected_share() > 0.01,
        "expected redirected traffic, got share {}",
        federated.redirected_share()
    );
    assert_eq!(independent.redirected_share(), 0.0);
    assert!(federated.total_transfer_cost > 0.0);
    assert!(federated.total_latency_penalty_cost > 0.0);

    // The acceptance ordering.
    let (c, f, i) = (
        central.total_cost(),
        federated.total_cost(),
        independent.total_cost(),
    );
    assert!(
        f <= i * 1.001,
        "federated ${f:.2} must not exceed independent ${i:.2}"
    );
    assert!(
        f >= c * 0.999,
        "federated ${f:.2} must not undercut central ${c:.2}"
    );

    // Every deployment still serves its viewers well.
    assert!(
        independent.mean_quality() > 0.9,
        "independent quality {}",
        independent.mean_quality()
    );
    assert!(
        federated.mean_quality() > 0.9,
        "federated quality {}",
        federated.mean_quality()
    );
    assert!(
        central.mean_quality() > 0.9,
        "central quality {}",
        central.mean_quality()
    );
}

#[test]
fn federated_viewers_see_the_same_demand_as_independent() {
    // Redirection moves VM-hours between sites, not viewers between
    // regions: both deployments replay identical arrival traces, so
    // their populations agree closely (session *lengths* can drift a
    // little — different VM boot ramps shift chunk completions, and with
    // them the viewing-model's RNG draws).
    const HOURS: f64 = 12.0;
    let independent = run(DeploymentKind::Independent, HOURS);
    let federated = run(DeploymentKind::Federated, HOURS);
    let (pi, pf) = (
        independent.peak_peers() as f64,
        federated.peak_peers() as f64,
    );
    assert!(
        (pi - pf).abs() / pi.max(1.0) < 0.05,
        "peak populations diverged: independent {pi}, federated {pf}"
    );
    for (a, b) in independent.per_region.iter().zip(&federated.per_region) {
        assert_eq!(a.metrics.intervals.len(), b.metrics.intervals.len());
        assert_eq!(a.region, b.region);
    }
}

#[test]
fn parallel_and_serial_region_execution_are_bit_identical() {
    // The federated simulator fans its regions out on the rayon pool;
    // regions share no accumulator inside a round and every coupling
    // happens at a barrier, so the parallel execution must reproduce the
    // serial one exactly — every float bit of every region's metrics.
    const HOURS: f64 = 8.0;
    let mut serial_cfg =
        FederatedConfig::paper_default(DeploymentKind::Federated, SimMode::ClientServer, HOURS);
    serial_cfg.parallel_regions = false;
    let mut parallel_cfg = serial_cfg.clone();
    parallel_cfg.parallel_regions = true;

    let serial = FederatedSimulator::new(serial_cfg).unwrap().run().unwrap();
    let parallel = FederatedSimulator::new(parallel_cfg)
        .unwrap()
        .run()
        .unwrap();

    assert_eq!(
        serial.total_cost().to_bits(),
        parallel.total_cost().to_bits(),
        "total cost diverged"
    );
    assert_eq!(
        serial.total_transfer_cost.to_bits(),
        parallel.total_transfer_cost.to_bits()
    );
    assert_eq!(serial.per_region.len(), parallel.per_region.len());
    for (s, p) in serial.per_region.iter().zip(&parallel.per_region) {
        assert_eq!(s.metrics, p.metrics, "region {} diverged", s.region.name);
        assert_eq!(s.cloud_bytes.to_bits(), p.cloud_bytes.to_bits());
        assert_eq!(s.redirected_bytes.to_bits(), p.redirected_bytes.to_bits());
    }
}

#[test]
fn premium_regions_are_the_ones_redirecting() {
    const HOURS: f64 = 24.0;
    let federated = run(DeploymentKind::Federated, HOURS);
    // The reference-priced americas site never redirects its own demand
    // on the default week (its market is the cheapest); the premium
    // sites do.
    let americas = &federated.per_region[0];
    let premium_redirected: f64 = federated.per_region[1..]
        .iter()
        .map(|r| r.redirected_bytes)
        .sum();
    assert!(
        premium_redirected > 0.0,
        "premium sites should redirect into the reference market"
    );
    assert!(
        americas.redirected_share() < 0.5,
        "americas share {}",
        americas.redirected_share()
    );
}
