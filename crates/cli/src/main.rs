//! The `cloudmedia` binary: thin wrapper over [`cloudmedia_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match cloudmedia_cli::parse(&arg_refs).and_then(cloudmedia_cli::run) {
        Ok(out) => print!("{out}"),
        Err(cloudmedia_cli::CliError::Usage(m)) => {
            eprintln!("error: {m}\n\n{}", cloudmedia_cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
