//! Command-line interface for the CloudMedia toolkit.
//!
//! Subcommands:
//!
//! - `cloudmedia analyze` — equilibrium capacity analysis of one channel
//!   (client–server and P2P cloud demand, peer contribution),
//! - `cloudmedia plan` — one provisioning-controller interval for a set of
//!   channel arrival rates (VM targets, costs, placement size),
//! - `cloudmedia simulate` — a full system simulation with JSON config
//!   in / JSON metrics out,
//! - `cloudmedia des` — an event-driven scenario run on the
//!   `cloudmedia-des` kernel (per-request admission latency, VM
//!   boot-delay, VM failure injection, sub-round flash crowds),
//! - `cloudmedia geo` — a multi-region deployment run (independent
//!   regional sites, the federated overflow-redirecting deployment, or
//!   one centralized multiplexed site),
//! - `cloudmedia chaos` — a fault-injection scenario (VM-fleet outage,
//!   federated site outage, mid-run budget cut, tracker dropout) run
//!   against a fault-free baseline, reporting time-to-recover, quality
//!   dip, and cost overshoot,
//! - `cloudmedia profile` — a telemetry-instrumented run that prints the
//!   per-stage wall-time table (sorted, with shares) for any kernel,
//! - `cloudmedia default-config` — prints the paper-default simulation
//!   configuration as editable JSON.
//!
//! The run-style subcommands (`simulate`, `des`, `geo`, `chaos`, `scale`)
//! all accept `--telemetry FILE` (metrics-registry snapshot JSON) and
//! `--trace FILE` (Chrome trace-event JSON, loadable in Perfetto or
//! `chrome://tracing`). Telemetry is a pure side channel: the simulation
//! output is bit-identical with the flags on or off.
//!
//! The parsing and command logic live here so they are unit-testable; the
//! binary in `main.rs` is a thin wrapper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::fmt::Write as _;

use cloudmedia_cloud::broker::SlaTerms;
use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_core::analysis::{
    p2p_capacity_with, pooled_capacity_demand, DemandPooling, PsiEstimator,
};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_core::controller::{Controller, ControllerConfig, StreamingMode};
use cloudmedia_core::predictor::{ChannelObservation, PredictorKind};
use cloudmedia_sim::config::{SchedulerChoice, SimConfig, SimKernel, SimMode};
use cloudmedia_sim::event_driven::{DesScenario, FlashCrowdSpec, VmFailureSpec};
use cloudmedia_sim::faults::{DegradeMode, FaultSchedule, ResilienceReport};
use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::telem;
use cloudmedia_telemetry::Telemetry;

/// Telemetry output options shared by the run-style subcommands.
///
/// Both paths are optional; when neither is set the run uses the no-op
/// telemetry sink and pays one predicted branch per recording site.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryOpts {
    /// `--telemetry FILE`: write the metrics-registry snapshot JSON here.
    pub metrics_path: Option<String>,
    /// `--trace FILE`: write Chrome trace-event JSON here (Perfetto /
    /// `chrome://tracing`).
    pub trace_path: Option<String>,
}

impl TelemetryOpts {
    /// Builds the registry for a run: enabled iff either output was
    /// requested, tracing iff `--trace` was.
    fn registry(&self) -> Telemetry {
        if self.metrics_path.is_some() || self.trace_path.is_some() {
            telem::new_registry(self.trace_path.is_some())
        } else {
            Telemetry::disabled()
        }
    }

    /// Writes the requested outputs and appends a confirmation line per
    /// file to `out`.
    fn write(&self, tel: &Telemetry, out: &mut String) -> Result<(), CliError> {
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, tel.snapshot().metrics_json())
                .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "telemetry snapshot written to {path}");
        }
        if let Some(path) = &self.trace_path {
            std::fs::write(path, tel.trace_json())
                .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "trace written to {path}");
        }
        Ok(())
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Analyze one channel's equilibrium capacity.
    Analyze {
        /// External arrival rate `Λ`, users per second.
        arrival_rate: f64,
        /// Mean peer upload (bytes/s) for the P2P analysis.
        mean_upload: f64,
    },
    /// Run one controller interval for the given channel arrival rates.
    Plan {
        /// Arrival rate per channel.
        arrival_rates: Vec<f64>,
        /// Streaming architecture.
        mode: SimMode,
        /// VM budget, dollars per hour.
        budget: f64,
    },
    /// Run a full simulation.
    Simulate {
        /// Streaming architecture.
        mode: SimMode,
        /// Horizon in hours.
        hours: f64,
        /// Simulation engine override
        /// (`--kernel scan|indexed|event-driven|sharded`).
        kernel: Option<SimKernel>,
        /// Optional JSON config file overriding the paper defaults.
        config_path: Option<String>,
        /// Optional path to write the full metrics JSON.
        out_path: Option<String>,
        /// Disable the quiescence-aware epoch engine (`--no-quiesce`).
        /// Results are bit-identical either way; this is the
        /// escape-hatch / baseline knob.
        no_quiesce: bool,
        /// Telemetry / trace output options.
        telemetry: TelemetryOpts,
    },
    /// Run an event-driven scenario on the DES kernel.
    Des {
        /// Scenario name.
        scenario: DesScenarioKind,
        /// Streaming architecture.
        mode: SimMode,
        /// Horizon in hours.
        hours: f64,
        /// Event-queue scheduler (`--scheduler heap|wheel`).
        scheduler: SchedulerChoice,
        /// Optional path to write the full `DesRun` JSON.
        out_path: Option<String>,
        /// Telemetry / trace output options.
        telemetry: TelemetryOpts,
    },
    /// Run a multi-region deployment.
    Geo {
        /// Which deployment to run.
        deployment: DeploymentKind,
        /// Streaming architecture.
        mode: SimMode,
        /// Horizon in hours.
        hours: f64,
        /// Telemetry / trace output options.
        telemetry: TelemetryOpts,
    },
    /// Run a fault-injection scenario against a fault-free baseline and
    /// report the resilience metrics.
    Chaos {
        /// Which fault to inject.
        scenario: ChaosScenarioKind,
        /// Streaming architecture.
        mode: SimMode,
        /// Horizon in hours.
        hours: f64,
        /// Engine override for the single-site scenarios
        /// (`--kernel scan|indexed|event-driven|sharded`); `site-outage`
        /// always runs the federated simulator.
        kernel: Option<SimKernel>,
        /// Force serial execution (`--serial`): no channel sharding, no
        /// parallel regions. The report must be bit-identical either way.
        serial: bool,
        /// Shed new arrivals during fleet outages instead of diluting
        /// every stream (`--shed`).
        shed: bool,
        /// Optional path to write the resilience report JSON.
        out_path: Option<String>,
        /// Disable the quiescence-aware epoch engine (`--no-quiesce`)
        /// on both the baseline and the faulted run.
        no_quiesce: bool,
        /// Telemetry / trace output options (recorded on the faulted run).
        telemetry: TelemetryOpts,
    },
    /// Run a scale-out mega-catalog scenario on the sharded engine.
    Scale {
        /// Target steady-state concurrent viewers.
        peers: f64,
        /// Number of Zipf channels in the mega catalog.
        channels: usize,
        /// Streaming architecture.
        mode: SimMode,
        /// Horizon in hours.
        hours: f64,
        /// Force serial shard stepping (`--serial`).
        serial: bool,
        /// Sub-channel lane cap per shard (`--lanes N`; 0 = auto).
        /// Conflicts with `--serial`.
        lanes: usize,
        /// Optional path to write the full metrics JSON.
        out_path: Option<String>,
        /// Disable the quiescence-aware epoch engine (`--no-quiesce`).
        /// Results are bit-identical either way; this is the
        /// escape-hatch / baseline knob.
        no_quiesce: bool,
        /// Telemetry / trace output options.
        telemetry: TelemetryOpts,
    },
    /// Run one telemetry-instrumented simulation and print the sorted
    /// per-stage wall-time table.
    Profile {
        /// Streaming architecture.
        mode: SimMode,
        /// Horizon in hours.
        hours: f64,
        /// Simulation engine override
        /// (`--kernel scan|indexed|event-driven|sharded`).
        kernel: Option<SimKernel>,
        /// Optional path to also write the metrics snapshot JSON.
        out_path: Option<String>,
    },
    /// Print the paper-default simulation config as JSON.
    DefaultConfig {
        /// Streaming architecture.
        mode: SimMode,
    },
    /// Print usage.
    Help,
}

fn parse_deployment(v: &str) -> Result<DeploymentKind, CliError> {
    match v {
        "independent" => Ok(DeploymentKind::Independent),
        "federated" => Ok(DeploymentKind::Federated),
        "central" => Ok(DeploymentKind::Central),
        other => Err(CliError::Usage(format!(
            "unknown geo deployment `{other}` (use independent|federated|central)"
        ))),
    }
}

/// The named event-driven scenarios `cloudmedia des` offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesScenarioKind {
    /// Paper defaults, no injections.
    Baseline,
    /// VM boots stretched to 5 minutes (cold-capacity stress).
    BootDelay,
    /// 50 % of the running fleet fails mid-run.
    VmFailure,
    /// A sharp mid-run flash crowd on the most popular channel.
    FlashCrowd,
}

impl DesScenarioKind {
    fn parse(v: &str) -> Result<Self, CliError> {
        match v {
            "baseline" => Ok(Self::Baseline),
            "boot-delay" => Ok(Self::BootDelay),
            "vm-failure" => Ok(Self::VmFailure),
            "flash-crowd" => Ok(Self::FlashCrowd),
            other => Err(CliError::Usage(format!(
                "unknown des scenario `{other}` (use baseline|boot-delay|vm-failure|flash-crowd)"
            ))),
        }
    }

    /// Builds the scenario spec for a run of `horizon` seconds.
    fn build(self, horizon: f64) -> DesScenario {
        match self {
            Self::Baseline => DesScenario::default(),
            Self::BootDelay => DesScenario {
                vm_boot_seconds: Some(300.0),
                ..DesScenario::default()
            },
            Self::VmFailure => DesScenario {
                failures: vec![VmFailureSpec {
                    at: horizon * 0.5,
                    fraction: 0.5,
                    recovery_seconds: 0.0,
                }],
                ..DesScenario::default()
            },
            Self::FlashCrowd => DesScenario {
                flash_crowds: vec![FlashCrowdSpec {
                    at: horizon * 0.6 + 17.0,
                    channel: 0,
                    extra_viewers: 800,
                    window_seconds: 90.0,
                }],
                ..DesScenario::default()
            },
        }
    }
}

/// The named fault scenarios `cloudmedia chaos` offers. Every fault
/// instant is a fixed fraction of the horizon so any `--hours` value
/// exercises the full fault-and-recovery arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenarioKind {
    /// Half the VM fleet fails at mid-run and is repaired a quarter
    /// horizon later.
    VmOutage,
    /// Federated deployment: site 1 goes dark at 40 % of the horizon for
    /// a quarter horizon; the placement optimizer re-plans around it.
    SiteOutage,
    /// The VM rental budget is cut in half at mid-run.
    BudgetCut,
    /// Tracker measurements go dark from 35 % to 65 % of the horizon;
    /// the controller replays its last-known-good plan.
    TrackerDropout,
}

impl ChaosScenarioKind {
    fn parse(v: &str) -> Result<Self, CliError> {
        match v {
            "vm-outage" => Ok(Self::VmOutage),
            "site-outage" => Ok(Self::SiteOutage),
            "budget-cut" => Ok(Self::BudgetCut),
            "tracker-dropout" => Ok(Self::TrackerDropout),
            other => Err(CliError::Usage(format!(
                "unknown chaos scenario `{other}` \
                 (use vm-outage|site-outage|budget-cut|tracker-dropout)"
            ))),
        }
    }

    /// Builds the fault schedule for a run of `horizon` seconds.
    fn build(self, horizon: f64, shed: bool) -> FaultSchedule {
        let mut schedule = match self {
            Self::VmOutage => FaultSchedule::vm_outage(0.5 * horizon, 0.5, 0.25 * horizon),
            Self::SiteOutage => FaultSchedule::site_outage(0.4 * horizon, 1, 0.25 * horizon),
            // 0.2 of the paper's $100/h ceiling undercuts the ~$29/h the
            // client-server deployment actually spends, so the cut binds
            // and the planner dilutes streams best-effort.
            Self::BudgetCut => FaultSchedule::budget_shock(0.5 * horizon, 0.2),
            Self::TrackerDropout => FaultSchedule::tracker_blackout(0.35 * horizon, 0.3 * horizon),
        };
        if shed {
            schedule.degrade = DegradeMode::ShedNewArrivals;
        }
        schedule
    }
}

/// Errors from parsing or executing a command.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the message is user-facing.
    Usage(String),
    /// Execution failed; the message is user-facing.
    Run(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
cloudmedia — CloudMedia VoD cloud-provisioning toolkit (ICDCS 2011 reproduction)

USAGE:
  cloudmedia analyze --arrival-rate R [--upload BYTES_PER_S]
  cloudmedia plan --arrival-rates R1,R2,... [--mode cs|p2p] [--budget DOLLARS]
  cloudmedia simulate [--mode cs|p2p] [--hours H]
                      [--kernel scan|indexed|event-driven|sharded]
                      [--config FILE] [--out FILE] [--no-quiesce]
  cloudmedia des <baseline|boot-delay|vm-failure|flash-crowd>
                 [--mode cs|p2p] [--hours H] [--scheduler heap|wheel] [--out FILE]
  cloudmedia geo <independent|federated|central> [--mode cs|p2p] [--hours H]
  cloudmedia chaos <vm-outage|site-outage|budget-cut|tracker-dropout>
                   [--mode cs|p2p] [--hours H]
                   [--kernel scan|indexed|event-driven|sharded]
                   [--serial] [--shed] [--out FILE] [--no-quiesce]
  cloudmedia scale [--peers N] [--channels C] [--mode cs|p2p] [--hours H]
                   [--serial | --lanes N] [--out FILE] [--no-quiesce]
  cloudmedia profile [--mode cs|p2p] [--hours H]
                     [--kernel scan|indexed|event-driven|sharded] [--out FILE]
  cloudmedia default-config [--mode cs|p2p]
  cloudmedia help

Every run-style subcommand (simulate, des, geo, chaos, scale) also accepts:
  --telemetry FILE   write the metrics-registry snapshot as JSON
  --trace FILE       write Chrome trace-event JSON (Perfetto / chrome://tracing)
Telemetry never changes simulation results: outputs are bit-identical
with the flags on or off. `--no-quiesce` disables the quiescence-aware
epoch engine (simulate/chaos/scale); it too never changes results —
skipped rounds are bit-identical to stepped ones.
";

fn parse_mode(v: &str) -> Result<SimMode, CliError> {
    match v {
        "cs" | "client-server" => Ok(SimMode::ClientServer),
        "p2p" => Ok(SimMode::P2p),
        other => Err(CliError::Usage(format!(
            "unknown mode `{other}` (use cs|p2p)"
        ))),
    }
}

/// Parses a `--kernel` value. An unknown kernel name is a hard usage
/// error — never a silent fallback to the default engine, which would
/// quietly benchmark or validate the wrong implementation.
fn parse_kernel(v: &str) -> Result<SimKernel, CliError> {
    match v {
        "scan" => Ok(SimKernel::Scan),
        "indexed" => Ok(SimKernel::Indexed),
        "event-driven" | "des" => Ok(SimKernel::EventDriven),
        "sharded" => Ok(SimKernel::Sharded),
        other => Err(CliError::Usage(format!(
            "unknown kernel `{other}` (use scan|indexed|event-driven|sharded)"
        ))),
    }
}

/// Parses a `--scheduler` value (the DES event-queue backend). Unknown
/// names are usage errors, not fallbacks.
fn parse_scheduler(v: &str) -> Result<SchedulerChoice, CliError> {
    match v {
        "heap" => Ok(SchedulerChoice::Heap),
        "wheel" => Ok(SchedulerChoice::Wheel),
        other => Err(CliError::Usage(format!(
            "unknown scheduler `{other}` (use heap|wheel)"
        ))),
    }
}

fn take_value<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<&'a str, CliError> {
    args.next()
        .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
}

/// Parses argv (without the program name) into a [`Command`].
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown commands, flags, or values.
pub fn parse(args: &[&str]) -> Result<Command, CliError> {
    let mut it = args.iter().copied();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "analyze" => {
            let mut arrival_rate = None;
            let mut mean_upload = 34_000.0;
            while let Some(flag) = it.next() {
                match flag {
                    "--arrival-rate" => {
                        arrival_rate = Some(parse_f64(take_value(&mut it, flag)?, flag)?);
                    }
                    "--upload" => mean_upload = parse_f64(take_value(&mut it, flag)?, flag)?,
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            let arrival_rate = arrival_rate
                .ok_or_else(|| CliError::Usage("analyze requires --arrival-rate".into()))?;
            Ok(Command::Analyze {
                arrival_rate,
                mean_upload,
            })
        }
        "plan" => {
            let mut rates = None;
            let mut mode = SimMode::ClientServer;
            let mut budget = 100.0;
            while let Some(flag) = it.next() {
                match flag {
                    "--arrival-rates" => {
                        let v = take_value(&mut it, flag)?;
                        let parsed: Result<Vec<f64>, _> =
                            v.split(',').map(|p| p.trim().parse::<f64>()).collect();
                        rates = Some(parsed.map_err(|_| {
                            CliError::Usage(format!("bad --arrival-rates value `{v}`"))
                        })?);
                    }
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    "--budget" => budget = parse_f64(take_value(&mut it, flag)?, flag)?,
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            let arrival_rates =
                rates.ok_or_else(|| CliError::Usage("plan requires --arrival-rates".into()))?;
            if arrival_rates.is_empty() {
                return Err(CliError::Usage("at least one arrival rate required".into()));
            }
            Ok(Command::Plan {
                arrival_rates,
                mode,
                budget,
            })
        }
        "simulate" => {
            let mut mode = SimMode::P2p;
            let mut hours = 24.0;
            let mut kernel = None;
            let mut config_path = None;
            let mut out_path = None;
            let mut no_quiesce = false;
            let mut telemetry = TelemetryOpts::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    "--hours" => hours = parse_f64(take_value(&mut it, flag)?, flag)?,
                    "--kernel" => kernel = Some(parse_kernel(take_value(&mut it, flag)?)?),
                    "--config" => config_path = Some(take_value(&mut it, flag)?.to_owned()),
                    "--out" => out_path = Some(take_value(&mut it, flag)?.to_owned()),
                    "--no-quiesce" => no_quiesce = true,
                    "--telemetry" => {
                        telemetry.metrics_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    "--trace" => {
                        telemetry.trace_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Simulate {
                mode,
                hours,
                kernel,
                config_path,
                out_path,
                no_quiesce,
                telemetry,
            })
        }
        "des" => {
            let scenario = it
                .next()
                .ok_or_else(|| CliError::Usage("des requires a scenario".into()))
                .and_then(DesScenarioKind::parse)?;
            let mut mode = SimMode::P2p;
            let mut hours = 24.0;
            let mut scheduler = SchedulerChoice::default();
            let mut out_path = None;
            let mut telemetry = TelemetryOpts::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    "--hours" => hours = parse_f64(take_value(&mut it, flag)?, flag)?,
                    "--scheduler" => scheduler = parse_scheduler(take_value(&mut it, flag)?)?,
                    "--out" => out_path = Some(take_value(&mut it, flag)?.to_owned()),
                    "--telemetry" => {
                        telemetry.metrics_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    "--trace" => {
                        telemetry.trace_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Des {
                scenario,
                mode,
                hours,
                scheduler,
                out_path,
                telemetry,
            })
        }
        "geo" => {
            let deployment = it
                .next()
                .ok_or_else(|| CliError::Usage("geo requires a deployment".into()))
                .and_then(parse_deployment)?;
            let mut mode = SimMode::ClientServer;
            let mut hours = 24.0;
            let mut telemetry = TelemetryOpts::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    "--hours" => hours = parse_f64(take_value(&mut it, flag)?, flag)?,
                    "--telemetry" => {
                        telemetry.metrics_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    "--trace" => {
                        telemetry.trace_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Geo {
                deployment,
                mode,
                hours,
                telemetry,
            })
        }
        "chaos" => {
            let scenario = it
                .next()
                .ok_or_else(|| CliError::Usage("chaos requires a scenario".into()))
                .and_then(ChaosScenarioKind::parse)?;
            let mut mode = SimMode::ClientServer;
            let mut hours = 24.0;
            let mut kernel = None;
            let mut serial = false;
            let mut shed = false;
            let mut out_path = None;
            let mut no_quiesce = false;
            let mut telemetry = TelemetryOpts::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    "--hours" => hours = parse_f64(take_value(&mut it, flag)?, flag)?,
                    "--kernel" => kernel = Some(parse_kernel(take_value(&mut it, flag)?)?),
                    "--serial" => serial = true,
                    "--shed" => shed = true,
                    "--out" => out_path = Some(take_value(&mut it, flag)?.to_owned()),
                    "--no-quiesce" => no_quiesce = true,
                    "--telemetry" => {
                        telemetry.metrics_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    "--trace" => {
                        telemetry.trace_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Chaos {
                scenario,
                mode,
                hours,
                kernel,
                serial,
                shed,
                out_path,
                no_quiesce,
                telemetry,
            })
        }
        "scale" => {
            let mut peers = 1_000_000.0_f64;
            let mut channels = 2000usize;
            let mut mode = SimMode::ClientServer;
            let mut hours = 1.0;
            let mut serial = false;
            let mut lanes = None;
            let mut out_path = None;
            let mut no_quiesce = false;
            let mut telemetry = TelemetryOpts::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--peers" => peers = parse_f64(take_value(&mut it, flag)?, flag)?,
                    "--channels" => {
                        let v = take_value(&mut it, flag)?;
                        channels = v.parse().map_err(|_| {
                            CliError::Usage(format!("bad value `{v}` for --channels"))
                        })?;
                    }
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    "--hours" => hours = parse_f64(take_value(&mut it, flag)?, flag)?,
                    "--serial" => serial = true,
                    "--lanes" => {
                        let v = take_value(&mut it, flag)?;
                        lanes = Some(v.parse::<usize>().map_err(|_| {
                            CliError::Usage(format!("bad value `{v}` for --lanes"))
                        })?);
                    }
                    "--out" => out_path = Some(take_value(&mut it, flag)?.to_owned()),
                    "--no-quiesce" => no_quiesce = true,
                    "--telemetry" => {
                        telemetry.metrics_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    "--trace" => {
                        telemetry.trace_path = Some(take_value(&mut it, flag)?.to_owned());
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            if serial && lanes.is_some() {
                return Err(CliError::Usage(
                    "--lanes conflicts with --serial: lanes parallelize inside a shard, \
                     --serial forces one-thread stepping (drop one of the two)"
                        .into(),
                ));
            }
            Ok(Command::Scale {
                peers,
                channels,
                mode,
                hours,
                serial,
                lanes: lanes.unwrap_or(0),
                out_path,
                no_quiesce,
                telemetry,
            })
        }
        "profile" => {
            let mut mode = SimMode::P2p;
            let mut hours = 24.0;
            let mut kernel = None;
            let mut out_path = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    "--hours" => hours = parse_f64(take_value(&mut it, flag)?, flag)?,
                    "--kernel" => kernel = Some(parse_kernel(take_value(&mut it, flag)?)?),
                    "--out" => out_path = Some(take_value(&mut it, flag)?.to_owned()),
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Profile {
                mode,
                hours,
                kernel,
                out_path,
            })
        }
        "default-config" => {
            let mut mode = SimMode::P2p;
            while let Some(flag) = it.next() {
                match flag {
                    "--mode" => mode = parse_mode(take_value(&mut it, flag)?)?,
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::DefaultConfig { mode })
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn parse_f64(v: &str, flag: &str) -> Result<f64, CliError> {
    v.parse()
        .map_err(|_| CliError::Usage(format!("bad value `{v}` for {flag}")))
}

fn paper_sla() -> SlaTerms {
    SlaTerms {
        virtual_clusters: paper_virtual_clusters(),
        nfs_clusters: paper_nfs_clusters(),
    }
}

/// Executes a command and returns its stdout text.
///
/// # Errors
///
/// Returns [`CliError::Run`] with a user-facing message on failure.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Analyze {
            arrival_rate,
            mean_upload,
        } => analyze(arrival_rate, mean_upload),
        Command::Plan {
            arrival_rates,
            mode,
            budget,
        } => plan(&arrival_rates, mode, budget),
        Command::Simulate {
            mode,
            hours,
            kernel,
            config_path,
            out_path,
            no_quiesce,
            telemetry,
        } => simulate(
            mode,
            hours,
            kernel,
            config_path.as_deref(),
            out_path.as_deref(),
            no_quiesce,
            &telemetry,
        ),
        Command::Des {
            scenario,
            mode,
            hours,
            scheduler,
            out_path,
            telemetry,
        } => des(
            scenario,
            mode,
            hours,
            scheduler,
            out_path.as_deref(),
            &telemetry,
        ),
        Command::Geo {
            deployment,
            mode,
            hours,
            telemetry,
        } => geo(deployment, mode, hours, &telemetry),
        Command::Chaos {
            scenario,
            mode,
            hours,
            kernel,
            serial,
            shed,
            out_path,
            no_quiesce,
            telemetry,
        } => chaos(
            scenario,
            mode,
            hours,
            kernel,
            serial,
            shed,
            out_path.as_deref(),
            no_quiesce,
            &telemetry,
        ),
        Command::Scale {
            peers,
            channels,
            mode,
            hours,
            serial,
            lanes,
            out_path,
            no_quiesce,
            telemetry,
        } => scale(
            peers,
            channels,
            mode,
            hours,
            serial,
            lanes,
            out_path.as_deref(),
            no_quiesce,
            &telemetry,
        ),
        Command::Profile {
            mode,
            hours,
            kernel,
            out_path,
        } => profile(mode, hours, kernel, out_path.as_deref()),
        Command::DefaultConfig { mode } => {
            serde_json::to_string_pretty(&SimConfig::paper_default(mode))
                .map(|mut s| {
                    s.push('\n');
                    s
                })
                .map_err(|e| CliError::Run(format!("serializing config failed: {e}")))
        }
    }
}

fn analyze(arrival_rate: f64, mean_upload: f64) -> Result<String, CliError> {
    let channel = ChannelModel::paper_default(0, arrival_rate);
    let cs = pooled_capacity_demand(&channel)
        .map_err(|e| CliError::Run(format!("analysis failed: {e}")))?;
    let p2p = p2p_capacity_with(
        &channel,
        mean_upload,
        PsiEstimator::Independent,
        DemandPooling::ChannelPooled,
    )
    .map_err(|e| CliError::Run(format!("P2P analysis failed: {e}")))?;
    let mut out = String::new();
    let mbps = |b: f64| b * 8.0 / 1e6;
    let population: f64 = cs
        .arrival_rates
        .iter()
        .map(|l| l * channel.chunk_seconds)
        .sum();
    let _ = writeln!(
        out,
        "channel: arrival rate {arrival_rate}/s, ~{population:.0} concurrent viewers"
    );
    let _ = writeln!(
        out,
        "client-server cloud demand: {:.1} Mbps",
        mbps(cs.total_upload_demand())
    );
    let _ = writeln!(
        out,
        "P2P peer contribution:      {:.1} Mbps",
        mbps(p2p.total_peer_contribution())
    );
    let _ = writeln!(
        out,
        "P2P cloud demand:           {:.1} Mbps",
        mbps(p2p.total_cloud_demand())
    );
    Ok(out)
}

fn plan(rates: &[f64], mode: SimMode, budget: f64) -> Result<String, CliError> {
    let streaming_mode = match mode {
        SimMode::ClientServer => StreamingMode::ClientServer,
        SimMode::P2p => StreamingMode::P2p {
            mean_upload: 34_000.0,
            psi: PsiEstimator::Independent,
        },
    };
    let mut config = ControllerConfig::paper_default(streaming_mode);
    config.vm_budget_per_hour = budget;
    let mut controller = Controller::new(config, PredictorKind::LastInterval)
        .map_err(|e| CliError::Run(format!("controller rejected config: {e}")))?;
    let stats: Vec<(usize, ChannelObservation)> = rates
        .iter()
        .enumerate()
        .map(|(id, &rate)| {
            let model = ChannelModel::paper_default(id, rate);
            (
                id,
                ChannelObservation {
                    arrival_rate: rate,
                    alpha: model.alpha,
                    routing: model.routing,
                },
            )
        })
        .collect();
    let plan = controller
        .plan_interval(&stats, &paper_sla())
        .map_err(|e| CliError::Run(format!("planning failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "channels: {}, mode: {mode:?}, budget ${budget}/h",
        rates.len()
    );
    let _ = writeln!(
        out,
        "VM targets [Standard, Medium, Advanced]: {:?} (${:.2}/h)",
        plan.vm_targets, plan.vm_plan.integer_hourly_cost
    );
    let _ = writeln!(
        out,
        "cloud demand: {:.1} Mbps",
        plan.total_cloud_demand * 8.0 / 1e6
    );
    if plan.expected_peer_contribution > 0.0 {
        let _ = writeln!(
            out,
            "expected peer contribution: {:.1} Mbps",
            plan.expected_peer_contribution * 8.0 / 1e6
        );
    }
    if let Some(p) = &plan.placement {
        let _ = writeln!(out, "storage placement: {} chunks", p.len());
    }
    Ok(out)
}

fn simulate(
    mode: SimMode,
    hours: f64,
    kernel: Option<SimKernel>,
    config_path: Option<&str>,
    out_path: Option<&str>,
    no_quiesce: bool,
    telemetry: &TelemetryOpts,
) -> Result<String, CliError> {
    let mut config = match config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Run(format!("cannot read {path}: {e}")))?;
            serde_json::from_str::<SimConfig>(&text)
                .map_err(|e| CliError::Run(format!("bad config {path}: {e}")))?
        }
        None => SimConfig::paper_default(mode),
    };
    if config_path.is_none() {
        config.trace.horizon_seconds = hours * 3600.0;
    }
    if let Some(kernel) = kernel {
        config.kernel = kernel;
    }
    if no_quiesce {
        config.quiescence = false;
    }
    let tel = telemetry.registry();
    let metrics = Simulator::new(config)
        .map_err(|e| CliError::Run(format!("invalid configuration: {e}")))?
        .run_with_telemetry(&tel)
        .map_err(|e| CliError::Run(format!("simulation failed: {e}")))?
        .metrics;
    if let Some(path) = out_path {
        let json = serde_json::to_string(&metrics)
            .map_err(|e| CliError::Run(format!("serializing metrics failed: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    }
    let mut out = String::new();
    let _ = writeln!(out, "simulated {:.1} h in {mode:?} mode", hours);
    let _ = writeln!(out, "mean streaming quality: {:.4}", metrics.mean_quality());
    let _ = writeln!(
        out,
        "cloud bandwidth: reserved {:.1} Mbps, used {:.1} Mbps (coverage {:.3})",
        metrics.mean_reserved_bandwidth() * 8.0 / 1e6,
        metrics.mean_used_bandwidth() * 8.0 / 1e6,
        metrics.provision_coverage(),
    );
    let _ = writeln!(
        out,
        "VM rental: ${:.2} total (${:.2}/h mean); storage: ${:.4} total",
        metrics.total_vm_cost,
        metrics.mean_vm_hourly_cost(),
        metrics.total_storage_cost,
    );
    let _ = writeln!(out, "peak concurrent viewers: {}", metrics.peak_peers());
    if let Some(path) = out_path {
        let _ = writeln!(out, "full metrics written to {path}");
    }
    telemetry.write(&tel, &mut out)?;
    Ok(out)
}

fn des(
    scenario: DesScenarioKind,
    mode: SimMode,
    hours: f64,
    scheduler: SchedulerChoice,
    out_path: Option<&str>,
    telemetry: &TelemetryOpts,
) -> Result<String, CliError> {
    let mut config = SimConfig::paper_default(mode);
    config.trace.horizon_seconds = hours * 3600.0;
    config.scheduler = scheduler;
    let spec = scenario.build(config.trace.horizon_seconds);
    let tel = telemetry.registry();
    let run = cloudmedia_sim::event_driven::run_with_telemetry(&config, &spec, &tel)
        .map_err(|e| CliError::Run(format!("event-driven run failed: {e}")))?;
    if let Some(path) = out_path {
        let json = serde_json::to_string(&run)
            .map_err(|e| CliError::Run(format!("serializing run failed: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    }
    let m = &run.metrics;
    let r = &run.report;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "event-driven run: {scenario:?} scenario, {hours:.1} h in {mode:?} mode \
         ({} events)",
        r.events_delivered
    );
    let _ = writeln!(out, "mean streaming quality: {:.4}", m.mean_quality());
    let _ = writeln!(
        out,
        "cloud bandwidth: reserved {:.1} Mbps, used {:.1} Mbps (coverage {:.3})",
        m.mean_reserved_bandwidth() * 8.0 / 1e6,
        m.mean_used_bandwidth() * 8.0 / 1e6,
        m.provision_coverage(),
    );
    let _ = writeln!(
        out,
        "VM rental: ${:.2} total (${:.2}/h mean)",
        m.total_vm_cost,
        m.mean_vm_hourly_cost(),
    );
    let l = &r.admission_latency;
    let _ = writeln!(
        out,
        "admission latency over {} requests: mean {:.2}s, p50 {:.2}s, p90 {:.2}s, \
         p99 {:.2}s, max {:.2}s",
        l.count, l.mean, l.p50, l.p90, l.p99, l.max
    );
    let _ = writeln!(
        out,
        "request split: {} cloud / {} peer; Erlang-C predicted wait fraction {:.3}, \
         measured {:.3}",
        r.cloud_requests, r.peer_requests, r.predicted_wait_fraction, r.measured_wait_fraction
    );
    let _ = writeln!(
        out,
        "peak concurrent viewers: {} (injected: {}); mean startup delay {:.2}s",
        m.peak_peers(),
        r.injected_viewers,
        m.mean_startup_delay()
    );
    let _ = writeln!(
        out,
        "kernel health: {} events delivered, peak {} pending, {} cancelled, \
         {} slots recycled",
        r.events_delivered, r.peak_pending_events, r.cancelled_events, r.recycled_slots
    );
    if r.vms_killed > 0 {
        let _ = writeln!(
            out,
            "failure injection killed {} VM instances",
            r.vms_killed
        );
    }
    if r.redirected_requests > 0 {
        let _ = writeln!(
            out,
            "remote overflow absorbed {} redirected requests",
            r.redirected_requests
        );
    }
    if let Some(path) = out_path {
        let _ = writeln!(out, "full run written to {path}");
    }
    telemetry.write(&tel, &mut out)?;
    Ok(out)
}

fn geo(
    deployment: DeploymentKind,
    mode: SimMode,
    hours: f64,
    telemetry: &TelemetryOpts,
) -> Result<String, CliError> {
    let config = FederatedConfig::paper_default(deployment, mode, hours);
    let tel = telemetry.registry();
    let m = FederatedSimulator::new(config)
        .map_err(|e| CliError::Run(format!("invalid federation config: {e}")))?
        .run_with_telemetry(&tel)
        .map_err(|e| CliError::Run(format!("federated run failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "geo {deployment:?} deployment: {hours:.1} h in {mode:?} mode, {} region(s)",
        m.per_region.len()
    );
    for r in &m.per_region {
        let _ = writeln!(
            out,
            "  {:<9} site {:.2}x prices: VM ${:.2}, redirected {:.1}% of its cloud \
             traffic (egress ${:.2}, SLA penalty ${:.2}), quality {:.4}",
            r.region.name,
            r.site.vm_price_factor,
            r.metrics.total_vm_cost,
            r.redirected_share() * 100.0,
            r.transfer_cost,
            r.latency_penalty_cost,
            r.metrics.mean_quality(),
        );
    }
    let _ = writeln!(
        out,
        "total cost: ${:.2} (VM ${:.2} + storage ${:.4} + transfer ${:.2} + latency \
         penalty ${:.2})",
        m.total_cost(),
        m.total_vm_cost,
        m.total_storage_cost,
        m.total_transfer_cost,
        m.total_latency_penalty_cost,
    );
    let _ = writeln!(
        out,
        "redirected share: {:.1}%; mean quality {:.4}; peak viewers {}",
        m.redirected_share() * 100.0,
        m.mean_quality(),
        m.peak_peers(),
    );
    telemetry.write(&tel, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)] // mirrors Command::Chaos's fields one-to-one
fn chaos(
    scenario: ChaosScenarioKind,
    mode: SimMode,
    hours: f64,
    kernel: Option<SimKernel>,
    serial: bool,
    shed: bool,
    out_path: Option<&str>,
    no_quiesce: bool,
    telemetry: &TelemetryOpts,
) -> Result<String, CliError> {
    let horizon = hours * 3600.0;
    let schedule = scenario.build(horizon, shed);
    let fault_start = schedule.first_fault_at().unwrap_or(0.0);
    // Telemetry records the faulted run — the one whose fault plane the
    // registry's `faults/*` counters mirror. The baseline runs dark.
    let tel = telemetry.registry();
    let report = if scenario == ChaosScenarioKind::SiteOutage {
        if kernel.is_some() {
            return Err(CliError::Usage(
                "site-outage always runs the federated simulator; --kernel does not apply".into(),
            ));
        }
        let mut fc = FederatedConfig::paper_default(DeploymentKind::Federated, mode, hours);
        fc.parallel_regions = !serial;
        fc.base.quiescence = !no_quiesce;
        let baseline = FederatedSimulator::new(fc.clone())
            .map_err(|e| CliError::Run(format!("invalid federation config: {e}")))?
            .run()
            .map_err(|e| CliError::Run(format!("baseline run failed: {e}")))?;
        let outaged_site = schedule.site_outages[0].site;
        fc.base.faults = schedule;
        let faulted = FederatedSimulator::new(fc)
            .map_err(|e| CliError::Run(format!("invalid fault schedule: {e}")))?
            .run_with_telemetry(&tel)
            .map_err(|e| CliError::Run(format!("faulted run failed: {e}")))?;
        // Quality observables come from the outaged site's own region —
        // the viewers the lost site was serving — while the cost
        // overshoot is deployment-wide (the surviving sites absorb the
        // demand and bill for it).
        let mut report = ResilienceReport::from_runs(
            &baseline.per_region[outaged_site].metrics,
            &faulted.per_region[outaged_site].metrics,
            fault_start,
            faulted.fault_stats.clone(),
        );
        report.cost_overshoot_dollars = faulted.total_cost() - baseline.total_cost();
        report
    } else {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.trace.horizon_seconds = horizon;
        if let Some(kernel) = kernel {
            cfg.kernel = kernel;
        }
        cfg.parallel_channels = !serial;
        cfg.quiescence = !no_quiesce;
        let baseline = Simulator::new(cfg.clone())
            .map_err(|e| CliError::Run(format!("invalid configuration: {e}")))?
            .run()
            .map_err(|e| CliError::Run(format!("baseline run failed: {e}")))?;
        cfg.faults = schedule;
        let faulted = Simulator::new(cfg)
            .map_err(|e| CliError::Run(format!("invalid fault schedule: {e}")))?
            .run_with_telemetry(&tel)
            .map_err(|e| CliError::Run(format!("faulted run failed: {e}")))?;
        ResilienceReport::from_runs(
            &baseline,
            &faulted.metrics,
            fault_start,
            faulted.fault_stats,
        )
    };
    if let Some(path) = out_path {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::Run(format!("serializing report failed: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos {scenario:?}: {hours:.1} h in {mode:?} mode, fault at t = {fault_start:.0} s"
    );
    let _ = writeln!(
        out,
        "quality: baseline mean {:.4}, faulted mean {:.4}, floor {:.4}",
        report.baseline_mean_quality, report.faulted_mean_quality, report.quality_floor
    );
    let _ = writeln!(
        out,
        "dip: depth {:.4}, duration {:.0} s, time to recover {:.0} s",
        report.dip_depth, report.dip_duration_seconds, report.time_to_recover_seconds
    );
    let _ = writeln!(out, "cost overshoot: ${:.2}", report.cost_overshoot_dollars);
    let s = &report.fault_stats;
    let _ = writeln!(
        out,
        "fault plane: {} VMs killed, {} recovered, {} arrivals shed, {} retries \
         ({:.0} s backoff), {} degraded submissions, {} fallback intervals, \
         {} emergency re-plans",
        s.vms_killed,
        s.vms_recovered,
        s.shed_arrivals,
        s.retry_attempts,
        s.retry_backoff_seconds,
        s.degraded_submissions,
        s.fallback_intervals,
        s.emergency_replans,
    );
    if let Some(path) = out_path {
        let _ = writeln!(out, "resilience report written to {path}");
    }
    telemetry.write(&tel, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)] // mirrors Command::Scale's fields one-to-one
fn scale(
    peers: f64,
    channels: usize,
    mode: SimMode,
    hours: f64,
    serial: bool,
    lanes: usize,
    out_path: Option<&str>,
    no_quiesce: bool,
    telemetry: &TelemetryOpts,
) -> Result<String, CliError> {
    let mut config = SimConfig::scale_out(mode, channels, peers)
        .map_err(|e| CliError::Run(format!("invalid scale configuration: {e}")))?;
    config.trace.horizon_seconds = hours * 3600.0;
    config.parallel_channels = !serial;
    config.lanes = lanes;
    config.quiescence = !no_quiesce;
    let tel = telemetry.registry();
    let started = std::time::Instant::now();
    let metrics = Simulator::new(config)
        .map_err(|e| CliError::Run(format!("invalid configuration: {e}")))?
        .run_with_telemetry(&tel)
        .map_err(|e| CliError::Run(format!("simulation failed: {e}")))?
        .metrics;
    let wall = started.elapsed().as_secs_f64();
    if let Some(path) = out_path {
        let json = serde_json::to_string(&metrics)
            .map_err(|e| CliError::Run(format!("serializing metrics failed: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scale run: {channels} channels, target {peers:.0} concurrent viewers, \
         {hours:.1} h in {mode:?} mode ({} shard stepping, {} pool threads, {}, \
         quiescence {})",
        if serial { "serial" } else { "parallel" },
        rayon_threads(),
        if serial {
            "single-lane".to_owned()
        } else if lanes == 0 {
            "auto lane cap".to_owned()
        } else {
            format!("lane cap {lanes}")
        },
        if no_quiesce { "off" } else { "on" },
    );
    let _ = writeln!(
        out,
        "peak concurrent viewers: {}; mean streaming quality: {:.4}",
        metrics.peak_peers(),
        metrics.mean_quality()
    );
    let _ = writeln!(
        out,
        "cloud bandwidth: reserved {:.1} Mbps, used {:.1} Mbps (coverage {:.3})",
        metrics.mean_reserved_bandwidth() * 8.0 / 1e6,
        metrics.mean_used_bandwidth() * 8.0 / 1e6,
        metrics.provision_coverage(),
    );
    let _ = writeln!(
        out,
        "wall time: {wall:.2}s ({:.1} sim-hours per wall-second)",
        hours / wall.max(1e-9)
    );
    if let Some(rss) = cloudmedia_sim::peak_rss_bytes() {
        let _ = writeln!(out, "peak RSS: {:.0} MB", rss as f64 / 1e6);
    }
    if let Some(path) = out_path {
        let _ = writeln!(out, "full metrics written to {path}");
    }
    telemetry.write(&tel, &mut out)?;
    Ok(out)
}

/// Runs one simulation with an enabled metrics registry and prints the
/// per-stage wall-time table, sorted by time spent.
///
/// Stage times come from the `stage/*` counters, which partition the
/// round loop without overlap — `prov/*` sub-stages are nested inside
/// `stage/provisioning` and are listed separately so nothing is counted
/// twice in the share column.
fn profile(
    mode: SimMode,
    hours: f64,
    kernel: Option<SimKernel>,
    out_path: Option<&str>,
) -> Result<String, CliError> {
    let mut config = SimConfig::paper_default(mode);
    config.trace.horizon_seconds = hours * 3600.0;
    if let Some(kernel) = kernel {
        config.kernel = kernel;
    }
    let kernel_name = format!("{:?}", config.kernel);
    let tel = telem::new_registry(false);
    let run = Simulator::new(config)
        .map_err(|e| CliError::Run(format!("invalid configuration: {e}")))?
        .run_with_telemetry(&tel)
        .map_err(|e| CliError::Run(format!("simulation failed: {e}")))?;
    let snap = tel.snapshot();
    if let Some(path) = out_path {
        std::fs::write(path, snap.metrics_json())
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    }
    let stages = snap.sorted_by_value("stage/");
    let staged_ns: u64 = stages.iter().map(|&(_, v)| v).sum();
    let run_ns = snap.value(telem::RUN_WALL);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {kernel_name} kernel, {hours:.1} h in {mode:?} mode, {} rounds",
        snap.value(telem::ROUNDS)
    );
    let _ = writeln!(out, "{:<24} {:>12} {:>8}", "stage", "time", "share");
    for &(name, ns) in &stages {
        if ns == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<24} {:>9.3} ms {:>7.1}%",
            name,
            ns as f64 / 1e6,
            ns as f64 / staged_ns.max(1) as f64 * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "{:<24} {:>9.3} ms (run wall {:.3} ms)",
        "total staged",
        staged_ns as f64 / 1e6,
        run_ns as f64 / 1e6,
    );
    // The quiescence engine only reports on the sharded kernel; zero
    // everywhere else, so the line is gated rather than noise.
    let skipped = snap.value(telem::QUIESCE_ROUNDS_SKIPPED);
    let dirty = snap.value(telem::QUIESCE_DIRTY_CHANNELS);
    if skipped > 0 || dirty > 0 {
        let _ = writeln!(
            out,
            "quiescence: {skipped} shard-rounds skipped, {dirty} epochs dirtied \
             (catch-up spans in hist/catchup_k)",
        );
    }
    let _ = writeln!(
        out,
        "mean streaming quality: {:.4} (telemetry never changes results)",
        run.metrics.mean_quality()
    );
    if let Some(path) = out_path {
        let _ = writeln!(out, "telemetry snapshot written to {path}");
    }
    Ok(out)
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_chaos() {
        let c = parse(&["chaos", "vm-outage"]).unwrap();
        assert_eq!(
            c,
            Command::Chaos {
                scenario: ChaosScenarioKind::VmOutage,
                mode: SimMode::ClientServer,
                hours: 24.0,
                kernel: None,
                serial: false,
                shed: false,
                out_path: None,
                no_quiesce: false,
                telemetry: TelemetryOpts::default(),
            }
        );
        let c = parse(&[
            "chaos",
            "budget-cut",
            "--mode",
            "p2p",
            "--hours",
            "6",
            "--kernel",
            "sharded",
            "--serial",
            "--shed",
            "--out",
            "r.json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Chaos {
                scenario: ChaosScenarioKind::BudgetCut,
                mode: SimMode::P2p,
                hours: 6.0,
                kernel: Some(SimKernel::Sharded),
                serial: true,
                shed: true,
                out_path: Some("r.json".into()),
                no_quiesce: false,
                telemetry: TelemetryOpts::default(),
            }
        );
        assert!(parse(&["chaos"]).is_err(), "scenario required");
        assert!(parse(&["chaos", "meteor-strike"]).is_err());
    }

    #[test]
    fn chaos_schedules_scale_with_the_horizon() {
        let s = ChaosScenarioKind::VmOutage.build(36_000.0, false);
        assert_eq!(s.vm_failures[0].at, 18_000.0);
        assert_eq!(s.vm_failures[0].recovery_seconds, 9_000.0);
        assert_eq!(s.degrade, DegradeMode::DiluteAllStreams);
        let s = ChaosScenarioKind::VmOutage.build(36_000.0, true);
        assert_eq!(s.degrade, DegradeMode::ShedNewArrivals);
        let s = ChaosScenarioKind::SiteOutage.build(36_000.0, false);
        assert_eq!(s.site_outages[0].site, 1);
        s.validate().unwrap();
        ChaosScenarioKind::BudgetCut
            .build(36_000.0, false)
            .validate()
            .unwrap();
        ChaosScenarioKind::TrackerDropout
            .build(36_000.0, false)
            .validate()
            .unwrap();
    }

    #[test]
    fn chaos_site_outage_rejects_kernel_override() {
        let err = run(Command::Chaos {
            scenario: ChaosScenarioKind::SiteOutage,
            mode: SimMode::ClientServer,
            hours: 2.0,
            kernel: Some(SimKernel::Indexed),
            serial: true,
            shed: false,
            out_path: None,
            no_quiesce: false,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "got {err:?}");
    }

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_analyze() {
        let c = parse(&["analyze", "--arrival-rate", "0.2"]).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                arrival_rate: 0.2,
                mean_upload: 34_000.0
            }
        );
        let c = parse(&["analyze", "--arrival-rate", "0.2", "--upload", "50000"]).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                arrival_rate: 0.2,
                mean_upload: 50_000.0
            }
        );
    }

    #[test]
    fn parse_plan() {
        let c = parse(&[
            "plan",
            "--arrival-rates",
            "0.1,0.2",
            "--mode",
            "p2p",
            "--budget",
            "50",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Plan {
                arrival_rates: vec![0.1, 0.2],
                mode: SimMode::P2p,
                budget: 50.0
            }
        );
    }

    #[test]
    fn parse_simulate_defaults() {
        let c = parse(&["simulate"]).unwrap();
        assert_eq!(
            c,
            Command::Simulate {
                mode: SimMode::P2p,
                hours: 24.0,
                kernel: None,
                config_path: None,
                out_path: None,
                no_quiesce: false,
                telemetry: TelemetryOpts::default(),
            }
        );
    }

    #[test]
    fn parse_simulate_kernel_selection() {
        for (name, kernel) in [
            ("scan", SimKernel::Scan),
            ("indexed", SimKernel::Indexed),
            ("event-driven", SimKernel::EventDriven),
            ("des", SimKernel::EventDriven),
            ("sharded", SimKernel::Sharded),
        ] {
            let c = parse(&["simulate", "--kernel", name]).unwrap();
            assert!(
                matches!(c, Command::Simulate { kernel: Some(k), .. } if k == kernel),
                "--kernel {name} parsed wrong"
            );
        }
    }

    #[test]
    fn unknown_kernel_string_is_a_usage_error_not_a_fallback() {
        // The whole point: a typo must never silently run the default
        // engine (which would e.g. benchmark the wrong kernel).
        for bad in ["Indexed", "quantum", "scan2", ""] {
            let err = parse(&["simulate", "--kernel", bad]).unwrap_err();
            match err {
                CliError::Usage(msg) => {
                    assert!(
                        msg.contains("unknown kernel") && msg.contains("scan|indexed"),
                        "unhelpful message for `{bad}`: {msg}"
                    );
                }
                other => panic!("expected usage error for `{bad}`, got {other:?}"),
            }
        }
        // Missing value is also a usage error.
        assert!(matches!(
            parse(&["simulate", "--kernel"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_scheduler_string_is_a_usage_error_not_a_fallback() {
        for bad in ["Wheel", "calendar", "binary-heap", ""] {
            let err = parse(&["des", "baseline", "--scheduler", bad]).unwrap_err();
            match err {
                CliError::Usage(msg) => {
                    assert!(
                        msg.contains("unknown scheduler") && msg.contains("heap|wheel"),
                        "unhelpful message for `{bad}`: {msg}"
                    );
                }
                other => panic!("expected usage error for `{bad}`, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_des_scenarios() {
        let c = parse(&["des", "baseline"]).unwrap();
        assert_eq!(
            c,
            Command::Des {
                scenario: DesScenarioKind::Baseline,
                mode: SimMode::P2p,
                hours: 24.0,
                scheduler: SchedulerChoice::Wheel,
                out_path: None,
                telemetry: TelemetryOpts::default(),
            }
        );
        let c = parse(&[
            "des",
            "vm-failure",
            "--mode",
            "cs",
            "--hours",
            "6",
            "--scheduler",
            "heap",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Des {
                scenario: DesScenarioKind::VmFailure,
                mode: SimMode::ClientServer,
                hours: 6.0,
                scheduler: SchedulerChoice::Heap,
                out_path: None,
                telemetry: TelemetryOpts::default(),
            }
        );
        assert!(matches!(parse(&["des"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["des", "meteor"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn des_scenarios_build_their_specs() {
        let horizon = 10.0 * 3600.0;
        assert_eq!(
            DesScenarioKind::Baseline.build(horizon),
            DesScenario::default()
        );
        let boot = DesScenarioKind::BootDelay.build(horizon);
        assert_eq!(boot.vm_boot_seconds, Some(300.0));
        let fail = DesScenarioKind::VmFailure.build(horizon);
        assert_eq!(fail.failures.len(), 1);
        assert!(fail.failures[0].at < horizon);
        let crowd = DesScenarioKind::FlashCrowd.build(horizon);
        assert_eq!(crowd.flash_crowds.len(), 1);
        assert!(crowd.flash_crowds[0].at < horizon);
    }

    #[test]
    fn des_baseline_short_run_reports_latency() {
        let out = run(Command::Des {
            scenario: DesScenarioKind::Baseline,
            mode: SimMode::ClientServer,
            hours: 1.0,
            scheduler: SchedulerChoice::Wheel,
            out_path: None,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap();
        assert!(out.contains("admission latency"), "got: {out}");
        assert!(out.contains("Erlang-C predicted wait fraction"));
        assert!(out.contains("mean streaming quality"));
    }

    #[test]
    fn parse_geo_deployments() {
        let c = parse(&["geo", "federated"]).unwrap();
        assert_eq!(
            c,
            Command::Geo {
                deployment: DeploymentKind::Federated,
                mode: SimMode::ClientServer,
                hours: 24.0,
                telemetry: TelemetryOpts::default(),
            }
        );
        let c = parse(&["geo", "central", "--mode", "p2p", "--hours", "6"]).unwrap();
        assert_eq!(
            c,
            Command::Geo {
                deployment: DeploymentKind::Central,
                mode: SimMode::P2p,
                hours: 6.0,
                telemetry: TelemetryOpts::default(),
            }
        );
        assert!(matches!(parse(&["geo"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["geo", "mars"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn geo_federated_short_run_reports_redirection() {
        let out = run(Command::Geo {
            deployment: DeploymentKind::Federated,
            mode: SimMode::ClientServer,
            hours: 2.0,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap();
        assert!(out.contains("total cost"), "got: {out}");
        assert!(out.contains("redirected share"));
        assert!(out.contains("americas"));
    }

    #[test]
    fn parse_scale_defaults_and_flags() {
        let c = parse(&["scale"]).unwrap();
        assert_eq!(
            c,
            Command::Scale {
                peers: 1_000_000.0,
                channels: 2000,
                mode: SimMode::ClientServer,
                hours: 1.0,
                serial: false,
                lanes: 0,
                out_path: None,
                no_quiesce: false,
                telemetry: TelemetryOpts::default(),
            }
        );
        let c = parse(&[
            "scale",
            "--peers",
            "200000",
            "--channels",
            "500",
            "--mode",
            "p2p",
            "--hours",
            "0.5",
            "--serial",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Scale {
                peers: 200_000.0,
                channels: 500,
                mode: SimMode::P2p,
                hours: 0.5,
                serial: true,
                lanes: 0,
                out_path: None,
                no_quiesce: false,
                telemetry: TelemetryOpts::default(),
            }
        );
        let c = parse(&["scale", "--lanes", "8"]).unwrap();
        assert!(
            matches!(
                c,
                Command::Scale {
                    lanes: 8,
                    serial: false,
                    ..
                }
            ),
            "got: {c:?}"
        );
        assert!(matches!(
            parse(&["scale", "--channels", "many"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["scale", "--lanes", "several"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["scale", "--warp-speed"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_no_quiesce_on_run_subcommands() {
        assert!(matches!(
            parse(&["scale", "--no-quiesce"]).unwrap(),
            Command::Scale {
                no_quiesce: true,
                ..
            }
        ));
        assert!(matches!(
            parse(&["simulate", "--no-quiesce"]).unwrap(),
            Command::Simulate {
                no_quiesce: true,
                ..
            }
        ));
        assert!(matches!(
            parse(&["chaos", "vm-outage", "--no-quiesce"]).unwrap(),
            Command::Chaos {
                no_quiesce: true,
                ..
            }
        ));
        // Not a run-style flag elsewhere: des/geo/profile reject it.
        assert!(matches!(
            parse(&["des", "baseline", "--no-quiesce"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn scale_lanes_conflicts_with_serial() {
        // Order must not matter, and the message should name both flags.
        for argv in [
            &["scale", "--serial", "--lanes", "4"][..],
            &["scale", "--lanes", "4", "--serial"][..],
        ] {
            let err = parse(argv).unwrap_err();
            let CliError::Usage(msg) = &err else {
                panic!("expected a usage error, got: {err}");
            };
            assert!(
                msg.contains("--lanes") && msg.contains("--serial"),
                "got: {msg}"
            );
        }
    }

    #[test]
    fn scale_short_run_reports_throughput() {
        // Small but definitely sharded: population and channel count kept
        // tiny so the test stays fast.
        let out = run(Command::Scale {
            peers: 300.0,
            channels: 6,
            mode: SimMode::ClientServer,
            hours: 1.0,
            serial: false,
            lanes: 0,
            out_path: None,
            no_quiesce: false,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap();
        assert!(out.contains("scale run: 6 channels"), "got: {out}");
        assert!(out.contains("quiescence on"), "got: {out}");
        assert!(out.contains("sim-hours per wall-second"));
        assert!(out.contains("peak concurrent viewers"));

        let off = run(Command::Scale {
            peers: 300.0,
            channels: 6,
            mode: SimMode::ClientServer,
            hours: 1.0,
            serial: false,
            lanes: 0,
            out_path: None,
            no_quiesce: true,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap();
        assert!(off.contains("quiescence off"), "got: {off}");
    }

    #[test]
    fn profile_sharded_kernel_reports_quiescence() {
        let out = run(Command::Profile {
            mode: SimMode::ClientServer,
            hours: 2.0,
            kernel: Some(SimKernel::Sharded),
            out_path: None,
        })
        .unwrap();
        assert!(
            out.contains("quiescence:") && out.contains("shard-rounds skipped"),
            "got: {out}"
        );
    }

    #[test]
    fn scale_rejects_bad_configs() {
        let err = run(Command::Scale {
            peers: -5.0,
            channels: 6,
            mode: SimMode::ClientServer,
            hours: 1.0,
            serial: false,
            lanes: 0,
            out_path: None,
            no_quiesce: false,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("invalid scale configuration"),
            "got: {err}"
        );
    }

    #[test]
    fn parse_errors_are_usage_errors() {
        assert!(matches!(parse(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["analyze"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&["analyze", "--arrival-rate"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["analyze", "--arrival-rate", "abc"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["simulate", "--mode", "ftp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["plan", "--arrival-rates", ""]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn analyze_runs_and_reports_p2p_savings() {
        let out = run(Command::Analyze {
            arrival_rate: 0.2,
            mean_upload: 34_000.0,
        })
        .unwrap();
        assert!(out.contains("client-server cloud demand"));
        assert!(out.contains("P2P cloud demand"));
    }

    #[test]
    fn plan_runs_for_multiple_channels() {
        let out = run(Command::Plan {
            arrival_rates: vec![0.1, 0.05],
            mode: SimMode::ClientServer,
            budget: 100.0,
        })
        .unwrap();
        assert!(out.contains("VM targets"));
        assert!(out.contains("storage placement"));
    }

    #[test]
    fn plan_surfaces_infeasible_budget() {
        let err = run(Command::Plan {
            arrival_rates: vec![0.5],
            mode: SimMode::ClientServer,
            budget: 0.5,
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("increase the budget"),
            "got: {err}"
        );
    }

    #[test]
    fn default_config_round_trips() {
        let out = run(Command::DefaultConfig { mode: SimMode::P2p }).unwrap();
        let parsed: SimConfig = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed, SimConfig::paper_default(SimMode::P2p));
    }

    #[test]
    fn parse_telemetry_flags_on_every_run_subcommand() {
        let opts = TelemetryOpts {
            metrics_path: Some("m.json".into()),
            trace_path: Some("t.json".into()),
        };
        let cases: &[&[&str]] = &[
            &["simulate", "--telemetry", "m.json", "--trace", "t.json"],
            &[
                "des",
                "baseline",
                "--telemetry",
                "m.json",
                "--trace",
                "t.json",
            ],
            &[
                "geo",
                "federated",
                "--telemetry",
                "m.json",
                "--trace",
                "t.json",
            ],
            &[
                "chaos",
                "vm-outage",
                "--telemetry",
                "m.json",
                "--trace",
                "t.json",
            ],
            &["scale", "--telemetry", "m.json", "--trace", "t.json"],
        ];
        for args in cases {
            let parsed = match parse(args).unwrap() {
                Command::Simulate { telemetry, .. }
                | Command::Des { telemetry, .. }
                | Command::Geo { telemetry, .. }
                | Command::Chaos { telemetry, .. }
                | Command::Scale { telemetry, .. } => telemetry,
                other => panic!("unexpected parse for {args:?}: {other:?}"),
            };
            assert_eq!(parsed, opts, "args: {args:?}");
        }
        // A missing value is a usage error, as for every other flag.
        assert!(matches!(
            parse(&["simulate", "--telemetry"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&["scale", "--trace"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_profile() {
        let c = parse(&["profile"]).unwrap();
        assert_eq!(
            c,
            Command::Profile {
                mode: SimMode::P2p,
                hours: 24.0,
                kernel: None,
                out_path: None,
            }
        );
        let c = parse(&[
            "profile", "--mode", "cs", "--hours", "2", "--kernel", "sharded", "--out", "p.json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Profile {
                mode: SimMode::ClientServer,
                hours: 2.0,
                kernel: Some(SimKernel::Sharded),
                out_path: Some("p.json".into()),
            }
        );
        assert!(matches!(
            parse(&["profile", "--kernel", "quantum"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn profile_short_run_prints_stage_table() {
        let out = run(Command::Profile {
            mode: SimMode::ClientServer,
            hours: 1.0,
            kernel: Some(SimKernel::Indexed),
            out_path: None,
        })
        .unwrap();
        assert!(out.contains("profile: Indexed kernel"), "got: {out}");
        assert!(out.contains("stage/advance"), "got: {out}");
        assert!(out.contains("total staged"), "got: {out}");
        assert!(out.contains("run wall"), "got: {out}");
        // Shares are printed per stage; at least one line carries one.
        assert!(out.contains('%'), "got: {out}");
    }

    #[test]
    fn simulate_writes_telemetry_and_trace_files() {
        let dir = std::env::temp_dir().join("cloudmedia-cli-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let m_path = dir.join("metrics-snapshot.json");
        let t_path = dir.join("run.trace.json");
        let out = run(Command::Simulate {
            mode: SimMode::ClientServer,
            hours: 1.0,
            kernel: Some(SimKernel::Indexed),
            config_path: None,
            out_path: None,
            no_quiesce: false,
            telemetry: TelemetryOpts {
                metrics_path: Some(m_path.to_string_lossy().into_owned()),
                trace_path: Some(t_path.to_string_lossy().into_owned()),
            },
        })
        .unwrap();
        assert!(out.contains("telemetry snapshot written to"), "got: {out}");
        assert!(out.contains("trace written to"), "got: {out}");

        use serde::Value;
        let snapshot: Value =
            serde_json::from_str(&std::fs::read_to_string(&m_path).unwrap()).unwrap();
        assert_eq!(
            snapshot.get("schema"),
            Some(&Value::String("cloudmedia-telemetry/v1".into()))
        );
        let Some(Value::Array(metrics)) = snapshot.get("metrics") else {
            panic!("snapshot has no metrics array");
        };
        assert!(metrics.iter().any(|m| {
            m.get("name") == Some(&Value::String("rounds".into()))
                && matches!(m.get("value"), Some(Value::UInt(n)) if *n > 0)
        }));

        let trace: Value =
            serde_json::from_str(&std::fs::read_to_string(&t_path).unwrap()).unwrap();
        let Some(Value::Array(events)) = trace.get("traceEvents") else {
            panic!("trace has no traceEvents array");
        };
        assert!(!events.is_empty(), "trace should contain span events");
        let ph = |e: &Value, p: &str| e.get("ph") == Some(&Value::String(p.into()));
        let begins = events.iter().filter(|e| ph(e, "B")).count();
        let ends = events.iter().filter(|e| ph(e, "E")).count();
        assert_eq!(begins, ends, "unbalanced begin/end pairs");
    }

    #[test]
    fn des_reports_kernel_health() {
        let out = run(Command::Des {
            scenario: DesScenarioKind::Baseline,
            mode: SimMode::ClientServer,
            hours: 1.0,
            scheduler: SchedulerChoice::Wheel,
            out_path: None,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap();
        assert!(out.contains("kernel health:"), "got: {out}");
        assert!(out.contains("peak"), "got: {out}");
        assert!(out.contains("cancelled"), "got: {out}");
    }

    #[test]
    fn simulate_short_run_with_json_output() {
        let dir = std::env::temp_dir().join("cloudmedia-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("metrics.json");
        // Build a tiny config file to exercise --config too.
        let mut cfg = SimConfig::paper_default(SimMode::ClientServer);
        cfg.catalog = cloudmedia_workload::catalog::Catalog::zipf(
            2,
            0.8,
            cloudmedia_workload::viewing::ViewingModel::paper_default(),
            40.0,
            300.0,
        )
        .unwrap();
        cfg.trace.horizon_seconds = 3600.0;
        let cfg_path = dir.join("config.json");
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();

        let out = run(Command::Simulate {
            mode: SimMode::ClientServer,
            hours: 1.0,
            kernel: None,
            config_path: Some(cfg_path.to_string_lossy().into_owned()),
            out_path: Some(out_path.to_string_lossy().into_owned()),
            no_quiesce: false,
            telemetry: TelemetryOpts::default(),
        })
        .unwrap();
        assert!(out.contains("mean streaming quality"));
        let metrics: cloudmedia_sim::metrics::Metrics =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert!(!metrics.samples.is_empty());
    }
}
