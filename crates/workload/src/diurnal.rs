//! Diurnal arrival-rate profiles with flash crowds.
//!
//! The paper's synthetic trace follows PPLive VoD measurements: "user
//! population in each channel follows a daily pattern with two flash crowds
//! around noon and in the evening". We model the instantaneous arrival-rate
//! multiplier as a 24-hour-periodic baseline plus Gaussian bumps centred on
//! the flash-crowd hours.

use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, WorkloadError};

/// Seconds per day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// One flash-crowd bump in the daily profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Centre of the bump as an hour of day in `[0, 24)`.
    pub peak_hour: f64,
    /// Standard deviation of the bump, in hours.
    pub width_hours: f64,
    /// Peak multiplier added on top of the baseline at the centre.
    pub amplitude: f64,
}

/// A 24-hour-periodic arrival-rate multiplier.
///
/// `multiplier(t)` is `baseline + Σ bumps`, evaluated with wrap-around so a
/// bump near midnight spills into the neighbouring day correctly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPattern {
    baseline: f64,
    crowds: Vec<FlashCrowd>,
}

impl DiurnalPattern {
    /// Creates a pattern from a baseline multiplier and flash crowds.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive baselines or malformed bumps.
    pub fn new(baseline: f64, crowds: Vec<FlashCrowd>) -> Result<Self, WorkloadError> {
        if !(baseline.is_finite() && baseline > 0.0) {
            return Err(invalid_param(
                "baseline",
                format!("must be positive, got {baseline}"),
            ));
        }
        for (i, c) in crowds.iter().enumerate() {
            if !(0.0..24.0).contains(&c.peak_hour) {
                return Err(invalid_param(
                    "peak_hour",
                    format!("crowd {i}: must be in [0, 24), got {}", c.peak_hour),
                ));
            }
            if !(c.width_hours.is_finite() && c.width_hours > 0.0) {
                return Err(invalid_param(
                    "width_hours",
                    format!("crowd {i}: must be positive, got {}", c.width_hours),
                ));
            }
            if !(c.amplitude.is_finite() && c.amplitude >= 0.0) {
                return Err(invalid_param(
                    "amplitude",
                    format!("crowd {i}: must be non-negative, got {}", c.amplitude),
                ));
            }
        }
        Ok(Self { baseline, crowds })
    }

    /// A flat profile with multiplier 1 everywhere.
    pub fn flat() -> Self {
        Self {
            baseline: 1.0,
            crowds: Vec::new(),
        }
    }

    /// The paper's pattern: two flash crowds, around noon and in the
    /// evening, each roughly tripling the baseline arrival rate at peak.
    pub fn paper_default() -> Self {
        Self::new(
            1.0,
            vec![
                FlashCrowd {
                    peak_hour: 12.0,
                    width_hours: 1.5,
                    amplitude: 2.0,
                },
                FlashCrowd {
                    peak_hour: 20.5,
                    width_hours: 1.8,
                    amplitude: 2.5,
                },
            ],
        )
        .expect("paper defaults are valid")
    }

    /// The baseline multiplier.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// The configured flash crowds.
    pub fn crowds(&self) -> &[FlashCrowd] {
        &self.crowds
    }

    /// Returns this pattern shifted `hours` later in local time — a
    /// region whose clock is `hours` ahead sees its flash crowds that much
    /// earlier in reference time.
    pub fn shifted(&self, hours: f64) -> Self {
        let crowds = self
            .crowds
            .iter()
            .map(|c| FlashCrowd {
                peak_hour: (c.peak_hour - hours).rem_euclid(24.0),
                ..*c
            })
            .collect();
        Self {
            baseline: self.baseline,
            crowds,
        }
    }

    /// Weighted mixture of patterns: `Σ w_i · pattern_i(t)`. Used to model
    /// a centralized site serving several time-zone-offset regions (the
    /// sum of shifted diurnal curves is flatter than any single one).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty mixture or non-positive weights.
    pub fn mixture(parts: &[(f64, DiurnalPattern)]) -> Result<Self, WorkloadError> {
        if parts.is_empty() {
            return Err(invalid_param("parts", "mixture must not be empty"));
        }
        let mut baseline = 0.0;
        let mut crowds = Vec::new();
        for (w, p) in parts {
            if !(w.is_finite() && *w > 0.0) {
                return Err(invalid_param(
                    "weight",
                    format!("must be positive, got {w}"),
                ));
            }
            baseline += w * p.baseline;
            for c in &p.crowds {
                crowds.push(FlashCrowd {
                    amplitude: w * c.amplitude,
                    ..*c
                });
            }
        }
        Self::new(baseline, crowds)
    }

    /// Arrival-rate multiplier at absolute time `t` seconds.
    pub fn multiplier(&self, t_seconds: f64) -> f64 {
        let hour = (t_seconds.rem_euclid(SECONDS_PER_DAY)) / 3600.0;
        let mut m = self.baseline;
        for c in &self.crowds {
            // Wrap-around distance on the 24 h circle.
            let mut d = (hour - c.peak_hour).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            m += c.amplitude * (-0.5 * (d / c.width_hours).powi(2)).exp();
        }
        m
    }

    /// Maximum multiplier over the day; the thinning bound for
    /// non-homogeneous Poisson sampling. Conservative (baseline + sum of
    /// amplitudes) — always an upper bound even for overlapping bumps.
    pub fn max_multiplier(&self) -> f64 {
        self.baseline + self.crowds.iter().map(|c| c.amplitude).sum::<f64>()
    }

    /// An **exact upper bound** of [`DiurnalPattern::multiplier`] over the
    /// hour-of-day window `[h0, h1)` (with wrap-around; `h1 − h0 ≤ 24`).
    /// Each Gaussian bump is monotone in the circular distance to its
    /// peak, so bounding the distance from the window to the peak bounds
    /// the bump. Piecewise-window bounds make Poisson thinning far
    /// tighter than the global [`DiurnalPattern::max_multiplier`] cap —
    /// the acceptance ratio approaches 1, so the arrival stream draws a
    /// fraction of the candidates (see `trace::ArrivalStream`).
    pub fn window_bound(&self, h0: f64, h1: f64) -> f64 {
        debug_assert!(h1 > h0 && h1 - h0 <= 24.0);
        let span = h1 - h0;
        let mut m = self.baseline;
        for c in &self.crowds {
            // Position of the peak relative to the window start on the
            // 24 h circle; inside the window ⇒ distance 0.
            let rel = (c.peak_hour - h0).rem_euclid(24.0);
            let d = if rel <= span {
                0.0
            } else {
                // Distance to the nearer window edge, wrap-aware.
                let to_start = (24.0 - rel).min(rel);
                let to_end = (rel - span).min(24.0 - (rel - span));
                to_start.min(to_end)
            };
            m += c.amplitude * (-0.5 * (d / c.width_hours).powi(2)).exp();
        }
        m
    }

    /// Average multiplier over one day (numeric, 1-minute resolution);
    /// useful for scaling a target mean population into a base rate.
    pub fn mean_multiplier(&self) -> f64 {
        let steps = 24 * 60;
        let total: f64 = (0..steps).map(|i| self.multiplier(i as f64 * 60.0)).sum();
        total / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_pattern_is_constant_one() {
        let p = DiurnalPattern::flat();
        for h in 0..24 {
            assert_eq!(p.multiplier(h as f64 * 3600.0), 1.0);
        }
    }

    #[test]
    fn paper_default_peaks_at_noon_and_evening() {
        let p = DiurnalPattern::paper_default();
        let noon = p.multiplier(12.0 * 3600.0);
        let evening = p.multiplier(20.5 * 3600.0);
        let early = p.multiplier(4.0 * 3600.0);
        assert!(noon > 2.5, "noon multiplier {noon}");
        assert!(evening > 3.0, "evening multiplier {evening}");
        assert!(early < 1.3, "4am multiplier {early}");
    }

    #[test]
    fn multiplier_is_periodic_over_days() {
        let p = DiurnalPattern::paper_default();
        for h in [0.0, 7.5, 12.0, 23.9] {
            let a = p.multiplier(h * 3600.0);
            let b = p.multiplier(h * 3600.0 + 3.0 * SECONDS_PER_DAY);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn max_multiplier_bounds_actual() {
        let p = DiurnalPattern::paper_default();
        let cap = p.max_multiplier();
        for i in 0..(24 * 60) {
            assert!(p.multiplier(i as f64 * 60.0) <= cap + 1e-12);
        }
    }

    #[test]
    fn wraparound_bump_near_midnight() {
        let p = DiurnalPattern::new(
            1.0,
            vec![FlashCrowd {
                peak_hour: 23.5,
                width_hours: 1.0,
                amplitude: 2.0,
            }],
        )
        .unwrap();
        // 00:30 is one hour from the 23:30 peak across midnight.
        let just_after = p.multiplier(0.5 * 3600.0);
        let symmetric = p.multiplier(22.5 * 3600.0);
        assert!((just_after - symmetric).abs() < 1e-12);
        assert!(just_after > 1.5);
    }

    #[test]
    fn mean_multiplier_between_min_and_max() {
        let p = DiurnalPattern::paper_default();
        let mean = p.mean_multiplier();
        assert!(mean > 1.0 && mean < p.max_multiplier());
    }

    #[test]
    fn shifted_pattern_moves_the_peak() {
        let p = DiurnalPattern::paper_default();
        let s = p.shifted(8.0);
        // The 20:30 local peak now happens at 12:30 reference time.
        let at = |pat: &DiurnalPattern, h: f64| pat.multiplier(h * 3600.0);
        assert!((at(&s, 12.5) - at(&p, 20.5)).abs() < 1e-9);
        // Mean is shift-invariant.
        assert!((s.mean_multiplier() - p.mean_multiplier()).abs() < 1e-6);
    }

    #[test]
    fn shift_wraps_around_midnight() {
        let p = DiurnalPattern::paper_default();
        let s = p.shifted(23.0);
        assert!(s
            .crowds()
            .iter()
            .all(|c| (0.0..24.0).contains(&c.peak_hour)));
        assert!((s.mean_multiplier() - p.mean_multiplier()).abs() < 1e-6);
    }

    #[test]
    fn mixture_is_weighted_sum() {
        let p = DiurnalPattern::paper_default();
        let m = DiurnalPattern::mixture(&[(0.4, p.clone()), (0.6, p.shifted(8.0))]).unwrap();
        for h in [0.0, 6.0, 12.0, 20.5] {
            let expect =
                0.4 * p.multiplier(h * 3600.0) + 0.6 * p.shifted(8.0).multiplier(h * 3600.0);
            assert!((m.multiplier(h * 3600.0) - expect).abs() < 1e-9, "hour {h}");
        }
    }

    #[test]
    fn timezone_mixture_is_flatter_than_single_region() {
        // The whole point of geo multiplexing: peak-to-mean drops.
        let p = DiurnalPattern::paper_default();
        let m = DiurnalPattern::mixture(&[
            (0.4, p.clone()),
            (0.35, p.shifted(7.0)),
            (0.25, p.shifted(14.0)),
        ])
        .unwrap();
        let peak_to_mean = |pat: &DiurnalPattern| {
            let peak = (0..24 * 60)
                .map(|i| pat.multiplier(i as f64 * 60.0))
                .fold(0.0_f64, f64::max);
            peak / pat.mean_multiplier()
        };
        assert!(
            peak_to_mean(&m) < 0.8 * peak_to_mean(&p),
            "mixture {m:.2} vs single {s:.2}",
            m = peak_to_mean(&m),
            s = peak_to_mean(&p)
        );
    }

    #[test]
    fn mixture_rejects_bad_inputs() {
        assert!(DiurnalPattern::mixture(&[]).is_err());
        assert!(DiurnalPattern::mixture(&[(0.0, DiurnalPattern::flat())]).is_err());
        assert!(DiurnalPattern::mixture(&[(-1.0, DiurnalPattern::flat())]).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DiurnalPattern::new(0.0, vec![]).is_err());
        assert!(DiurnalPattern::new(
            1.0,
            vec![FlashCrowd {
                peak_hour: 25.0,
                width_hours: 1.0,
                amplitude: 1.0
            }]
        )
        .is_err());
        assert!(DiurnalPattern::new(
            1.0,
            vec![FlashCrowd {
                peak_hour: 1.0,
                width_hours: 0.0,
                amplitude: 1.0
            }]
        )
        .is_err());
        assert!(DiurnalPattern::new(
            1.0,
            vec![FlashCrowd {
                peak_hour: 1.0,
                width_hours: 1.0,
                amplitude: -1.0
            }]
        )
        .is_err());
    }
}
