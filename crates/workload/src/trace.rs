//! Synthetic trace generation.
//!
//! The paper evaluates against a synthetic trace "following the measured
//! user dynamics and other characteristics in PPLive VoD": diurnal arrivals
//! with two daily flash crowds, Zipf channel popularity, exponential VCR
//! jump intervals, and bounded-Pareto peer upload capacities. This module
//! generates two artifact kinds:
//!
//! - [`ArrivalTrace`]: timestamped user arrivals (channel, start chunk,
//!   upload capacity) sampled from a non-homogeneous Poisson process by
//!   thinning. The simulator replays these and lets its behavioural model
//!   drive the rest of each session.
//! - [`SessionTrace`]: fully materialized open-loop sessions (every chunk
//!   transition and the departure), used to exercise the tracker-side
//!   statistics estimators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::distributions::{BoundedPareto, Exponential};
use crate::diurnal::DiurnalPattern;
use crate::error::{invalid_param, WorkloadError};
use crate::viewing::NextAction;

/// One user arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserArrival {
    /// Arrival time in seconds from trace start.
    pub time: f64,
    /// Arriving user's identifier, unique within the trace.
    pub user_id: u64,
    /// Channel joined.
    pub channel: usize,
    /// Chunk the user starts watching.
    pub start_chunk: usize,
    /// The user's upload capacity in bytes per second (P2P mode).
    pub upload_bytes_per_sec: f64,
}

/// A replayable arrival trace, sorted by time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    arrivals: Vec<UserArrival>,
    horizon: f64,
}

impl ArrivalTrace {
    /// The arrivals, sorted by time.
    pub fn arrivals(&self) -> &[UserArrival] {
        &self.arrivals
    }

    /// Trace horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrivals within `[from, to)`.
    pub fn window(&self, from: f64, to: f64) -> &[UserArrival] {
        let lo = self.arrivals.partition_point(|a| a.time < from);
        let hi = self.arrivals.partition_point(|a| a.time < to);
        &self.arrivals[lo..hi]
    }
}

/// Configuration for trace generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Horizon of the trace in seconds.
    pub horizon_seconds: f64,
    /// Diurnal arrival-rate profile applied to every channel.
    pub diurnal: DiurnalPattern,
    /// Peer upload capacity distribution (bytes per second).
    pub upload_min_bps: f64,
    /// Upper bound of the upload capacity distribution.
    pub upload_max_bps: f64,
    /// Pareto shape of the upload capacity distribution.
    pub upload_shape: f64,
    /// RNG seed for deterministic regeneration.
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's settings: one week, two daily flash crowds, uploads
    /// Pareto on [180 kbps, 10 Mbps] with shape 3.
    pub fn paper_default() -> Self {
        Self {
            horizon_seconds: 7.0 * 24.0 * 3600.0,
            diurnal: DiurnalPattern::paper_default(),
            upload_min_bps: 180e3 / 8.0,
            upload_max_bps: 10e6 / 8.0,
            upload_shape: 3.0,
            seed: 0xC10D_4ED1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive horizons or malformed upload
    /// bounds.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !(self.horizon_seconds.is_finite() && self.horizon_seconds > 0.0) {
            return Err(invalid_param(
                "horizon_seconds",
                format!("must be positive, got {}", self.horizon_seconds),
            ));
        }
        BoundedPareto::new(self.upload_min_bps, self.upload_max_bps, self.upload_shape)?;
        Ok(())
    }
}

/// Generates an arrival trace for the catalog by thinning a
/// non-homogeneous Poisson process per channel.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn generate_arrivals(
    catalog: &Catalog,
    config: &TraceConfig,
) -> Result<ArrivalTrace, WorkloadError> {
    config.validate()?;
    let upload = BoundedPareto::new(
        config.upload_min_bps,
        config.upload_max_bps,
        config.upload_shape,
    )?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = Vec::new();
    let mut user_id = 0u64;
    let max_mult = config.diurnal.max_multiplier();

    for spec in catalog.channels() {
        let cap_rate = spec.base_arrival_rate * max_mult;
        if cap_rate <= 0.0 {
            continue;
        }
        let inter = Exponential::new(cap_rate)?;
        let mut t = 0.0;
        loop {
            t += inter.sample(&mut rng);
            if t >= config.horizon_seconds {
                break;
            }
            // Thinning: accept with probability rate(t) / cap.
            let accept = config.diurnal.multiplier(t) / max_mult;
            if rng.random::<f64>() < accept {
                arrivals.push(UserArrival {
                    time: t,
                    user_id,
                    channel: spec.id,
                    start_chunk: spec.viewing.sample_start_chunk(&mut rng),
                    upload_bytes_per_sec: upload.sample(&mut rng),
                });
                user_id += 1;
            }
        }
    }
    arrivals.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times are finite"));
    // Re-number so user ids are ascending in time (ids double as arrival
    // order in the simulator).
    for (i, a) in arrivals.iter_mut().enumerate() {
        a.user_id = i as u64;
    }
    Ok(ArrivalTrace {
        arrivals,
        horizon: config.horizon_seconds,
    })
}

/// A lazily generated arrival stream: the same non-homogeneous Poisson
/// model as [`generate_arrivals`], but producing arrivals one at a time
/// in global time order instead of materializing the whole horizon.
///
/// Memory is `O(channels)` — one pending arrival and one RNG per channel
/// in a binary heap — so a full simulated week (or year) never holds the
/// trace in memory. All engines consume this (the round engines pull it
/// from their run loops; the event-driven sessions component pulls it
/// per arrival event); the eager [`generate_arrivals`] path is kept as
/// the simple reference implementation for estimator tests and session
/// materialization.
///
/// # Thinning with piecewise-window majorants
///
/// Candidates are drawn from a homogeneous process capped per half-hour
/// window by [`DiurnalPattern::window_bound`] — an exact upper bound of
/// the rate inside the window — restarting at window boundaries (valid
/// by memorylessness). Against the single global
/// [`DiurnalPattern::max_multiplier`] cap this raises the acceptance
/// ratio from ~1/3.5 to ~0.9 on the paper profile, i.e. roughly 3×
/// fewer candidate draws per accepted arrival.
///
/// # Determinism and relation to the eager path
///
/// The stream is fully deterministic in `TraceConfig::seed`: channel `c`
/// draws from its own `StdRng` seeded with [`child_seed`]`(seed, c)`,
/// and the per-channel streams are merged by `(time, channel)`. Because
/// the eager path interleaves all channels through a *single* RNG before
/// sorting, the streaming trace is a *different sample of the same
/// process* — identical rate profile, channel mix, and upload
/// distribution, but not arrival-for-arrival equal. Engines compared
/// across the two paths therefore agree in distribution (and, over a
/// steady-state horizon, in their means), not bit-for-bit.
///
/// Because seeding is per channel, a channel's sub-stream does not
/// depend on what else is in the catalog — the property the sharded
/// round engine's per-shard ingestion builds on (see
/// [`ChannelArrivals`]):
///
/// ```
/// use cloudmedia_workload::catalog::Catalog;
/// use cloudmedia_workload::trace::{ArrivalStream, TraceConfig};
/// use cloudmedia_workload::viewing::ViewingModel;
///
/// let mut config = TraceConfig::paper_default();
/// config.horizon_seconds = 3600.0;
/// let catalog = Catalog::zipf(2, 0.8, ViewingModel::paper_default(), 60.0, 300.0).unwrap();
///
/// // Same seed → the same stream, arrival for arrival.
/// let a: Vec<_> = ArrivalStream::new(&catalog, &config).unwrap().collect();
/// let b: Vec<_> = ArrivalStream::new(&catalog, &config).unwrap().collect();
/// assert_eq!(a, b);
///
/// // A different seed re-derives every channel's child seed.
/// config.seed ^= 1;
/// let c: Vec<_> = ArrivalStream::new(&catalog, &config).unwrap().collect();
/// assert_ne!(a, c);
/// ```
#[derive(Debug)]
pub struct ArrivalStream {
    /// Per-channel generator state, keyed into `heap` by next arrival.
    channels: Vec<ChannelStream>,
    /// Min-heap of `(next_time, channel_slot)`.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapKey>>,
    horizon: f64,
    diurnal: DiurnalPattern,
    /// Piecewise thinning majorants (shared by every channel).
    caps: WindowCaps,
    upload: BoundedPareto,
    next_user_id: u64,
}

/// Per-window thinning majorants of the diurnal multiplier over one day.
#[derive(Debug, Clone)]
struct WindowCaps {
    /// Window width, seconds.
    window_seconds: f64,
    /// `bounds[w] ≥ multiplier(t)` for every `t` in daily window `w`.
    bounds: Vec<f64>,
}

impl WindowCaps {
    /// Half-hour windows: narrow enough that the bound hugs the paper
    /// profile's flash-crowd bumps, coarse enough that boundary restarts
    /// are negligible.
    const WINDOWS_PER_DAY: usize = 48;

    fn new(diurnal: &DiurnalPattern) -> Self {
        let window_hours = 24.0 / Self::WINDOWS_PER_DAY as f64;
        Self {
            window_seconds: window_hours * 3600.0,
            bounds: (0..Self::WINDOWS_PER_DAY)
                .map(|w| {
                    diurnal.window_bound(w as f64 * window_hours, (w + 1) as f64 * window_hours)
                })
                .collect(),
        }
    }
}

/// Heap key ordering arrivals by time, then channel id for a total,
/// deterministic order even on exact ties.
#[derive(Debug, PartialEq)]
struct HeapKey {
    time: f64,
    slot: usize,
}

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.slot.cmp(&other.slot))
    }
}

/// One channel's lazy thinned-Poisson generator.
#[derive(Debug)]
struct ChannelStream {
    id: usize,
    rng: StdRng,
    /// The channel's base arrival rate (multiplied by the window bound
    /// to get each window's candidate rate).
    base_rate: f64,
    viewing: crate::viewing::ViewingModel,
    /// Candidate clock of the *unthinned* capped-rate process.
    t: f64,
}

/// SplitMix64 finalizer: decorrelates per-channel seeds derived from the
/// shared trace seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the child seed for stream `index` of a family rooted at
/// `seed`, via two rounds of the SplitMix64 finalizer. This is the
/// derivation [`ArrivalStream`] uses for its per-channel RNGs, exposed
/// so other per-channel stream families (the sharded round engine's
/// per-shard behaviour RNGs, [`ChannelArrivals`]) draw from the same
/// well-decorrelated seed tree.
///
/// ```
/// use cloudmedia_workload::trace::child_seed;
///
/// // Deterministic, and distinct across both axes.
/// assert_eq!(child_seed(42, 7), child_seed(42, 7));
/// assert_ne!(child_seed(42, 7), child_seed(42, 8));
/// assert_ne!(child_seed(42, 7), child_seed(43, 7));
/// ```
pub fn child_seed(seed: u64, index: u64) -> u64 {
    splitmix(seed ^ splitmix(index))
}

impl ArrivalStream {
    /// Creates a stream over the catalog with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(catalog: &Catalog, config: &TraceConfig) -> Result<Self, WorkloadError> {
        config.validate()?;
        let upload = BoundedPareto::new(
            config.upload_min_bps,
            config.upload_max_bps,
            config.upload_shape,
        )?;
        let caps = WindowCaps::new(&config.diurnal);
        let mut channels = Vec::new();
        let mut heap = std::collections::BinaryHeap::new();
        for spec in catalog.channels() {
            if !ChannelStream::is_active(spec, config) {
                continue;
            }
            let slot = channels.len();
            let mut stream = ChannelStream::for_spec(spec, config);
            if let Some(time) = stream.advance(config.horizon_seconds, &config.diurnal, &caps) {
                heap.push(std::cmp::Reverse(HeapKey { time, slot }));
            }
            channels.push(stream);
        }
        Ok(Self {
            channels,
            heap,
            horizon: config.horizon_seconds,
            diurnal: config.diurnal.clone(),
            caps,
            upload,
            next_user_id: 0,
        })
    }

    /// Trace horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }
}

impl ChannelStream {
    /// One channel's generator, seeded with [`child_seed`] of the trace
    /// seed and the **global** channel id. [`ArrivalStream`] (merged)
    /// and [`ChannelArrivals`] (solo) both construct through here, which
    /// is what keeps their per-channel draw sequences bitwise identical
    /// — the load-bearing property behind the sharded engine's
    /// per-shard arrival ingestion.
    fn for_spec(spec: &crate::catalog::ChannelSpec, config: &TraceConfig) -> Self {
        Self {
            id: spec.id,
            rng: StdRng::seed_from_u64(child_seed(config.seed, spec.id as u64)),
            base_rate: spec.base_arrival_rate,
            viewing: spec.viewing,
            t: 0.0,
        }
    }

    /// Whether the channel produces any arrivals at all under this
    /// configuration (the shared zero-rate gate).
    fn is_active(spec: &crate::catalog::ChannelSpec, config: &TraceConfig) -> bool {
        spec.base_arrival_rate * config.diurnal.max_multiplier() > 0.0
    }
    /// Advances this channel's thinned process to its next accepted
    /// arrival time, or `None` when the horizon is exhausted. Candidates
    /// come from a homogeneous process capped per window by the exact
    /// window majorant; a candidate that crosses its window boundary is
    /// discarded and the clock restarts at the boundary with the next
    /// window's cap (valid by memorylessness). Thinning draws (the
    /// accept coin) come from the same per-channel RNG as the
    /// exponential gaps, keeping the channel's draw sequence a pure
    /// function of its seed.
    fn advance(
        &mut self,
        horizon: f64,
        diurnal: &DiurnalPattern,
        caps: &WindowCaps,
    ) -> Option<f64> {
        let windows = caps.bounds.len();
        loop {
            if self.t >= horizon {
                return None;
            }
            let window = (self.t / caps.window_seconds).floor();
            let bound = caps.bounds[(window as usize) % windows];
            let window_end = (window + 1.0) * caps.window_seconds;
            let rate = self.base_rate * bound;
            if rate <= 0.0 {
                self.t = window_end;
                continue;
            }
            let u: f64 = self.rng.random();
            let candidate = self.t + -(1.0 - u).ln() / rate;
            if candidate >= window_end {
                self.t = window_end;
                continue;
            }
            self.t = candidate;
            if self.t >= horizon {
                return None;
            }
            let accept = diurnal.multiplier(self.t) / bound;
            if self.rng.random::<f64>() < accept {
                return Some(self.t);
            }
        }
    }
}

impl Iterator for ArrivalStream {
    type Item = UserArrival;

    fn next(&mut self) -> Option<UserArrival> {
        let std::cmp::Reverse(key) = self.heap.pop()?;
        let stream = &mut self.channels[key.slot];
        let arrival = UserArrival {
            time: key.time,
            user_id: self.next_user_id,
            channel: stream.id,
            start_chunk: stream.viewing.sample_start_chunk(&mut stream.rng),
            upload_bytes_per_sec: self.upload.sample(&mut stream.rng),
        };
        self.next_user_id += 1;
        if let Some(time) = stream.advance(self.horizon, &self.diurnal, &self.caps) {
            self.heap.push(std::cmp::Reverse(HeapKey {
                time,
                slot: key.slot,
            }));
        }
        Some(arrival)
    }
}

/// The lazy arrival stream of a **single channel**: exactly the
/// per-channel sub-stream [`ArrivalStream`] merges, produced on its own.
///
/// The sharded round engine owns one of these per channel shard, so
/// arrival ingestion needs no cross-shard merge heap and stays
/// `O(1)` memory per shard. Determinism contract: for a given
/// `(TraceConfig::seed, channel id)` the sequence of arrival **times,
/// start chunks, and upload capacities** is identical to what
/// [`ArrivalStream`] produces for that channel inside a full-catalog
/// merge — both seed the channel's RNG with
/// [`child_seed`]`(seed, id)` and draw in the same order. Only
/// `user_id` differs: the merged stream numbers users globally in
/// arrival order, while this stream numbers them `0, 1, 2, …` within
/// the channel.
///
/// ```
/// use cloudmedia_workload::catalog::Catalog;
/// use cloudmedia_workload::trace::{ArrivalStream, ChannelArrivals, TraceConfig};
/// use cloudmedia_workload::viewing::ViewingModel;
///
/// let catalog = Catalog::zipf(3, 0.8, ViewingModel::paper_default(), 90.0, 300.0).unwrap();
/// let mut config = TraceConfig::paper_default();
/// config.horizon_seconds = 6.0 * 3600.0;
///
/// let merged: Vec<_> = ArrivalStream::new(&catalog, &config)
///     .unwrap()
///     .filter(|a| a.channel == 1)
///     .collect();
/// let solo: Vec<_> = ChannelArrivals::new(catalog.channel(1), &config).unwrap().collect();
/// assert_eq!(merged.len(), solo.len());
/// for (m, s) in merged.iter().zip(&solo) {
///     assert_eq!((m.time, m.start_chunk, m.upload_bytes_per_sec),
///                (s.time, s.start_chunk, s.upload_bytes_per_sec));
/// }
/// ```
#[derive(Debug)]
pub struct ChannelArrivals {
    stream: ChannelStream,
    horizon: f64,
    diurnal: DiurnalPattern,
    caps: WindowCaps,
    upload: BoundedPareto,
    next_user_id: u64,
    /// The next accepted arrival time, pre-advanced so `next()` can
    /// draw the start chunk and upload *after* knowing the arrival
    /// exists — the same draw order as [`ArrivalStream`].
    pending: Option<f64>,
}

impl ChannelArrivals {
    /// Creates the lazy arrival stream of one channel.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(
        spec: &crate::catalog::ChannelSpec,
        config: &TraceConfig,
    ) -> Result<Self, WorkloadError> {
        config.validate()?;
        let upload = BoundedPareto::new(
            config.upload_min_bps,
            config.upload_max_bps,
            config.upload_shape,
        )?;
        let caps = WindowCaps::new(&config.diurnal);
        let mut stream = ChannelStream::for_spec(spec, config);
        let pending = if ChannelStream::is_active(spec, config) {
            stream.advance(config.horizon_seconds, &config.diurnal, &caps)
        } else {
            None
        };
        Ok(Self {
            stream,
            horizon: config.horizon_seconds,
            diurnal: config.diurnal.clone(),
            caps,
            upload,
            next_user_id: 0,
            pending,
        })
    }

    /// Trace horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }
}

impl Iterator for ChannelArrivals {
    type Item = UserArrival;

    fn next(&mut self) -> Option<UserArrival> {
        let time = self.pending.take()?;
        let arrival = UserArrival {
            time,
            user_id: self.next_user_id,
            channel: self.stream.id,
            start_chunk: self.stream.viewing.sample_start_chunk(&mut self.stream.rng),
            upload_bytes_per_sec: self.upload.sample(&mut self.stream.rng),
        };
        self.next_user_id += 1;
        self.pending = self.stream.advance(self.horizon, &self.diurnal, &self.caps);
        Some(arrival)
    }
}

/// One event inside a materialized session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The user started downloading the given chunk at the given time.
    StartChunk {
        /// Event time in seconds.
        time: f64,
        /// Chunk index.
        chunk: usize,
    },
    /// The user left the channel.
    Leave {
        /// Event time in seconds.
        time: f64,
    },
}

/// A fully materialized open-loop session (chunk dwell time fixed at the
/// playback time, ignoring download contention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// The user this session belongs to.
    pub user_id: u64,
    /// The channel watched.
    pub channel: usize,
    /// The ordered session events.
    pub events: Vec<SessionEvent>,
}

/// A set of materialized sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// All sessions, ordered by session start time.
    pub sessions: Vec<Session>,
}

/// Materializes open-loop sessions from an arrival trace: each chunk is
/// watched for exactly `chunk_seconds`, then the viewing model picks the
/// next action. Used to feed the statistics estimators with ground-truth
/// behaviour.
pub fn materialize_sessions(
    catalog: &Catalog,
    arrivals: &ArrivalTrace,
    chunk_seconds: f64,
    seed: u64,
) -> SessionTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sessions = Vec::with_capacity(arrivals.len());
    for a in arrivals.arrivals() {
        let viewing = &catalog.channel(a.channel).viewing;
        let mut events = Vec::new();
        let mut t = a.time;
        let mut chunk = a.start_chunk;
        events.push(SessionEvent::StartChunk { time: t, chunk });
        loop {
            t += chunk_seconds;
            match viewing.sample_next(&mut rng, chunk) {
                NextAction::Watch(next) => {
                    chunk = next;
                    events.push(SessionEvent::StartChunk { time: t, chunk });
                }
                NextAction::Leave => {
                    events.push(SessionEvent::Leave { time: t });
                    break;
                }
            }
        }
        sessions.push(Session {
            user_id: a.user_id,
            channel: a.channel,
            events,
        });
    }
    SessionTrace { sessions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn small_catalog() -> Catalog {
        Catalog::zipf(
            3,
            1.0,
            crate::viewing::ViewingModel::paper_default(),
            300.0,
            300.0,
        )
        .unwrap()
    }

    fn short_config() -> TraceConfig {
        TraceConfig {
            horizon_seconds: 6.0 * 3600.0,
            ..TraceConfig::paper_default()
        }
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let trace = generate_arrivals(&small_catalog(), &short_config()).unwrap();
        assert!(!trace.is_empty());
        for w in trace.arrivals().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for a in trace.arrivals() {
            assert!(a.time >= 0.0 && a.time < trace.horizon());
            assert!(a.channel < 3);
            assert!(a.start_chunk < 20);
            assert!(a.upload_bytes_per_sec >= 180e3 / 8.0);
            assert!(a.upload_bytes_per_sec <= 10e6 / 8.0);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = generate_arrivals(&small_catalog(), &short_config()).unwrap();
        let b = generate_arrivals(&small_catalog(), &short_config()).unwrap();
        assert_eq!(a, b);
        let mut cfg = short_config();
        cfg.seed += 1;
        let c = generate_arrivals(&small_catalog(), &cfg).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn user_ids_are_ascending_in_time() {
        let trace = generate_arrivals(&small_catalog(), &short_config()).unwrap();
        for (i, a) in trace.arrivals().iter().enumerate() {
            assert_eq!(a.user_id, i as u64);
        }
    }

    #[test]
    fn popular_channels_receive_more_arrivals() {
        let catalog = small_catalog();
        let mut cfg = short_config();
        cfg.horizon_seconds = 48.0 * 3600.0;
        let trace = generate_arrivals(&catalog, &cfg).unwrap();
        let mut counts = [0usize; 3];
        for a in trace.arrivals() {
            counts[a.channel] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn arrival_volume_matches_rate_integral() {
        let catalog = small_catalog();
        let cfg = TraceConfig {
            horizon_seconds: 5.0 * 24.0 * 3600.0,
            ..short_config()
        };
        let trace = generate_arrivals(&catalog, &cfg).unwrap();
        let expected =
            catalog.total_arrival_rate() * cfg.diurnal.mean_multiplier() * cfg.horizon_seconds;
        let got = trace.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "arrivals {got} vs expected {expected}"
        );
    }

    #[test]
    fn flash_crowd_hours_are_busier() {
        let catalog = small_catalog();
        let cfg = TraceConfig {
            horizon_seconds: 3.0 * 24.0 * 3600.0,
            ..short_config()
        };
        let trace = generate_arrivals(&catalog, &cfg).unwrap();
        // Compare noon hour vs 4am hour across days.
        let mut noon = 0usize;
        let mut night = 0usize;
        for d in 0..3 {
            let base = d as f64 * 86_400.0;
            noon += trace
                .window(base + 11.5 * 3600.0, base + 12.5 * 3600.0)
                .len();
            night += trace.window(base + 3.5 * 3600.0, base + 4.5 * 3600.0).len();
        }
        assert!(
            noon as f64 > 1.8 * night as f64,
            "noon {noon} should far exceed night {night}"
        );
    }

    #[test]
    fn window_respects_bounds() {
        let trace = generate_arrivals(&small_catalog(), &short_config()).unwrap();
        let w = trace.window(1000.0, 2000.0);
        for a in w {
            assert!(a.time >= 1000.0 && a.time < 2000.0);
        }
        let total: usize = [
            trace.window(0.0, 1000.0).len(),
            w.len(),
            trace.window(2000.0, trace.horizon()).len(),
        ]
        .iter()
        .sum();
        assert_eq!(total, trace.len());
    }

    #[test]
    fn sessions_start_at_arrival_and_end_with_leave() {
        let catalog = small_catalog();
        let trace = generate_arrivals(&catalog, &short_config()).unwrap();
        let sessions = materialize_sessions(&catalog, &trace, 300.0, 1);
        assert_eq!(sessions.sessions.len(), trace.len());
        for (s, a) in sessions.sessions.iter().zip(trace.arrivals()) {
            assert_eq!(s.user_id, a.user_id);
            match s.events.first() {
                Some(SessionEvent::StartChunk { time, chunk }) => {
                    assert_eq!(*time, a.time);
                    assert_eq!(*chunk, a.start_chunk);
                }
                other => panic!("first event must be StartChunk, got {other:?}"),
            }
            assert!(matches!(s.events.last(), Some(SessionEvent::Leave { .. })));
        }
    }

    #[test]
    fn stream_is_sorted_deterministic_and_within_horizon() {
        let catalog = small_catalog();
        let cfg = short_config();
        let a: Vec<UserArrival> = ArrivalStream::new(&catalog, &cfg).unwrap().collect();
        let b: Vec<UserArrival> = ArrivalStream::new(&catalog, &cfg).unwrap().collect();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed, same stream");
        for w in a.windows(2) {
            assert!(w[0].time <= w[1].time, "stream is globally time-sorted");
        }
        for (i, arr) in a.iter().enumerate() {
            assert_eq!(arr.user_id, i as u64, "ids ascend in pop order");
            assert!(arr.time >= 0.0 && arr.time < cfg.horizon_seconds);
            assert!(arr.channel < 3);
            assert!(arr.upload_bytes_per_sec >= cfg.upload_min_bps);
            assert!(arr.upload_bytes_per_sec <= cfg.upload_max_bps);
        }
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c: Vec<UserArrival> = ArrivalStream::new(&catalog, &cfg2).unwrap().collect();
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn stream_volume_matches_eager_path() {
        // Different samples of the same process: arrival counts (total
        // and per channel) agree within sampling noise.
        let catalog = small_catalog();
        let cfg = TraceConfig {
            horizon_seconds: 4.0 * 24.0 * 3600.0,
            ..short_config()
        };
        let eager = generate_arrivals(&catalog, &cfg).unwrap();
        let streamed: Vec<UserArrival> = ArrivalStream::new(&catalog, &cfg).unwrap().collect();
        let e = eager.len() as f64;
        let s = streamed.len() as f64;
        assert!((s - e).abs() / e < 0.05, "stream {s} vs eager {e} arrivals");
        let mut counts = [[0usize; 3]; 2];
        for a in eager.arrivals() {
            counts[0][a.channel] += 1;
        }
        for a in &streamed {
            counts[1][a.channel] += 1;
        }
        for (c, (e, s)) in counts[0].iter().zip(&counts[1]).enumerate() {
            let (e, s) = (*e as f64, *s as f64);
            assert!((s - e).abs() / e < 0.1, "channel {c}: {s} vs {e}");
        }
    }

    #[test]
    fn channel_arrivals_match_merged_stream_per_channel() {
        let catalog = small_catalog();
        let cfg = short_config();
        let merged: Vec<Vec<UserArrival>> = {
            let mut per: Vec<Vec<UserArrival>> = vec![Vec::new(); 3];
            for a in ArrivalStream::new(&catalog, &cfg).unwrap() {
                per[a.channel].push(a);
            }
            per
        };
        for (c, merged_channel) in merged.iter().enumerate() {
            let solo: Vec<UserArrival> = ChannelArrivals::new(catalog.channel(c), &cfg)
                .unwrap()
                .collect();
            assert_eq!(solo.len(), merged_channel.len(), "channel {c} count");
            for (i, (s, m)) in solo.iter().zip(merged_channel).enumerate() {
                assert_eq!(s.time.to_bits(), m.time.to_bits(), "channel {c} time {i}");
                assert_eq!(s.start_chunk, m.start_chunk, "channel {c} chunk {i}");
                assert_eq!(
                    s.upload_bytes_per_sec.to_bits(),
                    m.upload_bytes_per_sec.to_bits(),
                    "channel {c} upload {i}"
                );
                assert_eq!(s.user_id, i as u64, "solo ids are channel-local");
                assert_eq!(s.channel, c);
            }
        }
    }

    #[test]
    fn zero_rate_channel_arrivals_are_empty() {
        use crate::catalog::ChannelSpec;
        let spec = ChannelSpec {
            id: 5,
            popularity: 0.1,
            base_arrival_rate: 0.0,
            viewing: crate::viewing::ViewingModel::paper_default(),
        };
        let mut s = ChannelArrivals::new(&spec, &short_config()).unwrap();
        assert!(s.next().is_none());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = short_config();
        cfg.horizon_seconds = 0.0;
        assert!(generate_arrivals(&small_catalog(), &cfg).is_err());
        let mut cfg = short_config();
        cfg.upload_min_bps = 0.0;
        assert!(generate_arrivals(&small_catalog(), &cfg).is_err());
    }
}
