//! Random-variate generators used by the synthetic VoD workload.
//!
//! Implemented from `rand` primitives via inverse-transform and standard
//! algorithms rather than pulling in `rand_distr`: the paper needs exactly
//! four families — exponential (VCR jump intervals, session dynamics),
//! bounded Pareto (peer upload capacities, `[180 kbps, 10 Mbps]`, shape
//! `k = 3`), Zipf (channel popularity), and Poisson (batched arrivals).

use rand::RngExt;

use crate::error::{invalid_param, WorkloadError};

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns an error unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Result<Self, WorkloadError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(invalid_param(
                "rate",
                format!("must be finite and positive, got {rate}"),
            ));
        }
        Ok(Self { rate })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Result<Self, WorkloadError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(invalid_param(
                "mean",
                format!("must be finite and positive, got {mean}"),
            ));
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1 / rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one sample by inverse transform.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        // 1 - u is in (0, 1]; ln of it is finite.
        -(1.0 - u).ln() / self.rate
    }
}

/// Pareto distribution truncated to `[min, max]`, sampled by inverse
/// transform of the truncated CDF.
///
/// The paper draws peer upload capacities from a bounded Pareto on
/// `[180 kbps, 10 Mbps]` with shape `k = 3`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    shape: f64,
    /// `min^shape`, precomputed — `sample` sits on the trace-generation
    /// hot path and these powers are constants of the distribution.
    pow_min: f64,
    /// `max^shape`, precomputed.
    pow_max: f64,
    /// `-1 / shape`, precomputed.
    neg_inv_shape: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < min < max` and `shape > 0`.
    pub fn new(min: f64, max: f64, shape: f64) -> Result<Self, WorkloadError> {
        if !(min.is_finite() && min > 0.0) {
            return Err(invalid_param(
                "min",
                format!("must be finite and positive, got {min}"),
            ));
        }
        if !(max.is_finite() && max > min) {
            return Err(invalid_param(
                "max",
                format!("must be finite and exceed min={min}, got {max}"),
            ));
        }
        if !(shape.is_finite() && shape > 0.0) {
            return Err(invalid_param(
                "shape",
                format!("must be finite and positive, got {shape}"),
            ));
        }
        Ok(Self {
            min,
            max,
            shape,
            pow_min: min.powf(shape),
            pow_max: max.powf(shape),
            neg_inv_shape: -1.0 / shape,
        })
    }

    /// Lower bound `L`.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound `H`.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Mean of the truncated distribution (closed form).
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.min, self.max, self.shape);
        if (a - 1.0).abs() < 1e-12 {
            // alpha = 1 special case: E = ln(h/l) * l*h/(h-l)
            let la = l;
            return la * h / (h - l) * (h / l).ln();
        }

        l.powf(a) / (1.0 - (l / h).powf(a)) * a / (a - 1.0)
            * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }

    /// Draws one sample by inverting the truncated CDF:
    /// `x = ( -(u·(H^a − L^a) − H^a) / (L^a H^a) )^(−1/a) · L H` form,
    /// simplified below.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let (l, h) = (self.min, self.max);
        let (la, ha) = (self.pow_min, self.pow_max);
        // F(x) = (1 - (L/x)^a) / (1 - (L/H)^a); invert for x.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(self.neg_inv_shape);
        x.clamp(l, h)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = i) ∝ 1 / (i + 1)^s`.
///
/// Used for channel popularity across the paper's 20 channels.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities, last entry == 1.
    cdf: Vec<f64>,
    /// Normalized probabilities per rank.
    probs: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s >= 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, exponent: f64) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(invalid_param("n", "must be positive"));
        }
        if !(exponent.is_finite() && exponent >= 0.0) {
            return Err(invalid_param(
                "exponent",
                format!("must be finite and non-negative, got {exponent}"),
            ));
        }
        let mut probs: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("n > 0") = 1.0;
        Ok(Self {
            cdf,
            probs,
            exponent,
        })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True if the distribution has no ranks (never constructible).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of the given rank.
    pub fn prob(&self, rank: usize) -> f64 {
        self.probs[rank]
    }

    /// All rank probabilities, most popular first.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Draws one rank by binary search on the CDF.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i.min(self.len() - 1),
        }
    }
}

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses Knuth's product method for small means and a normal approximation
/// (continuity-corrected, clamped at zero) for `mean > 30`, which is
/// accurate to well under a percent in that regime.
pub fn sample_poisson<R: RngExt + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "mean must be finite and non-negative"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Box-Muller normal approximation.
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let x = mean + z * mean.sqrt();
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn sample_mean(mut f: impl FnMut(&mut StdRng) -> f64, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| f(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_sample_mean_matches() {
        let d = Exponential::with_mean(4.0).unwrap();
        let m = sample_mean(|r| d.sample(r), 100_000);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn exponential_rate_mean_inverse() {
        let d = Exponential::new(0.25).unwrap();
        assert_eq!(d.mean(), 4.0);
        assert_eq!(Exponential::with_mean(4.0).unwrap(), d);
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }

    #[test]
    fn exponential_samples_are_positive() {
        let d = Exponential::new(2.0).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn pareto_samples_within_bounds() {
        // Paper parameters: [180 kbps, 10 Mbps], shape 3.
        let d = BoundedPareto::new(180e3, 10e6, 3.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((180e3..=10e6).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn pareto_sample_mean_matches_closed_form() {
        let d = BoundedPareto::new(1.0, 100.0, 3.0).unwrap();
        let m = sample_mean(|r| d.sample(r), 200_000);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.02,
            "sample mean {m} vs closed form {}",
            d.mean()
        );
    }

    #[test]
    fn pareto_mass_concentrates_near_min() {
        let d = BoundedPareto::new(1.0, 1000.0, 3.0).unwrap();
        let mut r = rng();
        let below2 = (0..50_000).filter(|_| d.sample(&mut r) < 2.0).count();
        // P(X < 2) = 1 - (1/2)^3 = 0.875 (truncation correction tiny).
        let frac = below2 as f64 / 50_000.0;
        assert!((frac - 0.875).abs() < 0.01, "fraction below 2: {frac}");
    }

    #[test]
    fn pareto_rejects_bad_parameters() {
        assert!(BoundedPareto::new(0.0, 1.0, 3.0).is_err());
        assert!(BoundedPareto::new(2.0, 1.0, 3.0).is_err());
        assert!(BoundedPareto::new(1.0, 2.0, 0.0).is_err());
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(20, 0.8).unwrap();
        let total: f64 = z.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for i in 1..20 {
            assert!(z.prob(i) <= z.prob(i - 1));
        }
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for i in 0..4 {
            assert!((z.prob(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_probabilities() {
        let z = Zipf::new(5, 1.0).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 5];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.prob(i)).abs() < 0.01,
                "rank {i}: empirical {emp} vs {p}",
                p = z.prob(i)
            );
        }
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
    }

    #[test]
    fn poisson_small_mean_matches() {
        let mut r = rng();
        let n = 100_000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut r, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut r, 200.0)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - 200.0).abs() < 10.0, "variance {var}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(sample_poisson(&mut r, 0.0), 0);
    }
}
