//! Viewer behaviour models and their translation into chunk routing
//! matrices.
//!
//! The paper abstracts viewing behaviour as the chunk transfer probability
//! matrix `P(c)` — the probability that a user who just finished chunk `i`
//! next downloads chunk `j` — plus the split of external arrivals (`α` to
//! the first chunk, the rest uniform). This module provides a small
//! parametric behaviour model (sequential watching, VCR jumps, departures)
//! and builds the exact `P(c)` and arrival split the analysis consumes.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, WorkloadError};

/// Parametric per-chunk viewer behaviour.
///
/// After finishing a chunk a viewer, independently each time:
/// - leaves the channel with probability `leave_prob`,
/// - performs a VCR jump to a uniformly random *other* chunk with
///   probability `jump_prob`,
/// - otherwise continues to the next sequential chunk (viewers finishing
///   the last chunk leave instead).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewingModel {
    /// Number of chunks `J` in the video.
    pub chunks: usize,
    /// Fraction `α` of arriving users who start at the first chunk; the
    /// rest start at a uniformly random other chunk.
    pub start_at_beginning: f64,
    /// Probability of a VCR jump after finishing a chunk.
    pub jump_prob: f64,
    /// Probability of leaving the channel after finishing a chunk.
    pub leave_prob: f64,
}

/// What a viewer does after completing a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextAction {
    /// Continue with the given chunk (sequential or jump target).
    Watch(usize),
    /// Leave the channel.
    Leave,
}

impl ViewingModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if `chunks == 0`, any probability is outside
    /// `[0, 1]`, or `jump_prob + leave_prob > 1`.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.chunks == 0 {
            return Err(invalid_param("chunks", "must be positive"));
        }
        for (name, p) in [
            ("start_at_beginning", self.start_at_beginning),
            ("jump_prob", self.jump_prob),
            ("leave_prob", self.leave_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(invalid_param(name, format!("must be in [0, 1], got {p}")));
            }
        }
        if self.jump_prob + self.leave_prob > 1.0 + 1e-12 {
            return Err(invalid_param(
                "jump_prob",
                format!(
                    "jump_prob + leave_prob = {} must not exceed 1",
                    self.jump_prob + self.leave_prob
                ),
            ));
        }
        Ok(())
    }

    /// The paper's experimental behaviour: 20 chunks (100 min video in
    /// 5 min chunks), VCR jumps at exponential intervals with 15 min mean
    /// (≈ probability `1 − e^{−T0/15 min}` per chunk), most users starting
    /// from the beginning, and sessions spanning several chunks.
    pub fn paper_default() -> Self {
        let t0_minutes = 5.0_f64;
        let jump_interval_minutes = 15.0_f64;
        Self {
            chunks: 20,
            start_at_beginning: 0.7,
            jump_prob: 1.0 - (-t0_minutes / jump_interval_minutes).exp(),
            leave_prob: 0.08,
        }
    }

    /// Probability of continuing sequentially after a (non-final) chunk.
    pub fn continue_prob(&self) -> f64 {
        1.0 - self.jump_prob - self.leave_prob
    }

    /// Builds the chunk transfer probability matrix `P` (rows: current
    /// chunk, columns: next chunk; row deficit = departure probability).
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn routing_rows(&self) -> Result<Vec<Vec<f64>>, WorkloadError> {
        self.validate()?;
        let j = self.chunks;
        let mut rows = vec![vec![0.0; j]; j];
        for i in 0..j {
            if j > 1 {
                // VCR jump: uniform over the other chunks.
                let per_target = self.jump_prob / (j - 1) as f64;
                for (k, entry) in rows[i].iter_mut().enumerate() {
                    if k != i {
                        *entry = per_target;
                    }
                }
            }
            if i + 1 < j {
                rows[i][i + 1] += self.continue_prob();
            }
            // Finishing the last chunk: the sequential mass becomes
            // departure (row deficit), matching "watch to the end, leave".
        }
        Ok(rows)
    }

    /// Builds the external arrival split: `α` to chunk 0, `(1 − α)/(J − 1)`
    /// to each other chunk (the paper's arrival model), scaled by the total
    /// arrival rate `total_rate`.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn arrival_split(&self, total_rate: f64) -> Result<Vec<f64>, WorkloadError> {
        self.validate()?;
        if !(total_rate.is_finite() && total_rate >= 0.0) {
            return Err(invalid_param(
                "total_rate",
                format!("must be finite and non-negative, got {total_rate}"),
            ));
        }
        let j = self.chunks;
        let mut v = vec![0.0; j];
        if j == 1 {
            v[0] = total_rate;
            return Ok(v);
        }
        v[0] = self.start_at_beginning * total_rate;
        let rest = (1.0 - self.start_at_beginning) * total_rate / (j - 1) as f64;
        for entry in v.iter_mut().skip(1) {
            *entry = rest;
        }
        Ok(v)
    }

    /// Samples the chunk an arriving viewer starts from.
    pub fn sample_start_chunk<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        if self.chunks == 1 || rng.random::<f64>() < self.start_at_beginning {
            0
        } else {
            1 + rng.random_range(0..self.chunks - 1)
        }
    }

    /// Samples what a viewer does after finishing `current`.
    pub fn sample_next<R: RngExt + ?Sized>(&self, rng: &mut R, current: usize) -> NextAction {
        debug_assert!(current < self.chunks);
        let u: f64 = rng.random();
        if u < self.leave_prob {
            return NextAction::Leave;
        }
        if u < self.leave_prob + self.jump_prob && self.chunks > 1 {
            // Uniform over the other chunks.
            let mut target = rng.random_range(0..self.chunks - 1);
            if target >= current {
                target += 1;
            }
            return NextAction::Watch(target);
        }
        if current + 1 < self.chunks {
            NextAction::Watch(current + 1)
        } else {
            NextAction::Leave
        }
    }

    /// Expected number of chunks watched per session, computed from the
    /// absorbing chain (`1^T (I − P)^{-1} s` with `s` the start split).
    /// Exposed for calibrating population targets in traces.
    pub fn expected_chunks_per_session(&self) -> Result<f64, WorkloadError> {
        let rows = self.routing_rows()?;
        let j = self.chunks;
        // Solve (I - P^T) v = start for total visits via dense elimination.
        // Small system; reuse a local elimination to avoid a cyclic
        // dependency on the queueing crate.
        let start = self.arrival_split(1.0)?;
        let n = j;
        let mut a = vec![0.0; n * n];
        for (i, row_a) in rows.iter().enumerate() {
            for (k, &p) in row_a.iter().enumerate() {
                // (I - P^T)[i][k] = delta - P[k][i]
                a[i * n + k] = if i == k { 1.0 } else { 0.0 } - rows[k][i];
                let _ = p;
            }
        }
        let mut x = start;
        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let mut piv = col;
            for r in col + 1..n {
                if a[r * n + col].abs() > a[piv * n + col].abs() {
                    piv = r;
                }
            }
            if a[piv * n + col].abs() < 1e-12 {
                return Err(invalid_param("routing", "viewer chain does not absorb"));
            }
            if piv != col {
                for c in 0..n {
                    a.swap(col * n + c, piv * n + c);
                }
                x.swap(col, piv);
            }
            for r in col + 1..n {
                let f = a[r * n + col] / a[col * n + col];
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut s = x[col];
            for c in col + 1..n {
                s -= a[col * n + c] * x[c];
            }
            x[col] = s / a[col * n + col];
        }
        Ok(x.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_is_valid() {
        ViewingModel::paper_default().validate().unwrap();
    }

    #[test]
    fn routing_rows_are_substochastic() {
        let m = ViewingModel::paper_default();
        let rows = m.routing_rows().unwrap();
        for (i, row) in rows.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!(s <= 1.0 + 1e-12, "row {i} sums to {s}");
            assert!(row.iter().all(|&p| p >= 0.0));
            assert_eq!(row[i], 0.0, "no self transition");
        }
    }

    #[test]
    fn last_chunk_row_has_only_jumps() {
        let m = ViewingModel {
            chunks: 5,
            start_at_beginning: 0.8,
            jump_prob: 0.2,
            leave_prob: 0.1,
        };
        let rows = m.routing_rows().unwrap();
        let last: f64 = rows[4].iter().sum();
        assert!(
            (last - 0.2).abs() < 1e-12,
            "last row keeps only jump mass, got {last}"
        );
    }

    #[test]
    fn arrival_split_matches_alpha() {
        let m = ViewingModel {
            chunks: 5,
            start_at_beginning: 0.6,
            jump_prob: 0.1,
            leave_prob: 0.1,
        };
        let v = m.arrival_split(10.0).unwrap();
        assert!((v[0] - 6.0).abs() < 1e-12);
        for &x in &v[1..] {
            assert!((x - 1.0).abs() < 1e-12);
        }
        assert!((v.iter().sum::<f64>() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn single_chunk_arrivals_all_go_to_it() {
        let m = ViewingModel {
            chunks: 1,
            start_at_beginning: 0.3,
            jump_prob: 0.0,
            leave_prob: 0.5,
        };
        assert_eq!(m.arrival_split(4.0).unwrap(), vec![4.0]);
    }

    #[test]
    fn sample_start_chunk_respects_alpha() {
        let m = ViewingModel {
            chunks: 10,
            start_at_beginning: 0.7,
            jump_prob: 0.1,
            leave_prob: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let firsts = (0..n)
            .filter(|_| m.sample_start_chunk(&mut rng) == 0)
            .count();
        let frac = firsts as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.01, "fraction starting at 0: {frac}");
    }

    #[test]
    fn sample_next_frequencies_match_routing() {
        let m = ViewingModel {
            chunks: 6,
            start_at_beginning: 0.5,
            jump_prob: 0.3,
            leave_prob: 0.2,
        };
        let rows = m.routing_rows().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let current = 2;
        let mut counts = [0usize; 6];
        let mut leaves = 0usize;
        for _ in 0..n {
            match m.sample_next(&mut rng, current) {
                NextAction::Watch(c) => counts[c] += 1,
                NextAction::Leave => leaves += 1,
            }
        }
        for j in 0..6 {
            let emp = counts[j] as f64 / n as f64;
            assert!(
                (emp - rows[current][j]).abs() < 0.01,
                "transition {current}->{j}: {emp} vs {}",
                rows[current][j]
            );
        }
        let exp_leave = 1.0 - rows[current].iter().sum::<f64>();
        assert!((leaves as f64 / n as f64 - exp_leave).abs() < 0.01);
    }

    #[test]
    fn jump_never_targets_current_chunk() {
        let m = ViewingModel {
            chunks: 4,
            start_at_beginning: 0.5,
            jump_prob: 1.0,
            leave_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            match m.sample_next(&mut rng, 2) {
                NextAction::Watch(c) => assert_ne!(c, 2),
                NextAction::Leave => panic!("jump_prob 1.0 should never leave"),
            }
        }
    }

    #[test]
    fn expected_chunks_per_session_sequential_geometric() {
        // Pure sequential with leave prob l: E[chunks] for start at 0 is
        // sum_{i=0}^{J-1} (1-l)^i when J large enough not to truncate much.
        let m = ViewingModel {
            chunks: 50,
            start_at_beginning: 1.0,
            jump_prob: 0.0,
            leave_prob: 0.3,
        };
        let e = m.expected_chunks_per_session().unwrap();
        let analytic: f64 = (0..50).map(|i| 0.7f64.powi(i)).sum();
        assert!((e - analytic).abs() < 1e-9, "{e} vs {analytic}");
    }

    #[test]
    fn expected_chunks_match_monte_carlo() {
        let m = ViewingModel::paper_default();
        let analytic = m.expected_chunks_per_session().unwrap();
        let mut rng = StdRng::seed_from_u64(19);
        let n = 100_000;
        let mut total = 0usize;
        for _ in 0..n {
            let mut chunk = m.sample_start_chunk(&mut rng);
            let mut watched = 1usize;
            while let NextAction::Watch(c) = m.sample_next(&mut rng, chunk) {
                chunk = c;
                watched += 1;
                assert!(watched < 10_000, "runaway session");
            }
            total += watched;
        }
        let mc = total as f64 / n as f64;
        assert!(
            (mc - analytic).abs() / analytic < 0.02,
            "monte carlo {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn invalid_models_rejected() {
        let bad = ViewingModel {
            chunks: 0,
            start_at_beginning: 0.5,
            jump_prob: 0.1,
            leave_prob: 0.1,
        };
        assert!(bad.validate().is_err());
        let bad = ViewingModel {
            chunks: 5,
            start_at_beginning: 1.5,
            jump_prob: 0.1,
            leave_prob: 0.1,
        };
        assert!(bad.validate().is_err());
        let bad = ViewingModel {
            chunks: 5,
            start_at_beginning: 0.5,
            jump_prob: 0.7,
            leave_prob: 0.7,
        };
        assert!(bad.validate().is_err());
    }
}
