//! Synthetic VoD workload generation for the CloudMedia reproduction.
//!
//! The CloudMedia paper evaluates against a synthetic trace modelled on
//! PPLive VoD measurements; the trace itself was never released, so this
//! crate regenerates it from the *stated* statistics:
//!
//! - [`distributions`]: the four random-variate families the paper uses —
//!   exponential (VCR jump intervals), bounded Pareto (peer upload
//!   capacities, `[180 kbps, 10 Mbps]`, shape 3), Zipf (channel
//!   popularity), and Poisson,
//! - [`diurnal`]: daily arrival-rate profiles with two flash crowds (noon
//!   and evening),
//! - [`viewing`]: the parametric viewer behaviour model and its exact
//!   translation into the chunk transfer probability matrix `P(c)`,
//! - [`catalog`]: Zipf-popular channel catalogs calibrated to a target
//!   concurrent population via Little's law,
//! - [`trace`]: deterministic, seeded arrival/session trace generation,
//! - [`stats`]: the tracker-side estimators that measure `Λ(c)`, `P(c)`
//!   and `α` per provisioning interval (paper Sec. V-B).
//!
//! # Example
//!
//! ```
//! use cloudmedia_workload::catalog::Catalog;
//! use cloudmedia_workload::trace::{generate_arrivals, TraceConfig};
//!
//! let catalog = Catalog::paper_default();        // 20 channels, ~2500 users
//! let mut config = TraceConfig::paper_default(); // one week, flash crowds
//! config.horizon_seconds = 3600.0;               // trim for the example
//! let trace = generate_arrivals(&catalog, &config).unwrap();
//! assert!(!trace.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod distributions;
pub mod diurnal;
mod error;
pub mod stats;
pub mod trace;
pub mod viewing;

pub use error::WorkloadError;
