//! Tracker-side statistics estimation.
//!
//! In the paper's dynamic provisioning algorithm (Sec. V-B), "during each
//! interval T, the tracking server summarizes the average user arrival rate
//! `Λ(c)` to each channel, as well as the viewing patterns `P_ij^(c)`" and
//! reports them to the controller. This module implements that measurement
//! function: it ingests observed join/transition/leave events and produces
//! the empirical arrival rate, transition matrix, and first-chunk fraction
//! `α` the capacity analysis consumes.

use serde::{Deserialize, Serialize};

use crate::error::{invalid_param, WorkloadError};

/// An observation the tracker records for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Observation {
    /// A user joined the channel starting at `chunk`.
    Join {
        /// First chunk the user requested.
        chunk: usize,
    },
    /// A user finished `from` and moved to `to` (sequential or VCR jump).
    Transition {
        /// Chunk just completed.
        from: usize,
        /// Chunk requested next.
        to: usize,
    },
    /// A user left the channel after finishing `from`.
    Leave {
        /// Last chunk completed before leaving.
        from: usize,
    },
}

/// Accumulates per-channel observations over one measurement interval and
/// produces the statistics of paper Sec. V-B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelStatsCollector {
    chunks: usize,
    joins: u64,
    first_chunk_joins: u64,
    /// Flattened row-major transition counts: entry `i * chunks + j`
    /// counts moves from chunk `i` to chunk `j`. Flat storage keeps the
    /// simulator's per-completion increment a single indexed write.
    transitions: Vec<u64>,
    /// `departures[i]` counts users leaving after chunk `i`.
    departures: Vec<u64>,
}

impl ChannelStatsCollector {
    /// Creates a collector for a channel with `chunks` chunks.
    ///
    /// # Errors
    ///
    /// Returns an error if `chunks == 0`.
    pub fn new(chunks: usize) -> Result<Self, WorkloadError> {
        if chunks == 0 {
            return Err(invalid_param("chunks", "must be positive"));
        }
        Ok(Self {
            chunks,
            joins: 0,
            first_chunk_joins: 0,
            transitions: vec![0; chunks * chunks],
            departures: vec![0; chunks],
        })
    }

    /// Number of chunks.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) on out-of-range chunk indices.
    pub fn record(&mut self, obs: Observation) {
        match obs {
            Observation::Join { chunk } => {
                debug_assert!(chunk < self.chunks);
                self.joins += 1;
                if chunk == 0 {
                    self.first_chunk_joins += 1;
                }
            }
            Observation::Transition { from, to } => {
                debug_assert!(from < self.chunks && to < self.chunks);
                self.transitions[from * self.chunks + to] += 1;
            }
            Observation::Leave { from } => {
                debug_assert!(from < self.chunks);
                self.departures[from] += 1;
            }
        }
    }

    /// Total joins recorded this interval.
    pub fn joins(&self) -> u64 {
        self.joins
    }

    /// Empirical arrival rate over an interval of `interval_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_seconds` is not positive.
    pub fn arrival_rate(&self, interval_seconds: f64) -> f64 {
        assert!(interval_seconds > 0.0, "interval must be positive");
        self.joins as f64 / interval_seconds
    }

    /// Empirical fraction of joins that started at the first chunk (`α`).
    /// Returns the prior `fallback` when no joins were observed.
    pub fn alpha(&self, fallback: f64) -> f64 {
        if self.joins == 0 {
            fallback
        } else {
            self.first_chunk_joins as f64 / self.joins as f64
        }
    }

    /// Empirical transition matrix with additive smoothing.
    ///
    /// Each row is the observed frequency of `i → j` moves among all
    /// completions of chunk `i` (transitions plus departures). Rows with no
    /// observations fall back to `prior`, and every row is blended with the
    /// prior at weight `smoothing` pseudo-counts so one quiet interval
    /// cannot zero out a transition the equilibrium analysis depends on.
    ///
    /// # Errors
    ///
    /// Returns an error if the prior's dimension mismatches or `smoothing`
    /// is negative.
    pub fn transition_matrix(
        &self,
        prior: &[Vec<f64>],
        smoothing: f64,
    ) -> Result<Vec<Vec<f64>>, WorkloadError> {
        if prior.len() != self.chunks || prior.iter().any(|r| r.len() != self.chunks) {
            return Err(invalid_param("prior", "dimension mismatch with collector"));
        }
        if !(smoothing.is_finite() && smoothing >= 0.0) {
            return Err(invalid_param(
                "smoothing",
                format!("must be non-negative, got {smoothing}"),
            ));
        }
        let mut rows = vec![vec![0.0; self.chunks]; self.chunks];
        for i in 0..self.chunks {
            let row = &self.transitions[i * self.chunks..(i + 1) * self.chunks];
            let observed: u64 = row.iter().sum::<u64>() + self.departures[i];
            let denom = observed as f64 + smoothing;
            if denom == 0.0 {
                rows[i].clone_from_slice(&prior[i]);
                continue;
            }
            for j in 0..self.chunks {
                let empirical = row[j] as f64;
                // The prior row is substochastic; its deficit models
                // departures, so smoothing also preserves departure mass.
                rows[i][j] = (empirical + smoothing * prior[i][j]) / denom;
            }
        }
        Ok(rows)
    }

    /// Resets all counters for the next measurement interval.
    pub fn reset(&mut self) {
        self.joins = 0;
        self.first_chunk_joins = 0;
        self.transitions.iter_mut().for_each(|c| *c = 0);
        self.departures.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewing::{NextAction, ViewingModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrival_rate_counts_joins() {
        let mut c = ChannelStatsCollector::new(4).unwrap();
        for _ in 0..36 {
            c.record(Observation::Join { chunk: 1 });
        }
        assert_eq!(c.arrival_rate(3600.0), 0.01);
    }

    #[test]
    fn alpha_fraction_and_fallback() {
        let mut c = ChannelStatsCollector::new(4).unwrap();
        assert_eq!(c.alpha(0.5), 0.5);
        c.record(Observation::Join { chunk: 0 });
        c.record(Observation::Join { chunk: 0 });
        c.record(Observation::Join { chunk: 2 });
        assert!((c.alpha(0.5) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transition_matrix_pure_empirical() {
        let mut c = ChannelStatsCollector::new(3).unwrap();
        // From chunk 0: 3 moves to 1, 1 departure.
        for _ in 0..3 {
            c.record(Observation::Transition { from: 0, to: 1 });
        }
        c.record(Observation::Leave { from: 0 });
        let prior = vec![vec![0.0; 3]; 3];
        let m = c.transition_matrix(&prior, 0.0).unwrap();
        assert!((m[0][1] - 0.75).abs() < 1e-12);
        assert_eq!(m[0][0], 0.0);
        // Row 0 deficit 0.25 = departure probability.
        let row_sum: f64 = m[0].iter().sum();
        assert!((row_sum - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unobserved_rows_fall_back_to_prior() {
        let c = ChannelStatsCollector::new(2).unwrap();
        let prior = vec![vec![0.0, 0.9], vec![0.1, 0.0]];
        let m = c.transition_matrix(&prior, 0.0).unwrap();
        assert_eq!(m, prior);
    }

    #[test]
    fn smoothing_blends_toward_prior() {
        let mut c = ChannelStatsCollector::new(2).unwrap();
        c.record(Observation::Transition { from: 0, to: 1 });
        let prior = vec![vec![0.0, 0.5], vec![0.0, 0.0]];
        // One observation, one pseudo-count: (1 + 1*0.5) / 2 = 0.75.
        let m = c.transition_matrix(&prior, 1.0).unwrap();
        assert!((m[0][1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = ChannelStatsCollector::new(2).unwrap();
        c.record(Observation::Join { chunk: 0 });
        c.record(Observation::Transition { from: 0, to: 1 });
        c.reset();
        assert_eq!(c.joins(), 0);
        let prior = vec![vec![0.0, 0.3], vec![0.0, 0.0]];
        assert_eq!(c.transition_matrix(&prior, 0.0).unwrap(), prior);
    }

    #[test]
    fn estimates_recover_viewing_model() {
        // Feed sampled behaviour through the collector and verify the
        // estimated matrix converges on the analytic routing rows.
        let model = ViewingModel {
            chunks: 6,
            start_at_beginning: 0.6,
            jump_prob: 0.2,
            leave_prob: 0.15,
        };
        let rows = model.routing_rows().unwrap();
        let mut collector = ChannelStatsCollector::new(6).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20_000 {
            let mut chunk = model.sample_start_chunk(&mut rng);
            collector.record(Observation::Join { chunk });
            loop {
                match model.sample_next(&mut rng, chunk) {
                    NextAction::Watch(next) => {
                        collector.record(Observation::Transition {
                            from: chunk,
                            to: next,
                        });
                        chunk = next;
                    }
                    NextAction::Leave => {
                        collector.record(Observation::Leave { from: chunk });
                        break;
                    }
                }
            }
        }
        let prior = vec![vec![0.0; 6]; 6];
        let est = collector.transition_matrix(&prior, 0.0).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (est[i][j] - rows[i][j]).abs() < 0.02,
                    "P[{i}][{j}]: est {e} vs true {t}",
                    e = est[i][j],
                    t = rows[i][j]
                );
            }
        }
        assert!((collector.alpha(0.0) - 0.6).abs() < 0.02);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let c = ChannelStatsCollector::new(3).unwrap();
        let prior = vec![vec![0.0; 2]; 2];
        assert!(c.transition_matrix(&prior, 0.0).is_err());
        assert!(c.transition_matrix(&vec![vec![0.0; 3]; 3], -1.0).is_err());
    }

    #[test]
    fn zero_chunk_collector_rejected() {
        assert!(ChannelStatsCollector::new(0).is_err());
    }
}
