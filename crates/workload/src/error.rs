//! Error types for workload generation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing workload models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl Error for WorkloadError {}

pub(crate) fn invalid_param(name: &'static str, message: impl Into<String>) -> WorkloadError {
    WorkloadError::InvalidParameter {
        name,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_parameter_name() {
        let e = invalid_param("shape", "must exceed zero");
        assert!(e.to_string().contains("shape"));
        assert!(e.to_string().contains("must exceed zero"));
    }
}
