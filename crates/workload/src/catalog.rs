//! The channel catalog: per-channel popularity and arrival-rate scaling.
//!
//! The paper deploys 20 video channels "with different popularities
//! following a Zipf-like distribution with the total number of concurrent
//! online peers around 2500". This module turns a target steady-state
//! population into per-channel base arrival rates using Little's law and
//! the viewing model's expected session length.

use serde::{Deserialize, Serialize};

use crate::distributions::Zipf;
use crate::error::{invalid_param, WorkloadError};
use crate::viewing::ViewingModel;

/// A video channel in the catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Channel index (0 = most popular).
    pub id: usize,
    /// Popularity share in `(0, 1]`, summing to 1 across the catalog.
    pub popularity: f64,
    /// Base external arrival rate `Λ(c)` in users per second, before the
    /// diurnal multiplier is applied.
    pub base_arrival_rate: f64,
    /// Viewer behaviour for this channel.
    pub viewing: ViewingModel,
}

/// A catalog of channels with Zipf-distributed popularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    channels: Vec<ChannelSpec>,
}

impl Catalog {
    /// Builds a catalog of `n` channels with Zipf(`exponent`) popularity,
    /// the same `viewing` model per channel, and base arrival rates chosen
    /// so the expected total steady-state population (by Little's law,
    /// under a unit diurnal multiplier) is `target_population`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn zipf(
        n: usize,
        exponent: f64,
        viewing: ViewingModel,
        target_population: f64,
        chunk_seconds: f64,
    ) -> Result<Self, WorkloadError> {
        if !(target_population.is_finite() && target_population > 0.0) {
            return Err(invalid_param(
                "target_population",
                format!("must be positive, got {target_population}"),
            ));
        }
        if !(chunk_seconds.is_finite() && chunk_seconds > 0.0) {
            return Err(invalid_param(
                "chunk_seconds",
                format!("must be positive, got {chunk_seconds}"),
            ));
        }
        let zipf = Zipf::new(n, exponent)?;
        // Mean session duration ~ chunks per session * chunk playback time.
        let chunks_per_session = viewing.expected_chunks_per_session()?;
        let session_seconds = chunks_per_session * chunk_seconds;
        // Little: population = total_rate * session_seconds.
        let total_rate = target_population / session_seconds;
        let channels = (0..n)
            .map(|id| ChannelSpec {
                id,
                popularity: zipf.prob(id),
                base_arrival_rate: total_rate * zipf.prob(id),
                viewing,
            })
            .collect();
        Ok(Self { channels })
    }

    /// Builds a catalog from explicit channel specifications (for custom
    /// experiments such as the paper's four representative channels).
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, ids are not `0..n` in order,
    /// or any viewing model or rate is invalid.
    pub fn from_channels(channels: Vec<ChannelSpec>) -> Result<Self, WorkloadError> {
        if channels.is_empty() {
            return Err(invalid_param("channels", "must not be empty"));
        }
        for (i, c) in channels.iter().enumerate() {
            if c.id != i {
                return Err(invalid_param(
                    "channels",
                    format!("ids must be 0..n in order; entry {i} has id {}", c.id),
                ));
            }
            c.viewing.validate()?;
            if !(c.base_arrival_rate.is_finite() && c.base_arrival_rate >= 0.0) {
                return Err(invalid_param(
                    "base_arrival_rate",
                    format!(
                        "channel {i}: must be non-negative, got {}",
                        c.base_arrival_rate
                    ),
                ));
            }
        }
        Ok(Self { channels })
    }

    /// The paper's catalog: 20 channels, Zipf popularity, ~2500 concurrent
    /// viewers, 5-minute chunks.
    pub fn paper_default() -> Self {
        Self::zipf(20, 0.8, ViewingModel::paper_default(), 2500.0, 300.0)
            .expect("paper defaults are valid")
    }

    /// A **mega catalog** for scale-out experiments: `channels` Zipf(0.8)
    /// channels with the paper's per-channel viewing model, calibrated so
    /// the expected steady-state population (unit diurnal multiplier) is
    /// `population` concurrent viewers. The paper's deployment is 20
    /// channels at ~2500 viewers; this is the same construction pushed to
    /// thousands of channels and millions of viewers.
    ///
    /// The catalog itself stays `O(channels)` memory, and every consumer
    /// of it in this workspace generates arrivals lazily (the streaming
    /// [`crate::trace::ArrivalStream`] / [`crate::trace::ChannelArrivals`]
    /// paths), so a 5-million-viewer week never materializes a trace.
    ///
    /// ```
    /// use cloudmedia_workload::catalog::Catalog;
    ///
    /// let catalog = Catalog::mega_catalog(2000, 1_000_000.0).unwrap();
    /// assert_eq!(catalog.len(), 2000);
    /// let pop = catalog.expected_population(300.0);
    /// assert!((pop - 1_000_000.0).abs() / 1_000_000.0 < 1e-9);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures (zero channels,
    /// non-positive population).
    pub fn mega_catalog(channels: usize, population: f64) -> Result<Self, WorkloadError> {
        Self::zipf(
            channels,
            0.8,
            ViewingModel::paper_default(),
            population,
            300.0,
        )
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if the catalog has no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The channels, most popular first.
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// A specific channel.
    pub fn channel(&self, id: usize) -> &ChannelSpec {
        &self.channels[id]
    }

    /// Total base arrival rate across channels (users per second).
    pub fn total_arrival_rate(&self) -> f64 {
        self.channels.iter().map(|c| c.base_arrival_rate).sum()
    }

    /// Expected steady-state population under a unit diurnal multiplier.
    pub fn expected_population(&self, chunk_seconds: f64) -> f64 {
        self.channels
            .iter()
            .map(|c| {
                let chunks = c
                    .viewing
                    .expected_chunks_per_session()
                    .expect("catalog channels validated at construction");
                c.base_arrival_rate * chunks * chunk_seconds
            })
            .sum()
    }

    /// Rescales every channel's base arrival rate by `factor`; used by
    /// experiments that sweep load.
    pub fn scaled(&self, factor: f64) -> Self {
        let channels = self
            .channels
            .iter()
            .map(|c| ChannelSpec {
                base_arrival_rate: c.base_arrival_rate * factor,
                ..c.clone()
            })
            .collect();
        Self { channels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_20_channels() {
        let c = Catalog::paper_default();
        assert_eq!(c.len(), 20);
        let pop_total: f64 = c.channels().iter().map(|c| c.popularity).sum();
        assert!((pop_total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn popularity_decreases_with_rank() {
        let c = Catalog::paper_default();
        for w in c.channels().windows(2) {
            assert!(w[0].popularity >= w[1].popularity);
            assert!(w[0].base_arrival_rate >= w[1].base_arrival_rate);
        }
    }

    #[test]
    fn littles_law_population_target_met() {
        let c = Catalog::paper_default();
        let pop = c.expected_population(300.0);
        assert!(
            (pop - 2500.0).abs() < 1.0,
            "expected population {pop} should match the 2500 target"
        );
    }

    #[test]
    fn scaled_catalog_scales_rates_only() {
        let c = Catalog::paper_default();
        let s = c.scaled(2.0);
        for (a, b) in c.channels().iter().zip(s.channels()) {
            assert!((b.base_arrival_rate - 2.0 * a.base_arrival_rate).abs() < 1e-12);
            assert_eq!(a.popularity, b.popularity);
        }
    }

    #[test]
    fn zipf_rejects_bad_population() {
        let v = ViewingModel::paper_default();
        assert!(Catalog::zipf(5, 1.0, v, 0.0, 300.0).is_err());
        assert!(Catalog::zipf(5, 1.0, v, 100.0, 0.0).is_err());
        assert!(Catalog::zipf(0, 1.0, v, 100.0, 300.0).is_err());
    }
}
