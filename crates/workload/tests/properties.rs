//! Property-based tests over workload generation.

use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::distributions::{BoundedPareto, Exponential, Zipf};
use cloudmedia_workload::diurnal::{DiurnalPattern, FlashCrowd};
use cloudmedia_workload::trace::{generate_arrivals, materialize_sessions, TraceConfig};
use cloudmedia_workload::viewing::ViewingModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn viewing_strategy() -> impl Strategy<Value = ViewingModel> {
    (2usize..30, 0.0..1.0f64, 0.0..0.5f64, 0.02..0.5f64)
        .prop_filter("jump+leave <= 1", |(_, _, j, l)| j + l <= 1.0)
        .prop_map(|(chunks, alpha, jump, leave)| ViewingModel {
            chunks,
            start_at_beginning: alpha,
            jump_prob: jump,
            leave_prob: leave,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn routing_rows_always_substochastic(model in viewing_strategy()) {
        let rows = model.routing_rows().unwrap();
        for row in &rows {
            let s: f64 = row.iter().sum();
            prop_assert!(s <= 1.0 + 1e-12);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn arrival_split_sums_to_total(model in viewing_strategy(), rate in 0.0..50.0f64) {
        let split = model.arrival_split(rate).unwrap();
        let total: f64 = split.iter().sum();
        prop_assert!((total - rate).abs() < 1e-9);
        prop_assert!(split.iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn expected_session_length_is_at_least_one_chunk(model in viewing_strategy()) {
        let e = model.expected_chunks_per_session().unwrap();
        prop_assert!(e >= 1.0 - 1e-9, "expected chunks {e}");
        // Bounded by the geometric tail of the leave probability.
        prop_assert!(e <= 1.0 / model.leave_prob + 1e-9 + model.chunks as f64);
    }

    #[test]
    fn pareto_samples_respect_bounds(
        min in 1.0..1e5f64,
        span in 1.1..100.0f64,
        shape in 0.5..5.0f64,
        seed in any::<u64>(),
    ) {
        let max = min * span;
        let d = BoundedPareto::new(min, max, shape).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!((min..=max).contains(&x));
        }
        prop_assert!((min..=max).contains(&d.mean()));
    }

    #[test]
    fn exponential_mean_parameterization(mean in 0.01..1e4f64) {
        let d = Exponential::with_mean(mean).unwrap();
        prop_assert!((d.mean() - mean).abs() / mean < 1e-12);
    }

    #[test]
    fn zipf_is_normalized_and_monotone(n in 1usize..100, s in 0.0..3.0f64) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = z.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(z.prob(i) <= z.prob(i - 1) + 1e-15);
        }
    }

    #[test]
    fn diurnal_multiplier_positive_and_bounded(
        baseline in 0.1..5.0f64,
        peak in 0.0..24.0f64,
        width in 0.2..6.0f64,
        amp in 0.0..10.0f64,
        t in 0.0..7.0f64,
    ) {
        let p = DiurnalPattern::new(
            baseline,
            vec![FlashCrowd { peak_hour: peak % 24.0, width_hours: width, amplitude: amp }],
        ).unwrap();
        let m = p.multiplier(t * 86_400.0);
        prop_assert!(m >= baseline - 1e-12);
        prop_assert!(m <= p.max_multiplier() + 1e-12);
    }

    #[test]
    fn traces_are_deterministic_and_sorted(seed in any::<u64>(), hours in 1.0..12.0f64) {
        let catalog = Catalog::zipf(2, 1.0, ViewingModel::paper_default(), 100.0, 300.0).unwrap();
        let cfg = TraceConfig {
            horizon_seconds: hours * 3600.0,
            seed,
            ..TraceConfig::paper_default()
        };
        let a = generate_arrivals(&catalog, &cfg).unwrap();
        let b = generate_arrivals(&catalog, &cfg).unwrap();
        prop_assert_eq!(&a, &b);
        for w in a.arrivals().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn sessions_have_valid_chunk_sequences(seed in any::<u64>()) {
        let catalog = Catalog::zipf(2, 1.0, ViewingModel::paper_default(), 60.0, 300.0).unwrap();
        let cfg = TraceConfig {
            horizon_seconds: 2.0 * 3600.0,
            seed,
            ..TraceConfig::paper_default()
        };
        let arrivals = generate_arrivals(&catalog, &cfg).unwrap();
        let sessions = materialize_sessions(&catalog, &arrivals, 300.0, seed ^ 1);
        for s in &sessions.sessions {
            let chunks = catalog.channel(s.channel).viewing.chunks;
            let mut last_time = f64::NEG_INFINITY;
            for e in &s.events {
                match e {
                    cloudmedia_workload::trace::SessionEvent::StartChunk { time, chunk } => {
                        prop_assert!(*chunk < chunks);
                        prop_assert!(*time >= last_time);
                        last_time = *time;
                    }
                    cloudmedia_workload::trace::SessionEvent::Leave { time } => {
                        prop_assert!(*time >= last_time);
                        last_time = *time;
                    }
                }
            }
        }
    }
}
