//! JSON persistence round trips for workload artifacts (traces are meant
//! to be archived and replayed bit-exactly).

use cloudmedia_workload::catalog::Catalog;
use cloudmedia_workload::trace::{generate_arrivals, materialize_sessions, TraceConfig};
use cloudmedia_workload::viewing::ViewingModel;

fn catalog() -> Catalog {
    Catalog::zipf(3, 0.9, ViewingModel::paper_default(), 120.0, 300.0).unwrap()
}

#[test]
fn arrival_trace_round_trips_exactly() {
    let cfg = TraceConfig {
        horizon_seconds: 4.0 * 3600.0,
        ..TraceConfig::paper_default()
    };
    let trace = generate_arrivals(&catalog(), &cfg).unwrap();
    let json = serde_json::to_string(&trace).unwrap();
    let back: cloudmedia_workload::trace::ArrivalTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
}

#[test]
fn catalog_and_config_round_trip_exactly() {
    let c = catalog();
    let back: Catalog = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
    assert_eq!(c, back);
    let cfg = TraceConfig::paper_default();
    let back: TraceConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn session_trace_round_trips() {
    let cfg = TraceConfig {
        horizon_seconds: 3600.0,
        ..TraceConfig::paper_default()
    };
    let arrivals = generate_arrivals(&catalog(), &cfg).unwrap();
    let sessions = materialize_sessions(&catalog(), &arrivals, 300.0, 7);
    let json = serde_json::to_string(&sessions).unwrap();
    let back: cloudmedia_workload::trace::SessionTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(sessions, back);
}
