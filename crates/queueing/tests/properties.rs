//! Property-based tests over the queueing substrate.

use cloudmedia_queueing::absorbing::AbsorbingChain;
use cloudmedia_queueing::erlang::{erlang_b, erlang_c, expected_in_system};
use cloudmedia_queueing::jackson::{JacksonNetwork, RoutingMatrix};
use cloudmedia_queueing::mmm::{min_servers_for_sojourn, MmmQueue};
use proptest::prelude::*;

/// Strategy: a substochastic routing matrix of dimension `n` whose rows sum
/// to at most `max_row_sum` (< 1 keeps chains absorbing and networks open).
fn routing_strategy(n: usize, max_row_sum: f64) -> impl Strategy<Value = RoutingMatrix> {
    proptest::collection::vec(proptest::collection::vec(0.0..1.0f64, n), n).prop_map(move |raw| {
        let rows: Vec<Vec<f64>> = raw
            .into_iter()
            .map(|row| {
                let s: f64 = row.iter().sum();
                if s == 0.0 {
                    row
                } else {
                    // Normalize and scale to a random-ish row sum below the cap.
                    row.iter().map(|v| v / s * max_row_sum * 0.9).collect()
                }
            })
            .collect();
        RoutingMatrix::from_rows(&rows).expect("constructed rows are substochastic")
    })
}

proptest! {
    #[test]
    fn erlang_b_is_a_probability(m in 0usize..200, a in 0.0..500.0f64) {
        let b = erlang_b(m, a).unwrap();
        prop_assert!((0.0..=1.0).contains(&b));
    }

    #[test]
    fn erlang_c_is_a_probability_and_dominates_b(m in 1usize..100, frac in 0.01..0.99f64) {
        let a = m as f64 * frac;
        let b = erlang_b(m, a).unwrap();
        let c = erlang_c(m, a).unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(c + 1e-12 >= b);
    }

    #[test]
    fn expected_in_system_at_least_offered_load(m in 1usize..100, frac in 0.01..0.99f64) {
        let a = m as f64 * frac;
        let l = expected_in_system(m, a).unwrap();
        prop_assert!(l >= a - 1e-9);
    }

    #[test]
    fn min_servers_result_is_stable_and_sufficient(
        lambda in 0.01..200.0f64,
        mu in 0.05..10.0f64,
        slack in 1.05..20.0f64,
    ) {
        let target = slack / mu; // always above the mean service time
        let m = min_servers_for_sojourn(lambda, mu, target).unwrap();
        let q = MmmQueue::new(lambda, mu, m).unwrap();
        prop_assert!(q.mean_sojourn_time() <= target + 1e-9);
        // Minimality: one fewer server either unstable or misses the target.
        if m > 0 {
            // Unstable (Err) is fine: one fewer server cannot serve.
            if let Ok(q2) = MmmQueue::new(lambda, mu, m - 1) {
                prop_assert!(q2.mean_sojourn_time() > target);
            }
        }
    }

    #[test]
    fn traffic_equations_conserve_flow(routing in routing_strategy(6, 0.95),
                                       gammas in proptest::collection::vec(0.0..10.0f64, 6)) {
        let net = JacksonNetwork::new(routing, gammas).unwrap();
        prop_assert!(net.flow_imbalance().unwrap() < 1e-8);
    }

    #[test]
    fn arrival_rates_dominate_external_rates(routing in routing_strategy(5, 0.9),
                                             gammas in proptest::collection::vec(0.0..5.0f64, 5)) {
        let net = JacksonNetwork::new(routing, gammas.clone()).unwrap();
        let lambdas = net.arrival_rates().unwrap();
        for (l, g) in lambdas.iter().zip(&gammas) {
            // Internal routing only adds traffic on top of external arrivals.
            prop_assert!(*l >= *g - 1e-9);
        }
    }

    #[test]
    fn hitting_probabilities_are_probabilities(routing in routing_strategy(5, 0.9)) {
        let chain = AbsorbingChain::new(routing).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let h = chain.hitting_probability(i, j);
                prop_assert!((0.0..=1.0).contains(&h), "h({i},{j}) = {h}");
            }
        }
    }

    #[test]
    fn visits_both_bounded_by_min_individual(routing in routing_strategy(5, 0.9)) {
        let chain = AbsorbingChain::new(routing).unwrap();
        let start = vec![0.2; 5];
        for j in 0..5 {
            for k in (j + 1)..5 {
                let both = chain.visits_both(&start, j, k).unwrap();
                let hj: f64 = (0..5).map(|i| 0.2 * chain.hitting_probability(i, j)).sum();
                let hk: f64 = (0..5).map(|i| 0.2 * chain.hitting_probability(i, k)).sum();
                prop_assert!(both <= hj.min(hk) + 1e-9,
                    "P(both {j},{k}) = {both} exceeds min({hj}, {hk})");
            }
        }
    }

    #[test]
    fn hit_before_partitions_with_complement(routing in routing_strategy(4, 0.85)) {
        let chain = AbsorbingChain::new(routing).unwrap();
        let a = chain.hit_before(0, 1).unwrap();
        let b = chain.hit_before(1, 0).unwrap();
        for i in 0..4 {
            // Either hit 0 first, hit 1 first, or absorb before both:
            // the two probabilities cannot sum above 1.
            prop_assert!(a[i] + b[i] <= 1.0 + 1e-9);
        }
    }
}
