//! Event-driven simulation cross-check of the closed-form M/M/m metrics.
//!
//! Simulates an M/M/m queue with exponential interarrivals/services and
//! compares the time-averaged number in system and the mean sojourn time
//! against `MmmQueue`'s analytic values.

use cloudmedia_queueing::mmm::MmmQueue;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn sample_exp(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

struct SimResult {
    mean_in_system: f64,
    mean_sojourn: f64,
}

/// Simulates an M/M/m queue for `jobs` completed jobs and returns the
/// time-averaged occupancy and mean sojourn time.
fn simulate_mmm(lambda: f64, mu: f64, m: usize, jobs: usize, seed: u64) -> SimResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = 0.0_f64;
    let mut next_arrival = sample_exp(&mut rng, lambda);
    // Completion times of jobs currently in service (unsorted, small m).
    let mut in_service: Vec<f64> = Vec::with_capacity(m);
    // Arrival times of waiting jobs, FIFO.
    let mut waiting: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    // Arrival time attached to each in-service job, parallel to in_service.
    let mut service_arrivals: Vec<f64> = Vec::with_capacity(m);

    let mut completed = 0usize;
    let mut area = 0.0_f64; // integral of n(t) dt
    let mut total_sojourn = 0.0_f64;
    let mut warmup = jobs / 10;
    let mut measured_jobs = 0usize;
    let mut measure_start = 0.0_f64;

    while completed < jobs {
        let next_completion = in_service.iter().cloned().fold(f64::INFINITY, f64::min);
        let n = in_service.len() + waiting.len();
        let t_next = next_arrival.min(next_completion);
        if warmup == 0 {
            area += n as f64 * (t_next - clock);
        }
        clock = t_next;
        if next_arrival <= next_completion {
            // Arrival event.
            if in_service.len() < m {
                in_service.push(clock + sample_exp(&mut rng, mu));
                service_arrivals.push(clock);
            } else {
                waiting.push_back(clock);
            }
            next_arrival = clock + sample_exp(&mut rng, lambda);
        } else {
            // Completion event.
            let idx = in_service
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            in_service.swap_remove(idx);
            let arrived = service_arrivals.swap_remove(idx);
            if warmup > 0 {
                warmup -= 1;
                if warmup == 0 {
                    measure_start = clock;
                }
            } else {
                total_sojourn += clock - arrived;
                measured_jobs += 1;
                completed += 1;
            }
            if let Some(wait_arrival) = waiting.pop_front() {
                in_service.push(clock + sample_exp(&mut rng, mu));
                service_arrivals.push(wait_arrival);
            }
        }
    }

    SimResult {
        mean_in_system: area / (clock - measure_start),
        mean_sojourn: total_sojourn / measured_jobs as f64,
    }
}

fn check(lambda: f64, mu: f64, m: usize, rel_tol: f64) {
    let q = MmmQueue::new(lambda, mu, m).unwrap();
    let sim = simulate_mmm(lambda, mu, m, 200_000, 42);
    let l_err = (sim.mean_in_system - q.expected_in_system()).abs() / q.expected_in_system();
    let w_err = (sim.mean_sojourn - q.mean_sojourn_time()).abs() / q.mean_sojourn_time();
    assert!(
        l_err < rel_tol,
        "L: sim {} vs analytic {} (rel err {l_err})",
        sim.mean_in_system,
        q.expected_in_system()
    );
    assert!(
        w_err < rel_tol,
        "W: sim {} vs analytic {} (rel err {w_err})",
        sim.mean_sojourn,
        q.mean_sojourn_time()
    );
}

#[test]
fn mm1_moderate_load_matches_analytic() {
    check(0.7, 1.0, 1, 0.05);
}

#[test]
fn mm5_matches_analytic() {
    check(3.5, 1.0, 5, 0.05);
}

#[test]
fn mm20_high_utilization_matches_analytic() {
    check(18.0, 1.0, 20, 0.08);
}

#[test]
fn paper_chunk_queue_matches_analytic() {
    // mu = 1/12 (10 Mbps VM serving 15 MB chunks), lambda = 0.5 viewers/s.
    check(0.5, 1.0 / 12.0, 8, 0.05);
}
