//! Generic birth–death chains on a truncated state space.
//!
//! Used to cross-validate the closed-form M/M/m metrics: an M/M/m queue is
//! the birth–death chain with constant birth rate `lambda` and death rate
//! `min(k, m) * mu`, and its truncated equilibrium converges to the
//! infinite-buffer metrics as the truncation grows.

use crate::error::{invalid_param, QueueingError};

/// A finite birth–death chain with states `0..=capacity`.
#[derive(Debug, Clone)]
pub struct BirthDeathChain {
    /// `birth[k]` is the rate from state `k` to `k + 1` (len = capacity).
    birth: Vec<f64>,
    /// `death[k]` is the rate from state `k + 1` to `k` (len = capacity).
    death: Vec<f64>,
}

impl BirthDeathChain {
    /// Creates a chain from per-transition birth and death rates.
    ///
    /// # Errors
    ///
    /// Returns an error if lengths differ, any rate is negative or
    /// non-finite, or any death rate is zero (which disconnects the chain).
    pub fn new(birth: Vec<f64>, death: Vec<f64>) -> Result<Self, QueueingError> {
        if birth.len() != death.len() {
            return Err(invalid_param(
                "death",
                format!("expected {} death rates, got {}", birth.len(), death.len()),
            ));
        }
        if birth.is_empty() {
            return Err(invalid_param(
                "birth",
                "chain must have at least one transition",
            ));
        }
        for &b in &birth {
            if !b.is_finite() || b < 0.0 {
                return Err(invalid_param("birth", format!("rate {b} invalid")));
            }
        }
        for &d in &death {
            if !d.is_finite() || d <= 0.0 {
                return Err(invalid_param("death", format!("rate {d} invalid")));
            }
        }
        Ok(Self { birth, death })
    }

    /// Builds the truncated M/M/m chain with buffer `capacity` states
    /// above zero.
    pub fn mmm(
        arrival_rate: f64,
        service_rate: f64,
        servers: usize,
        capacity: usize,
    ) -> Result<Self, QueueingError> {
        if capacity == 0 {
            return Err(invalid_param("capacity", "must be positive"));
        }
        let birth = vec![arrival_rate; capacity];
        let death = (1..=capacity)
            .map(|k| (k.min(servers)) as f64 * service_rate)
            .collect();
        Self::new(birth, death)
    }

    /// Number of states (`capacity + 1`).
    pub fn states(&self) -> usize {
        self.birth.len() + 1
    }

    /// Equilibrium distribution via detailed balance:
    /// `pi_{k+1} = pi_k * birth_k / death_k`, normalized. Computed with a
    /// running maximum rescale so very long chains do not overflow.
    pub fn equilibrium(&self) -> Vec<f64> {
        let n = self.states();
        let mut pi = vec![0.0; n];
        pi[0] = 1.0;
        let mut scale = 1.0;
        for k in 0..n - 1 {
            pi[k + 1] = pi[k] * self.birth[k] / self.death[k];
            if pi[k + 1] > 1e300 {
                let f = pi[k + 1];
                for p in pi.iter_mut().take(k + 2) {
                    *p /= f;
                }
                scale /= f;
            }
        }
        let _ = scale;
        let total: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= total;
        }
        pi
    }

    /// Expected state value under the equilibrium distribution.
    pub fn expected_state(&self) -> f64 {
        self.equilibrium()
            .iter()
            .enumerate()
            .map(|(k, p)| k as f64 * p)
            .sum()
    }

    /// Probability mass at the truncation boundary; a proxy for truncation
    /// error when approximating an infinite chain.
    pub fn boundary_mass(&self) -> f64 {
        *self
            .equilibrium()
            .last()
            .expect("chain has at least two states")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmm::MmmQueue;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn equilibrium_sums_to_one() {
        let c = BirthDeathChain::new(vec![1.0, 2.0, 0.5], vec![1.0, 1.0, 3.0]).unwrap();
        let pi = c.equilibrium();
        assert_close(pi.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn truncated_mm1_matches_geometric() {
        let c = BirthDeathChain::mmm(0.5, 1.0, 1, 200).unwrap();
        let pi = c.equilibrium();
        for (k, &p) in pi.iter().enumerate().take(10) {
            assert_close(p, 0.5 * 0.5f64.powi(k as i32), 1e-9);
        }
    }

    #[test]
    fn truncated_mmm_matches_closed_form_expected_n() {
        for &(lambda, mu, m) in &[(3.0, 1.0, 5usize), (0.9, 1.0, 1), (20.0, 2.5, 12)] {
            let q = MmmQueue::new(lambda, mu, m).unwrap();
            let chain = BirthDeathChain::mmm(lambda, mu, m, 4000).unwrap();
            assert!(chain.boundary_mass() < 1e-12, "truncation too small");
            assert_close(chain.expected_state(), q.expected_in_system(), 1e-6);
        }
    }

    #[test]
    fn truncated_mmm_matches_state_probabilities() {
        let q = MmmQueue::new(4.0, 1.0, 6).unwrap();
        let chain = BirthDeathChain::mmm(4.0, 1.0, 6, 2000).unwrap();
        let pi = chain.equilibrium();
        for (k, &p) in pi.iter().enumerate().take(30) {
            assert_close(p, q.state_probability(k), 1e-9);
        }
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(BirthDeathChain::new(vec![1.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_zero_death_rate() {
        assert!(BirthDeathChain::new(vec![1.0], vec![0.0]).is_err());
    }

    #[test]
    fn heavy_chain_does_not_overflow() {
        // Growth-dominant prefix would overflow naive products.
        let c = BirthDeathChain::mmm(500.0, 1.0, 600, 5000).unwrap();
        let pi = c.equilibrium();
        assert!(pi.iter().all(|p| p.is_finite()));
        assert_close(pi.iter().sum::<f64>(), 1.0, 1e-9);
    }
}
