//! The M/M/m/K queue: `m` servers and a finite waiting room of `K − m`
//! positions; arrivals finding the system full are *blocked* (rejected).
//!
//! The paper assumes infinite waiting rooms (`M/M/m_i/∞`); this module
//! provides the finite-capacity variant used by the admission-control
//! extension — a VoD provider may prefer rejecting a small fraction of
//! chunk requests outright over letting queues grow during overload.

use crate::birth_death::BirthDeathChain;
use crate::error::{invalid_param, QueueingError};

/// An M/M/m/K queue in equilibrium.
#[derive(Debug, Clone)]
pub struct MmmkQueue {
    arrival_rate: f64,
    service_rate: f64,
    servers: usize,
    capacity: usize,
    /// Cached equilibrium distribution over states `0..=capacity`.
    pi: Vec<f64>,
}

impl MmmkQueue {
    /// Creates an M/M/m/K queue (`capacity >= servers >= 1`). Unlike the
    /// infinite-buffer queue, any positive arrival rate is admissible —
    /// blocking keeps the system stable.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rates or `capacity < servers`.
    pub fn new(
        arrival_rate: f64,
        service_rate: f64,
        servers: usize,
        capacity: usize,
    ) -> Result<Self, QueueingError> {
        if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
            return Err(invalid_param(
                "arrival_rate",
                format!("must be finite and non-negative, got {arrival_rate}"),
            ));
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(invalid_param(
                "service_rate",
                format!("must be finite and positive, got {service_rate}"),
            ));
        }
        if servers == 0 {
            return Err(invalid_param("servers", "must be positive"));
        }
        if capacity < servers {
            return Err(invalid_param(
                "capacity",
                format!("must be at least the server count {servers}, got {capacity}"),
            ));
        }
        let pi = if arrival_rate == 0.0 {
            let mut v = vec![0.0; capacity + 1];
            v[0] = 1.0;
            v
        } else {
            BirthDeathChain::mmm(arrival_rate, service_rate, servers, capacity)?.equilibrium()
        };
        Ok(Self {
            arrival_rate,
            service_rate,
            servers,
            capacity,
            pi,
        })
    }

    /// Number of servers `m`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Total capacity `K` (in service plus waiting).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Probability an arriving job is blocked, `P(N = K)` (PASTA).
    pub fn blocking_probability(&self) -> f64 {
        self.pi[self.capacity]
    }

    /// Effective throughput: admitted arrival rate `λ(1 − P_block)`.
    pub fn throughput(&self) -> f64 {
        self.arrival_rate * (1.0 - self.blocking_probability())
    }

    /// Expected number of jobs in the system.
    pub fn expected_in_system(&self) -> f64 {
        self.pi.iter().enumerate().map(|(k, p)| k as f64 * p).sum()
    }

    /// Mean sojourn time of *admitted* jobs (Little's law over the
    /// effective arrival rate).
    pub fn mean_sojourn_time(&self) -> f64 {
        let thru = self.throughput();
        if thru == 0.0 {
            return 1.0 / self.service_rate;
        }
        self.expected_in_system() / thru
    }

    /// Equilibrium probability of exactly `k` jobs in the system.
    pub fn state_probability(&self, k: usize) -> f64 {
        self.pi.get(k).copied().unwrap_or(0.0)
    }
}

/// Minimum capacity `K` (with `m` servers fixed) such that the blocking
/// probability is at most `epsilon` — the admission-control sizing
/// question.
///
/// # Errors
///
/// Returns an error for invalid inputs, or if even a huge waiting room
/// cannot reach `epsilon` (overloaded system: `λ ≥ m·µ` has a blocking
/// floor of `1 − mµ/λ`).
pub fn min_capacity_for_blocking(
    arrival_rate: f64,
    service_rate: f64,
    servers: usize,
    epsilon: f64,
) -> Result<usize, QueueingError> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(invalid_param(
            "epsilon",
            format!("must be in (0, 1), got {epsilon}"),
        ));
    }
    if arrival_rate == 0.0 {
        return Ok(servers.max(1));
    }
    // Overload floor: throughput cannot exceed m*mu, so blocking cannot
    // fall below 1 - m*mu/lambda.
    let floor = 1.0 - (servers as f64 * service_rate / arrival_rate).min(1.0);
    if epsilon <= floor + 1e-12 {
        return Err(invalid_param(
            "epsilon",
            format!("unreachable: overload blocking floor is {floor:.4}"),
        ));
    }
    let mut k = servers.max(1);
    loop {
        let q = MmmkQueue::new(arrival_rate, service_rate, servers, k)?;
        if q.blocking_probability() <= epsilon {
            return Ok(k);
        }
        k += (k / 4).max(1);
        if k > 1_000_000 {
            return Err(invalid_param("epsilon", "no feasible capacity below 1e6"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmm::MmmQueue;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn mm1_1_is_erlang_b_single_line() {
        // M/M/1/1 blocking = a/(1+a).
        for &a in &[0.2, 1.0, 5.0] {
            let q = MmmkQueue::new(a, 1.0, 1, 1).unwrap();
            assert_close(q.blocking_probability(), a / (1.0 + a), 1e-12);
        }
    }

    #[test]
    fn mmm_m_matches_erlang_b() {
        // K = m is the Erlang loss system.
        let q = MmmkQueue::new(9.0, 1.0, 10, 10).unwrap();
        let b = crate::erlang::erlang_b(10, 9.0).unwrap();
        assert_close(q.blocking_probability(), b, 1e-9);
    }

    #[test]
    fn large_buffer_converges_to_infinite_queue() {
        let q = MmmkQueue::new(3.0, 1.0, 5, 3000).unwrap();
        let inf = MmmQueue::new(3.0, 1.0, 5).unwrap();
        assert!(q.blocking_probability() < 1e-12);
        assert_close(q.expected_in_system(), inf.expected_in_system(), 1e-6);
        assert_close(q.mean_sojourn_time(), inf.mean_sojourn_time(), 1e-6);
    }

    #[test]
    fn blocking_decreases_with_capacity() {
        let mut prev = 1.0;
        for k in 2..30 {
            let q = MmmkQueue::new(1.8, 1.0, 2, k).unwrap();
            assert!(q.blocking_probability() < prev);
            prev = q.blocking_probability();
        }
    }

    #[test]
    fn overloaded_system_is_stable_with_blocking() {
        // lambda = 3x service capacity: blocking ~ 2/3, throughput ~ m*mu.
        let q = MmmkQueue::new(3.0, 1.0, 1, 50).unwrap();
        assert!(q.blocking_probability() > 0.6);
        assert_close(q.throughput(), 1.0, 0.02);
    }

    #[test]
    fn min_capacity_meets_target_and_shrinks_with_looser_eps() {
        let tight = min_capacity_for_blocking(4.0, 1.0, 5, 0.001).unwrap();
        let loose = min_capacity_for_blocking(4.0, 1.0, 5, 0.05).unwrap();
        assert!(tight >= loose);
        let q = MmmkQueue::new(4.0, 1.0, 5, tight).unwrap();
        assert!(q.blocking_probability() <= 0.001);
    }

    #[test]
    fn min_capacity_detects_overload_floor() {
        // lambda = 2, m*mu = 1: blocking floor 0.5; eps = 0.1 unreachable.
        assert!(min_capacity_for_blocking(2.0, 1.0, 1, 0.1).is_err());
        // eps = 0.6 is reachable.
        assert!(min_capacity_for_blocking(2.0, 1.0, 1, 0.6).is_ok());
    }

    #[test]
    fn distribution_sums_to_one() {
        let q = MmmkQueue::new(7.0, 2.0, 3, 12).unwrap();
        let total: f64 = (0..=12).map(|k| q.state_probability(k)).sum();
        assert_close(total, 1.0, 1e-12);
        assert_eq!(q.state_probability(13), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(MmmkQueue::new(1.0, 1.0, 0, 5).is_err());
        assert!(MmmkQueue::new(1.0, 1.0, 5, 4).is_err());
        assert!(MmmkQueue::new(-1.0, 1.0, 1, 1).is_err());
        assert!(MmmkQueue::new(1.0, 0.0, 1, 1).is_err());
        assert!(min_capacity_for_blocking(1.0, 1.0, 1, 0.0).is_err());
    }

    #[test]
    fn zero_arrivals_idle_system() {
        let q = MmmkQueue::new(0.0, 1.0, 2, 5).unwrap();
        assert_eq!(q.blocking_probability(), 0.0);
        assert_eq!(q.expected_in_system(), 0.0);
    }
}
