//! Open Jackson networks of M/M/m queues.
//!
//! This is the paper's channel model (Sec. IV-A): one queue per video chunk,
//! a substochastic routing matrix `P` describing how viewers move between
//! chunks, and external Poisson arrivals split across the queues. The
//! traffic equations (paper Eqn. 1)
//!
//! ```text
//! lambda_i = gamma_i + sum_j lambda_j P_ji
//! ```
//!
//! are solved as the dense linear system `(I - P^T) lambda = gamma`.

use crate::error::{invalid_param, QueueingError};
use crate::linalg::Matrix;
use crate::mmm::MmmQueue;

/// Maximum tolerated violation when validating that routing rows sum to at
/// most one.
const ROW_SUM_TOL: f64 = 1e-9;

/// A substochastic routing matrix: entry `(i, j)` is the probability that a
/// job leaving queue `i` moves to queue `j`; the row deficit `1 - sum_j
/// P_ij` is the probability of leaving the network.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingMatrix {
    inner: Matrix,
}

impl RoutingMatrix {
    /// Validates and wraps a square matrix as a routing matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidRouting`] if any entry is negative
    /// or any row sums to more than one.
    pub fn new(matrix: Matrix) -> Result<Self, QueueingError> {
        if matrix.rows() != matrix.cols() {
            return Err(invalid_param(
                "matrix",
                format!(
                    "routing matrix must be square, got {}x{}",
                    matrix.rows(),
                    matrix.cols()
                ),
            ));
        }
        for i in 0..matrix.rows() {
            let mut row_sum = 0.0;
            for j in 0..matrix.cols() {
                let p = matrix[(i, j)];
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(QueueingError::InvalidRouting { row: i, row_sum: p });
                }
                row_sum += p;
            }
            if row_sum > 1.0 + ROW_SUM_TOL {
                return Err(QueueingError::InvalidRouting { row: i, row_sum });
            }
        }
        Ok(Self { inner: matrix })
    }

    /// Builds a routing matrix from row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, QueueingError> {
        Self::new(Matrix::from_rows(rows))
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.inner.rows()
    }

    /// True if the network has no queues (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probability of moving from queue `i` to queue `j`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.inner[(i, j)]
    }

    /// Probability that a job leaving queue `i` exits the network.
    pub fn exit_prob(&self, i: usize) -> f64 {
        let s: f64 = (0..self.len()).map(|j| self.prob(i, j)).sum();
        (1.0 - s).max(0.0)
    }

    /// The underlying matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.inner
    }
}

/// An open Jackson network specification: routing plus external arrival
/// rates per queue.
#[derive(Debug, Clone, PartialEq)]
pub struct JacksonNetwork {
    routing: RoutingMatrix,
    external_arrivals: Vec<f64>,
}

impl JacksonNetwork {
    /// Creates a network from routing and per-queue external Poisson
    /// arrival rates `gamma_i`.
    ///
    /// # Errors
    ///
    /// Returns an error if dimensions mismatch or any rate is negative.
    pub fn new(routing: RoutingMatrix, external_arrivals: Vec<f64>) -> Result<Self, QueueingError> {
        if external_arrivals.len() != routing.len() {
            return Err(invalid_param(
                "external_arrivals",
                format!(
                    "expected {} rates, got {}",
                    routing.len(),
                    external_arrivals.len()
                ),
            ));
        }
        if let Some(g) = external_arrivals
            .iter()
            .find(|g| !g.is_finite() || **g < 0.0)
        {
            return Err(invalid_param(
                "external_arrivals",
                format!("rates must be finite and non-negative, got {g}"),
            ));
        }
        Ok(Self {
            routing,
            external_arrivals,
        })
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.routing.len()
    }

    /// True if the network has no queues.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The routing matrix.
    pub fn routing(&self) -> &RoutingMatrix {
        &self.routing
    }

    /// External arrival rate into queue `i`.
    pub fn external_arrival(&self, i: usize) -> f64 {
        self.external_arrivals[i]
    }

    /// Total external arrival rate into the network.
    pub fn total_external_arrival(&self) -> f64 {
        self.external_arrivals.iter().sum()
    }

    /// Solves the traffic equations `lambda = gamma + P^T lambda`,
    /// returning the aggregate arrival rate `lambda_i` at each queue
    /// (paper Eqn. 1).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::SingularSystem`] if `I - P^T` is singular
    /// (the routing traps jobs forever) or [`QueueingError::NoEquilibrium`]
    /// if a computed rate is negative/non-finite.
    pub fn arrival_rates(&self) -> Result<Vec<f64>, QueueingError> {
        let n = self.len();
        let p = self.routing.as_matrix();
        let mut a = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                // (I - P^T)_{ij} = delta_ij - P_{ji}
                a[(i, j)] -= p[(j, i)];
            }
        }
        let lambda = a.solve(&self.external_arrivals)?;
        for (i, &l) in lambda.iter().enumerate() {
            if !l.is_finite() || l < -1e-9 {
                return Err(QueueingError::NoEquilibrium { queue: i, rate: l });
            }
        }
        Ok(lambda.into_iter().map(|l| l.max(0.0)).collect())
    }

    /// Builds the per-queue M/M/m queues for the given service rate and
    /// server counts, verifying stability of every queue.
    ///
    /// # Errors
    ///
    /// Propagates traffic-equation failures and per-queue instability.
    pub fn queues(
        &self,
        service_rate: f64,
        servers: &[usize],
    ) -> Result<Vec<MmmQueue>, QueueingError> {
        if servers.len() != self.len() {
            return Err(invalid_param(
                "servers",
                format!("expected {} counts, got {}", self.len(), servers.len()),
            ));
        }
        let lambdas = self.arrival_rates()?;
        lambdas
            .iter()
            .zip(servers)
            .map(|(&l, &m)| MmmQueue::new(l, service_rate, m))
            .collect()
    }

    /// Expected total number of jobs in the network given per-queue server
    /// counts (sum of per-queue `E(n_i)`; valid by Jackson's product-form
    /// theorem).
    pub fn expected_total_in_system(
        &self,
        service_rate: f64,
        servers: &[usize],
    ) -> Result<f64, QueueingError> {
        Ok(self
            .queues(service_rate, servers)?
            .iter()
            .map(MmmQueue::expected_in_system)
            .sum())
    }

    /// Joint equilibrium probability of the state `(k_1, ..., k_J)` —
    /// Jackson's product-form theorem: the network state factorizes into
    /// the per-queue M/M/m marginals.
    ///
    /// # Errors
    ///
    /// Propagates traffic-equation and stability failures.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` or `servers.len()` mismatch the network.
    pub fn state_probability(
        &self,
        service_rate: f64,
        servers: &[usize],
        state: &[usize],
    ) -> Result<f64, QueueingError> {
        assert_eq!(state.len(), self.len(), "state length mismatch");
        let queues = self.queues(service_rate, servers)?;
        Ok(queues
            .iter()
            .zip(state)
            .map(|(q, &k)| q.state_probability(k))
            .product())
    }

    /// Throughput conservation check: in equilibrium the total external
    /// arrival rate equals the total departure rate
    /// `sum_i lambda_i * exit_prob(i)`. Returns the relative imbalance
    /// (zero for a well-posed open network); exposed for diagnostics and
    /// tests.
    pub fn flow_imbalance(&self) -> Result<f64, QueueingError> {
        let lambdas = self.arrival_rates()?;
        let out: f64 = lambdas
            .iter()
            .enumerate()
            .map(|(i, l)| l * self.routing.exit_prob(i))
            .sum();
        let input = self.total_external_arrival();
        if input == 0.0 {
            return Ok(0.0);
        }
        Ok((out - input).abs() / input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn tandem_network_rates() {
        // Two queues in series: all external arrivals enter queue 0 and
        // proceed to queue 1, then leave. lambda_0 = lambda_1 = gamma.
        let routing = RoutingMatrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 0.0]]).unwrap();
        let net = JacksonNetwork::new(routing, vec![2.5, 0.0]).unwrap();
        let l = net.arrival_rates().unwrap();
        assert_close(l[0], 2.5, 1e-12);
        assert_close(l[1], 2.5, 1e-12);
    }

    #[test]
    fn feedback_queue_rates() {
        // Single queue, jobs return with probability q: lambda = gamma/(1-q).
        let q = 0.25;
        let routing = RoutingMatrix::from_rows(&[vec![q]]).unwrap();
        let net = JacksonNetwork::new(routing, vec![3.0]).unwrap();
        let l = net.arrival_rates().unwrap();
        assert_close(l[0], 3.0 / (1.0 - q), 1e-12);
    }

    #[test]
    fn sequential_viewing_chain_rates() {
        // A 5-chunk "video": watch chunk i then move to i+1 with prob 0.8,
        // leave otherwise; everyone starts at chunk 0.
        let j = 5;
        let mut rows = vec![vec![0.0; j]; j];
        for i in 0..j - 1 {
            rows[i][i + 1] = 0.8;
        }
        let routing = RoutingMatrix::from_rows(&rows).unwrap();
        let mut gamma = vec![0.0; j];
        gamma[0] = 1.0;
        let net = JacksonNetwork::new(routing, gamma).unwrap();
        let l = net.arrival_rates().unwrap();
        for (i, &li) in l.iter().enumerate() {
            assert_close(li, 0.8f64.powi(i as i32), 1e-12);
        }
    }

    #[test]
    fn flow_conservation_holds() {
        let routing = RoutingMatrix::from_rows(&[
            vec![0.0, 0.5, 0.2],
            vec![0.1, 0.0, 0.6],
            vec![0.3, 0.3, 0.0],
        ])
        .unwrap();
        let net = JacksonNetwork::new(routing, vec![1.0, 2.0, 0.5]).unwrap();
        assert!(net.flow_imbalance().unwrap() < 1e-10);
    }

    #[test]
    fn trapping_routing_is_singular() {
        // Queue 1 feeds itself forever: row sums to exactly 1 with no exit
        // reachable -> I - P^T singular.
        let routing = RoutingMatrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let net = JacksonNetwork::new(routing, vec![1.0, 0.0]).unwrap();
        assert!(net.arrival_rates().is_err());
    }

    #[test]
    fn super_stochastic_row_rejected() {
        let err = RoutingMatrix::from_rows(&[vec![0.7, 0.7], vec![0.0, 0.0]]).unwrap_err();
        assert!(matches!(err, QueueingError::InvalidRouting { row: 0, .. }));
    }

    #[test]
    fn negative_entry_rejected() {
        assert!(RoutingMatrix::from_rows(&[vec![-0.1, 0.5], vec![0.0, 0.0]]).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0]]);
        assert!(RoutingMatrix::new(m).is_err());
    }

    #[test]
    fn arrival_len_mismatch_rejected() {
        let routing = RoutingMatrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(JacksonNetwork::new(routing, vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn queues_propagate_instability() {
        let routing = RoutingMatrix::from_rows(&[vec![0.0]]).unwrap();
        let net = JacksonNetwork::new(routing, vec![5.0]).unwrap();
        // 5 jobs/s at service rate 1 with 3 servers is unstable.
        assert!(net.queues(1.0, &[3]).is_err());
        assert!(net.queues(1.0, &[6]).is_ok());
    }

    #[test]
    fn expected_total_matches_sum_of_queue_metrics() {
        let routing = RoutingMatrix::from_rows(&[vec![0.0, 0.6], vec![0.0, 0.0]]).unwrap();
        let net = JacksonNetwork::new(routing, vec![2.0, 0.3]).unwrap();
        let total = net.expected_total_in_system(1.0, &[4, 3]).unwrap();
        let queues = net.queues(1.0, &[4, 3]).unwrap();
        let sum: f64 = queues.iter().map(MmmQueue::expected_in_system).sum();
        assert_close(total, sum, 1e-12);
    }

    #[test]
    fn product_form_state_probabilities() {
        let routing = RoutingMatrix::from_rows(&[vec![0.0, 0.6], vec![0.0, 0.0]]).unwrap();
        let net = JacksonNetwork::new(routing, vec![2.0, 0.3]).unwrap();
        let servers = [4usize, 3];
        let queues = net.queues(1.0, &servers).unwrap();
        // Factorization against the marginals.
        let p = net.state_probability(1.0, &servers, &[2, 1]).unwrap();
        let expect = queues[0].state_probability(2) * queues[1].state_probability(1);
        assert_close(p, expect, 1e-15);
        // Sums to ~1 over a generous grid.
        let mut total = 0.0;
        for k0 in 0..60 {
            for k1 in 0..60 {
                total += net.state_probability(1.0, &servers, &[k0, k1]).unwrap();
            }
        }
        assert_close(total, 1.0, 1e-6);
    }

    #[test]
    fn exit_probability_complements_row_sum() {
        let routing = RoutingMatrix::from_rows(&[
            vec![0.0, 0.5, 0.2],
            vec![0.1, 0.0, 0.6],
            vec![0.0, 0.0, 0.0],
        ])
        .unwrap();
        assert_close(routing.exit_prob(0), 0.3, 1e-12);
        assert_close(routing.exit_prob(1), 0.3, 1e-12);
        assert_close(routing.exit_prob(2), 1.0, 1e-12);
    }
}
