//! The M/M/m queue: Poisson arrivals, exponential service, `m` identical
//! servers, infinite waiting room.
//!
//! Each chunk queue `Q_i^(c)` in the paper is an `M/M/m_i/∞` queue; this
//! module provides the equilibrium metrics (paper Eqns. 2–3) plus the
//! inverse problem the paper solves iteratively: the minimum number of
//! servers so that the mean sojourn time does not exceed a target (the
//! chunk playback time `T0`).

use crate::erlang::{erlang_c, expected_in_system, expected_queue_length};
use crate::error::{invalid_param, QueueingError};

/// An M/M/m queue in equilibrium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmmQueue {
    arrival_rate: f64,
    service_rate: f64,
    servers: usize,
}

impl MmmQueue {
    /// Creates a stable M/M/m queue.
    ///
    /// # Errors
    ///
    /// Returns an error if rates are non-positive/non-finite or the queue
    /// would be unstable (`lambda / mu >= m`).
    pub fn new(
        arrival_rate: f64,
        service_rate: f64,
        servers: usize,
    ) -> Result<Self, QueueingError> {
        if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
            return Err(invalid_param(
                "arrival_rate",
                format!("must be finite and non-negative, got {arrival_rate}"),
            ));
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(invalid_param(
                "service_rate",
                format!("must be finite and positive, got {service_rate}"),
            ));
        }
        let q = Self {
            arrival_rate,
            service_rate,
            servers,
        };
        if arrival_rate > 0.0 && q.offered_load() >= servers as f64 {
            return Err(QueueingError::UnstableQueue {
                offered_load: q.offered_load(),
                servers,
            });
        }
        Ok(q)
    }

    /// Arrival rate `lambda`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Per-server service rate `mu`.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Number of servers `m`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Offered load `a = lambda / mu` — the paper's `rho_i`.
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Per-server utilization `a / m` in `[0, 1)`.
    pub fn utilization(&self) -> f64 {
        if self.servers == 0 {
            return 0.0;
        }
        self.offered_load() / self.servers as f64
    }

    /// Probability an arriving job has to wait (Erlang C).
    pub fn wait_probability(&self) -> f64 {
        if self.arrival_rate == 0.0 {
            return 0.0;
        }
        erlang_c(self.servers, self.offered_load()).expect("constructor guarantees stability")
    }

    /// Expected number of jobs in the system, `E(n)` of paper Eqn. (3).
    pub fn expected_in_system(&self) -> f64 {
        if self.arrival_rate == 0.0 {
            return 0.0;
        }
        expected_in_system(self.servers, self.offered_load())
            .expect("constructor guarantees stability")
    }

    /// Expected number of waiting (not-in-service) jobs.
    pub fn expected_waiting(&self) -> f64 {
        if self.arrival_rate == 0.0 {
            return 0.0;
        }
        expected_queue_length(self.servers, self.offered_load())
            .expect("constructor guarantees stability")
    }

    /// Mean sojourn time `W = L / lambda` (Little's law) — queueing plus
    /// service; the quantity the paper pins to `T0`.
    pub fn mean_sojourn_time(&self) -> f64 {
        if self.arrival_rate == 0.0 {
            // An arriving job would only experience its own service time.
            return 1.0 / self.service_rate;
        }
        self.expected_in_system() / self.arrival_rate
    }

    /// Mean waiting time `Wq = W - 1/mu`.
    pub fn mean_waiting_time(&self) -> f64 {
        (self.mean_sojourn_time() - 1.0 / self.service_rate).max(0.0)
    }

    /// Tail of the sojourn-time distribution: `P(S > t)` where `S` is
    /// waiting plus service time.
    ///
    /// With `C` the Erlang-C waiting probability and `θ = mµ − λ` the
    /// conditional waiting rate, the sojourn is `exp(µ)` with probability
    /// `1 − C` and `exp(θ) + exp(µ)` (independent) with probability `C`:
    ///
    /// ```text
    /// P(S > t) = (1 − C)·e^{−µt} + C·(θ·e^{−µt} − µ·e^{−θt}) / (θ − µ)
    /// ```
    ///
    /// (with the Erlang-2 limit when `θ = µ`). Used by the tail-aware
    /// provisioning extension: the paper sizes capacity for the *mean*
    /// sojourn; sizing for a quantile bounds the fraction of late chunks
    /// directly.
    pub fn sojourn_tail(&self, t: f64) -> f64 {
        assert!(
            t >= 0.0 && t.is_finite(),
            "t must be finite and non-negative"
        );
        let mu = self.service_rate;
        if self.arrival_rate == 0.0 {
            return (-mu * t).exp();
        }
        let c = self.wait_probability();
        let theta = self.servers as f64 * mu - self.arrival_rate;
        let tail = if (theta - mu).abs() < 1e-9 * mu {
            // Erlang-2 limit: P(sum > t) = (1 + µt)·e^{−µt}.
            (1.0 - c) * (-mu * t).exp() + c * (1.0 + mu * t) * (-mu * t).exp()
        } else {
            (1.0 - c) * (-mu * t).exp()
                + c * (theta * (-mu * t).exp() - mu * (-theta * t).exp()) / (theta - mu)
        };
        tail.clamp(0.0, 1.0)
    }

    /// The `p`-th quantile of the sojourn-time distribution: the smallest
    /// `t` with `P(S <= t) >= p`, found by bisection on
    /// [`MmmQueue::sojourn_tail`].
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `(0, 1)`.
    pub fn sojourn_quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
        let target_tail = 1.0 - p;
        // Bracket: the tail decays at least as fast as the slowest of the
        // two exponential phases.
        let mut hi = 1.0 / self.service_rate;
        while self.sojourn_tail(hi) > target_tail {
            hi *= 2.0;
            assert!(hi.is_finite());
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.sojourn_tail(mid) > target_tail {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        hi
    }

    /// Equilibrium probability of exactly `k` jobs in the system
    /// (paper Eqn. 2).
    pub fn state_probability(&self, k: usize) -> f64 {
        let a = self.offered_load();
        if a == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        let m = self.servers;
        // p(0) via the stable sum: p0^-1 = sum_{k<m} a^k/k! + a^m/(m!(1-a/m)).
        // Computed with running terms to avoid factorials.
        let mut term = 1.0; // a^j / j!
        let mut sum = 1.0;
        for j in 1..m {
            term *= a / j as f64;
            sum += term;
        }
        let term_m = if m == 0 { 1.0 } else { term * a / m as f64 }; // a^m / m!
        let rho = a / m as f64;
        let p0 = 1.0 / (sum + term_m / (1.0 - rho));
        if k < m {
            // p(k) = p0 a^k / k!
            let mut t = 1.0;
            for j in 1..=k {
                t *= a / j as f64;
            }
            p0 * t
        } else {
            // p(k) = p0 a^m/m! * rho^{k-m}
            p0 * term_m * rho.powi((k - m) as i32)
        }
    }
}

/// Returns the minimum number of servers `m` such that an M/M/m queue with
/// the given rates has mean sojourn time at most `target_sojourn`.
///
/// This is the paper's iterative derivation of `m_i^(c)` ("initialize to 1
/// and increase until `E(n)` equals `lambda T0`"), implemented as an
/// exponential probe followed by a binary search so that heavily loaded
/// chunks (thousands of concurrent viewers) are handled in `O(log m)`
/// metric evaluations.
///
/// # Errors
///
/// Returns an error if the target is unreachable (`target_sojourn <
/// 1/mu`, since even an idle server needs a full service time) or if the
/// inputs are invalid.
pub fn min_servers_for_sojourn(
    arrival_rate: f64,
    service_rate: f64,
    target_sojourn: f64,
) -> Result<usize, QueueingError> {
    if !(service_rate.is_finite() && service_rate > 0.0) {
        return Err(invalid_param(
            "service_rate",
            format!("must be finite and positive, got {service_rate}"),
        ));
    }
    if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
        return Err(invalid_param(
            "arrival_rate",
            format!("must be finite and non-negative, got {arrival_rate}"),
        ));
    }
    if !(target_sojourn.is_finite() && target_sojourn > 0.0) {
        return Err(invalid_param(
            "target_sojourn",
            format!("must be finite and positive, got {target_sojourn}"),
        ));
    }
    if target_sojourn < 1.0 / service_rate {
        return Err(invalid_param(
            "target_sojourn",
            format!(
                "unreachable: target {target_sojourn} is below the mean service time {}",
                1.0 / service_rate
            ),
        ));
    }
    if arrival_rate == 0.0 {
        return Ok(0);
    }

    let a = arrival_rate / service_rate;
    let floor_m = a.floor() as usize + 1; // smallest stable m

    let sojourn = |m: usize| -> f64 {
        MmmQueue::new(arrival_rate, service_rate, m)
            .expect("m chosen above stability floor")
            .mean_sojourn_time()
    };

    // Exponential probe upward from the stability floor.
    let mut hi = floor_m;
    while sojourn(hi) > target_sojourn {
        hi = hi.saturating_mul(2).max(hi + 1);
    }
    if hi == floor_m {
        return Ok(floor_m);
    }
    // Invariant: sojourn(lo) > target >= sojourn(hi).
    let mut lo = hi / 2;
    if lo < floor_m {
        lo = floor_m;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if sojourn(mid) > target_sojourn {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

/// Returns the minimum number of servers `m` such that the sojourn-time
/// *quantile* meets the target: `P(S > target_sojourn) <= epsilon`.
///
/// A tail-aware strengthening of [`min_servers_for_sojourn`] (the paper
/// bounds only the mean): with `epsilon = 0.05`, at most 5% of chunk
/// retrievals exceed the playback window in equilibrium.
///
/// # Errors
///
/// Returns an error for invalid inputs or an unreachable target (even an
/// idle system has `P(S > t) = e^{-mu t}`, so `epsilon` below that is
/// impossible).
pub fn min_servers_for_sojourn_quantile(
    arrival_rate: f64,
    service_rate: f64,
    target_sojourn: f64,
    epsilon: f64,
) -> Result<usize, QueueingError> {
    if !(service_rate.is_finite() && service_rate > 0.0) {
        return Err(invalid_param(
            "service_rate",
            format!("must be positive, got {service_rate}"),
        ));
    }
    if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
        return Err(invalid_param(
            "arrival_rate",
            format!("must be non-negative, got {arrival_rate}"),
        ));
    }
    if !(target_sojourn.is_finite() && target_sojourn > 0.0) {
        return Err(invalid_param(
            "target_sojourn",
            format!("must be positive, got {target_sojourn}"),
        ));
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(invalid_param(
            "epsilon",
            format!("must be in (0, 1), got {epsilon}"),
        ));
    }
    let floor_tail = (-service_rate * target_sojourn).exp();
    if epsilon < floor_tail {
        return Err(invalid_param(
            "epsilon",
            format!(
                "unreachable: even an idle server has P(S > {target_sojourn}) = {floor_tail:.3e}"
            ),
        ));
    }
    if arrival_rate == 0.0 {
        return Ok(0);
    }
    let a = arrival_rate / service_rate;
    let floor_m = a.floor() as usize + 1;
    let tail = |m: usize| -> f64 {
        MmmQueue::new(arrival_rate, service_rate, m)
            .expect("m chosen above stability floor")
            .sojourn_tail(target_sojourn)
    };
    let mut hi = floor_m;
    while tail(hi) > epsilon {
        hi = hi.saturating_mul(2).max(hi + 1);
    }
    if hi == floor_m {
        return Ok(floor_m);
    }
    let mut lo = (hi / 2).max(floor_m);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if tail(mid) > epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn mm1_metrics_match_closed_forms() {
        let q = MmmQueue::new(0.8, 1.0, 1).unwrap();
        assert_close(q.expected_in_system(), 0.8 / 0.2, 1e-9);
        assert_close(q.mean_sojourn_time(), 1.0 / 0.2, 1e-9);
        assert_close(q.wait_probability(), 0.8, 1e-12);
        assert_close(q.utilization(), 0.8, 1e-12);
    }

    #[test]
    fn state_probabilities_sum_to_one() {
        let q = MmmQueue::new(3.0, 1.0, 5).unwrap();
        let total: f64 = (0..500).map(|k| q.state_probability(k)).sum();
        assert_close(total, 1.0, 1e-9);
    }

    #[test]
    fn state_probabilities_give_expected_n() {
        let q = MmmQueue::new(3.0, 1.0, 5).unwrap();
        let en: f64 = (0..2000).map(|k| k as f64 * q.state_probability(k)).sum();
        assert_close(en, q.expected_in_system(), 1e-6);
    }

    #[test]
    fn mm1_state_probabilities_geometric() {
        let q = MmmQueue::new(0.6, 1.0, 1).unwrap();
        for k in 0..10 {
            assert_close(q.state_probability(k), 0.4 * 0.6f64.powi(k as i32), 1e-12);
        }
    }

    #[test]
    fn zero_arrival_rate_is_empty_system() {
        let q = MmmQueue::new(0.0, 2.0, 3).unwrap();
        assert_eq!(q.expected_in_system(), 0.0);
        assert_eq!(q.state_probability(0), 1.0);
        assert_close(q.mean_sojourn_time(), 0.5, 1e-12);
    }

    #[test]
    fn unstable_queue_rejected() {
        assert!(MmmQueue::new(2.0, 1.0, 2).is_err());
        assert!(MmmQueue::new(2.0, 1.0, 1).is_err());
        assert!(MmmQueue::new(2.0, 1.0, 3).is_ok());
    }

    #[test]
    fn little_law_consistency() {
        let q = MmmQueue::new(12.0, 1.5, 10).unwrap();
        assert_close(
            q.expected_in_system(),
            q.arrival_rate() * q.mean_sojourn_time(),
            1e-9,
        );
        assert_close(
            q.expected_waiting(),
            q.arrival_rate() * q.mean_waiting_time(),
            1e-9,
        );
    }

    #[test]
    fn min_servers_meets_target_and_is_minimal() {
        for &(lambda, mu, t) in &[
            (0.5, 1.0, 2.0),
            (10.0, 1.0, 1.5),
            (100.0, 0.2, 6.0),
            (3.0, 2.0, 0.7),
        ] {
            let m = min_servers_for_sojourn(lambda, mu, t).unwrap();
            let w = MmmQueue::new(lambda, mu, m).unwrap().mean_sojourn_time();
            assert!(w <= t + 1e-12, "m={m} gives sojourn {w} > target {t}");
            if m > (lambda / mu).floor() as usize + 1 {
                let w_less = MmmQueue::new(lambda, mu, m - 1)
                    .unwrap()
                    .mean_sojourn_time();
                assert!(w_less > t, "m-1={} already meets target", m - 1);
            }
        }
    }

    #[test]
    fn min_servers_zero_arrivals_needs_no_servers() {
        assert_eq!(min_servers_for_sojourn(0.0, 1.0, 1.0).unwrap(), 0);
    }

    #[test]
    fn min_servers_unreachable_target_is_error() {
        // Mean service time is 2s; a 1s sojourn target is impossible.
        assert!(min_servers_for_sojourn(1.0, 0.5, 1.0).is_err());
    }

    #[test]
    fn min_servers_loose_target_returns_stability_floor() {
        // With a huge target, only stability matters: m = floor(a) + 1.
        let m = min_servers_for_sojourn(7.9, 1.0, 1e9).unwrap();
        assert_eq!(m, 8);
    }

    #[test]
    fn min_servers_large_scale_is_fast_and_sane() {
        // ~50k offered load; binary search must handle this instantly.
        let m = min_servers_for_sojourn(50_000.0, 1.0, 1.2).unwrap();
        assert!(m >= 50_001);
        assert!(m < 60_000, "m={m} looks wasteful");
    }

    #[test]
    fn paper_parameters_chunk_queue() {
        // Paper Sec. VI: R = 10 Mbps VM bandwidth, chunk = 15 MB,
        // mu = R/(r T0) = 1/12 per s, T0 = 300 s.
        let mu = 1.0 / 12.0;
        let t0 = 300.0;
        // A chunk watched by ~a channel with lambda = 0.5 users/s.
        let m = min_servers_for_sojourn(0.5, mu, t0).unwrap();
        let q = MmmQueue::new(0.5, mu, m).unwrap();
        assert!(q.mean_sojourn_time() <= t0);
        // Offered load is 6, so at least 7 servers.
        assert!(m >= 7);
    }

    #[test]
    fn sojourn_tail_mm1_closed_form() {
        // M/M/1: P(S > t) = e^{-(mu - lambda) t}.
        let q = MmmQueue::new(0.6, 1.0, 1).unwrap();
        for &t in &[0.0, 0.5, 1.0, 3.0] {
            assert_close(q.sojourn_tail(t), (-0.4_f64 * t).exp(), 1e-9);
        }
    }

    #[test]
    fn sojourn_tail_is_a_valid_survival_function() {
        let q = MmmQueue::new(7.0, 1.0, 10).unwrap();
        assert_close(q.sojourn_tail(0.0), 1.0, 1e-12);
        let mut prev = 1.0;
        for i in 1..50 {
            let tail = q.sojourn_tail(i as f64 * 0.3);
            assert!(tail <= prev + 1e-12, "tail must be non-increasing");
            assert!((0.0..=1.0).contains(&tail));
            prev = tail;
        }
        assert!(q.sojourn_tail(100.0) < 1e-9);
    }

    #[test]
    fn sojourn_tail_integrates_to_mean() {
        // E[S] = integral of the survival function.
        let q = MmmQueue::new(3.0, 1.0, 4).unwrap();
        let dt = 0.001;
        let mut integral = 0.0;
        let mut t = 0.0;
        while t < 60.0 {
            integral += q.sojourn_tail(t) * dt;
            t += dt;
        }
        assert_close(integral, q.mean_sojourn_time(), 1e-3);
    }

    #[test]
    fn sojourn_tail_empty_system_is_service_tail() {
        let q = MmmQueue::new(0.0, 2.0, 3).unwrap();
        assert_close(q.sojourn_tail(1.0), (-2.0_f64).exp(), 1e-12);
    }

    #[test]
    fn sojourn_quantile_inverts_the_tail() {
        let q = MmmQueue::new(6.0, 1.0, 8).unwrap();
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let t = q.sojourn_quantile(p);
            assert_close(q.sojourn_tail(t), 1.0 - p, 1e-9);
        }
        // Median below mean for this right-skewed distribution.
        assert!(q.sojourn_quantile(0.5) < q.mean_sojourn_time());
        // Quantiles increase with p.
        assert!(q.sojourn_quantile(0.9) > q.sojourn_quantile(0.5));
    }

    #[test]
    fn mm1_quantile_closed_form() {
        // M/M/1: S ~ exp(mu - lambda); quantile = -ln(1-p)/(mu-lambda).
        let q = MmmQueue::new(0.5, 1.0, 1).unwrap();
        for &p in &[0.25, 0.5, 0.95] {
            let expect = -(1.0_f64 - p).ln() / 0.5;
            assert_close(q.sojourn_quantile(p), expect, 1e-6);
        }
    }

    #[test]
    fn quantile_provisioning_meets_and_is_minimal() {
        for &(lambda, mu, t, eps) in &[
            (5.0, 1.0, 3.0, 0.06),
            (0.5, 1.0 / 12.0, 300.0, 0.05),
            // Note: epsilon must stay above the service tail e^{-mu t}.
            (20.0, 2.0, 1.5, 0.08),
        ] {
            let m = min_servers_for_sojourn_quantile(lambda, mu, t, eps).unwrap();
            let q = MmmQueue::new(lambda, mu, m).unwrap();
            assert!(
                q.sojourn_tail(t) <= eps + 1e-12,
                "m={m}: tail {}",
                q.sojourn_tail(t)
            );
            if let Ok(q2) = MmmQueue::new(lambda, mu, m - 1) {
                assert!(q2.sojourn_tail(t) > eps, "m-1 already meets the quantile");
            }
        }
    }

    #[test]
    fn quantile_provisioning_needs_at_least_mean_provisioning() {
        // Bounding the 95th percentile by T0 is stronger than bounding the
        // mean by T0.
        let (lambda, mu, t) = (2.0, 1.0 / 12.0, 300.0);
        let mean_m = min_servers_for_sojourn(lambda, mu, t).unwrap();
        let tail_m = min_servers_for_sojourn_quantile(lambda, mu, t, 0.05).unwrap();
        assert!(tail_m >= mean_m, "tail {tail_m} < mean {mean_m}");
    }

    #[test]
    fn quantile_provisioning_rejects_unreachable_epsilon() {
        // P(S > t) >= e^{-mu t} no matter how many servers.
        let err = min_servers_for_sojourn_quantile(1.0, 1.0, 1.0, 1e-9).unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn quantile_zero_arrivals_needs_no_servers() {
        assert_eq!(
            min_servers_for_sojourn_quantile(0.0, 1.0, 10.0, 0.5).unwrap(),
            0
        );
    }

    #[test]
    fn sojourn_time_monotone_decreasing_in_servers() {
        let mut prev = f64::INFINITY;
        for m in 4..30 {
            let w = MmmQueue::new(3.0, 1.0, m).unwrap().mean_sojourn_time();
            // Non-strict: waiting time underflows to zero for large m.
            assert!(w <= prev);
            prev = w;
        }
    }
}
