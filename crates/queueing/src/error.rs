//! Error types for the queueing substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by queueing-theory computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueueingError {
    /// A linear system was numerically singular at the given pivot column.
    SingularSystem {
        /// Pivot column at which elimination failed.
        column: usize,
    },
    /// A queue was asked for equilibrium metrics while unstable
    /// (offered load at least the number of servers).
    UnstableQueue {
        /// Offered load `a = lambda / mu`.
        offered_load: f64,
        /// Number of servers `m`.
        servers: usize,
    },
    /// An input parameter was out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The routing matrix is not substochastic or is otherwise malformed.
    InvalidRouting {
        /// Row of the routing matrix that is invalid.
        row: usize,
        /// Sum of that row.
        row_sum: f64,
    },
    /// No equilibrium exists: a traffic equation produced a negative or
    /// non-finite arrival rate.
    NoEquilibrium {
        /// Queue index with the invalid arrival rate.
        queue: usize,
        /// The computed arrival rate.
        rate: f64,
    },
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::SingularSystem { column } => {
                write!(f, "linear system is singular at pivot column {column}")
            }
            QueueingError::UnstableQueue {
                offered_load,
                servers,
            } => write!(
                f,
                "queue is unstable: offered load {offered_load} >= {servers} servers"
            ),
            QueueingError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            QueueingError::InvalidRouting { row, row_sum } => write!(
                f,
                "routing matrix row {row} sums to {row_sum}, expected a value in [0, 1]"
            ),
            QueueingError::NoEquilibrium { queue, rate } => write!(
                f,
                "traffic equations produced invalid arrival rate {rate} for queue {queue}"
            ),
        }
    }
}

impl Error for QueueingError {}

/// Convenience helper for building [`QueueingError::InvalidParameter`].
pub(crate) fn invalid_param(name: &'static str, message: impl Into<String>) -> QueueingError {
    QueueingError::InvalidParameter {
        name,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = QueueingError::UnstableQueue {
            offered_load: 3.0,
            servers: 2,
        };
        assert!(e.to_string().contains("unstable"));
        let e = QueueingError::SingularSystem { column: 4 };
        assert!(e.to_string().contains("column 4"));
        let e = invalid_param("mu", "must be positive");
        assert!(e.to_string().contains("mu"));
        let e = QueueingError::InvalidRouting {
            row: 1,
            row_sum: 1.5,
        };
        assert!(e.to_string().contains("row 1"));
        let e = QueueingError::NoEquilibrium {
            queue: 2,
            rate: -1.0,
        };
        assert!(e.to_string().contains("queue 2"));
    }
}
