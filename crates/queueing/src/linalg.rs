//! Small dense linear algebra used by the queueing solvers.
//!
//! Jackson traffic equations and the P2P replica-balance equations
//! (Proposition 1 of the paper) are dense linear systems whose dimension is
//! the number of chunks in a channel (tens to a few hundred), so a simple
//! dense Gaussian elimination with partial pivoting is the right tool — no
//! external linear-algebra dependency is warranted.

use std::fmt;
use std::ops::{Index, IndexMut};

use cloudmedia_telemetry::GlobalCounter;

use crate::error::QueueingError;

/// Direct Gaussian eliminations performed ([`Matrix::solve`]), process
/// lifetime. The telemetry plane reads before/after deltas around a run
/// to report how much work the provisioning pipeline's solvers did.
pub static DIRECT_SOLVES: GlobalCounter = GlobalCounter::new();

/// LU factorizations completed ([`Matrix::lu`]), process lifetime.
pub static LU_FACTORIZATIONS: GlobalCounter = GlobalCounter::new();

/// Right-hand sides solved against a cached factorization
/// ([`LuFactors::solve_into`]), process lifetime.
pub static LU_SOLVES: GlobalCounter = GlobalCounter::new();

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows or either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let data = rows.iter().flatten().copied().collect();
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns [`QueueingError::SingularSystem`] if the matrix is
    /// (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, QueueingError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "dimension mismatch in solve");
        DIRECT_SOLVES.inc();
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();

        for col in 0..n {
            // Partial pivoting: pick the row with the largest magnitude entry.
            let mut pivot_row = col;
            let mut pivot_mag = a[col * n + col].abs();
            for r in (col + 1)..n {
                let mag = a[r * n + col].abs();
                if mag > pivot_mag {
                    pivot_row = r;
                    pivot_mag = mag;
                }
            }
            if pivot_mag < 1e-12 {
                return Err(QueueingError::SingularSystem { column: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for c in (col + 1)..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for c in (col + 1)..n {
                sum -= a[col * n + c] * x[c];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }

    /// Computes the inverse via `n` solves against identity columns.
    pub fn inverse(&self) -> Result<Matrix, QueueingError> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Factorizes the matrix as `P A = L U` (partial pivoting). Factor
    /// once in O(n³), then [`LuFactors::solve_into`] each right-hand side
    /// in O(n²) — the tool for families of systems sharing one matrix
    /// (e.g. the replica-balance systems of the P2P analysis, which
    /// solve against the same routing structure for every chunk).
    ///
    /// Returns [`QueueingError::SingularSystem`] if the matrix is
    /// (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn lu(&self) -> Result<LuFactors, QueueingError> {
        assert_eq!(self.rows, self.cols, "lu requires a square matrix");
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_mag = lu[col * n + col].abs();
            for r in (col + 1)..n {
                let mag = lu[r * n + col].abs();
                if mag > pivot_mag {
                    pivot_row = r;
                    pivot_mag = mag;
                }
            }
            if pivot_mag < 1e-12 {
                return Err(QueueingError::SingularSystem { column: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    lu.swap(col * n + c, pivot_row * n + c);
                }
                perm.swap(col, pivot_row);
            }
            let pivot = lu[col * n + col];
            for r in (col + 1)..n {
                let factor = lu[r * n + col] / pivot;
                lu[r * n + col] = factor; // store L below the diagonal
                if factor != 0.0 {
                    for c in (col + 1)..n {
                        lu[r * n + c] -= factor * lu[col * n + c];
                    }
                }
            }
        }
        LU_FACTORIZATIONS.inc();
        Ok(LuFactors { n, lu, perm })
    }

    /// Maximum absolute entry; useful for residual checks in tests.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

/// An LU factorization with partial pivoting (`P A = L U`), produced by
/// [`Matrix::lu`]. `L` is unit lower triangular (stored below the
/// diagonal), `U` upper triangular (diagonal and above), packed in one
/// row-major array.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place (`b` becomes `x`), using `scratch` for
    /// the permuted right-hand side (resized as needed, so a reused
    /// scratch buffer makes repeated solves allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the system dimension.
    pub fn solve_into(&self, b: &mut [f64], scratch: &mut Vec<f64>) {
        let n = self.n;
        assert_eq!(b.len(), n, "dimension mismatch in LU solve");
        LU_SOLVES.inc();
        scratch.clear();
        scratch.extend(self.perm.iter().map(|&p| b[p]));
        // Forward substitution with unit-diagonal L.
        for i in 0..n {
            let mut sum = scratch[i];
            let row = &self.lu[i * n..i * n + i];
            for (l, x) in row.iter().zip(scratch.iter()) {
                sum -= l * x;
            }
            scratch[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = scratch[i];
            let row = &self.lu[i * n + i + 1..(i + 1) * n];
            for (u, x) in row.iter().zip(scratch[i + 1..].iter()) {
                sum -= u * x;
            }
            scratch[i] = sum / self.lu[i * n + i];
        }
        b.copy_from_slice(scratch);
    }

    /// Solves `A x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the system dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        let mut scratch = Vec::with_capacity(self.n);
        self.solve_into(&mut x, &mut scratch);
        x
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_2x2() {
        // 2x + y = 5 ; x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 1.0, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_close(x[0], 7.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let err = a.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, QueueingError::SingularSystem { .. }));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![-1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(prod[(i, j)], expected, 1e-10);
            }
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let y = a.mul_vec(&[5.0, 6.0]);
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_dimension_mismatch_panics() {
        let a = Matrix::identity(2);
        let _ = a.mul_vec(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn lu_solve_matches_direct_solve() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![-1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let lu = a.lu().unwrap();
        assert_eq!(lu.dim(), 3);
        let mut scratch = Vec::new();
        for b in [[1.0, 2.0, 3.0], [0.0, -5.0, 0.25], [1e3, -1e3, 0.0]] {
            let direct = a.solve(&b).unwrap();
            let mut x = b.to_vec();
            lu.solve_into(&mut x, &mut scratch);
            for (d, l) in direct.iter().zip(&x) {
                assert_close(*d, *l, 1e-10);
            }
        }
    }

    #[test]
    fn lu_requires_pivoting() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.lu().unwrap().solve(&[3.0, 7.0]);
        assert_close(x[0], 7.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            a.lu().unwrap_err(),
            QueueingError::SingularSystem { .. }
        ));
    }

    #[test]
    fn solve_random_system_residual_small() {
        // Deterministic pseudo-random fill; checks residual A x - b ~ 0.
        let n = 25;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            // Diagonal dominance keeps the system well conditioned.
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 1.0).collect();
        let x = a.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for i in 0..n {
            assert_close(r[i], b[i], 1e-9);
        }
    }
}
