//! Queueing-theory substrate for the CloudMedia reproduction.
//!
//! The CloudMedia paper (ICDCS 2011) models each video channel as an open
//! Jackson network of `M/M/m` queues — one queue per video chunk — and
//! derives the server capacity that keeps the mean chunk retrieval time
//! within the chunk playback time. This crate provides the general
//! queueing-theory machinery that analysis rests on:
//!
//! - [`erlang`]: numerically stable Erlang B / Erlang C formulas,
//! - [`mmm`]: `M/M/m` equilibrium metrics and the inverse
//!   minimum-servers-for-target-sojourn search,
//! - [`jackson`]: open Jackson networks and their traffic equations,
//! - [`absorbing`]: absorbing Markov chain analysis (visit counts, hitting
//!   and hit-before probabilities) used by the P2P joint-ownership
//!   estimator,
//! - [`mmmk`]: finite-capacity `M/M/m/K` queues (blocking analysis for
//!   the admission-control extension),
//! - [`birth_death`]: truncated birth–death chains for cross-validation,
//! - [`linalg`]: the small dense linear-algebra kernel behind the solvers.
//!
//! # Example
//!
//! Derive the number of 10 Mbps cloud VMs needed so that a chunk with 0.5
//! viewer arrivals per second is retrieved, on average, within its 5-minute
//! playback window (the paper's Sec. VI parameters):
//!
//! ```
//! use cloudmedia_queueing::mmm::{min_servers_for_sojourn, MmmQueue};
//!
//! let mu = 1.0 / 12.0;          // chunk service rate of one VM (per s)
//! let t0 = 300.0;               // chunk playback time (s)
//! let m = min_servers_for_sojourn(0.5, mu, t0).unwrap();
//! let queue = MmmQueue::new(0.5, mu, m).unwrap();
//! assert!(queue.mean_sojourn_time() <= t0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod absorbing;
pub mod birth_death;
pub mod erlang;
mod error;
pub mod jackson;
pub mod linalg;
pub mod mmm;
pub mod mmmk;

pub use erlang::erlang_c_wait_probability;
pub use error::QueueingError;
