//! Absorbing Markov chain analysis on a substochastic transition matrix.
//!
//! A viewer's trajectory through a channel is a Markov chain on chunk
//! queues with transition matrix `P` and absorption (departure) probability
//! `1 - sum_j P_ij` per state. This module computes expected visit counts
//! (the fundamental matrix), hitting probabilities, and *hit-before*
//! probabilities — the ingredients of the path-based joint-ownership
//! estimator `Psi(pi_j, pi_k)` that the paper delegates to its technical
//! report.

use crate::error::{invalid_param, QueueingError};
use crate::jackson::RoutingMatrix;
use crate::linalg::Matrix;

/// Analysis of an absorbing Markov chain defined by a substochastic
/// routing matrix.
#[derive(Debug, Clone)]
pub struct AbsorbingChain {
    routing: RoutingMatrix,
    /// Fundamental matrix `N = (I - P)^{-1}`; entry `(i, j)` is the
    /// expected number of visits to `j` starting from `i`.
    fundamental: Matrix,
}

impl AbsorbingChain {
    /// Builds the chain and its fundamental matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::SingularSystem`] if `I - P` is singular,
    /// i.e. some set of states never reaches absorption.
    pub fn new(routing: RoutingMatrix) -> Result<Self, QueueingError> {
        let n = routing.len();
        let mut a = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] -= routing.prob(i, j);
            }
        }
        let fundamental = a.inverse()?;
        Ok(Self {
            routing,
            fundamental,
        })
    }

    /// Number of transient states.
    pub fn len(&self) -> usize {
        self.routing.len()
    }

    /// True if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The routing matrix this chain was built from.
    pub fn routing(&self) -> &RoutingMatrix {
        &self.routing
    }

    /// Expected number of visits to state `j` for a trajectory started at
    /// state `i` (counting the initial state if `i == j`).
    pub fn expected_visits(&self, from: usize, to: usize) -> f64 {
        self.fundamental[(from, to)]
    }

    /// Expected visits to each state for a trajectory drawn from the given
    /// start distribution.
    ///
    /// # Panics
    ///
    /// Panics if `start.len() != self.len()`.
    pub fn expected_visits_from(&self, start: &[f64]) -> Vec<f64> {
        assert_eq!(
            start.len(),
            self.len(),
            "start distribution length mismatch"
        );
        self.fundamental.transpose().mul_vec(start)
    }

    /// Probability that a trajectory starting at `from` ever visits
    /// `target` (before absorption). By convention this is 1 when
    /// `from == target`.
    pub fn hitting_probability(&self, from: usize, target: usize) -> f64 {
        if from == target {
            return 1.0;
        }
        // h_i = N_{i,target} / N_{target,target} (standard identity).
        let denom = self.fundamental[(target, target)];
        if denom <= 0.0 {
            return 0.0;
        }
        (self.fundamental[(from, target)] / denom).clamp(0.0, 1.0)
    }

    /// Probability that a trajectory starting at `from`, after *leaving*
    /// `from` once, ever returns to visit `target`. For `from != target`
    /// this first steps according to the routing and then hits as usual.
    pub fn hitting_probability_after_leaving(&self, from: usize, target: usize) -> f64 {
        let n = self.len();
        let mut p = 0.0;
        for j in 0..n {
            p += self.routing.prob(from, j) * self.hitting_probability(j, target);
        }
        p.clamp(0.0, 1.0)
    }

    /// Probability, per start state, of reaching `first` strictly before
    /// `second` (both treated as absorbing for this question). Entry
    /// `first` is 1 and entry `second` is 0 by definition.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range states or `first == second`.
    pub fn hit_before(&self, first: usize, second: usize) -> Result<Vec<f64>, QueueingError> {
        let n = self.len();
        if first >= n || second >= n {
            return Err(invalid_param("state", format!("state out of range 0..{n}")));
        }
        if first == second {
            return Err(invalid_param("state", "first and second must differ"));
        }
        // Solve (I - P') a = b where P' zeroes the rows of `first` and
        // `second`, and b has 1 at `first`.
        let mut a = Matrix::identity(n);
        for i in 0..n {
            if i == first || i == second {
                continue;
            }
            for j in 0..n {
                a[(i, j)] -= self.routing.prob(i, j);
            }
        }
        let mut b = vec![0.0; n];
        b[first] = 1.0;
        let sol = a.solve(&b)?;
        Ok(sol.into_iter().map(|v| v.clamp(0.0, 1.0)).collect())
    }

    /// Probability that a trajectory drawn from `start` visits **both**
    /// states `j` and `k` before absorption.
    ///
    /// Decomposes by which of the two is hit first:
    /// `P(both) = P(hit j before k) * P(hit k from j) +
    ///  P(hit k before j) * P(hit j from k)`.
    ///
    /// # Errors
    ///
    /// Propagates linear-solve failures.
    ///
    /// # Panics
    ///
    /// Panics if `start.len() != self.len()`.
    pub fn visits_both(&self, start: &[f64], j: usize, k: usize) -> Result<f64, QueueingError> {
        assert_eq!(
            start.len(),
            self.len(),
            "start distribution length mismatch"
        );
        if j == k {
            // "Both" degenerates to visiting j at all.
            let p: f64 = start
                .iter()
                .enumerate()
                .map(|(i, &s)| s * self.hitting_probability(i, j))
                .sum();
            return Ok(p.clamp(0.0, 1.0));
        }
        let j_first = self.hit_before(j, k)?;
        let k_first = self.hit_before(k, j)?;
        let j_to_k = self.hitting_probability(j, k);
        let k_to_j = self.hitting_probability(k, j);
        let mut p = 0.0;
        for (i, &s) in start.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            p += s * (j_first[i] * j_to_k + k_first[i] * k_to_j);
        }
        Ok(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jackson::RoutingMatrix;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    fn chain(rows: &[Vec<f64>]) -> AbsorbingChain {
        AbsorbingChain::new(RoutingMatrix::from_rows(rows).unwrap()).unwrap()
    }

    #[test]
    fn single_state_geometric_visits() {
        // Self-loop with prob q: expected visits = 1/(1-q).
        let c = chain(&[vec![0.4]]);
        assert_close(c.expected_visits(0, 0), 1.0 / 0.6, 1e-12);
    }

    #[test]
    fn tandem_visits_and_hitting() {
        // 0 -> 1 w.p. 0.5, else absorb; 1 absorbs immediately.
        let c = chain(&[vec![0.0, 0.5], vec![0.0, 0.0]]);
        assert_close(c.expected_visits(0, 1), 0.5, 1e-12);
        assert_close(c.hitting_probability(0, 1), 0.5, 1e-12);
        assert_close(c.hitting_probability(1, 0), 0.0, 1e-12);
        assert_close(c.hitting_probability(0, 0), 1.0, 1e-12);
    }

    #[test]
    fn hit_before_in_three_state_chain() {
        // 0 -> 1 w.p. 0.6, 0 -> 2 w.p. 0.3, absorb w.p. 0.1.
        let c = chain(&[
            vec![0.0, 0.6, 0.3],
            vec![0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ]);
        let a = c.hit_before(1, 2).unwrap();
        assert_close(a[1], 1.0, 1e-12);
        assert_close(a[2], 0.0, 1e-12);
        assert_close(a[0], 0.6, 1e-12);
    }

    #[test]
    fn visits_both_sequential_chain() {
        // Deterministic sequence 0 -> 1 -> 2 with continue prob p each.
        let p = 0.8;
        let c = chain(&[vec![0.0, p, 0.0], vec![0.0, 0.0, p], vec![0.0, 0.0, 0.0]]);
        let start = vec![1.0, 0.0, 0.0];
        // Visiting both 1 and 2 requires surviving two hops: p^2.
        assert_close(c.visits_both(&start, 1, 2).unwrap(), p * p, 1e-12);
        // Visiting both 0 and 2: start at 0, so just reach 2: p^2.
        assert_close(c.visits_both(&start, 0, 2).unwrap(), p * p, 1e-12);
    }

    #[test]
    fn visits_both_is_symmetric() {
        let c = chain(&[
            vec![0.1, 0.4, 0.2],
            vec![0.3, 0.0, 0.3],
            vec![0.2, 0.2, 0.1],
        ]);
        let start = vec![0.5, 0.3, 0.2];
        let a = c.visits_both(&start, 0, 2).unwrap();
        let b = c.visits_both(&start, 2, 0).unwrap();
        assert_close(a, b, 1e-12);
    }

    #[test]
    fn visits_both_bounded_by_individual_hits() {
        let c = chain(&[
            vec![0.1, 0.4, 0.2],
            vec![0.3, 0.0, 0.3],
            vec![0.2, 0.2, 0.1],
        ]);
        let start = vec![1.0, 0.0, 0.0];
        let both = c.visits_both(&start, 1, 2).unwrap();
        let h1 = c.hitting_probability(0, 1);
        let h2 = c.hitting_probability(0, 2);
        assert!(both <= h1 + 1e-12);
        assert!(both <= h2 + 1e-12);
    }

    #[test]
    fn visits_both_same_state_is_hitting_probability() {
        let c = chain(&[vec![0.0, 0.5], vec![0.2, 0.0]]);
        let start = vec![1.0, 0.0];
        assert_close(
            c.visits_both(&start, 1, 1).unwrap(),
            c.hitting_probability(0, 1),
            1e-12,
        );
    }

    #[test]
    fn expected_visits_from_distribution() {
        let c = chain(&[vec![0.0, 0.5], vec![0.0, 0.0]]);
        let v = c.expected_visits_from(&[0.5, 0.5]);
        // From 0: visits (1, 0.5); from 1: visits (0, 1). Mixture: (0.5, 0.75).
        assert_close(v[0], 0.5, 1e-12);
        assert_close(v[1], 0.75, 1e-12);
    }

    #[test]
    fn recurrent_chain_is_rejected() {
        // Period-2 deterministic cycle never absorbs.
        let r = RoutingMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(AbsorbingChain::new(r).is_err());
    }

    #[test]
    fn hitting_probability_after_leaving_differs_from_plain() {
        // Self state: plain hitting prob is 1, after leaving it needs a
        // return path.
        let c = chain(&[vec![0.0, 0.5], vec![0.3, 0.0]]);
        assert_close(c.hitting_probability(0, 0), 1.0, 1e-12);
        // After leaving 0: go to 1 w.p. 0.5, then return w.p. 0.3 -> 0.15.
        assert_close(c.hitting_probability_after_leaving(0, 0), 0.15, 1e-12);
    }

    #[test]
    fn hit_before_rejects_bad_states() {
        let c = chain(&[vec![0.0, 0.5], vec![0.0, 0.0]]);
        assert!(c.hit_before(0, 0).is_err());
        assert!(c.hit_before(0, 5).is_err());
    }
}
