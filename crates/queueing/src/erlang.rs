//! Erlang blocking and waiting formulas, computed with numerically stable
//! recurrences (no factorials).
//!
//! The paper's Eqn. (2) expresses the M/M/m equilibrium distribution via
//! Erlang's C formula; we expose both Erlang B (loss) and Erlang C (delay)
//! here because B is the stable stepping stone to C:
//!
//! ```text
//! B(0, a) = 1
//! B(m, a) = a·B(m-1, a) / (m + a·B(m-1, a))
//! C(m, a) = m·B(m, a) / (m - a·(1 - B(m, a)))        for a < m
//! ```

use crate::error::{invalid_param, QueueingError};

/// Erlang B (blocking probability of an M/M/m/m loss system) for offered
/// load `a = lambda / mu` and `m` servers.
///
/// Valid for any `a >= 0`; returns 1.0 for `m == 0`.
///
/// # Errors
///
/// Returns an error if `a` is negative or non-finite.
pub fn erlang_b(servers: usize, offered_load: f64) -> Result<f64, QueueingError> {
    if !offered_load.is_finite() || offered_load < 0.0 {
        return Err(invalid_param(
            "offered_load",
            format!("must be finite and non-negative, got {offered_load}"),
        ));
    }
    let mut b = 1.0;
    for m in 1..=servers {
        b = offered_load * b / (m as f64 + offered_load * b);
    }
    Ok(b)
}

/// Erlang C (probability an arriving job must wait in an M/M/m queue) for
/// offered load `a = lambda / mu` and `m` servers.
///
/// # Errors
///
/// Returns [`QueueingError::UnstableQueue`] unless `a < m` (the stability
/// condition `rho_i < m_i` of the paper's Eqn. 1), and an error for invalid
/// `a`.
pub fn erlang_c(servers: usize, offered_load: f64) -> Result<f64, QueueingError> {
    if offered_load >= servers as f64 {
        return Err(QueueingError::UnstableQueue {
            offered_load,
            servers,
        });
    }
    if servers == 0 {
        return Err(QueueingError::UnstableQueue {
            offered_load,
            servers,
        });
    }
    let b = erlang_b(servers, offered_load)?;
    let m = servers as f64;
    Ok(m * b / (m - offered_load * (1.0 - b)))
}

/// Total-function Erlang C: the probability an arriving job must wait,
/// defined on the *whole* parameter domain so callers on hot paths (the
/// event-driven engine's admission component) need no error handling:
///
/// - zero offered load never waits (`0.0`),
/// - an unstable or serverless queue (`a >= m`, or `m == 0` with load)
///   always waits (`1.0`) — the transient backlog grows without bound,
///   so an arriving job finds every server busy with certainty,
/// - otherwise exactly [`erlang_c`].
///
/// Non-finite or negative loads are treated as always-waiting rather
/// than propagated, matching the saturate-don't-crash behavior the
/// admission path wants for corrupt measurements.
///
/// ```
/// use cloudmedia_queueing::erlang_c_wait_probability;
///
/// // M/M/1 at ρ = 0.5 waits with probability ρ.
/// assert_eq!(erlang_c_wait_probability(1, 0.5), 0.5);
/// // Saturated or serverless queues always wait; idle ones never do.
/// assert_eq!(erlang_c_wait_probability(2, 2.0), 1.0);
/// assert_eq!(erlang_c_wait_probability(0, 1.0), 1.0);
/// assert_eq!(erlang_c_wait_probability(8, 0.0), 0.0);
/// ```
pub fn erlang_c_wait_probability(servers: usize, offered_load: f64) -> f64 {
    if offered_load == 0.0 {
        return 0.0;
    }
    if !offered_load.is_finite() || offered_load < 0.0 {
        return 1.0;
    }
    if servers == 0 || offered_load >= servers as f64 {
        return 1.0;
    }
    erlang_c(servers, offered_load).expect("domain checked above")
}

/// Expected number of jobs *waiting* (not in service) in an M/M/m queue:
/// `Lq = C(m, a) * a / (m - a)`.
///
/// # Errors
///
/// Same domain as [`erlang_c`].
pub fn expected_queue_length(servers: usize, offered_load: f64) -> Result<f64, QueueingError> {
    let c = erlang_c(servers, offered_load)?;
    let m = servers as f64;
    Ok(c * offered_load / (m - offered_load))
}

/// Expected number of jobs *in the system* (waiting plus in service):
/// `L = Lq + a`. This is the paper's `E(n_i)` of Eqn. (3).
///
/// # Errors
///
/// Same domain as [`erlang_c`].
pub fn expected_in_system(servers: usize, offered_load: f64) -> Result<f64, QueueingError> {
    Ok(expected_queue_length(servers, offered_load)? + offered_load)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn erlang_b_zero_servers_blocks_everything() {
        assert_eq!(erlang_b(0, 3.0).unwrap(), 1.0);
    }

    #[test]
    fn erlang_b_zero_load_never_blocks() {
        assert_eq!(erlang_b(5, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn erlang_b_single_server_closed_form() {
        // B(1, a) = a / (1 + a)
        for &a in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            assert_close(erlang_b(1, a).unwrap(), a / (1.0 + a), 1e-12);
        }
    }

    #[test]
    fn erlang_b_textbook_value() {
        // Classic table entry: a = 9 Erlangs, m = 10 servers -> B ~ 0.1680.
        assert_close(erlang_b(10, 9.0).unwrap(), 0.16796, 1e-4);
    }

    #[test]
    fn erlang_b_decreases_in_servers_increases_in_load() {
        let mut prev = 1.0;
        for m in 1..30 {
            let b = erlang_b(m, 5.0).unwrap();
            assert!(b < prev, "B must strictly decrease with servers");
            prev = b;
        }
        let mut prev = 0.0;
        for i in 1..30 {
            let b = erlang_b(10, i as f64 * 0.7).unwrap();
            assert!(b > prev, "B must strictly increase with load");
            prev = b;
        }
    }

    #[test]
    fn erlang_c_single_server_equals_utilization() {
        // For M/M/1, P(wait) = rho.
        for &a in &[0.1, 0.5, 0.9] {
            assert_close(erlang_c(1, a).unwrap(), a, 1e-12);
        }
    }

    #[test]
    fn erlang_c_textbook_value() {
        // a = 2, m = 3: B(3,2) = 4/19; C = 3*(4/19)/(3 - 2*(15/19)) = 4/9.
        assert_close(erlang_c(3, 2.0).unwrap(), 4.0 / 9.0, 1e-12);
    }

    #[test]
    fn erlang_c_unstable_is_error() {
        assert!(matches!(
            erlang_c(2, 2.0),
            Err(QueueingError::UnstableQueue { .. })
        ));
        assert!(matches!(
            erlang_c(2, 5.0),
            Err(QueueingError::UnstableQueue { .. })
        ));
    }

    #[test]
    fn erlang_c_at_least_erlang_b() {
        // C >= B always (delay systems wait instead of dropping).
        for m in 1..20 {
            let a = m as f64 * 0.8;
            let b = erlang_b(m, a).unwrap();
            let c = erlang_c(m, a).unwrap();
            assert!(c >= b - 1e-15, "C({m},{a})={c} < B={b}");
        }
    }

    #[test]
    fn mm1_queue_length_closed_form() {
        // M/M/1: L = rho / (1 - rho).
        for &rho in &[0.1, 0.5, 0.9, 0.99] {
            assert_close(expected_in_system(1, rho).unwrap(), rho / (1.0 - rho), 1e-9);
        }
    }

    #[test]
    fn heavy_traffic_many_servers_is_stable_numerically() {
        // Large systems must not overflow or lose precision.
        let l = expected_in_system(1000, 990.0).unwrap();
        assert!(l > 990.0 && l.is_finite());
        let b = erlang_b(10_000, 9_500.0).unwrap();
        assert!(b.is_finite() && (0.0..=1.0).contains(&b));
    }

    #[test]
    fn negative_load_rejected() {
        assert!(erlang_b(3, -1.0).is_err());
        assert!(erlang_b(3, f64::NAN).is_err());
    }

    #[test]
    fn wait_probability_matches_tabulated_values() {
        // Standard Erlang-C table entries (queueing-theory textbooks).
        assert_close(erlang_c_wait_probability(1, 0.5), 0.5, 1e-12); // M/M/1: rho
        assert_close(erlang_c_wait_probability(2, 1.0), 1.0 / 3.0, 1e-12);
        assert_close(erlang_c_wait_probability(3, 2.0), 4.0 / 9.0, 1e-12);
        assert_close(erlang_c_wait_probability(5, 3.0), 0.2362, 1e-4);
        assert_close(erlang_c_wait_probability(10, 9.0), 0.6687, 1e-4);
    }

    #[test]
    fn wait_probability_is_total() {
        assert_eq!(erlang_c_wait_probability(5, 0.0), 0.0, "no load");
        assert_eq!(erlang_c_wait_probability(0, 1.0), 1.0, "no servers");
        assert_eq!(erlang_c_wait_probability(2, 2.0), 1.0, "critical load");
        assert_eq!(erlang_c_wait_probability(2, 7.5), 1.0, "overload");
        assert_eq!(erlang_c_wait_probability(2, f64::NAN), 1.0, "corrupt");
        assert_eq!(erlang_c_wait_probability(2, -1.0), 1.0, "negative");
    }

    #[test]
    fn wait_probability_agrees_with_fallible_erlang_c() {
        for m in 1..20 {
            let a = m as f64 * 0.6;
            assert_close(
                erlang_c_wait_probability(m, a),
                erlang_c(m, a).unwrap(),
                1e-15,
            );
        }
    }

    #[test]
    fn expected_in_system_decreases_with_servers() {
        let a = 7.3;
        let mut prev = f64::INFINITY;
        for m in 8..40 {
            let l = expected_in_system(m, a).unwrap();
            // Non-strict: for large m the queueing term underflows to 0 and
            // successive values tie at the offered load.
            assert!(l <= prev, "E[n] must not increase as servers are added");
            assert!(l >= a, "E[n] is at least the offered load");
            prev = l;
        }
    }
}
