//! Footnote 3 — chunk-size selection.
//!
//! "The selection of chunk size should aim to minimize the unnecessary
//! number of times of VM switching during users' playback, while
//! considering the average length of continuous playback between two VCR
//! operations as well as the actual transmission efficiency." This
//! ablation sweeps `T0` and reports the analytic trade-off: chunk
//! transitions per session (VM switching), provisioned capacity, and the
//! fraction of a fetched chunk wasted when a VCR jump lands mid-chunk.

use cloudmedia_core::analysis::client_server::pooled_capacity_demand;
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_workload::viewing::ViewingModel;

/// Result of one chunk-size evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSizeRow {
    /// Chunk playback time `T0`, seconds.
    pub chunk_seconds: f64,
    /// Number of chunks a 100-minute video splits into.
    pub chunks: usize,
    /// Expected chunk transitions (VM switches) per viewing session.
    pub switches_per_session: f64,
    /// Pooled provisioned capacity for a reference channel, Mbps.
    pub provisioned_mbps: f64,
    /// Probability a fetched chunk is abandoned by a jump before play-out
    /// completes (jump interval exp(15 min), memoryless within a chunk).
    pub wasted_fetch_prob: f64,
}

/// Sweeps chunk sizes for the paper's 100-minute video and a reference
/// arrival rate.
///
/// # Panics
///
/// Panics on analysis failures (all swept parameters are valid).
pub fn sweep(chunk_seconds: &[f64], arrival_rate: f64) -> Vec<ChunkSizeRow> {
    let video_seconds = 100.0 * 60.0;
    let jump_mean_seconds = 15.0 * 60.0;
    chunk_seconds
        .iter()
        .map(|&t0| {
            let chunks = (video_seconds / t0).round().max(1.0) as usize;
            let jump_prob = 1.0 - (-t0 / jump_mean_seconds).exp();
            let viewing = ViewingModel {
                chunks,
                start_at_beginning: 0.7,
                jump_prob,
                leave_prob: 0.08 * (t0 / 300.0), // same session length in minutes
            };
            viewing.validate().expect("swept viewing model is valid");
            let switches = viewing
                .expected_chunks_per_session()
                .expect("absorbing chain solves");
            let routing = viewing.routing_rows().expect("validated above");
            let model = ChannelModel {
                id: 0,
                streaming_rate: 50_000.0,
                chunk_seconds: t0,
                vm_bandwidth: 1.25e6,
                arrival_rate,
                alpha: 0.7,
                routing,
            };
            let demand = pooled_capacity_demand(&model).expect("valid model");
            ChunkSizeRow {
                chunk_seconds: t0,
                chunks,
                switches_per_session: switches,
                provisioned_mbps: demand.total_upload_demand() * 8.0 / 1e6,
                wasted_fetch_prob: jump_prob / 2.0,
            }
        })
        .collect()
}

/// CSV rendering.
pub fn csv(rows: &[ChunkSizeRow]) -> String {
    let mut out = String::from(
        "chunk_seconds,chunks,switches_per_session,provisioned_mbps,wasted_fetch_prob\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:.0},{},{:.2},{:.2},{:.3}\n",
            r.chunk_seconds,
            r.chunks,
            r.switches_per_session,
            r.provisioned_mbps,
            r.wasted_fetch_prob
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_chunks_mean_more_switching() {
        let rows = sweep(&[60.0, 300.0, 900.0], 0.1);
        assert!(rows[0].switches_per_session > rows[1].switches_per_session);
        assert!(rows[1].switches_per_session > rows[2].switches_per_session);
    }

    #[test]
    fn bigger_chunks_waste_more_on_jumps() {
        let rows = sweep(&[60.0, 300.0, 900.0], 0.1);
        assert!(rows[0].wasted_fetch_prob < rows[1].wasted_fetch_prob);
        assert!(rows[1].wasted_fetch_prob < rows[2].wasted_fetch_prob);
    }

    #[test]
    fn csv_has_one_row_per_size() {
        let rows = sweep(&[150.0, 300.0], 0.1);
        assert_eq!(csv(&rows).lines().count(), 3);
    }
}
