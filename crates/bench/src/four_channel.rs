//! Figs. 8 and 9 — evolution of aggregate storage and VM utility in four
//! representative channels.
//!
//! The paper selects 4 channels with average sizes 60, 100, 200 and 600
//! users and plots, over 24 hours, the aggregate storage utility
//! `Σ u_f Δ_i x_if` and aggregate VM utility `Σ u~_v z_iv` of each channel
//! under the P2P deployment, showing the heuristics re-ranking resources
//! as popularity moves.

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::metrics::Metrics;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::catalog::{Catalog, ChannelSpec};
use cloudmedia_workload::viewing::ViewingModel;

/// The paper's four representative average channel sizes.
pub const CHANNEL_SIZES: [f64; 4] = [60.0, 100.0, 200.0, 600.0];

/// Builds a 4-channel catalog whose *diurnal-average* sizes match
/// [`CHANNEL_SIZES`].
pub fn four_channel_catalog() -> Catalog {
    let viewing = ViewingModel::paper_default();
    let total: f64 = CHANNEL_SIZES.iter().sum();
    // Catalog::zipf calibrates population at multiplier 1; divide by the
    // diurnal mean so the *average* population lands on the target.
    let diurnal_mean =
        cloudmedia_workload::diurnal::DiurnalPattern::paper_default().mean_multiplier();
    let base = Catalog::zipf(4, 0.0, viewing, total / diurnal_mean, 300.0)
        .expect("four-channel catalog parameters are valid");
    // Reweight the uniform catalog to the target size ratios.
    let channels: Vec<ChannelSpec> = base
        .channels()
        .iter()
        .map(|c| ChannelSpec {
            popularity: CHANNEL_SIZES[c.id] / total,
            base_arrival_rate: c.base_arrival_rate * 4.0 * CHANNEL_SIZES[c.id] / total,
            ..c.clone()
        })
        .collect();
    Catalog::from_channels(channels).expect("reweighted channels are valid")
}

/// Runs the 4-channel P2P experiment over `hours` hours.
///
/// # Panics
///
/// Panics if the simulation fails.
pub fn run(hours: f64) -> Metrics {
    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.catalog = four_channel_catalog();
    cfg.trace.horizon_seconds = hours * 3600.0;
    Simulator::new(cfg)
        .expect("four-channel config is valid")
        .run()
        .expect("four-channel run succeeds")
}

/// Fig. 8 CSV: hour, storage utility of each of the four channels. The
/// utility `Σ u_f Δ_i x_if` is reported with `Δ` in Mbps so the scale is
/// comparable to the paper's 0–200 axis.
pub fn fig8_csv(m: &Metrics) -> String {
    let mut out =
        String::from("hour,ch1_size60_storage_utility,ch2_size100,ch3_size200,ch4_size600\n");
    let scale = 8.0 / 1e6;
    for rec in &m.intervals {
        out.push_str(&format!(
            "{:.0},{:.1},{:.1},{:.1},{:.1}\n",
            rec.time / 3600.0,
            rec.per_channel_storage_utility[0] * scale,
            rec.per_channel_storage_utility[1] * scale,
            rec.per_channel_storage_utility[2] * scale,
            rec.per_channel_storage_utility[3] * scale,
        ));
    }
    out
}

/// Fig. 9 CSV: hour, VM utility of each of the four channels.
pub fn fig9_csv(m: &Metrics) -> String {
    let mut out = String::from("hour,ch1_size60_vm_utility,ch2_size100,ch3_size200,ch4_size600\n");
    for rec in &m.intervals {
        out.push_str(&format!(
            "{:.0},{:.2},{:.2},{:.2},{:.2}\n",
            rec.time / 3600.0,
            rec.per_channel_vm_utility[0],
            rec.per_channel_vm_utility[1],
            rec.per_channel_vm_utility[2],
            rec.per_channel_vm_utility[3],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes_are_proportional() {
        let c = four_channel_catalog();
        assert_eq!(c.len(), 4);
        let rates: Vec<f64> = c.channels().iter().map(|s| s.base_arrival_rate).collect();
        // 60 : 100 : 200 : 600 ratios.
        assert!((rates[1] / rates[0] - 100.0 / 60.0).abs() < 1e-9);
        assert!((rates[3] / rates[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_channels_get_more_utility() {
        let m = run(3.0);
        assert_eq!(m.intervals.len(), 3);
        let last = m.intervals.last().unwrap();
        // The 600-user channel should command more VM and storage utility
        // than the 60-user channel.
        assert!(
            last.per_channel_vm_utility[3] > last.per_channel_vm_utility[0],
            "vm utilities: {:?}",
            last.per_channel_vm_utility
        );
        assert!(
            last.per_channel_storage_utility[3] > last.per_channel_storage_utility[0],
            "storage utilities: {:?}",
            last.per_channel_storage_utility
        );
        let f8 = fig8_csv(&m);
        let f9 = fig9_csv(&m);
        assert!(f8.lines().count() == 4 && f9.lines().count() == 4);
    }
}
