//! Chaos benchmark rows: fault-injection scenarios run against
//! fault-free baselines on multiple engines, producing the `resilience`
//! section of `BENCH_sim.json` (binary: `bench_chaos`).
//!
//! Every row re-runs the faulted configuration serially *and* in
//! parallel and records whether the two were bit-identical — the fault
//! plane is seeded config data, so they must be. A `false` in the
//! checked-in benchmark file is a regression, not noise.

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::faults::{FaultSchedule, ResilienceReport};
use cloudmedia_sim::federation::{DeploymentKind, FederatedConfig, FederatedSimulator};
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_sim::SimError;
use serde::Serialize;

/// One scenario × engine measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceRow {
    /// Scenario name (`vm-outage`, `budget-cut`, `tracker-dropout`,
    /// `site-outage`).
    pub scenario: String,
    /// Engine the scenario ran on (`indexed`, `sharded`, `federated`).
    pub engine: String,
    /// Whether the serial and parallel executions of the faulted run
    /// produced bit-identical metrics and fault counters.
    pub serial_parallel_identical: bool,
    /// The resilience report of the (parallel) faulted run.
    pub report: ResilienceReport,
}

/// The `resilience` benchmark section.
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceSection {
    /// Schema tag for downstream readers.
    pub schema: String,
    /// Horizon every row ran over, hours.
    pub horizon_hours: f64,
    /// Free-text provenance notes.
    pub notes: Vec<String>,
    /// The measurements.
    pub rows: Vec<ResilienceRow>,
}

/// The benchmark's fault presets, scaled to the horizon like the
/// `cloudmedia chaos` CLI scenarios.
pub fn preset(name: &str, horizon: f64) -> FaultSchedule {
    match name {
        "vm-outage" => FaultSchedule::vm_outage(0.5 * horizon, 0.5, 0.25 * horizon),
        "budget-cut" => FaultSchedule::budget_shock(0.5 * horizon, 0.2),
        "tracker-dropout" => FaultSchedule::tracker_blackout(0.35 * horizon, 0.3 * horizon),
        "site-outage" => FaultSchedule::site_outage(0.4 * horizon, 1, 0.25 * horizon),
        other => panic!("unknown chaos preset `{other}`"),
    }
}

fn engine_name(kernel: SimKernel) -> &'static str {
    match kernel {
        SimKernel::Scan => "scan",
        SimKernel::Indexed => "indexed",
        SimKernel::EventDriven => "event-driven",
        SimKernel::Sharded => "sharded",
    }
}

/// Runs one single-site scenario on `kernel`: a fault-free baseline,
/// the faulted run in parallel, and the faulted run again serially for
/// the bit-equality check.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_single_site(
    scenario: &str,
    kernel: SimKernel,
    mode: SimMode,
    hours: f64,
) -> Result<ResilienceRow, SimError> {
    let horizon = hours * 3600.0;
    let schedule = preset(scenario, horizon);
    let fault_start = schedule.first_fault_at().unwrap_or(0.0);

    let mut cfg = SimConfig::paper_default(mode);
    cfg.trace.horizon_seconds = horizon;
    cfg.kernel = kernel;
    let baseline = Simulator::new(cfg.clone())?.run()?;

    cfg.faults = schedule;
    cfg.parallel_channels = true;
    let parallel = Simulator::new(cfg.clone())?.run_with_faults()?;
    cfg.parallel_channels = false;
    let serial = Simulator::new(cfg)?.run_with_faults()?;
    let identical =
        parallel.metrics == serial.metrics && parallel.fault_stats == serial.fault_stats;

    let report = ResilienceReport::from_runs(
        &baseline,
        &parallel.metrics,
        fault_start,
        parallel.fault_stats,
    );
    Ok(ResilienceRow {
        scenario: scenario.to_owned(),
        engine: engine_name(kernel).to_owned(),
        serial_parallel_identical: identical,
        report,
    })
}

/// Runs the federated site-outage scenario: baseline vs faulted
/// deployment, parallel and serial region stepping.
///
/// # Errors
///
/// Propagates configuration and simulation failures.
pub fn run_federated(scenario: &str, mode: SimMode, hours: f64) -> Result<ResilienceRow, SimError> {
    let horizon = hours * 3600.0;
    let schedule = preset(scenario, horizon);
    let fault_start = schedule.first_fault_at().unwrap_or(0.0);
    let observed_site = schedule
        .site_outages
        .first()
        .map(|o| o.site)
        .unwrap_or_default();

    let mut fc = FederatedConfig::paper_default(DeploymentKind::Federated, mode, hours);
    let baseline = FederatedSimulator::new(fc.clone())?.run()?;

    fc.base.faults = schedule;
    fc.parallel_regions = true;
    let parallel = FederatedSimulator::new(fc.clone())?.run()?;
    fc.parallel_regions = false;
    let serial = FederatedSimulator::new(fc)?.run()?;
    let identical = parallel.fault_stats == serial.fault_stats
        && parallel
            .per_region
            .iter()
            .zip(&serial.per_region)
            .all(|(a, b)| a.metrics == b.metrics);

    // Quality observables come from the outaged site's own region; the
    // cost overshoot is deployment-wide (the surviving sites absorb the
    // demand and bill for it).
    let mut report = ResilienceReport::from_runs(
        &baseline.per_region[observed_site].metrics,
        &parallel.per_region[observed_site].metrics,
        fault_start,
        parallel.fault_stats.clone(),
    );
    report.cost_overshoot_dollars = parallel.total_cost() - baseline.total_cost();
    Ok(ResilienceRow {
        scenario: scenario.to_owned(),
        engine: "federated".to_owned(),
        serial_parallel_identical: identical,
        report,
    })
}

/// Wraps the rows into the full section.
pub fn section(hours: f64, rows: Vec<ResilienceRow>) -> ResilienceSection {
    ResilienceSection {
        schema: "cloudmedia-bench-resilience/v1".into(),
        horizon_hours: hours,
        notes: vec![
            "Fault presets match the `cloudmedia chaos` CLI scenarios: half the \
             fleet lost at 50% of the horizon (repaired a quarter horizon later), \
             the VM budget cut to 20% at 50% (below the steady-state spend, so \
             the planner dilutes best-effort), tracker measurements dark from 35% to \
             65%, and federated site 1 dark from 40% for a quarter horizon. Each \
             row compares the faulted run against a fault-free baseline of the \
             same seed; serial_parallel_identical pins that the faulted run is \
             bit-identical under serial and parallel execution."
                .into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_scale() {
        for name in ["vm-outage", "budget-cut", "tracker-dropout", "site-outage"] {
            let s = preset(name, 43_200.0);
            s.validate().unwrap();
            assert!(s.first_fault_at().unwrap() > 0.0);
        }
        assert_eq!(preset("vm-outage", 43_200.0).vm_failures[0].at, 21_600.0);
    }

    #[test]
    #[should_panic(expected = "unknown chaos preset")]
    fn unknown_preset_panics() {
        let _ = preset("meteor-strike", 3600.0);
    }
}
