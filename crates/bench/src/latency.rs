//! Sec. VI-C — VM provisioning latency.
//!
//! The paper measures ≈ 25 s to turn a VM on, less to shut one down, and
//! notes that parallel launches keep fleet-scale provisioning at
//! seconds. This experiment drives the cloud model through scale-up and
//! scale-down events and reports the time until the requested bandwidth
//! is fully online/offline.

use cloudmedia_cloud::broker::{Cloud, ResourceRequest};

/// One latency measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRow {
    /// VMs launched (or shut down) together.
    pub fleet_size: usize,
    /// Seconds until every instance was running (scale-up).
    pub time_to_running: f64,
    /// Seconds until every instance was off (scale-down from running).
    pub time_to_off: f64,
}

/// Measures provisioning latency for a set of fleet sizes by stepping the
/// cloud clock at the given resolution.
///
/// # Panics
///
/// Panics on cloud model failures (the paper constants never fail).
pub fn measure(fleet_sizes: &[usize], resolution: f64) -> Vec<LatencyRow> {
    fleet_sizes
        .iter()
        .map(|&n| {
            let mut cloud = Cloud::paper_default().expect("paper cloud is valid");
            // Spread the request across clusters like the controller does.
            let targets = spread(n);
            cloud
                .submit_request(&ResourceRequest {
                    vm_targets: targets.clone(),
                    placement: None,
                })
                .expect("fleet fits Table II");
            let want_bw = n as f64 * 1.25e6;
            let mut t = 0.0;
            while cloud.running_bandwidth() + 1e-6 < want_bw {
                t += resolution;
                cloud.tick(t).expect("time advances");
                assert!(t < 3600.0, "scale-up did not converge");
            }
            let time_to_running = t;
            cloud
                .submit_request(&ResourceRequest {
                    vm_targets: vec![0, 0, 0],
                    placement: None,
                })
                .expect("scale-down is valid");
            let down_start = t;
            while cloud.vm_scheduler().billable_counts().iter().sum::<usize>() > 0 {
                t += resolution;
                cloud.tick(t).expect("time advances");
                assert!(t < down_start + 3600.0, "scale-down did not converge");
            }
            LatencyRow {
                fleet_size: n,
                time_to_running,
                time_to_off: t - down_start,
            }
        })
        .collect()
}

fn spread(n: usize) -> Vec<usize> {
    // Fill Standard (75), then Medium (30), then Advanced (45).
    let caps = [75usize, 30, 45];
    let mut left = n;
    caps.iter()
        .map(|&c| {
            let take = left.min(c);
            left -= take;
            take
        })
        .collect()
}

/// CSV rendering.
pub fn csv(rows: &[LatencyRow]) -> String {
    let mut out = String::from("fleet_size,time_to_running_s,time_to_off_s\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.0},{:.0}\n",
            r.fleet_size, r.time_to_running, r.time_to_off
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_boot_keeps_latency_flat() {
        let rows = measure(&[1, 10, 50, 150], 1.0);
        // Every fleet size is ready within one boot latency (~25 s): the
        // paper's "VMs can be launched in parallel" observation.
        for r in &rows {
            assert!(
                (24.0..=27.0).contains(&r.time_to_running),
                "fleet {}: {} s to running",
                r.fleet_size,
                r.time_to_running
            );
            assert!(r.time_to_off <= 12.0, "shutdown is faster than boot");
        }
        // Latency does not grow with fleet size.
        assert!((rows[0].time_to_running - rows[3].time_to_running).abs() <= 2.0);
    }

    #[test]
    fn csv_shape() {
        let rows = measure(&[1], 1.0);
        let c = csv(&rows);
        assert!(c.starts_with("fleet_size,"));
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn spread_fills_clusters_in_order() {
        assert_eq!(spread(10), vec![10, 0, 0]);
        assert_eq!(spread(80), vec![75, 5, 0]);
        assert_eq!(spread(150), vec![75, 30, 45]);
    }
}
