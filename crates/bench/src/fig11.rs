//! Fig. 11 — P2P streaming quality at different ratios of mean peer
//! upload capacity over the streaming rate (0.9, 1.0, 1.2 in the paper).

use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::metrics::Metrics;
use cloudmedia_sim::simulator::Simulator;
use cloudmedia_workload::distributions::BoundedPareto;

/// The paper's upload/streaming-rate ratios.
pub const RATIOS: [f64; 3] = [0.9, 1.0, 1.2];

/// Builds the P2P config with the bounded-Pareto upload distribution
/// rescaled so its mean equals `ratio × r` (scaling both bounds preserves
/// the shape, and the truncated-Pareto mean scales linearly).
pub fn config_for_ratio(ratio: f64, hours: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(SimMode::P2p);
    cfg.trace.horizon_seconds = hours * 3600.0;
    let current = BoundedPareto::new(
        cfg.trace.upload_min_bps,
        cfg.trace.upload_max_bps,
        cfg.trace.upload_shape,
    )
    .expect("paper upload distribution is valid")
    .mean();
    let scale = ratio * cfg.streaming_rate / current;
    cfg.trace.upload_min_bps *= scale;
    cfg.trace.upload_max_bps *= scale;
    cfg
}

/// Runs the three ratio experiments (in parallel) and returns
/// `(ratio, metrics)` triples.
///
/// # Panics
///
/// Panics if a simulation fails.
pub fn run(hours: f64) -> Vec<(f64, Metrics)> {
    std::thread::scope(|s| {
        let handles: Vec<_> = RATIOS
            .iter()
            .map(|&ratio| {
                s.spawn(move || {
                    let cfg = config_for_ratio(ratio, hours);
                    let m = Simulator::new(cfg)
                        .expect("fig11 config is valid")
                        .run()
                        .expect("fig11 run succeeds");
                    (ratio, m)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig11 thread"))
            .collect()
    })
}

/// CSV: day, one quality column per ratio.
pub fn csv(results: &[(f64, Metrics)]) -> String {
    let mut out = String::from("day");
    for (ratio, _) in results {
        out.push_str(&format!(",quality_ratio_{ratio}"));
    }
    out.push('\n');
    let n = results[0].1.samples.len();
    for i in 0..n {
        out.push_str(&format!("{:.3}", results[0].1.samples[i].time / 86_400.0));
        for (_, m) in results {
            out.push_str(&format!(",{:.3}", m.samples[i].quality));
        }
        out.push('\n');
    }
    out
}

/// Summary: mean quality per ratio (the paper reports 0.95 / 0.95 / 1.0).
pub fn summary(results: &[(f64, Metrics)]) -> String {
    let mut out = String::from("# mean quality by upload/r ratio:");
    for (ratio, m) in results {
        out.push_str(&format!(" {ratio} -> {:.3};", m.mean_quality()));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_distribution_rescales_to_target_mean() {
        for ratio in RATIOS {
            let cfg = config_for_ratio(ratio, 1.0);
            let mean = BoundedPareto::new(
                cfg.trace.upload_min_bps,
                cfg.trace.upload_max_bps,
                cfg.trace.upload_shape,
            )
            .unwrap()
            .mean();
            assert!(
                (mean - ratio * cfg.streaming_rate).abs() / (ratio * cfg.streaming_rate) < 1e-9,
                "ratio {ratio}: mean {mean}"
            );
        }
    }

    #[test]
    fn short_run_produces_quality_per_ratio() {
        let results = run(2.0);
        assert_eq!(results.len(), 3);
        for (ratio, m) in &results {
            assert!(
                m.mean_quality() > 0.8,
                "ratio {ratio}: quality {}",
                m.mean_quality()
            );
        }
        let c = csv(&results);
        assert!(c.starts_with("day,"));
        assert!(summary(&results).contains("0.9"));
    }
}
