//! Fig. 10 — evolution of the overall VM rental cost ($/hour) over one
//! day, client–server vs P2P.

use cloudmedia_bench::{paper_runs, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let runs = paper_runs(args.hours);
    let day = if args.hours >= 48.0 { 1 } else { 0 };
    print!("{}", cloudmedia_bench::report::fig10_summary(&runs));
    print!("{}", cloudmedia_bench::report::fig10(&runs, day));
}
