//! Footnote 3 — chunk-size trade-off: VM switching per session vs wasted
//! prefetch on VCR jumps vs provisioned capacity.

use cloudmedia_bench::chunk_size;

fn main() {
    let rows = chunk_size::sweep(&[60.0, 150.0, 300.0, 600.0, 900.0], 0.15);
    print!("{}", chunk_size::csv(&rows));
}
