//! Extension experiment — multi-region deployment, *simulation* version:
//! the three-way comparison (independent regional sites / federated
//! overflow redirection / one multiplexed central site) over full-system
//! runs with local-time flash crowds and regional VM pricing.
//!
//! Prints one CSV block per streaming mode and, with `--out`, appends
//! the `geo_federation` section to the benchmark JSON (regeneration
//! order: `bench_sim`, `bench_des`, then this).
//!
//! Usage: `ext_multi_region_sim [--hours N] [--out PATH]`

use cloudmedia_bench::geo_sim;
use cloudmedia_sim::config::SimMode;

fn main() {
    let mut hours = 72.0_f64;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let mut modes = Vec::new();
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        println!("# mode: {mode:?}");
        let result = geo_sim::run_three_way(mode, hours);
        print!("{}", geo_sim::csv(&result));
        let row = geo_sim::mode_comparison(&result);
        println!(
            "# federated saves {:.1}% vs independent (central bound: {:.1}%), \
             redirected share {:.1}%",
            row.federated_saving_vs_independent * 100.0,
            row.central_saving_vs_independent * 100.0,
            result.federated.redirected_share() * 100.0,
        );
        modes.push(row);
    }

    if let Some(path) = out_path {
        let section = geo_sim::section(modes);
        let json = serde_json::to_string_pretty(&section).expect("section serializes");
        geo_sim::append_section(&path, "geo_federation", &json).expect("write benchmark file");
        println!("appended geo_federation to {path}");
    }
}

fn usage() -> ! {
    eprintln!("usage: ext_multi_region_sim [--hours N] [--out PATH]");
    std::process::exit(2)
}
