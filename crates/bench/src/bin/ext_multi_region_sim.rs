//! Extension experiment — multi-region deployment, *simulation* version:
//! three regional full-system simulations (local-time flash crowds) vs a
//! single central simulation of the time-zone-multiplexed mixture.

use cloudmedia_bench::geo_sim;
use cloudmedia_bench::HarnessArgs;
use cloudmedia_sim::config::SimMode;

fn main() {
    let args = HarnessArgs::parse();
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        println!("# mode: {mode:?}");
        let result = geo_sim::run(mode, args.hours.min(72.0));
        print!("{}", geo_sim::csv(&result));
    }
}
