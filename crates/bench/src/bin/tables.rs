//! Prints the paper's Table II and Table III cluster configurations.

fn main() {
    print!("{}", cloudmedia_bench::tables::table_ii());
    println!();
    print!("{}", cloudmedia_bench::tables::table_iii());
}
