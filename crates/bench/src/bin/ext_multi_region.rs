//! Extension experiment — multi-region deployment (the paper's future
//! work): three sites in offset time zones vs one centralized site.
//!
//! Each region's flash crowds happen in *local* evening time, so the
//! per-region demand curves are shifted copies of each other. The
//! centralized site sees their sum — much flatter, thanks to time-zone
//! multiplexing — and can be provisioned closer to the mean, but then
//! serves ~60% of viewers from a remote region. This experiment drives
//! both deployments through 48 hours of analytic demand and compares
//! hourly VM cost and peak-to-mean provisioning.

use cloudmedia_cloud::broker::SlaTerms;
use cloudmedia_cloud::cluster::{paper_nfs_clusters, paper_virtual_clusters};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_core::controller::{Controller, ControllerConfig, StreamingMode};
use cloudmedia_core::geo::{three_sites, GeoController};
use cloudmedia_core::predictor::{ChannelObservation, PredictorKind};
use cloudmedia_workload::diurnal::DiurnalPattern;

fn sla() -> SlaTerms {
    SlaTerms {
        virtual_clusters: paper_virtual_clusters(),
        nfs_clusters: paper_nfs_clusters(),
    }
}

fn observation(rate: f64) -> ChannelObservation {
    let model = ChannelModel::paper_default(0, rate);
    ChannelObservation {
        arrival_rate: rate,
        alpha: model.alpha,
        routing: model.routing,
    }
}

fn main() {
    let regions = three_sites();
    let diurnal = DiurnalPattern::paper_default();
    let global_base_rate = 0.35; // global arrivals/s at multiplier 1

    let mut geo = GeoController::new(
        ControllerConfig::paper_default(StreamingMode::ClientServer),
        PredictorKind::LastInterval,
        regions.clone(),
    )
    .expect("three sites are valid");
    let mut central = Controller::new(
        ControllerConfig::paper_default(StreamingMode::ClientServer),
        PredictorKind::LastInterval,
    )
    .expect("paper config is valid");

    let slas = vec![sla(), sla(), sla()];
    let central_sla = sla();

    println!("hour,geo_cost,central_cost,americas_demand_mbps,europe_demand_mbps,apac_demand_mbps,central_demand_mbps");
    let mut geo_total = 0.0;
    let mut central_total = 0.0;
    let mut geo_peak: f64 = 0.0;
    let mut central_peak: f64 = 0.0;
    for hour in 0..48 {
        let t = hour as f64 * 3600.0;
        // Per-region rates: local-time diurnal x population share.
        let rates: Vec<f64> = regions
            .iter()
            .map(|r| {
                let local = t + r.timezone_offset_hours * 3600.0;
                global_base_rate * r.population_share * diurnal.multiplier(local)
            })
            .collect();
        let stats: Vec<Vec<(usize, ChannelObservation)>> =
            rates.iter().map(|&r| vec![(0, observation(r))]).collect();
        let geo_plan = geo
            .plan_interval(&stats, &slas)
            .expect("geo interval plans");

        let total_rate: f64 = rates.iter().sum();
        let central_plan = central
            .plan_interval(&[(0, observation(total_rate))], &central_sla)
            .expect("central interval plans");

        geo_total += geo_plan.total_hourly_cost;
        central_total += central_plan.vm_plan.integer_hourly_cost;
        geo_peak = geo_peak.max(geo_plan.total_hourly_cost);
        central_peak = central_peak.max(central_plan.vm_plan.integer_hourly_cost);

        println!(
            "{hour},{:.2},{:.2},{:.1},{:.1},{:.1},{:.1}",
            geo_plan.total_hourly_cost,
            central_plan.vm_plan.integer_hourly_cost,
            geo_plan.per_region[0].total_cloud_demand * 8.0 / 1e6,
            geo_plan.per_region[1].total_cloud_demand * 8.0 / 1e6,
            geo_plan.per_region[2].total_cloud_demand * 8.0 / 1e6,
            central_plan.total_cloud_demand * 8.0 / 1e6,
        );
    }
    println!(
        "# totals over 48 h: geo ${geo_total:.2} (peak ${geo_peak:.2}/h), \
         central ${central_total:.2} (peak ${central_peak:.2}/h)"
    );
    let geo_p2m = geo_peak / (geo_total / 48.0);
    let central_p2m = central_peak / (central_total / 48.0);
    println!(
        "# peak-to-mean: geo {geo_p2m:.2}, central {central_p2m:.2} — time-zone \
         multiplexing flattens the central demand curve"
    );
    println!(
        "# cost delta: geo is {:.1}% {} than central. Multiplexing favours the \
         central site, but at peak it saturates its cheap Standard tier (75 VMs) \
         and must rent pricier Medium/Advanced instances, while every geo site \
         stays within its own Standard fleet — and serves all viewers locally.",
        (geo_total / central_total - 1.0).abs() * 100.0,
        if geo_total <= central_total {
            "cheaper"
        } else {
            "dearer"
        },
    );
}
