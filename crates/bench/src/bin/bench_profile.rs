//! Stage-profile benchmark: runs the paper week on the Indexed and
//! Sharded engines with telemetry off and on, prints the per-stage
//! wall-time tables, and appends the `stage_profile` section to the
//! benchmark JSON (regeneration order: `bench_sim`, `bench_des`,
//! `ext_multi_region_sim`, `bench_scale`, `bench_chaos`, then this).
//!
//! Usage: `bench_profile [--hours H] [--reps N] [--out PATH]`
//!   - `--hours` horizon of every run (default 168 — the paper week),
//!   - `--reps` repetitions per (kernel, telemetry) pair; the minimum
//!     wall time is kept (default 5),
//!   - `--out` benchmark JSON to append to (default `BENCH_sim.json`).

use cloudmedia_bench::geo_sim::append_section;
use cloudmedia_bench::profile::{profile_kernel, section, KernelStageProfile};
use cloudmedia_sim::config::{SimKernel, SimMode};

fn main() {
    let mut hours = 168.0_f64;
    let mut reps = 5usize;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let mut kernels: Vec<KernelStageProfile> = Vec::new();
    for kernel in [SimKernel::Indexed, SimKernel::Sharded] {
        let p = profile_kernel(kernel, SimMode::ClientServer, hours, reps)
            .expect("profiled run succeeds");
        print_profile(&p);
        kernels.push(p);
    }

    assert!(
        kernels.iter().all(|p| p.metrics_identical),
        "telemetry-on and telemetry-off runs diverged"
    );
    for p in &kernels {
        if p.overhead_pct > 2.0 {
            eprintln!(
                "WARNING: {} telemetry overhead {:.2}% exceeds the 2% budget",
                p.engine, p.overhead_pct
            );
        }
    }

    let json =
        serde_json::to_string_pretty(&section(hours, reps, kernels)).expect("section serializes");
    append_section(&out_path, "stage_profile", &json).expect("write benchmark file");
    println!("appended `stage_profile` section to {out_path}");
}

fn print_profile(p: &KernelStageProfile) {
    println!(
        "{:<8} {} rounds, wall off {:.3}s / on {:.3}s, overhead {:+.2}%, \
         identical: {}",
        p.engine,
        p.rounds,
        p.wall_seconds_telemetry_off,
        p.wall_seconds_telemetry_on,
        p.overhead_pct,
        p.metrics_identical,
    );
    for s in &p.stages {
        println!(
            "  {:<24} {:>10.3} ms {:>6.1}%",
            s.stage,
            s.nanos as f64 / 1e6,
            s.share * 100.0
        );
    }
}

fn usage() -> ! {
    eprintln!("usage: bench_profile [--hours H] [--reps N] [--out PATH]");
    std::process::exit(2);
}
