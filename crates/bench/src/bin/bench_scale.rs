//! Scale-sweep benchmark: measures the sharded channel-parallel engine
//! at 10 k → 1 M+ steady-state viewers (sim-hours per wall second, peak
//! RSS), re-checks serial ≡ parallel bit equality, and appends the
//! `scale_sweep` section to the benchmark JSON (regeneration order:
//! `bench_sim`, `bench_des`, `ext_multi_region_sim`, then this).
//! Parallel steady rows run in quiescence-off/on pairs so the epoch
//! engine's wall-clock effect is isolated row-to-row.
//!
//! Usage: `bench_scale [--max-peers N] [--hours H] [--flash-peers N] [--out PATH]`
//!   - `--max-peers` population of the headline run (default 1 000 000;
//!     the acceptance row — must complete end to end),
//!   - `--hours` horizon of the headline run (default 2, long enough
//!     for the diurnal ramp to cross 1 M concurrent viewers),
//!   - `--flash-peers` population of the one-channel flash-crowd lane
//!     (default 500 000; 0 skips the lane),
//!   - `--out` benchmark JSON to append to (default `BENCH_sim.json`).
//!
//! Set `RAYON_NUM_THREADS` to sweep worker-pool sizes.

use cloudmedia_bench::geo_sim::append_section;
use cloudmedia_bench::scale::{
    equality_check, flash_equality_check, run_flash_point, run_point, section, ScaleRow,
};
use cloudmedia_sim::config::SimMode;

fn main() {
    let mut max_peers = 1_000_000.0_f64;
    let mut hours = 2.0_f64;
    let mut flash_peers = 500_000.0_f64;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-peers" => {
                max_peers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--flash-peers" => {
                flash_peers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    // Ascending population, so the monotone VmHWM readings stay honest
    // per-row bounds. Channels scale with population (≥ 20, ~500
    // viewers per channel, ≤ 4096).
    let mut sweep: Vec<ScaleRow> = Vec::new();
    let mut points: Vec<(f64, f64, SimMode)> = vec![
        (10_000.0, 1.0, SimMode::ClientServer),
        (100_000.0, 1.0, SimMode::ClientServer),
        (100_000.0, 1.0, SimMode::P2p),
    ];
    if max_peers > 100_000.0 {
        points.push((max_peers, hours, SimMode::ClientServer));
    }
    for (population, h, mode) in points {
        let channels = ((population / 500.0) as usize).clamp(20, 4096);
        // Serial runs quiesced (the default); the parallel pair runs
        // quiescence off then on, so adjacent rows isolate the epoch
        // engine's wall-clock effect (metrics are bit-identical).
        for (parallel, quiesce) in [(false, true), (true, false), (true, true)] {
            let row = run_point(population, channels, mode, h, parallel, quiesce);
            eprintln!(
                "{mode:?} {population:.0} viewers / {channels} channels ({}, quiescence {}): \
                 {:.2}s wall, {:.1} sim-h/s, peak {} viewers, RSS {} MB",
                if parallel { "parallel" } else { "serial" },
                if quiesce { "on" } else { "off" },
                row.wall_seconds,
                row.sim_hours_per_wall_second,
                row.peak_peers,
                row.peak_rss_bytes.map_or(0, |b| b / 1_000_000),
                mode = mode,
                population = population,
                channels = channels,
            );
            sweep.push(row);
        }
    }

    // The one-channel flash-crowd lane: the giant-channel serial cap
    // this sweep exists to break. Serial single-lane reference first,
    // then the laned run (auto cap = one lane per pool thread).
    let mut flash_equality = None;
    if flash_peers > 0.0 {
        let flash_hours = 1.0;
        for (parallel, lanes) in [(false, 0usize), (true, 0)] {
            let row = run_flash_point(flash_peers, flash_hours, parallel, lanes);
            eprintln!(
                "flash-crowd 1ch {flash_peers:.0} viewers ({}): {:.2}s wall, \
                 {:.1} sim-h/s, peak {} viewers, RSS {} MB",
                if parallel { "laned" } else { "serial" },
                row.wall_seconds,
                row.sim_hours_per_wall_second,
                row.peak_peers,
                row.peak_rss_bytes.map_or(0, |b| b / 1_000_000),
            );
            sweep.push(row);
        }
        // Bit-identity at a size the check can afford to run twice.
        let eq = flash_equality_check(flash_peers.min(100_000.0), 1.0, 4);
        assert!(
            eq.serial_equals_parallel,
            "serial and laned flash-crowd runs diverged — lane determinism broken"
        );
        flash_equality = Some(eq);
    }

    let equality = equality_check(50_000.0, 100, SimMode::P2p, 1.0);
    assert!(
        equality.serial_equals_parallel,
        "serial and parallel sharded runs diverged — determinism contract broken"
    );

    let headline = sweep
        .iter()
        .filter(|r| r.parallel && r.quiesce)
        .max_by(|a, b| a.peak_peers.cmp(&b.peak_peers))
        .expect("sweep is non-empty");
    println!(
        "headline: {} concurrent viewers peak across {} channels, {:.1} sim-h/s, \
         serial==parallel: {}",
        headline.peak_peers,
        headline.channels,
        headline.sim_hours_per_wall_second,
        equality.serial_equals_parallel
    );

    let section = section(sweep, equality, flash_equality);
    let json = serde_json::to_string_pretty(&section).expect("section serializes");
    append_section(&out_path, "scale_sweep", &json).expect("write benchmark file");
    println!("appended scale_sweep to {out_path}");
}

fn usage() -> ! {
    eprintln!("usage: bench_scale [--max-peers N] [--hours H] [--flash-peers N] [--out PATH]");
    std::process::exit(2)
}
