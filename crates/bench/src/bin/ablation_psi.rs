//! Ablation — joint-ownership estimator: independence approximation vs
//! exact path-based Ψ, across channel loads.
//!
//! The paper delegates Ψ(π_j, π_k) to an unavailable technical report;
//! this ablation quantifies how much the estimator choice moves the
//! derived peer contribution and cloud demand.

use cloudmedia_core::analysis::{p2p_capacity_with, DemandPooling, PsiEstimator};
use cloudmedia_core::channel::ChannelModel;

fn main() {
    println!("arrival_rate,estimator,peer_contribution_mbps,cloud_demand_mbps");
    for &rate in &[0.02, 0.05, 0.1, 0.2, 0.4] {
        let channel = ChannelModel::paper_default(0, rate);
        for (name, psi) in [
            ("independent", PsiEstimator::Independent),
            ("path_based", PsiEstimator::PathBased),
        ] {
            let p = p2p_capacity_with(&channel, 34_000.0, psi, DemandPooling::ChannelPooled)
                .expect("paper channel analyzes");
            println!(
                "{rate},{name},{:.2},{:.2}",
                p.total_peer_contribution() * 8.0 / 1e6,
                p.total_cloud_demand() * 8.0 / 1e6,
            );
        }
    }
}
