//! Chaos benchmark: runs the fault-injection presets (VM-fleet outage,
//! budget cut, tracker dropout) on the Indexed and Sharded engines plus
//! the federated site outage, each against a fault-free baseline, and
//! appends the `resilience` section to the benchmark JSON (regeneration
//! order: `bench_sim`, `bench_des`, `ext_multi_region_sim`,
//! `bench_scale`, then this).
//!
//! Usage: `bench_chaos [--hours H] [--out PATH]`
//!   - `--hours` horizon of every run (default 12 — long enough for the
//!     mid-run faults to land and the recovery tail to be visible),
//!   - `--out` benchmark JSON to append to (default `BENCH_sim.json`).

use cloudmedia_bench::geo_sim::append_section;
use cloudmedia_bench::resilience::{run_federated, run_single_site, section, ResilienceRow};
use cloudmedia_sim::config::{SimKernel, SimMode};

fn main() {
    let mut hours = 12.0_f64;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let mut rows: Vec<ResilienceRow> = Vec::new();
    for scenario in ["vm-outage", "budget-cut", "tracker-dropout"] {
        for kernel in [SimKernel::Indexed, SimKernel::Sharded] {
            let row = run_single_site(scenario, kernel, SimMode::ClientServer, hours)
                .expect("chaos scenario runs");
            print_row(&row);
            rows.push(row);
        }
    }
    let row = run_federated("site-outage", SimMode::ClientServer, hours).expect("site outage runs");
    print_row(&row);
    rows.push(row);

    assert!(
        rows.iter().all(|r| r.serial_parallel_identical),
        "serial and parallel faulted runs diverged"
    );

    let json = serde_json::to_string_pretty(&section(hours, rows)).expect("section serializes");
    append_section(&out_path, "resilience", &json).expect("write benchmark file");
    println!("appended `resilience` section to {out_path}");
}

fn print_row(row: &ResilienceRow) {
    let r = &row.report;
    println!(
        "{:<15} {:<9} dip {:.4} for {:>6.0}s, recover {:>6.0}s, cost {:+8.2}$, \
         serial==parallel: {}",
        row.scenario,
        row.engine,
        r.dip_depth,
        r.dip_duration_seconds,
        r.time_to_recover_seconds,
        r.cost_overshoot_dollars,
        row.serial_parallel_identical,
    );
}

fn usage() -> ! {
    eprintln!("usage: bench_chaos [--hours H] [--out PATH]");
    std::process::exit(2);
}
