//! Simulator performance benchmark: measures the reference (`Scan`) and
//! production (`Indexed`) round engines end-to-end in both streaming
//! modes, plus the allocation-kernel microbenchmarks, and writes the
//! results as machine-readable `BENCH_sim.json` so the perf trajectory
//! is tracked from PR to PR.
//!
//! Usage: `bench_sim [--hours N] [--out PATH]`
//!   - `--hours` simulated horizon per run (default 24; use 168 for the
//!     paper's full week),
//!   - `--out` output path (default `BENCH_sim.json` in the working
//!     directory).

use std::time::Instant;

use cloudmedia_sim::allocation::{allocate_pool, allocate_pool_into, allocate_pool_sparse};
use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::simulator::{last_phase_profile, PhaseProfile, Simulator};
use serde::Serialize;

/// One end-to-end measurement.
#[derive(Debug, Serialize)]
struct E2eResult {
    mode: String,
    kernel: String,
    sim_hours: f64,
    wall_seconds: f64,
    sim_hours_per_wall_second: f64,
    rounds: u64,
    ns_per_round: f64,
    mean_quality: f64,
    peak_peers: usize,
    phases: Option<PhaseProfile>,
}

/// One microbenchmark measurement.
#[derive(Debug, Serialize)]
struct KernelResult {
    name: String,
    ns_per_call: f64,
}

/// Speedup summary of indexed over scan.
#[derive(Debug, Serialize)]
struct Speedups {
    client_server_e2e: f64,
    p2p_e2e: f64,
    client_server_allocation_stage: f64,
    p2p_allocation_stage: f64,
    allocate_pool_inplace_vs_naive: f64,
    allocate_pool_sparse_vs_naive: f64,
}

/// Full report serialized to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    sim_hours: f64,
    host_threads: usize,
    e2e: Vec<E2eResult>,
    kernels: Vec<KernelResult>,
    speedups: Speedups,
    notes: Vec<String>,
}

fn main() {
    let mut hours = 24.0_f64;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    // Capture per-phase breakdowns for the stage-level speedups.
    std::env::set_var("CLOUDMEDIA_PROFILE", "1");
    let mut e2e = Vec::new();
    let mut wall = [[0.0_f64; 2]; 2];
    let mut alloc_stage = [[0.0_f64; 2]; 2];
    for (mi, mode) in [SimMode::ClientServer, SimMode::P2p]
        .into_iter()
        .enumerate()
    {
        for (ki, kernel) in [SimKernel::Scan, SimKernel::Indexed]
            .into_iter()
            .enumerate()
        {
            let mut cfg = SimConfig::paper_default(mode);
            cfg.trace.horizon_seconds = hours * 3600.0;
            cfg.kernel = kernel;
            let rounds = (cfg.trace.horizon_seconds / cfg.round_seconds).ceil() as u64;
            let start = Instant::now();
            let metrics = Simulator::new(cfg)
                .expect("paper config is valid")
                .run()
                .expect("benchmark run succeeds");
            let secs = start.elapsed().as_secs_f64();
            wall[mi][ki] = secs;
            let phases = last_phase_profile();
            alloc_stage[mi][ki] = phases.map_or(0.0, |p| p.allocation);
            eprintln!(
                "{mode:?}/{kernel:?} {hours}h: {secs:.3}s wall ({:.0} sim-hours/s)",
                hours / secs
            );
            e2e.push(E2eResult {
                mode: format!("{mode:?}"),
                kernel: format!("{kernel:?}"),
                sim_hours: hours,
                wall_seconds: secs,
                sim_hours_per_wall_second: hours / secs,
                rounds,
                ns_per_round: secs * 1e9 / rounds as f64,
                mean_quality: metrics.mean_quality(),
                peak_peers: metrics.peak_peers(),
                phases,
            });
        }
    }

    let (kernels, naive_ns, inplace_ns, sparse_ns) = kernel_micro();

    let report = Report {
        schema: "cloudmedia-bench-sim/v1".into(),
        sim_hours: hours,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        e2e,
        kernels,
        speedups: Speedups {
            client_server_e2e: wall[0][0] / wall[0][1],
            p2p_e2e: wall[1][0] / wall[1][1],
            client_server_allocation_stage: alloc_stage[0][0] / alloc_stage[0][1].max(1e-12),
            p2p_allocation_stage: alloc_stage[1][0] / alloc_stage[1][1].max(1e-12),
            allocate_pool_inplace_vs_naive: naive_ns / inplace_ns,
            allocate_pool_sparse_vs_naive: naive_ns / sparse_ns,
        },
        notes: vec![
            "Scan is the pre-refactor reference engine (full-population scans, \
             per-round allocations); Indexed is the production engine. Both \
             produce bit-identical metrics for the same seed."
                .into(),
            "End-to-end ratios are Amdahl-capped by work shared between the \
             engines (viewing-model event processing, hourly provisioning, \
             trace generation); the kernel and per-stage ratios show the \
             refactor's effect in isolation. Set CLOUDMEDIA_PROFILE=1 for a \
             per-phase breakdown."
                .into(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("write BENCH_sim.json");
    println!(
        "wrote {out_path}: C/S {:.2}x, P2P {:.2}x end-to-end (indexed vs scan)",
        report.speedups.client_server_e2e, report.speedups.p2p_e2e
    );
}

/// Times the allocation kernels on the sparse demand shape the simulator
/// produces; returns the per-call nanoseconds for the summary ratios.
fn kernel_micro() -> (Vec<KernelResult>, f64, f64, f64) {
    let mut demands = vec![0.0_f64; 64];
    let mut mask = 0u64;
    for &(k, d) in &[(0usize, 2.5e6), (7, 1.25e6), (13, 4.0e5), (40, 9.0e5)] {
        demands[k] = d;
        mask |= 1 << k;
    }
    let pool = 2.0e6;
    let iters = 2_000_000u64;

    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(allocate_pool(std::hint::black_box(&demands), pool));
    }
    let naive_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;

    let mut out = vec![0.0; 64];
    let mut order = Vec::new();
    let start = Instant::now();
    for _ in 0..iters {
        allocate_pool_into(std::hint::black_box(&demands), pool, &mut out, &mut order);
    }
    let inplace_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;

    out.fill(0.0);
    let start = Instant::now();
    for _ in 0..iters {
        allocate_pool_sparse(
            std::hint::black_box(&demands),
            pool,
            &mut out,
            &mut order,
            mask,
        );
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            out[k] = 0.0;
        }
    }
    let sparse_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;

    let kernels = vec![
        KernelResult {
            name: "allocate_pool/naive_alloc".into(),
            ns_per_call: naive_ns,
        },
        KernelResult {
            name: "allocate_pool/inplace".into(),
            ns_per_call: inplace_ns,
        },
        KernelResult {
            name: "allocate_pool/sparse_mask".into(),
            ns_per_call: sparse_ns,
        },
    ];
    (kernels, naive_ns, inplace_ns, sparse_ns)
}

fn usage() -> ! {
    eprintln!("usage: bench_sim [--hours N] [--out PATH]");
    std::process::exit(2)
}
