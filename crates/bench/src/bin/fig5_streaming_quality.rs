//! Fig. 5 — average streaming quality in the VoD system, both modes.

use cloudmedia_bench::{paper_runs, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let runs = paper_runs(args.hours);
    print!("{}", cloudmedia_bench::report::fig5_summary(&runs));
    print!("{}", cloudmedia_bench::report::fig5(&runs));
}
