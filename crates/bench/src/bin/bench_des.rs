//! DES-vs-Indexed benchmark: runs the paper-default configuration under
//! the Indexed round engine and the EventDriven engine in both streaming
//! modes, measures wall time and the steady-state agreement (mean used
//! cloud bandwidth, total VM cost), and appends the comparison as a
//! `des_comparison` section to `BENCH_sim.json` so the model gap and the
//! DES engine's speed are tracked from PR to PR. Every row names the
//! kernel that produced it.
//!
//! Also emits an `engine_throughput` section: raw DES scheduler
//! throughput (schedule/cancel/pop ns per op, binary heap vs timing
//! wheel, on the hold and timer-churn operation mixes) plus full
//! event-driven engine runs per scheduler (events/sec, ns/event) — the
//! record of the timing wheel's edge over the heap.
//!
//! Usage: `bench_des [--hours N] [--out PATH]`
//!   - `--hours` simulated horizon per run (default 24; use 168 for the
//!     paper's full week — the tolerance the regression suite documents
//!     is validated against that horizon),
//!   - `--out` the benchmark file to append to (default `BENCH_sim.json`
//!     in the working directory; created if missing).

use std::time::Instant;

use cloudmedia_bench::geo_sim::append_section;
use cloudmedia_des::{ComponentId, Kernel, SchedulerKind};
use cloudmedia_sim::config::{SchedulerChoice, SimConfig, SimKernel, SimMode};
use cloudmedia_sim::event_driven::{run as des_run, DesScenario, LatencySummary};
use cloudmedia_sim::simulator::Simulator;
use serde::Serialize;

/// One mode's Indexed-vs-DES measurement. `*_ratio` fields are
/// DES / Indexed.
#[derive(Debug, Serialize)]
struct ModeComparison {
    mode: String,
    indexed_kernel: String,
    des_kernel: String,
    sim_hours: f64,
    indexed_wall_seconds: f64,
    des_wall_seconds: f64,
    des_events_delivered: u64,
    indexed_mean_used_bandwidth: f64,
    des_mean_used_bandwidth: f64,
    used_bandwidth_ratio: f64,
    indexed_vm_cost: f64,
    des_vm_cost: f64,
    vm_cost_ratio: f64,
    indexed_mean_quality: f64,
    des_mean_quality: f64,
    des_admission_latency: LatencySummary,
    des_cloud_requests: u64,
    des_peer_requests: u64,
    erlang_c_predicted_wait_fraction: f64,
    measured_wait_fraction: f64,
}

/// The `des_comparison` section appended to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
struct DesComparison {
    schema: String,
    notes: Vec<String>,
    used_bandwidth_tolerance: f64,
    vm_cost_tolerance: f64,
    modes: Vec<ModeComparison>,
}

fn main() {
    let mut hours = 24.0_f64;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let mut modes = Vec::new();
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.trace.horizon_seconds = hours * 3600.0;

        cfg.kernel = SimKernel::Indexed;
        let start = Instant::now();
        let indexed = Simulator::new(cfg.clone())
            .expect("paper config is valid")
            .run()
            .expect("indexed run succeeds");
        let indexed_wall = start.elapsed().as_secs_f64();
        eprintln!("{mode:?}/Indexed {hours}h: {indexed_wall:.3}s wall");

        let start = Instant::now();
        let des = des_run(&cfg, &DesScenario::default()).expect("event-driven run succeeds");
        let des_wall = start.elapsed().as_secs_f64();
        eprintln!(
            "{mode:?}/EventDriven {hours}h: {des_wall:.3}s wall ({} events)",
            des.report.events_delivered
        );

        let m = &des.metrics;
        let row = ModeComparison {
            mode: format!("{mode:?}"),
            indexed_kernel: format!("{:?}", SimKernel::Indexed),
            des_kernel: format!("{:?}", SimKernel::EventDriven),
            sim_hours: hours,
            indexed_wall_seconds: indexed_wall,
            des_wall_seconds: des_wall,
            des_events_delivered: des.report.events_delivered,
            indexed_mean_used_bandwidth: indexed.mean_used_bandwidth(),
            des_mean_used_bandwidth: m.mean_used_bandwidth(),
            used_bandwidth_ratio: m.mean_used_bandwidth() / indexed.mean_used_bandwidth(),
            indexed_vm_cost: indexed.total_vm_cost,
            des_vm_cost: m.total_vm_cost,
            vm_cost_ratio: m.total_vm_cost / indexed.total_vm_cost,
            indexed_mean_quality: indexed.mean_quality(),
            des_mean_quality: m.mean_quality(),
            des_admission_latency: des.report.admission_latency,
            des_cloud_requests: des.report.cloud_requests,
            des_peer_requests: des.report.peer_requests,
            erlang_c_predicted_wait_fraction: des.report.predicted_wait_fraction,
            measured_wait_fraction: des.report.measured_wait_fraction,
        };
        println!(
            "{mode:?}: kernel=EventDriven vs kernel=Indexed — used-bw ratio {:.3}, \
             cost ratio {:.3}, p99 admission wait {:.1}s",
            row.used_bandwidth_ratio, row.vm_cost_ratio, row.des_admission_latency.p99
        );
        modes.push(row);
    }

    // --- engine_throughput: scheduler micro-ops + engine runs ---------
    let kernel_ops = kernel_ops();
    let hold_speedup = speedup(&kernel_ops, "hold_262144");
    let cancel_speedup = speedup(&kernel_ops, "schedule_cancel_16384");
    let mut engine_runs = Vec::new();
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        for scheduler in [SchedulerChoice::Heap, SchedulerChoice::Wheel] {
            let mut cfg = SimConfig::paper_default(mode);
            cfg.trace.horizon_seconds = hours * 3600.0;
            cfg.scheduler = scheduler;
            let start = Instant::now();
            let run = des_run(&cfg, &DesScenario::default()).expect("engine run succeeds");
            let wall = start.elapsed().as_secs_f64();
            let events = run.report.events_delivered;
            eprintln!(
                "{mode:?}/{scheduler:?} engine: {wall:.3}s for {events} events \
                 ({:.2}M events/s)",
                events as f64 / wall / 1e6
            );
            engine_runs.push(EngineRun {
                mode: format!("{mode:?}"),
                scheduler: format!("{scheduler:?}"),
                sim_hours: hours,
                wall_seconds: wall,
                events_delivered: events,
                events_per_sec: events as f64 / wall,
                ns_per_event: wall * 1e9 / events as f64,
            });
        }
    }
    let throughput = EngineThroughput {
        schema: "cloudmedia-bench-des-throughput/v1".into(),
        notes: vec![
            "kernel_ops are raw scheduler operations (no component handlers): the \
             hold model (pop + schedule at a steady pending-set size) and the \
             cancellable-timer churn mix. engine_runs are full event-driven \
             CloudMedia runs, so handler work dilutes the scheduler gap."
                .into(),
        ],
        kernel_ops,
        wheel_speedup_hold: hold_speedup,
        wheel_speedup_cancel: cancel_speedup,
        engine_runs,
    };

    let comparison = DesComparison {
        schema: "cloudmedia-bench-des/v1".into(),
        notes: vec![
            "EventDriven is a different microscopic model (per-request FIFO \
             M/M/m service on the cloudmedia-des kernel); agreement with the \
             Indexed round engine is in steady-state means, not bit-for-bit. \
             See crates/sim/src/event_driven for the tolerance argument."
                .into(),
        ],
        used_bandwidth_tolerance: 0.15,
        vm_cost_tolerance: 0.10,
        modes,
    };
    let section = serde_json::to_string_pretty(&comparison).expect("comparison serializes");
    append_section(&out_path, "des_comparison", &section).expect("write benchmark file");
    let section = serde_json::to_string_pretty(&throughput).expect("throughput serializes");
    append_section(&out_path, "engine_throughput", &section).expect("write benchmark file");
    println!(
        "appended des_comparison + engine_throughput to {out_path} \
         (wheel vs heap: {hold_speedup:.2}x hold, {cancel_speedup:.2}x cancel)"
    );
}

/// One raw scheduler measurement.
#[derive(Debug, Serialize)]
struct KernelOp {
    pattern: String,
    scheduler: String,
    ns_per_op: f64,
    ops_per_sec: f64,
}

/// One full engine run under a named scheduler.
#[derive(Debug, Serialize)]
struct EngineRun {
    mode: String,
    scheduler: String,
    sim_hours: f64,
    wall_seconds: f64,
    events_delivered: u64,
    events_per_sec: f64,
    ns_per_event: f64,
}

/// The `engine_throughput` section.
#[derive(Debug, Serialize)]
struct EngineThroughput {
    schema: String,
    notes: Vec<String>,
    kernel_ops: Vec<KernelOp>,
    wheel_speedup_hold: f64,
    wheel_speedup_cancel: f64,
    engine_runs: Vec<EngineRun>,
}

/// Heap-vs-wheel ratio for one pattern (heap ns / wheel ns).
fn speedup(ops: &[KernelOp], pattern: &str) -> f64 {
    let ns = |s: &str| {
        ops.iter()
            .find(|o| o.pattern == pattern && o.scheduler == s)
            .map(|o| o.ns_per_op)
            .unwrap_or(f64::NAN)
    };
    ns("BinaryHeap") / ns("TimingWheel")
}

/// Deterministic delay sequence shared by the operation mixes.
fn op_delays(n: usize) -> Vec<f64> {
    let mut state = 0x1234_5678_9ABC_DEF0_u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as f64 * (128.0 / (1u64 << 24) as f64) + 0.125
        })
        .collect()
}

/// Measures the raw schedulers on the hold and timer-churn mixes
/// (mirrors `benches/des_kernel.rs`, embedded here so the JSON record
/// regenerates alongside the engine numbers).
fn kernel_ops() -> Vec<KernelOp> {
    const DEST: ComponentId = ComponentId(0);
    let delays = op_delays(4096);
    let mut out = Vec::new();
    for (name, kind) in [
        ("BinaryHeap", SchedulerKind::BinaryHeap),
        ("TimingWheel", SchedulerKind::TimingWheel),
    ] {
        // Hold model at 2^18 (262144) pending events.
        let pending = 1usize << 18;
        let mut kernel: Kernel<u64> = Kernel::with_scheduler(kind);
        for (i, d) in delays.iter().cycle().take(pending).enumerate() {
            kernel.schedule_in(*d, DEST, i as u64);
        }
        let iters = 2_000_000u64;
        let start = Instant::now();
        for i in 0..iters {
            let ev = kernel.pop().expect("hold model never drains");
            kernel.schedule_in(delays[(i as usize) % delays.len()], DEST, ev.payload);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        out.push(KernelOp {
            pattern: "hold_262144".into(),
            scheduler: name.into(),
            ns_per_op: ns,
            ops_per_sec: 1e9 / ns,
        });

        // Timer churn at 2^14 base load.
        let pending = 1usize << 14;
        let mut kernel: Kernel<u64> = Kernel::with_scheduler(kind);
        for (i, d) in delays.iter().cycle().take(pending).enumerate() {
            kernel.schedule_in(*d, DEST, i as u64);
        }
        let iters = 1_000_000u64;
        let start = Instant::now();
        for i in 0..iters {
            let d = delays[(i as usize) % delays.len()];
            let id = kernel.schedule_in(1e4 + d, DEST, 7);
            assert!(kernel.cancel(id));
            let ev = kernel.pop().expect("base load never drains");
            kernel.schedule_in(d, DEST, ev.payload);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        out.push(KernelOp {
            pattern: "schedule_cancel_16384".into(),
            scheduler: name.into(),
            ns_per_op: ns,
            ops_per_sec: 1e9 / ns,
        });
    }
    out
}

fn usage() -> ! {
    eprintln!("usage: bench_des [--hours N] [--out PATH]");
    std::process::exit(2)
}
