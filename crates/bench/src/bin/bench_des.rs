//! DES-vs-Indexed benchmark: runs the paper-default configuration under
//! the Indexed round engine and the EventDriven engine in both streaming
//! modes, measures wall time and the steady-state agreement (mean used
//! cloud bandwidth, total VM cost), and appends the comparison as a
//! `des_comparison` section to `BENCH_sim.json` so the model gap and the
//! DES engine's speed are tracked from PR to PR. Every row names the
//! kernel that produced it.
//!
//! Usage: `bench_des [--hours N] [--out PATH]`
//!   - `--hours` simulated horizon per run (default 24; use 168 for the
//!     paper's full week — the tolerance the regression suite documents
//!     is validated against that horizon),
//!   - `--out` the benchmark file to append to (default `BENCH_sim.json`
//!     in the working directory; created if missing).

use std::time::Instant;

use cloudmedia_sim::config::{SimConfig, SimKernel, SimMode};
use cloudmedia_sim::event_driven::{run as des_run, DesScenario, LatencySummary};
use cloudmedia_sim::simulator::Simulator;
use serde::Serialize;

/// One mode's Indexed-vs-DES measurement. `*_ratio` fields are
/// DES / Indexed.
#[derive(Debug, Serialize)]
struct ModeComparison {
    mode: String,
    indexed_kernel: String,
    des_kernel: String,
    sim_hours: f64,
    indexed_wall_seconds: f64,
    des_wall_seconds: f64,
    des_events_delivered: u64,
    indexed_mean_used_bandwidth: f64,
    des_mean_used_bandwidth: f64,
    used_bandwidth_ratio: f64,
    indexed_vm_cost: f64,
    des_vm_cost: f64,
    vm_cost_ratio: f64,
    indexed_mean_quality: f64,
    des_mean_quality: f64,
    des_admission_latency: LatencySummary,
    des_cloud_requests: u64,
    des_peer_requests: u64,
    erlang_c_predicted_wait_fraction: f64,
    measured_wait_fraction: f64,
}

/// The `des_comparison` section appended to `BENCH_sim.json`.
#[derive(Debug, Serialize)]
struct DesComparison {
    schema: String,
    notes: Vec<String>,
    used_bandwidth_tolerance: f64,
    vm_cost_tolerance: f64,
    modes: Vec<ModeComparison>,
}

fn main() {
    let mut hours = 24.0_f64;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let mut modes = Vec::new();
    for mode in [SimMode::ClientServer, SimMode::P2p] {
        let mut cfg = SimConfig::paper_default(mode);
        cfg.trace.horizon_seconds = hours * 3600.0;

        cfg.kernel = SimKernel::Indexed;
        let start = Instant::now();
        let indexed = Simulator::new(cfg.clone())
            .expect("paper config is valid")
            .run()
            .expect("indexed run succeeds");
        let indexed_wall = start.elapsed().as_secs_f64();
        eprintln!("{mode:?}/Indexed {hours}h: {indexed_wall:.3}s wall");

        let start = Instant::now();
        let des = des_run(&cfg, &DesScenario::default()).expect("event-driven run succeeds");
        let des_wall = start.elapsed().as_secs_f64();
        eprintln!(
            "{mode:?}/EventDriven {hours}h: {des_wall:.3}s wall ({} events)",
            des.report.events_delivered
        );

        let m = &des.metrics;
        let row = ModeComparison {
            mode: format!("{mode:?}"),
            indexed_kernel: format!("{:?}", SimKernel::Indexed),
            des_kernel: format!("{:?}", SimKernel::EventDriven),
            sim_hours: hours,
            indexed_wall_seconds: indexed_wall,
            des_wall_seconds: des_wall,
            des_events_delivered: des.report.events_delivered,
            indexed_mean_used_bandwidth: indexed.mean_used_bandwidth(),
            des_mean_used_bandwidth: m.mean_used_bandwidth(),
            used_bandwidth_ratio: m.mean_used_bandwidth() / indexed.mean_used_bandwidth(),
            indexed_vm_cost: indexed.total_vm_cost,
            des_vm_cost: m.total_vm_cost,
            vm_cost_ratio: m.total_vm_cost / indexed.total_vm_cost,
            indexed_mean_quality: indexed.mean_quality(),
            des_mean_quality: m.mean_quality(),
            des_admission_latency: des.report.admission_latency,
            des_cloud_requests: des.report.cloud_requests,
            des_peer_requests: des.report.peer_requests,
            erlang_c_predicted_wait_fraction: des.report.predicted_wait_fraction,
            measured_wait_fraction: des.report.measured_wait_fraction,
        };
        println!(
            "{mode:?}: kernel=EventDriven vs kernel=Indexed — used-bw ratio {:.3}, \
             cost ratio {:.3}, p99 admission wait {:.1}s",
            row.used_bandwidth_ratio, row.vm_cost_ratio, row.des_admission_latency.p99
        );
        modes.push(row);
    }

    let comparison = DesComparison {
        schema: "cloudmedia-bench-des/v1".into(),
        notes: vec![
            "EventDriven is a different microscopic model (per-request FIFO \
             M/M/m service on the cloudmedia-des kernel); agreement with the \
             Indexed round engine is in steady-state means, not bit-for-bit. \
             See crates/sim/src/event_driven for the tolerance argument."
                .into(),
        ],
        used_bandwidth_tolerance: 0.15,
        vm_cost_tolerance: 0.10,
        modes,
    };
    let section = serde_json::to_string_pretty(&comparison).expect("comparison serializes");

    // Append (or refresh) the section inside BENCH_sim.json. The section
    // is always the last key before the closing brace, so replacing from
    // its marker is lossless for the rest of the report.
    const MARKER: &str = "\"des_comparison\":";
    let base = match std::fs::read_to_string(&out_path) {
        Ok(text) => {
            let text = text.trim_end();
            if let Some(i) = text.find(MARKER) {
                text[..i]
                    .trim_end()
                    .trim_end_matches(',')
                    .trim_end()
                    .to_string()
            } else {
                text.strip_suffix('}')
                    .map(|s| s.trim_end().to_string())
                    .unwrap_or_else(|| "{\n  \"schema\": \"cloudmedia-bench-sim/v1\"".into())
            }
        }
        Err(_) => "{\n  \"schema\": \"cloudmedia-bench-sim/v1\"".into(),
    };
    let merged = format!("{base},\n  {MARKER} {section}\n}}");
    std::fs::write(&out_path, &merged).expect("write benchmark file");
    println!("appended des_comparison to {out_path}");
}

fn usage() -> ! {
    eprintln!("usage: bench_des [--hours N] [--out PATH]");
    std::process::exit(2)
}
