//! Ablation — provisioning vs admission control under capacity caps: for
//! a channel at the paper's scale, sweep the VM cap and report how many
//! requests must be rejected to keep the admitted viewers smooth.

use cloudmedia_core::analysis::{admission_outcome, min_vms_for_rejection};
use cloudmedia_core::channel::ChannelModel;
use cloudmedia_queueing::mmm::min_servers_for_sojourn;

fn main() {
    let channel = ChannelModel::paper_default(0, 0.15); // ~390 viewers
    let lambdas = channel.chunk_arrival_rates().expect("paper channel solves");
    let total: f64 = lambdas.iter().sum();
    let full = min_servers_for_sojourn(total, channel.service_rate(), channel.chunk_seconds)
        .expect("paper channel is provisionable");
    println!("# full mean-provisioned fleet: {full} VMs");
    println!("vms,rejection_probability,admitted_sojourn_s,waiting_room");
    for pct in [100, 90, 80, 70, 60, 50, 40] {
        let vms = (full * pct / 100).max(1);
        match admission_outcome(&channel, vms) {
            Ok(o) => println!(
                "{vms},{:.4},{:.1},{}",
                o.rejection_probability, o.admitted_sojourn, o.waiting_room
            ),
            Err(e) => println!("{vms},error: {e},,"),
        }
    }
    for eps in [0.001, 0.01, 0.05] {
        let vms = min_vms_for_rejection(&channel, eps).expect("feasible");
        println!("# min VMs for <= {:.1}% rejection: {vms}", eps * 100.0);
    }
}
