//! Fig. 6 — channel streaming quality vs channel size (client–server),
//! one day's samples of all channels.

use cloudmedia_bench::{paper_runs, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let runs = paper_runs(args.hours);
    let day = if args.hours >= 48.0 { 1 } else { 0 };
    print!("{}", cloudmedia_bench::report::fig6(&runs.cs, day));
}
