//! Fig. 11 — P2P streaming quality at upload/streaming-rate ratios
//! 0.9, 1.0 and 1.2 over the paper's week.

use cloudmedia_bench::fig11;
use cloudmedia_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    let results = fig11::run(args.hours);
    print!("{}", fig11::summary(&results));
    print!("{}", fig11::csv(&results));
}
