//! Ablation — provisioning strategy: the paper's model-driven controller
//! vs a model-free reactive autoscaler vs a dedicated (fixed) server
//! fleet, end-to-end in the simulator.
//!
//! This is the paper's core economic claim made quantitative: elasticity
//! beats a peak-sized private cluster on cost at equal quality, and the
//! queueing model beats naive reactivity on quality at similar cost.

use cloudmedia_bench::HarnessArgs;
use cloudmedia_core::baseline::ProvisionerKind;
use cloudmedia_sim::config::{SimConfig, SimMode};
use cloudmedia_sim::simulator::Simulator;

fn main() {
    let args = HarnessArgs::parse();
    // Fixed fleet sized for the flash-crowd peak (~2500 viewers at r).
    let peak_demand = 2500.0 * 50_000.0 * 1.05;
    println!("strategy,mode,mean_quality,mean_vm_cost_per_hour,mean_reserved_mbps");
    for (name, kind) in [
        ("model (paper)", ProvisionerKind::Model),
        ("reactive +20%", ProvisionerKind::Reactive { headroom: 0.2 }),
        ("fixed peak fleet", ProvisionerKind::Fixed { peak_demand }),
    ] {
        for mode in [SimMode::ClientServer, SimMode::P2p] {
            let mut cfg = SimConfig::paper_default(mode);
            cfg.trace.horizon_seconds = args.hours * 3600.0;
            cfg.provisioner = kind;
            let m = Simulator::new(cfg)
                .expect("config is valid")
                .run()
                .expect("run succeeds");
            println!(
                "{name},{mode:?},{:.4},{:.2},{:.1}",
                m.mean_quality(),
                m.mean_vm_hourly_cost(),
                m.mean_reserved_bandwidth() * 8.0 / 1e6,
            );
        }
    }
}
