//! Fig. 4 — cloud capacity provisioning vs usage over the paper's week,
//! client–server and P2P.

use cloudmedia_bench::{paper_runs, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let runs = paper_runs(args.hours);
    print!("{}", cloudmedia_bench::report::fig4_summary(&runs));
    print!("{}", cloudmedia_bench::report::fig4(&runs));
}
