//! Regenerates every table and figure of the paper in one process and
//! writes the CSVs to `results/` (see EXPERIMENTS.md for the recorded
//! outputs and paper-vs-measured comparison).
//!
//! The four independent experiment groups — the paper-scale week runs,
//! the 4-channel utility experiment, the upload-sufficiency sweep, and
//! the latency/chunk-size ablations — execute in parallel; each group
//! also parallelizes internally where its runs are independent.

use std::fs;
use std::path::Path;

use cloudmedia_bench::{
    chunk_size, fig11, four_channel, latency, paper_runs, report, tables, HarnessArgs,
};

fn write(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    fs::write(&path, content).expect("results directory is writable");
    println!("wrote {}", path.display());
}

fn main() {
    let args = HarnessArgs::parse();
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("can create results dir");

    write(dir, "table2.csv", &tables::table_ii());
    write(dir, "table3.csv", &tables::table_iii());

    eprintln!(
        "running the experiment suite ({} h paper-scale horizon, {:?} kernel)...",
        args.hours,
        cloudmedia_sim::config::SimKernel::default()
    );
    let ((runs, four), (f11, (latency_rows, chunk_rows))) = rayon::join(
        || {
            rayon::join(
                || paper_runs(args.hours),
                || four_channel::run(args.hours.min(24.0)),
            )
        },
        || {
            rayon::join(
                || fig11::run(args.hours),
                || {
                    (
                        latency::measure(&[1, 5, 10, 25, 50, 75, 100, 150], 1.0),
                        chunk_size::sweep(&[60.0, 150.0, 300.0, 600.0, 900.0], 0.15),
                    )
                },
            )
        },
    );

    let day = if args.hours >= 48.0 { 1 } else { 0 };
    write(
        dir,
        "fig4.csv",
        &format!("{}{}", report::fig4_summary(&runs), report::fig4(&runs)),
    );
    write(
        dir,
        "fig5.csv",
        &format!("{}{}", report::fig5_summary(&runs), report::fig5(&runs)),
    );
    write(dir, "fig6.csv", &report::fig6(&runs.cs, day));
    write(dir, "fig7.csv", &report::fig7(&runs, day));
    write(
        dir,
        "fig10.csv",
        &format!(
            "{}{}",
            report::fig10_summary(&runs),
            report::fig10(&runs, day)
        ),
    );
    write(dir, "fig8.csv", &four_channel::fig8_csv(&four));
    write(dir, "fig9.csv", &four_channel::fig9_csv(&four));
    write(
        dir,
        "fig11.csv",
        &format!("{}{}", fig11::summary(&f11), fig11::csv(&f11)),
    );
    write(
        dir,
        "provisioning_latency.csv",
        &latency::csv(&latency_rows),
    );
    write(
        dir,
        "ablation_chunk_size.csv",
        &chunk_size::csv(&chunk_rows),
    );

    println!("done");
}
