//! Regenerates every table and figure of the paper in one process and
//! writes the CSVs to `results/` (see EXPERIMENTS.md for the recorded
//! outputs and paper-vs-measured comparison).

use std::fs;
use std::path::Path;

use cloudmedia_bench::{chunk_size, fig11, four_channel, latency, paper_runs, report, tables, HarnessArgs};

fn write(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    fs::write(&path, content).expect("results directory is writable");
    println!("wrote {}", path.display());
}

fn main() {
    let args = HarnessArgs::parse();
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("can create results dir");

    write(dir, "table2.csv", &tables::table_ii());
    write(dir, "table3.csv", &tables::table_iii());

    eprintln!("running paper-scale week in both modes ({} h)...", args.hours);
    let runs = paper_runs(args.hours);
    let day = if args.hours >= 48.0 { 1 } else { 0 };
    write(dir, "fig4.csv", &format!("{}{}", report::fig4_summary(&runs), report::fig4(&runs)));
    write(dir, "fig5.csv", &format!("{}{}", report::fig5_summary(&runs), report::fig5(&runs)));
    write(dir, "fig6.csv", &report::fig6(&runs.cs, day));
    write(dir, "fig7.csv", &report::fig7(&runs, day));
    write(dir, "fig10.csv", &format!("{}{}", report::fig10_summary(&runs), report::fig10(&runs, day)));

    eprintln!("running 4-channel utility experiment...");
    let four = four_channel::run(args.hours.min(24.0));
    write(dir, "fig8.csv", &four_channel::fig8_csv(&four));
    write(dir, "fig9.csv", &four_channel::fig9_csv(&four));

    eprintln!("running upload-sufficiency sweep...");
    let f11 = fig11::run(args.hours);
    write(dir, "fig11.csv", &format!("{}{}", fig11::summary(&f11), fig11::csv(&f11)));

    eprintln!("measuring provisioning latency...");
    let rows = latency::measure(&[1, 5, 10, 25, 50, 75, 100, 150], 1.0);
    write(dir, "provisioning_latency.csv", &latency::csv(&rows));

    let rows = chunk_size::sweep(&[60.0, 150.0, 300.0, 600.0, 900.0], 0.15);
    write(dir, "ablation_chunk_size.csv", &chunk_size::csv(&rows));

    println!("done");
}
